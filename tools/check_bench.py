#!/usr/bin/env python3
"""Gate CI on perf regressions in ``BENCH_perf.json``.

Compares a freshly generated benchmark file against the committed
baseline. Absolute round times are meaningless across runner hardware,
so two machine-independent checks gate the build:

1. derived speedup ratios must stay above their floors: the batch-of-8
   speedup over 8 serial evaluations (default 3x — the repo's headline
   batching win, always required), the compile-once-run-many speedup
   over the recompile-per-run path (default 1.5x — the plan-cache win),
   the vectorized noisy-engine speedup over the per-instruction
   Kraus walk (default 5x — the channel-aware fusion + superoperator
   win), and the pair-kernel vs. tensordot-reference speedups at 16
   qubits (default 4x — the kernel-v2 win) and 20 qubits (default 3x).
   These families gate whenever either file carries the key, so
   baselines predating a benchmark family still compare cleanly;
2. each benchmark's time *normalized by its in-run reference benchmark*
   (its ``reference`` field — a benchmark from the same cost family,
   defaulting to the file's ``reference_benchmark``) must not regress
   more than ``--max-regression`` (default 25%) against the baseline's
   normalized value. A benchmark that is its own reference is exempt —
   it is a unit of measurement; one whose reference changed between
   baseline and current is reported but not gated (schema migration).

The file may also carry a ``phases`` key — the obs-traced per-phase
self-time shares of one end-to-end run (see
``benchmarks/perf/conftest.py``). Shares are within-run normalized, so
they compare across machines: a phase whose share drifted more than
``--max-phase-drift`` (absolute, default 0.30) fails the gate. The
comparison is first-appearance tolerant — a baseline without ``phases``
(or a phase new to the current file) reports but never gates.

Benchmarks present in the current file but absent from the baseline are
reported as "new" and skipped (there is nothing to compare against —
they start gating on the next baseline refresh); a benchmark whose
reference is missing or zero-time is likewise reported and skipped
rather than failing the run, so adding a benchmark family never breaks
an older baseline comparison. ``--subset`` relaxes the reverse
direction for partial runs (the CI kernel smoke job regenerates only
the kernel family): benchmarks present only in the baseline are not
treated as dropped and absent derived keys never gate.

Kernel benchmarks carry a ``bytes_touched`` estimate; the report prints
the implied sustained GB/s per engine (roofline placement, never
gated).

Exit status is non-zero on any violation, with a per-benchmark report
either way.

Usage::

    python tools/check_bench.py --baseline old.json --current BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SPEEDUP_KEY = "batch8_speedup_vs_serial8"
COMPILE_SPEEDUP_KEY = "compile_once_speedup_vs_recompile"
NOISY_SPEEDUP_KEY = "noisy_engine_speedup_8q"
KERNEL_SPEEDUP_KEY = "kernel_speedup_16q"
KERNEL_20Q_SPEEDUP_KEY = "kernel_speedup_20q"
RETRY_OVERHEAD_KEY = "retry_overhead_fleet"


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")


def normalized_times(payload: dict, path: Path) -> tuple:
    """``({name: normalized_min}, {name: reference_name}, [skipped])``.

    A benchmark whose reference is missing or zero-time cannot be
    normalized; it lands in ``skipped`` (reported, never gated) instead
    of aborting the whole comparison.
    """
    benchmarks = payload.get("benchmarks", {})
    default_reference = payload.get("reference_benchmark")
    normalized = {}
    references = {}
    skipped = []
    for name, entry in benchmarks.items():
        reference_name = entry.get("reference", default_reference)
        reference = benchmarks.get(reference_name, {}).get("min_s")
        if not reference:
            print(
                f"check_bench: {path}: benchmark {name!r} has missing or "
                f"zero-time reference {reference_name!r}; skipping it"
            )
            skipped.append(name)
            continue
        normalized[name] = entry["min_s"] / reference
        references[name] = reference_name
    return normalized, references, skipped


def report_roofline(current: dict) -> None:
    """Informative sustained-bandwidth estimates for kernel benchmarks.

    Kernel benchmarks carry a ``bytes_touched`` estimate for one
    workload execution (summed from the ``kernel.*.bytes`` counters);
    dividing by the best round time approximates the gate loop's
    sustained memory bandwidth, which locates each engine against the
    machine's roofline. Never gates — absolute GB/s is machine-bound.
    """
    rows = [
        (name, entry)
        for name, entry in current.get("benchmarks", {}).items()
        if entry.get("bytes_touched") and entry.get("min_s")
    ]
    if not rows:
        return
    print("\nroofline estimate (bytes touched / best round):")
    for name, entry in sorted(rows):
        gbps = entry["bytes_touched"] / entry["min_s"] / 1e9
        print(
            f"  {name}: {entry['bytes_touched'] / 1e9:6.2f} GB / "
            f"{entry['min_s'] * 1e3:8.1f} ms = {gbps:6.1f} GB/s"
        )


def compare_phases(
    baseline: dict, current: dict, max_drift: float, failures: list
) -> None:
    """Tolerant comparison of the obs per-phase share breakdowns."""
    cur = current.get("phases")
    if not cur:
        return  # nothing recorded this run; never gate on absence
    shares = cur.get("shares", {})
    base_shares = (baseline.get("phases") or {}).get("shares")
    print(
        f"\ntraced phases ({cur.get('workload', '?')}, "
        f"coverage {100.0 * cur.get('coverage', 0.0):.1f}%):"
    )
    for name in sorted(shares):
        if base_shares is None or name not in base_shares:
            print(f"  {name}: {shares[name]:6.3f} /    (new)  [ok]")
            continue
        drift = abs(shares[name] - base_shares[name])
        status = "FAIL" if drift > max_drift else "ok"
        print(
            f"  {name}: {shares[name]:6.3f} / {base_shares[name]:6.3f}"
            f"  (drift {drift:.3f}, allowed {max_drift:.2f}) [{status}]"
        )
        if drift > max_drift:
            failures.append(
                f"phase {name} share drifted {drift:.3f} "
                f"(allowed {max_drift:.2f})"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="maximum allowed normalized slowdown vs. baseline (0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="floor for the batch-of-8 vs. 8-serial speedup",
    )
    parser.add_argument(
        "--min-compile-once-speedup",
        type=float,
        default=1.5,
        help="floor for the compile-once-run-many vs. recompile speedup",
    )
    parser.add_argument(
        "--min-noisy-speedup",
        type=float,
        default=5.0,
        help="floor for the noisy-engine vs. per-instruction-walk speedup",
    )
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=4.0,
        help="floor for the 16q pair-kernel vs. tensordot-reference speedup",
    )
    parser.add_argument(
        "--min-kernel-speedup-20q",
        type=float,
        default=3.0,
        help="floor for the 20q pair-kernel vs. tensordot-reference speedup",
    )
    parser.add_argument(
        "--max-retry-overhead",
        type=float,
        default=8.0,
        help=(
            "ceiling for the faulty-drain vs. clean-drain overhead ratio "
            "(two injected retries per job must not multiply drain cost "
            "beyond this factor)"
        ),
    )
    parser.add_argument(
        "--max-phase-drift",
        type=float,
        default=0.30,
        help="maximum absolute drift of a traced phase's self-time share",
    )
    parser.add_argument(
        "--subset",
        action="store_true",
        help=(
            "the current file covers only a subset of the suite (e.g. the "
            "CI kernel smoke run): benchmarks present only in the baseline "
            "are not treated as dropped"
        ),
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    base_norm, base_refs, _ = normalized_times(baseline, args.baseline)
    cur_norm, cur_refs, cur_skipped = normalized_times(current, args.current)

    failures = []

    speedup = current.get("derived", {}).get(SPEEDUP_KEY)
    if speedup is None:
        if not args.subset:
            failures.append(f"current file lacks derived.{SPEEDUP_KEY}")
    else:
        status = "ok" if speedup >= args.min_speedup else "FAIL"
        print(
            f"{SPEEDUP_KEY}: {speedup:.2f}x "
            f"(floor {args.min_speedup:.2f}x) [{status}]"
        )
        if speedup < args.min_speedup:
            failures.append(
                f"batch speedup {speedup:.2f}x below floor "
                f"{args.min_speedup:.2f}x"
            )

    # These cost families gate once they exist on either side: a current
    # file missing a key the baseline had means the benchmark family
    # disappeared; a baseline without it (a snapshot predating the
    # family) just means the floor starts applying with this run.
    gated_families = (
        (COMPILE_SPEEDUP_KEY, args.min_compile_once_speedup, "compile-once"),
        (NOISY_SPEEDUP_KEY, args.min_noisy_speedup, "noisy-engine"),
        (KERNEL_SPEEDUP_KEY, args.min_kernel_speedup, "16q-kernel"),
        (KERNEL_20Q_SPEEDUP_KEY, args.min_kernel_speedup_20q, "20q-kernel"),
    )
    for key, floor, label in gated_families:
        speedup = current.get("derived", {}).get(key)
        if speedup is None:
            if key in baseline.get("derived", {}) and not args.subset:
                failures.append(f"current file lacks derived.{key}")
            continue
        status = "ok" if speedup >= floor else "FAIL"
        print(f"{key}: {speedup:.2f}x (floor {floor:.2f}x) [{status}]")
        if speedup < floor:
            failures.append(
                f"{label} speedup {speedup:.2f}x below floor {floor:.2f}x"
            )

    # The retry-overhead family gates a *ceiling*, not a floor; like the
    # speedup families it is first-appearance tolerant — a baseline
    # predating it just means the ceiling starts applying with this run.
    overhead = current.get("derived", {}).get(RETRY_OVERHEAD_KEY)
    if overhead is None:
        if RETRY_OVERHEAD_KEY in baseline.get("derived", {}) and not args.subset:
            failures.append(f"current file lacks derived.{RETRY_OVERHEAD_KEY}")
    else:
        status = "ok" if overhead <= args.max_retry_overhead else "FAIL"
        print(
            f"{RETRY_OVERHEAD_KEY}: {overhead:.2f}x "
            f"(ceiling {args.max_retry_overhead:.2f}x) [{status}]"
        )
        if overhead > args.max_retry_overhead:
            failures.append(
                f"retry overhead {overhead:.2f}x above ceiling "
                f"{args.max_retry_overhead:.2f}x"
            )

    print("\nnormalized vs each benchmark's reference (current / baseline):")
    for name in sorted(cur_norm):
        if name == cur_refs[name]:
            continue  # a unit of measurement, not a gated benchmark
        if name not in base_norm:
            # First appearance: nothing to compare against, never gated.
            print(f"  {name}: {cur_norm[name]:8.2f} /    (new)  [ok]")
            continue
        if base_refs.get(name) != cur_refs[name]:
            print(f"  {name}: {cur_norm[name]:8.2f} / (reference changed)  [ok]")
            continue
        allowed = base_norm[name] * (1.0 + args.max_regression)
        regressed = cur_norm[name] > allowed
        status = "FAIL" if regressed else "ok"
        print(
            f"  {name}: {cur_norm[name]:8.2f} / {base_norm[name]:8.2f}"
            f"  (allowed {allowed:8.2f}) [{status}]"
        )
        if regressed:
            change = 100.0 * (cur_norm[name] / base_norm[name] - 1.0)
            failures.append(f"{name} regressed {change:.0f}% (normalized)")

    if not args.subset:
        current_names = set(cur_norm) | set(cur_skipped)
        dropped = sorted(set(base_norm) - current_names)
        for name in dropped:
            failures.append(f"benchmark {name} disappeared from the suite")

    report_roofline(current)
    compare_phases(baseline, current, args.max_phase_drift, failures)

    if failures:
        print("\ncheck_bench: FAILED")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ncheck_bench: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
