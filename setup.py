"""Setuptools shim.

The execution environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs fail on ``bdist_wheel``. ``python setup.py
develop`` (or ``pip install -e . --no-build-isolation`` on newer stacks)
installs the package; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
