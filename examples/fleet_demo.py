"""The fleet scheduling service: jobs across seven simulated IBMQ machines.

Declares a plan, submits it to ``repro.fleet`` (transient-aware scheduler
+ persistent SQLite job store + one worker thread per device), and shows:

1. jobs distributed across the fleet, with per-device utilization and
   deferral counters;
2. a scripted transient window (Toronto turbulent from tick 0) causing
   QISMET-style deferrals away from that machine — with bit-identical
   results, because every run is fully seed-determined;
3. resubmission of the same plan deduping against the job store — nothing
   re-executes.

Run:  python examples/fleet_demo.py
"""

import tempfile
import time
from pathlib import Path

from repro.fleet import FleetExecutor
from repro.runtime import ExperimentPlan

ITERATIONS = 60

PLAN = ExperimentPlan(
    apps=("App1", "App2", "App5"),
    schemes=("baseline", "qismet"),
    iterations=ITERATIONS,
    seeds=(7, 8),
    name="fleet-demo",
)


def show_telemetry(executor: FleetExecutor) -> None:
    snapshot = executor.telemetry.snapshot()
    for name, counters in sorted(snapshot["devices"].items()):
        print(
            f"  {name:>12}: completed={counters['completed']:<3}"
            f" deferred={counters['deferred']:<3}"
            f" failed={counters['failed']}"
        )
    print(
        f"  devices used: {snapshot['devices_used']}"
        f" | deferrals: {snapshot['total_deferrals']}"
        f" | throughput: {snapshot['throughput_jobs_per_tick']:.2f} jobs/tick"
    )


def main() -> None:
    print(
        f"plan {PLAN.name!r}: {len(PLAN)} runs "
        f"({len(PLAN.apps)} apps x {len(PLAN.schemes)} schemes x "
        f"{len(PLAN.seeds)} seeds)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        db = Path(tmp) / "fleet.db"

        print("\n[1] fleet run with a scripted transient window on toronto")
        with FleetExecutor(db_path=db) as executor:
            # Toronto is turbulent for the first 400 ticks: the scheduler
            # should route its jobs elsewhere and count the deferrals.
            executor.fleet.inject_transient(
                "toronto", start=0, length=400, magnitude=0.8
            )
            start = time.perf_counter()
            first = executor.run_plan(PLAN)
            print(f"  elapsed {time.perf_counter() - start:.1f}s")
            show_telemetry(executor)
            toronto = executor.telemetry.snapshot()["devices"].get("toronto")
            print(
                "  toronto deferrals during injected window: "
                f"{toronto['deferred'] if toronto else 0}"
            )

        print("\n[2] resubmission dedupes against the job store")
        with FleetExecutor(db_path=db) as executor:
            start = time.perf_counter()
            second = executor.run_plan(PLAN)
            print(
                f"  elapsed {time.perf_counter() - start:.1f}s "
                f"(store hits={executor.hits}, executed={executor.misses})"
            )

        same = all(
            a.to_dict()["result"] == b.to_dict()["result"]
            for a, b in zip(first, second)
        )
        print(f"\nresubmitted results bit-equal to first pass: {same}")
        print(f"geomean improvements: {second.geomean_improvements()}")


if __name__ == "__main__":
    main()
