"""Quickstart: run QISMET against a traditional VQA baseline.

Builds a 6-qubit TFIM VQE (the paper's primary workload), attaches a
transient-noise backend driven by a synthetic device trace, and compares
a plain SPSA baseline against QISMET's gradient-faithful controller.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EfficientSU2,
    EnergyObjective,
    QismetController,
    SPSA,
    TransientBackend,
    VQE,
    tfim_exact_ground_energy,
    tfim_hamiltonian,
)
from repro.noise.noise_model import NoiseModel
from repro.noise.transient import TransientProfile, generate_trace

ITERATIONS = 300
SEED = 7


def build_vqe(use_qismet: bool) -> VQE:
    hamiltonian = tfim_hamiltonian(6, coupling=1.0, field=1.0)
    objective = EnergyObjective(EfficientSU2(6, reps=2), hamiltonian)
    trace = generate_trace(
        TransientProfile(spike_rate=0.04, spike_magnitude=0.5),
        length=5 * ITERATIONS + 64,
        seed=SEED,
    )
    backend = TransientBackend(
        objective,
        trace,
        noise_model=NoiseModel(single_qubit_error=3e-4, two_qubit_error=8e-3),
        shots=8192,
        seed=SEED + (1 if use_qismet else 0),
    )
    controller = QismetController() if use_qismet else None
    return VQE(objective, backend, SPSA(seed=SEED), controller=controller)


def main() -> None:
    ground = tfim_exact_ground_energy(6)
    print(f"6-qubit TFIM, exact ground energy: {ground:.4f}")

    theta0 = build_vqe(False).objective.initial_point(seed=SEED)
    for label, use_qismet in (("baseline", False), ("QISMET", True)):
        vqe = build_vqe(use_qismet)
        result = vqe.run(ITERATIONS, theta0=np.array(theta0))
        print(
            f"{label:>8}: final energy {result.tail_true_energy():8.4f} | "
            f"jobs {result.total_jobs:4d} | circuits {result.total_circuits:4d} | "
            f"retries {result.total_retries:3d}"
        )


if __name__ == "__main__":
    main()
