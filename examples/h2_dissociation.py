"""H2 dissociation curve: multi-VQA under transient noise (paper Fig. 18).

For each H-H bond length the script builds the molecular Hamiltonian from
scratch (STO-3G integrals -> Hartree-Fock -> Jordan-Wigner), runs one VQE
per geometry, and prints the potential-energy curve for the noise-free,
baseline and QISMET settings alongside the exact FCI reference.

Run:  python examples/h2_dissociation.py
"""

import numpy as np

from repro import RealAmplitudes
from repro.chemistry.h2 import h2_hf_initial_point, h2_problem
from repro.experiments.schemes import build_vqe
from repro.noise.noise_model import NoiseModel
from repro.noise.transient.trace_generator import machine_trace
from repro.utils.rng import derive_seed
from repro.vqa.objective import EnergyObjective

BOND_LENGTHS = np.linspace(0.4, 2.0, 7)
ITERATIONS = 200
SEED = 41


def solve(scheme: str, bond_length: float, index: int) -> float:
    problem = h2_problem(float(bond_length))
    objective = EnergyObjective(RealAmplitudes(4, reps=2), problem.hamiltonian)
    trace = machine_trace(
        "guadalupe", 5 * ITERATIONS + 64, derive_seed(SEED, f"h2:{index}")
    )
    vqe = build_vqe(
        scheme,
        objective,
        trace=None if scheme == "noise-free" else trace,
        noise_model=NoiseModel.ideal(),  # transient noise only, as in the paper
        seed=derive_seed(SEED, f"{scheme}:{index}"),
        iterations_hint=ITERATIONS,
    )
    theta0 = h2_hf_initial_point(
        RealAmplitudes(4, reps=2), seed=SEED + index
    )
    result = vqe.run(ITERATIONS, theta0=theta0)
    return result.tail_true_energy(0.2)


def main() -> None:
    print("r (A)    FCI        noise-free  baseline    QISMET")
    for index, r in enumerate(BOND_LENGTHS):
        problem = h2_problem(float(r))
        row = [problem.fci_energy]
        for scheme in ("noise-free", "baseline", "qismet"):
            row.append(solve(scheme, r, index))
        print(
            f"{r:5.2f}  {row[0]:9.5f}  {row[1]:9.5f}  {row[2]:9.5f}  {row[3]:9.5f}"
        )
    print("\nEnergies in Hartree. QISMET should track the noise-free curve;")
    print("the baseline deviates, more so at longer bond lengths (Fig. 18).")


if __name__ == "__main__":
    main()
