"""Declarative sweeps: ExperimentPlan + pluggable executors.

Declares one plan over 2 apps x 3 schemes x 2 seeds (12 VQE runs), runs
it on the environment-selected executor (``REPRO_EXECUTOR=serial``,
``parallel`` or ``fleet`` — default parallel here), then re-runs it
through a CachedExecutor twice to show that the second pass is served
entirely from disk (identical numbers, ~zero cost).

Run:  python examples/experiment_sweep.py
      REPRO_EXECUTOR=fleet REPRO_FLEET_DB=fleet.db \
          python examples/experiment_sweep.py
"""

import os
import tempfile
import time

from repro.runtime import (
    CachedExecutor,
    ExperimentPlan,
    ParallelExecutor,
    default_executor,
)

ITERATIONS = 120

PLAN = ExperimentPlan(
    apps=("App1", "App2"),
    schemes=("baseline", "qismet", "blocking"),
    iterations=ITERATIONS,
    seeds=(7, 8),
    name="example-sweep",
)


def show(outcome) -> None:
    print(f"  {len(outcome)} runs | VQE wall-clock {outcome.total_elapsed_s:.1f}s "
          f"| cache hits {outcome.cache_hits}")
    for (app, seed, _scale), comp in sorted(outcome.comparisons().items()):
        ratios = ", ".join(
            f"{scheme}={ratio:.3f}"
            for scheme, ratio in sorted(comp.improvements().items())
        )
        print(f"  {app} seed={seed}: {ratios}")
    print(f"  geomean: {outcome.geomean_improvements()}")


def main() -> None:
    print(f"plan {PLAN.name!r}: {len(PLAN)} runs "
          f"({len(PLAN.apps)} apps x {len(PLAN.schemes)} schemes x "
          f"{len(PLAN.seeds)} seeds), id {PLAN.plan_id}")

    executor = (
        default_executor()
        if os.environ.get("REPRO_EXECUTOR")
        else ParallelExecutor()
    )
    print(f"\n[1] {type(executor).__name__} (environment-selected)")
    start = time.perf_counter()
    first = executor.run_plan(PLAN)
    print(f"  elapsed {time.perf_counter() - start:.1f}s")
    show(first)
    close = getattr(executor, "close", None)
    if close is not None:
        close()

    with tempfile.TemporaryDirectory() as cache_dir:
        print("\n[2] CachedExecutor, cold cache")
        executor = CachedExecutor(cache_dir, inner=ParallelExecutor())
        start = time.perf_counter()
        cold = executor.run_plan(PLAN)
        print(f"  elapsed {time.perf_counter() - start:.1f}s "
              f"(hits={executor.hits}, misses={executor.misses})")

        print("\n[3] CachedExecutor, warm cache")
        start = time.perf_counter()
        warm = executor.run_plan(PLAN)
        print(f"  elapsed {time.perf_counter() - start:.1f}s "
              f"(hits={executor.hits}, misses={executor.misses})")
        show(warm)

        same = all(
            cold_run.to_dict()["result"] == warm_run.to_dict()["result"]
            for cold_run, warm_run in zip(cold, warm)
        )
        print(f"\nwarm pass bit-equal to cold pass: {same}")


if __name__ == "__main__":
    main()
