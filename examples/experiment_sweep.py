"""Declarative sweeps: ExperimentPlan + the experiment store.

Declares one plan over 2 apps x 3 schemes x 2 seeds (12 VQE runs), runs
it on the environment-selected executor (``REPRO_EXECUTOR=serial``,
``parallel`` or ``fleet`` — default parallel here), then re-runs it
through a store-backed CachedExecutor twice to show that the second
pass is served entirely from the store (identical numbers, ~zero cost)
and that the store's query/aggregate API reproduces the figure-builder
numbers bit-for-bit — including from the incrementally materialized
view.

Run:  python examples/experiment_sweep.py
      REPRO_STORE=results.sqlite python examples/experiment_sweep.py
      REPRO_EXECUTOR=fleet REPRO_FLEET_DB=fleet.db \
          python examples/experiment_sweep.py
"""

import os
import tempfile
import time

from repro.runtime import ExperimentPlan, executor_for
from repro.store import ExperimentStore, RunQuery

ITERATIONS = 120

PLAN = ExperimentPlan(
    apps=("App1", "App2"),
    schemes=("baseline", "qismet", "blocking"),
    iterations=ITERATIONS,
    seeds=(7, 8),
    name="example-sweep",
)


def show(outcome) -> None:
    print(f"  {len(outcome)} runs | VQE wall-clock {outcome.total_elapsed_s:.1f}s "
          f"| cache hits {outcome.cache_hits}")
    for (app, seed, _scale), comp in sorted(outcome.comparisons().items()):
        ratios = ", ".join(
            f"{scheme}={ratio:.3f}"
            for scheme, ratio in sorted(comp.improvements().items())
        )
        print(f"  {app} seed={seed}: {ratios}")
    print(f"  geomean: {outcome.geomean_improvements()}")


def main() -> None:
    print(f"plan {PLAN.name!r}: {len(PLAN)} runs "
          f"({len(PLAN.apps)} apps x {len(PLAN.schemes)} schemes x "
          f"{len(PLAN.seeds)} seeds), id {PLAN.plan_id}")

    kind = os.environ.get("REPRO_EXECUTOR") or "parallel"
    executor = executor_for(kind)
    print(f"\n[1] {type(executor).__name__} (environment-selected)")
    start = time.perf_counter()
    first = executor.run_plan(PLAN)
    print(f"  elapsed {time.perf_counter() - start:.1f}s")
    show(first)
    close = getattr(executor, "close", None)
    if close is not None:
        close()

    with tempfile.TemporaryDirectory() as scratch:
        store = ExperimentStore(os.path.join(scratch, "store.sqlite"))

        print("\n[2] CachedExecutor over a fresh store, cold")
        executor = executor_for("parallel", store=store)
        start = time.perf_counter()
        cold = executor.run_plan(PLAN)
        print(f"  elapsed {time.perf_counter() - start:.1f}s "
              f"(hits={executor.hits}, misses={executor.misses})")

        print("\n[3] same executor, warm store")
        start = time.perf_counter()
        warm = executor.run_plan(PLAN)
        print(f"  elapsed {time.perf_counter() - start:.1f}s "
              f"(hits={executor.hits}, misses={executor.misses})")
        show(warm)

        same = all(
            cold_run.to_dict()["result"] == warm_run.to_dict()["result"]
            for cold_run, warm_run in zip(cold, warm)
        )
        print(f"\nwarm pass bit-equal to cold pass: {same}")

        print("\n[4] store query + aggregates")
        store.record_plan(PLAN)
        query = RunQuery(run_ids=[run.run_id for run in warm])
        info = store.info()
        print(f"  {info['runs']} runs, {info['blobs']} blobs "
              f"({info['payload_bytes']} payload bytes) at {info['path']}")
        direct = store.aggregate(query)
        print(f"  aggregate (direct):       {direct}")
        summary = store.materialize()
        print(f"  materialize: {summary['updated_cells']}/"
              f"{summary['total_cells']} cells, "
              f"watermark {summary['watermark']}")
        materialized = store.aggregate_materialized()
        print(f"  aggregate (materialized): {materialized}")
        print(f"  store matches PlanResult bit-for-bit: "
              f"{direct == warm.geomean_improvements() == materialized}")
        store.close()


if __name__ == "__main__":
    main()
