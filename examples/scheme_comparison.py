"""Compare all mitigation schemes on one Table 1 application (Fig. 14/17).

Declares the paper's comparison points — baseline, QISMET (three skip
budgets), Blocking/Resampling/2nd-order SPSA, Kalman filtering and the
only-transients strawman — as one ExperimentPlan on App2 (6q TFIM,
RealAmplitudes reps=4, Guadalupe trace), fans the schemes out with a
ParallelExecutor, and prints final energies plus expectation ratios.

Run:  python examples/scheme_comparison.py
"""

from repro.experiments import get_app
from repro.runtime import ExperimentPlan, ParallelExecutor

SCHEMES = (
    "noise-free",
    "baseline",
    "qismet",
    "qismet-conservative",
    "qismet-aggressive",
    "blocking",
    "resampling",
    "2nd-order",
    "kalman",
    "only-transients",
)
ITERATIONS = 300
SEED = 13


def main() -> None:
    app = get_app("App2")
    print(f"{app.name}: {app.num_qubits}q TFIM, {app.ansatz_kind} reps={app.reps}, "
          f"trace from {app.machine} ({app.trial})")
    plan = ExperimentPlan.single(
        app, SCHEMES, ITERATIONS, seed=SEED, name="scheme-comparison"
    )
    outcome = ParallelExecutor().run_plan(plan)
    comparison = outcome.comparison(app.name)
    ratios = comparison.improvements()
    finals = comparison.final_energies()
    print(f"\nground truth energy: {comparison.ground_truth:.4f}")
    print(f"{'scheme':>20}  {'final E':>9}  {'rel. baseline':>13}  {'retries':>7}")
    for scheme in SCHEMES:
        result = comparison.results[scheme]
        print(
            f"{scheme:>20}  {finals[scheme]:9.4f}  {ratios[scheme]:13.3f}  "
            f"{result.total_retries:7d}"
        )


if __name__ == "__main__":
    main()
