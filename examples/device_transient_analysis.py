"""Device-level transient analysis (paper Figs. 3 and 4).

Synthesizes a 65-hour T1 time series with TLS-induced dips, maps the dips
to circuit-fidelity variation for a shallow and a deep circuit, and prints
the per-machine transient-trace statistics used by the VQA experiments.

Run:  python examples/device_transient_analysis.py
"""

import numpy as np

from repro.devices.ibmq_fake import available_machines, get_device
from repro.experiments.figures import fig4_circuit_fidelity
from repro.noise.transient.t1_model import T1FluctuationModel


def main() -> None:
    # --- Fig. 3: T1 fluctuations --------------------------------------------
    model = T1FluctuationModel()
    times, t1 = model.sample_hours(65.0, seed=9)
    print("T1 fluctuations over 65 h:")
    print(f"  baseline {model.baseline_us:.0f} us | mean {t1.mean():.1f} us | "
          f"min {t1.min():.1f} us | dips below 50% baseline: "
          f"{model.outlier_count(t1, 0.5)}")

    # --- Fig. 4: circuit-level impact ----------------------------------------
    data = fig4_circuit_fidelity(hours=45, seed=10)
    for label in ("shallow", "deep"):
        row = data[label]
        print(f"  {label:8s} circuit: mean fidelity {row['mean_fidelity']:.3f}, "
              f"variation {100 * row['variation']:.1f}%")

    # --- Per-machine transient traces ----------------------------------------
    print("\nPer-machine transient profiles (1000-job traces):")
    for name in available_machines():
        device = get_device(name)
        trace = device.transient_trace(1000, seed=3)
        values = np.abs(trace.values)
        print(
            f"  {name:10s} ({device.num_qubits:2d}q): "
            f"quiet median {np.median(values):.4f} | p99 {np.percentile(values, 99):.3f} | "
            f"active(>0.2) {100 * trace.active_fraction(0.2):.1f}%"
        )


if __name__ == "__main__":
    main()
