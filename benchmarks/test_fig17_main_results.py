"""Fig. 17: the headline result — six applications x five schemes.

Paper: QISMET mean 2x (up to 3x); Blocking/Resampling ~1.2x mean but
inconsistent; 2nd-order consistently below baseline; best-case Kalman
~1.07x mean. Our energy-level reproduction preserves the ordering
(QISMET > filtering/SPSA-variants >= baseline > 2nd-order) at smaller
absolute factors.
"""

from bench_helpers import print_table, run_once

from repro.experiments.figures import fig17_main_results


def test_fig17_main_results(benchmark):
    data = run_once(benchmark, fig17_main_results, seed=13)
    for app_name, ratios in sorted(data["per_app"].items()):
        print_table(
            f"Fig. 17 [{app_name}] (expectation rel. baseline)",
            sorted(ratios.items()),
        )
    print_table("Fig. 17 GEOMEAN across applications", sorted(data["geomean"].items()))

    geomean = data["geomean"]
    assert geomean["baseline"] == 1.0
    # Shape: who wins.
    assert geomean["qismet"] > 1.0
    assert geomean["qismet"] >= geomean["kalman"] - 0.1
    assert geomean["2nd-order"] < 1.0
