"""Fig. 5: extreme transient impact on a long baseline VQA run."""

import numpy as np
from bench_helpers import print_table, run_once

from repro.experiments.figures import fig5_vqa_transient_impact


def test_fig5_vqa_transient_impact(benchmark):
    data = run_once(benchmark, fig5_vqa_transient_impact, seed=23)
    energies = data["machine_energies"]
    print_table(
        "Fig. 5: baseline VQA under severe transients",
        [
            ("iterations", len(energies)),
            ("expectation at 20% of run", data["energy_at_20pct"]),
            ("expectation at end", data["energy_final"]),
            ("upward spikes detected", data["num_upward_spikes"]),
        ],
    )
    # Shape: sharp upward spikes exist and late-run benefit is limited
    # (paper: 100th -> 500th iteration benefit effectively nil).
    assert data["num_upward_spikes"] >= 1
    swing = np.max(energies) - np.min(energies)
    assert swing > 1.0
