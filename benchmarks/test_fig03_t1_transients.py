"""Fig. 3: transient fluctuations in T1 times over 65 hours."""

from bench_helpers import print_table, run_once

from repro.experiments.figures import fig3_t1_transients


def test_fig3_t1_transients(benchmark):
    data = run_once(benchmark, fig3_t1_transients, hours=65.0, seed=9)
    print_table(
        "Fig. 3: T1 fluctuations over 65 h",
        [
            ("baseline T1 (us)", data["baseline_us"]),
            ("mean T1 (us)", data["mean_t1_us"]),
            ("min T1 (us)", data["min_t1_us"]),
            ("outliers (<50% baseline)", data["outliers_below_half_baseline"]),
            ("samples", len(data["t1_us"])),
        ],
    )
    # Shape: stable baseline with rare deep dips (the circled transients).
    assert data["mean_t1_us"] > 0.7 * data["baseline_us"]
    assert data["min_t1_us"] < 0.5 * data["baseline_us"]
    assert data["outliers_below_half_baseline"] >= 1
