"""Perf benchmarks for the unified compiler pipeline.

Two cost families, each normalized within itself (see
``tools/check_bench.py``):

* ``compile_once_run_many`` — the plan-cache win. The pre-refactor
  ``run_circuit`` path recompiled the bound circuit on every call
  (reproduced here as ``recompile_every_run_8q``, the family's unit of
  measurement); the cached path compiles once and binds many. The derived
  ``compile_once_speedup_vs_recompile`` ratio is gated in CI with a 1.5x
  floor.
* ``fused_vs_unfused_8q`` — the static-gate fusion win on a
  native-basis-shaped circuit, measured as fused vs unfused plan
  execution (``unfused_run_8q`` is the unit of measurement).
"""

from __future__ import annotations

import numpy as np

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.program import compile_circuit
from repro.compiler import clear_plan_cache, compile_plan
from repro.simulator.statevector import StatevectorSimulator
from repro.transpiler.basis import translate_to_basis

QUBITS = 8
RUNS = 32


def _bound_circuit() -> QuantumCircuit:
    """A native-basis ansatz-shaped circuit: long 1q runs around CX layers."""
    ansatz = EfficientSU2(QUBITS, reps=3)
    theta = np.random.default_rng(2023).uniform(
        -np.pi, np.pi, ansatz.num_parameters
    )
    return translate_to_basis(ansatz.bind(theta))


def test_recompile_every_run_8q(record_benchmark):
    circuit = _bound_circuit()
    sim = StatevectorSimulator(QUBITS)

    def recompile_and_run():
        # The pre-refactor hot path: compile_circuit on every invocation.
        total = None
        for _ in range(RUNS):
            program = compile_circuit(circuit)
            total = sim.run_program(program, np.empty(0))
        return total

    state = record_benchmark(
        "recompile_every_run_8q",
        recompile_and_run,
        rounds=5,
        reference="recompile_every_run_8q",
        qubits=QUBITS,
        runs=RUNS,
    )
    assert np.isfinite(state).all()


def test_compile_once_run_many_8q(record_benchmark):
    circuit = _bound_circuit()
    sim = StatevectorSimulator(QUBITS)
    clear_plan_cache()
    sim.run_circuit(circuit)  # warm the plan cache once, outside the timer

    def run_many():
        total = None
        for _ in range(RUNS):
            total = sim.run_circuit(circuit)
        return total

    state = record_benchmark(
        "compile_once_run_many_8q",
        run_many,
        rounds=5,
        reference="recompile_every_run_8q",
        qubits=QUBITS,
        runs=RUNS,
    )
    assert np.isfinite(state).all()
    # Cached and recompiled paths agree bit-for-bit on the final state.
    program = compile_circuit(circuit)
    np.testing.assert_allclose(
        np.asarray(state).reshape(-1),
        sim.run_program(program, np.empty(0)).reshape(-1),
        atol=1e-12,
        rtol=0.0,
    )


def test_unfused_run_8q(record_benchmark):
    circuit = _bound_circuit()
    plan = compile_plan(circuit, fusion=False, cache=False)
    sim = StatevectorSimulator(QUBITS)
    state = record_benchmark(
        "unfused_run_8q",
        lambda: sim.run_plan(plan, np.empty(0)),
        rounds=10,
        reference="unfused_run_8q",
        qubits=QUBITS,
        ops=len(plan.ops),
    )
    assert np.isfinite(state).all()


def test_fused_run_8q(record_benchmark):
    circuit = _bound_circuit()
    fused = compile_plan(circuit, fusion=True, cache=False)
    unfused = compile_plan(circuit, fusion=False, cache=False)
    assert len(fused.ops) < len(unfused.ops)
    sim = StatevectorSimulator(QUBITS)
    state = record_benchmark(
        "fused_run_8q",
        lambda: sim.run_plan(fused, np.empty(0)),
        rounds=10,
        reference="unfused_run_8q",
        qubits=QUBITS,
        ops=len(fused.ops),
    )
    assert np.isfinite(state).all()
    np.testing.assert_allclose(
        np.asarray(state).reshape(-1),
        sim.run_plan(unfused, np.empty(0)).reshape(-1),
        atol=1e-12,
        rtol=0.0,
    )
