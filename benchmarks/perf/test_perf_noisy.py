"""Perf benchmarks for the vectorized noisy-execution engine.

One cost family, normalized within itself (see ``tools/check_bench.py``):
``noisy_counts_walk_8q`` — the pre-engine shot path (per-instruction
density-matrix Kraus walk, gate matrices and channel operator lists
rebuilt per call, explicit Python loop over Kraus operators) — is the
family's unit of measurement. Against it run:

* ``noisy_counts_8q`` — the shot-level :class:`~repro.backends.counts.
  CountsBackend` hot path on the compiled :class:`~repro.compiler.
  NoisePlan` (channel-aware fusion, unitary absorption, one
  superoperator contraction per channel site, content-cached lowering).
  The derived ``noisy_engine_speedup_8q`` ratio is gated in CI with a
  5x floor.
* ``trajectory_batch_8q`` — the batched quantum-trajectory unraveling of
  the same plan (256 trajectories through the leading-batch-axis
  kernels), the engine's second execution route.

The workload is the paper-shaped 8-qubit native-basis ansatz under a
device-style depolarizing model with *virtual* (noiseless) ``rz`` —
IBM's rz is a software frame change, which is exactly what makes
between-channel fusion physical.
"""

from __future__ import annotations

import numpy as np

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.backends.counts import CountsBackend
from repro.compiler import compile_noise_plan
from repro.noise.noise_model import NoiseModel
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.sampling import counts_from_probabilities
from repro.simulator.trajectory import TrajectorySimulator
from repro.transpiler.basis import translate_to_basis

QUBITS = 8
SHOTS = 4096
TRAJECTORIES = 256


def _noise_model() -> NoiseModel:
    return NoiseModel(
        single_qubit_error=0.004,
        two_qubit_error=0.03,
        gate_overrides={"rz": 0.0},
    )


def _bound_circuit():
    ansatz = EfficientSU2(QUBITS, reps=2)
    theta = np.random.default_rng(2023).uniform(
        -np.pi, np.pi, ansatz.num_parameters
    )
    return translate_to_basis(ansatz.bind(theta))


def test_noisy_counts_walk_8q(record_benchmark):
    """The pre-engine shot path: per-instruction Kraus walk + sampling."""
    circuit = _bound_circuit()
    model = _noise_model()
    simulator = DensityMatrixSimulator(QUBITS)
    rng = np.random.default_rng(7)

    def walk_and_sample():
        rho = simulator.run_circuit_walk(circuit, model)
        return counts_from_probabilities(
            simulator.probabilities(rho), SHOTS, rng
        )

    counts = record_benchmark(
        "noisy_counts_walk_8q",
        walk_and_sample,
        rounds=3,
        reference="noisy_counts_walk_8q",
        qubits=QUBITS,
        shots=SHOTS,
    )
    assert sum(counts.values()) == SHOTS


def test_noisy_counts_8q(record_benchmark):
    """The vectorized engine's shot path, plan-cached and fused."""
    circuit = _bound_circuit()
    backend = CountsBackend(noise_model=_noise_model(), seed=7, engine="dm")
    backend.run(circuit, SHOTS)  # warm the lowering/plan caches

    counts = record_benchmark(
        "noisy_counts_8q",
        lambda: backend.run(circuit, SHOTS),
        rounds=5,
        reference="noisy_counts_walk_8q",
        qubits=QUBITS,
        shots=SHOTS,
    )
    assert sum(counts.values()) == SHOTS
    # Sanity: the engine's distribution matches the walk's to 1e-12.
    simulator = DensityMatrixSimulator(QUBITS)
    walk_probs = simulator.probabilities(
        simulator.run_circuit_walk(circuit, _noise_model())
    )
    np.testing.assert_allclose(
        backend.probabilities(circuit), walk_probs, atol=1e-12, rtol=0.0
    )


def test_trajectory_batch_8q(record_benchmark):
    """Batched trajectory unraveling of the same noisy workload."""
    circuit = _bound_circuit()
    plan = compile_noise_plan(circuit, _noise_model())
    simulator = TrajectorySimulator(QUBITS, seed=3)

    probs = record_benchmark(
        "trajectory_batch_8q",
        lambda: simulator.probabilities(plan, TRAJECTORIES),
        rounds=3,
        reference="noisy_counts_walk_8q",
        qubits=QUBITS,
        batch=TRAJECTORIES,
    )
    assert probs.shape == (2**QUBITS,)
    np.testing.assert_allclose(probs.sum(), 1.0, atol=1e-9)
