"""Perf-benchmark harness: tracked timings for the evaluation hot path.

Unlike the figure benchmarks (which report wall-clock as a side effect of
regenerating the paper's results), this suite exists *for* the timings:
it measures the single-evaluation baseline, the batched fast path, and a
fig17-shaped end-to-end run, and writes the results to
``BENCH_perf.json`` at the repo root at session finish.

That file is committed, so the perf trajectory is tracked PR-over-PR,
and CI's ``perf`` job regenerates it on every push and fails on >25%
regression against the committed baseline (see ``tools/check_bench.py``;
comparisons are normalized within-run so they are robust to runner-speed
differences).

Run locally with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Dict

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
#: Output path; ``REPRO_BENCH_PATH`` redirects it (CI kernel smoke runs
#: write to a scratch file and compare against the committed baseline).
BENCH_PATH = Path(
    os.environ.get("REPRO_BENCH_PATH") or REPO_ROOT / "BENCH_perf.json"
)

#: Default benchmark timings are normalized against in the CI gate.
#: Individual benchmarks may name a different ``reference`` from their own
#: cost family (kernel-bound vs. dispatch-bound), which keeps the
#: normalized ratios stable across machines with different BLAS/runtime
#: speed balances.
REFERENCE_BENCHMARK = "single_eval_8q"

_RESULTS: Dict[str, Dict[str, float]] = {}


@pytest.fixture
def record_benchmark(benchmark) -> Callable:
    """Run a callable under pytest-benchmark and record its timings.

    ``record_benchmark(name, func, rounds=..., **metadata)`` stores the
    min/mean round times (seconds) into the ``BENCH_perf.json`` payload
    under ``name`` and returns the callable's last return value.
    """

    def _run(
        name,
        func,
        rounds=10,
        warmup_rounds=1,
        reference=REFERENCE_BENCHMARK,
        **metadata,
    ):
        value = benchmark.pedantic(
            func, rounds=rounds, iterations=1, warmup_rounds=warmup_rounds
        )
        stats = benchmark.stats.stats
        _RESULTS[name] = {
            "min_s": float(stats.min),
            "mean_s": float(stats.mean),
            "rounds": int(rounds),
            "reference": reference,
            **metadata,
        }
        return value

    return _run


#: Derived speedup ratios: (key, slow benchmark, fast benchmark).
_SPEEDUP_RATIOS = (
    ("batch8_speedup_vs_serial8", "serial_8x_eval_8q", "batch_8x_eval_8q"),
    (
        "compile_once_speedup_vs_recompile",
        "recompile_every_run_8q",
        "compile_once_run_many_8q",
    ),
    ("fusion_speedup_8q", "unfused_run_8q", "fused_run_8q"),
    ("noisy_engine_speedup_8q", "noisy_counts_walk_8q", "noisy_counts_8q"),
    (
        "kernel_speedup_16q",
        "kernel_vqe_iteration_16q_tensordot",
        "kernel_vqe_iteration_16q",
    ),
    (
        "kernel_speedup_20q",
        "kernel_statevector_20q_tensordot",
        "kernel_statevector_20q",
    ),
    (
        "kernel_speedup_traj_16q",
        "kernel_trajectory_16q_tensordot",
        "kernel_trajectory_16q",
    ),
    # Overhead ratio, not a speedup: the faulty drain (two retries per
    # job) over the fault-free drain — check_bench gates its *ceiling*.
    ("retry_overhead_fleet", "fleet_drain_faulty", "fleet_drain_clean"),
)


def _derived(results: Dict[str, Dict[str, float]]) -> Dict[str, object]:
    derived: Dict[str, object] = {}
    for key, slow_name, fast_name in _SPEEDUP_RATIOS:
        slow = results.get(slow_name)
        fast = results.get(fast_name)
        if slow and fast and fast["min_s"] > 0:
            derived[key] = slow["min_s"] / fast["min_s"]
    normalized = {}
    for name, entry in results.items():
        reference = results.get(entry.get("reference", REFERENCE_BENCHMARK))
        if reference and reference["min_s"] > 0:
            normalized[name] = entry["min_s"] / reference["min_s"]
    if normalized:
        derived["normalized_min"] = normalized
    return derived


def _dedicated_perf_run(session) -> bool:
    """True when the session ran *only* this suite (or opt-in is forced).

    A plain ``pytest`` at the repo root also collects this directory; it
    must not silently rewrite the committed baseline with that machine's
    incidental timings. ``REPRO_WRITE_BENCH=1`` forces the write.
    """
    if os.environ.get("REPRO_WRITE_BENCH", "").strip() == "1":
        return True
    items = getattr(session, "items", None) or []
    here = Path(__file__).resolve().parent
    return bool(items) and all(
        here in Path(str(item.fspath)).resolve().parents for item in items
    )


def _traced_phases() -> Dict[str, object]:
    """One traced end-to-end run -> per-phase self-time shares.

    Shares are within-run normalized (they sum to ~coverage), so like the
    normalized benchmark times they survive runner-speed differences;
    ``tools/check_bench.py`` compares them tolerantly (first appearance
    never gates).
    """
    from repro.obs import TRACER
    from repro.obs.report import build_report
    from repro.runtime.execute import execute_run
    from repro.runtime.spec import RunSpec

    TRACER.reset()
    TRACER.configure(enabled=True, kernel_stride=16)
    try:
        execute_run(RunSpec(app="App1", scheme="baseline", iterations=5))
        report = build_report(tracer=TRACER)
    finally:
        TRACER.configure(enabled=False)
        TRACER.reset()
    return {
        "workload": "execute_run(App1, baseline, iterations=5)",
        "wall_s": round(report["wall_s"], 6),
        "coverage": round(report["coverage"], 4),
        "shares": {
            category: round(bucket["share"], 4)
            for category, bucket in report["phases"].items()
        },
    }


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS or exitstatus not in (0,):
        return
    if not _dedicated_perf_run(session):
        return
    try:
        phases = _traced_phases()
    except Exception:  # phases are informative; never fail the bench write
        phases = None
    payload = {
        "schema": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "reference_benchmark": REFERENCE_BENCHMARK,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "benchmarks": dict(sorted(_RESULTS.items())),
        "derived": _derived(_RESULTS),
    }
    if phases is not None:
        payload["phases"] = phases
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
