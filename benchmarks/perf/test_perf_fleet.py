"""Perf benchmark for the fleet scheduling layer.

Measures pure dispatch cost — transient verdicts (Kalman + CFAR over the
monitor window) plus device ranking — for a block of routing decisions,
with no VQE execution underneath. This bounds the per-job overhead the
fleet adds on top of the evaluation hot path.

``route_256_jobs`` is its own reference benchmark: it starts the
dispatch-bound cost family (the existing benchmarks are kernel-bound),
so it is a unit of measurement for future fleet benchmarks rather than a
gated entry — ``tools/check_bench.py`` exempts self-referencing
benchmarks and reports first-appearance benchmarks as "new".
"""

from __future__ import annotations

from repro.fleet import DeviceFleet, TransientAwareScheduler
from repro.runtime.spec import RunSpec

ROUTES = 256


def test_fleet_route_256(record_benchmark):
    fleet = DeviceFleet(seed=2023)
    scheduler = TransientAwareScheduler(fleet)
    spec = RunSpec(app="App1", scheme="baseline", iterations=10, seed=7)

    def route_block():
        placed = 0
        for tick in range(ROUTES):
            decision = scheduler.route(spec, tick)
            if decision.placed:
                placed += 1
        return placed

    placed = record_benchmark(
        "route_256_jobs",
        route_block,
        rounds=5,
        reference="route_256_jobs",
        routes=ROUTES,
    )
    # Sanity: the fleet is mostly quiet, so most ticks place immediately.
    assert placed > ROUTES // 2
