"""Perf benchmarks for the v2 gate kernels (pair vs. tensordot).

Each workload runs twice — once per ``REPRO_KERNEL`` engine — and the
kernel family gates on its *derived speedup ratios* (pair time vs. the
tensordot sibling; ``kernel_speedup_16q >= 4x`` is the headline
acceptance gate, ``kernel_speedup_20q >= 3x`` rides along — see
``tools/check_bench.py``). Every entry is its own ``reference``, which
exempts the family from the generic normalized-regression gate: the
explicit speedup floors are the tighter, variance-tolerant check.

Three workloads:

* ``kernel_vqe_iteration_16q`` — one batched VQE iteration: 8 parameter
  sets through a 16-qubit EfficientSU2(reps=2) plan on the flat batched
  simulator. This is the paper-scale hot loop the kernels exist for.
* ``kernel_statevector_20q`` — a single 20-qubit serial plan execution
  (16 MiB statevector), exercising the chunked cache-blocked path.
* ``kernel_trajectory_16q`` — 4 noisy trajectories at 16 qubits; gate
  kernels ride the same dispatch, but Kraus unraveling dominates the
  runtime, so its speedup ratio is reported without a floor.

Every entry records a ``bytes_touched`` estimate (from the
``kernel.*.bytes`` counters) for one workload execution, which makes
the benchmark roofline-readable: ``bytes_touched / min_s`` approximates
the sustained memory bandwidth of the gate loop.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

import numpy as np

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.compiler import compile_noise_plan
from repro.noise.noise_model import NoiseModel
from repro.obs.metrics import METRICS
from repro.simulator.batched import BatchedStatevectorSimulator
from repro.simulator.statevector import StatevectorSimulator
from repro.simulator.trajectory import TrajectorySimulator

_CACHE: Dict[str, object] = {}


def _workload_16q():
    if "16q" not in _CACHE:
        plan = EfficientSU2(16, reps=2).plan
        thetas = np.random.default_rng(2023).uniform(
            -np.pi, np.pi, (8, plan.num_parameters)
        )
        _CACHE["16q"] = (plan, thetas)
    return _CACHE["16q"]


def _workload_20q():
    if "20q" not in _CACHE:
        plan = EfficientSU2(20, reps=1).plan
        theta = np.random.default_rng(7).uniform(
            -np.pi, np.pi, plan.num_parameters
        )
        _CACHE["20q"] = (plan, theta)
    return _CACHE["20q"]


def _workload_traj_16q():
    if "traj" not in _CACHE:
        ansatz = EfficientSU2(16, reps=2)
        circuit = ansatz.bind(
            np.random.default_rng(2023).uniform(
                -np.pi, np.pi, ansatz.num_parameters
            )
        )
        _CACHE["traj"] = compile_noise_plan(
            circuit, NoiseModel(0.004, 0.03), cache=False
        )
    return _CACHE["traj"]


def _kernel_bytes(func: Callable) -> int:
    """Total ``kernel.*.bytes`` delta for one execution of ``func``."""

    def total() -> int:
        return sum(
            value
            for name, value in METRICS.snapshot()["counters"].items()
            if name.startswith("kernel.") and name.endswith(".bytes")
        )

    before = total()
    func()
    return total() - before


def _bench_engine(
    record_benchmark,
    name: str,
    kernel_engine: Optional[str],
    func: Callable,
    rounds: int,
    reference: str,
    **metadata,
):
    """Record ``func`` under a pinned ``REPRO_KERNEL`` engine."""
    saved = os.environ.get("REPRO_KERNEL")
    if kernel_engine is None:
        os.environ.pop("REPRO_KERNEL", None)
    else:
        os.environ["REPRO_KERNEL"] = kernel_engine
    try:
        bytes_touched = _kernel_bytes(func)
        return record_benchmark(
            name,
            func,
            rounds=rounds,
            reference=reference,
            bytes_touched=bytes_touched,
            **metadata,
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = saved


def test_kernel_vqe_iteration_16q_tensordot(record_benchmark):
    plan, thetas = _workload_16q()
    sim = BatchedStatevectorSimulator(16)
    states = _bench_engine(
        record_benchmark,
        "kernel_vqe_iteration_16q_tensordot",
        "tensordot",
        lambda: sim.run_flat(plan, thetas),
        rounds=5,
        reference="kernel_vqe_iteration_16q_tensordot",
        qubits=16,
        batch=8,
        engine="tensordot",
    )
    assert np.isfinite(states).all()


def test_kernel_vqe_iteration_16q_pair(record_benchmark):
    plan, thetas = _workload_16q()
    sim = BatchedStatevectorSimulator(16)
    states = _bench_engine(
        record_benchmark,
        "kernel_vqe_iteration_16q",
        "pair",
        lambda: sim.run_flat(plan, thetas),
        rounds=10,
        reference="kernel_vqe_iteration_16q",
        qubits=16,
        batch=8,
        engine="pair",
    )
    assert np.isfinite(states).all()


def test_kernel_statevector_20q_tensordot(record_benchmark):
    plan, theta = _workload_20q()
    sim = StatevectorSimulator(20)
    state = _bench_engine(
        record_benchmark,
        "kernel_statevector_20q_tensordot",
        "tensordot",
        lambda: sim.run_plan(plan, theta),
        rounds=3,
        reference="kernel_statevector_20q_tensordot",
        qubits=20,
        engine="tensordot",
    )
    assert np.isfinite(state).all()


def test_kernel_statevector_20q_pair(record_benchmark):
    plan, theta = _workload_20q()
    sim = StatevectorSimulator(20)
    state = _bench_engine(
        record_benchmark,
        "kernel_statevector_20q",
        "pair",
        lambda: sim.run_plan(plan, theta),
        rounds=5,
        reference="kernel_statevector_20q",
        qubits=20,
        engine="pair",
    )
    assert np.isfinite(state).all()


def test_kernel_trajectory_16q_tensordot(record_benchmark):
    plan = _workload_traj_16q()

    def run():
        return TrajectorySimulator(16, seed=7).run_noise_plan(plan, 4)

    states = _bench_engine(
        record_benchmark,
        "kernel_trajectory_16q_tensordot",
        "tensordot",
        run,
        rounds=3,
        reference="kernel_trajectory_16q_tensordot",
        qubits=16,
        trajectories=4,
        engine="tensordot",
    )
    assert np.isfinite(states).all()


def test_kernel_trajectory_16q_pair(record_benchmark):
    plan = _workload_traj_16q()

    def run():
        return TrajectorySimulator(16, seed=7).run_noise_plan(plan, 4)

    states = _bench_engine(
        record_benchmark,
        "kernel_trajectory_16q",
        "pair",
        run,
        rounds=3,
        reference="kernel_trajectory_16q",
        qubits=16,
        trajectories=4,
        engine="pair",
    )
    assert np.isfinite(states).all()
