"""Perf benchmarks for the VQE evaluation hot path.

Three tiers, matching how the batched engine is consumed:

* ``single_eval`` / ``serial_8x`` — the per-circuit baseline the paper's
  thousands of SPSA evaluations pay without batching;
* ``batch_8x`` — the same eight parameter sets through one
  :meth:`EnergyObjective.batch_energies` call (dense path) plus the
  matrix-free variant and a 24-seed population step;
* ``fig17_scale`` — a reduced fig17-shaped end-to-end comparison
  (one app, baseline vs QISMET) through the experiment-plan runtime.

Timings land in ``BENCH_perf.json``; correctness of the batched/serial
contract is asserted in ``tests/test_batched_equivalence.py`` — here we
only keep a cheap sanity check that the batch returns finite energies.
"""

from __future__ import annotations

import numpy as np

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.experiments.registry import get_app
from repro.experiments.runner import run_comparison
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.optimizers.spsa import SPSA
from repro.vqa.multi_vqe import PopulationVQE
from repro.vqa.objective import EnergyObjective

QUBITS = 8
BATCH = 8


def _objective() -> EnergyObjective:
    return EnergyObjective(EfficientSU2(QUBITS, reps=3), tfim_hamiltonian(QUBITS))


def _thetas(batch: int, num_parameters: int) -> np.ndarray:
    rng = np.random.default_rng(2023)
    return rng.uniform(-np.pi, np.pi, (batch, num_parameters))


def test_single_eval_8q(record_benchmark):
    objective = _objective()
    theta = _thetas(1, objective.num_parameters)[0]
    energy = record_benchmark(
        "single_eval_8q",
        lambda: objective.ideal_energy(theta),
        rounds=20,
        qubits=QUBITS,
    )
    assert np.isfinite(energy)


def test_serial_8x_eval_8q(record_benchmark):
    objective = _objective()
    thetas = _thetas(BATCH, objective.num_parameters)

    def serial():
        return [objective.ideal_energy(theta) for theta in thetas]

    energies = record_benchmark(
        "serial_8x_eval_8q", serial, rounds=10, qubits=QUBITS, batch=BATCH
    )
    assert np.isfinite(energies).all()


def test_batch_8x_eval_8q(record_benchmark):
    objective = _objective()
    thetas = _thetas(BATCH, objective.num_parameters)
    energies = record_benchmark(
        "batch_8x_eval_8q",
        lambda: objective.batch_energies(thetas),
        rounds=10,
        qubits=QUBITS,
        batch=BATCH,
    )
    assert np.isfinite(energies).all()


def test_batch_8x_matrix_free_8q(record_benchmark, monkeypatch):
    import repro.vqa.objective as objective_module

    monkeypatch.setattr(objective_module, "_DENSE_LIMIT_QUBITS", 0)
    objective = _objective()
    assert not objective.uses_dense_hamiltonian
    thetas = _thetas(BATCH, objective.num_parameters)
    energies = record_benchmark(
        "batch_8x_matrix_free_8q",
        lambda: objective.batch_energies(thetas),
        rounds=10,
        qubits=QUBITS,
        batch=BATCH,
    )
    assert np.isfinite(energies).all()


def test_population_vqe_24_seeds(record_benchmark):
    objective = _objective()
    population = PopulationVQE(
        objective, lambda seed: SPSA(seed=seed), track_true_energy=False
    )

    def run():
        return population.run(5, seeds=range(24))

    results = record_benchmark(
        "population_vqe_24x5_8q",
        run,
        rounds=3,
        # Dispatch-bound like the serial loop, not kernel-bound like a
        # single eval: normalize within the same cost family so the CI
        # gate is stable across machines with different BLAS/runtime
        # speed balances.
        reference="serial_8x_eval_8q",
        qubits=QUBITS,
        seeds=24,
        iterations=5,
    )
    assert len(results) == 24


def test_fig17_scale_end_to_end(record_benchmark):
    app = get_app("App1")

    def run():
        return run_comparison(app, ("baseline", "qismet"), iterations=25, seed=2023)

    comparison = record_benchmark(
        "fig17_scale_app1_2schemes_25it",
        run,
        rounds=3,
        reference="serial_8x_eval_8q",
        schemes=2,
        iterations=25,
    )
    assert set(comparison.results) == {"baseline", "qismet"}
