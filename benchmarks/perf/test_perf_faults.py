"""Perf benchmark for the fault-injection/retry layer.

Measures the fleet drain loop over a stubbed (near-zero-cost) workload
twice: fault-free, and under a deterministic schedule that fails the
first two attempts of every job (so each job retries twice and backs
off on the simulated clock). The derived ``retry_overhead_fleet`` ratio
bounds what the recovery machinery costs on top of a clean drain —
``tools/check_bench.py`` gates it against a ceiling.

``fleet_drain_clean`` is its own reference: it starts the
recovery-bound cost family (dispatch plus store transitions, no VQE
underneath), so it is a unit of measurement; ``fleet_drain_faulty``
normalizes against it, keeping the tracked ratio machine-independent.
"""

from __future__ import annotations

from repro.faults import INJECTOR, FaultPlan, RetryPolicy
from repro.fleet import FleetService
from repro.runtime.execute import execute_run
from repro.runtime.results import RunResult
from repro.runtime.spec import RunSpec

MACHINES = ["toronto", "cairo"]

JOBS = 8

SPECS = [
    RunSpec(app="App1", scheme="baseline", iterations=4, seed=seed)
    for seed in range(JOBS)
]

#: Two retries per job, deterministically (attempts 0 and 1 fail).
FAULT_PLAN = FaultPlan.parse("execute.run:fail:hits=0,1")

RETRY = RetryPolicy(max_attempts=4, backoff_base=1, jitter=0)

_TEMPLATE = None


def _stub_execute(spec: RunSpec) -> RunResult:
    """The fault site and result plumbing without the VQE underneath."""
    global _TEMPLATE
    INJECTOR.fire("execute.run", run_id=spec.run_id)
    if _TEMPLATE is None:
        _TEMPLATE = execute_run(
            RunSpec(app="App1", scheme="baseline", iterations=2, seed=0)
        )
    return RunResult(
        spec=spec,
        result=_TEMPLATE.result,
        ground_truth=_TEMPLATE.ground_truth,
        elapsed_s=0.0,
    )


def _drain(retry: RetryPolicy) -> int:
    service = FleetService(
        machines=MACHINES, execute=_stub_execute, retry=retry
    )
    try:
        results = service.run_specs(SPECS, timeout=120)
        return len(results)
    finally:
        service.close()


def test_fleet_drain_clean(record_benchmark):
    INJECTOR.uninstall()

    def clean_round():
        return _drain(RETRY)

    completed = record_benchmark(
        "fleet_drain_clean",
        clean_round,
        rounds=5,
        reference="fleet_drain_clean",
        jobs=JOBS,
    )
    assert completed == JOBS


def test_fleet_drain_faulty(record_benchmark):
    INJECTOR.install(FAULT_PLAN)

    def faulty_round():
        # Fresh invocation counters so the schedule re-fires each round.
        INJECTOR.reset()
        return _drain(RETRY)

    try:
        completed = record_benchmark(
            "fleet_drain_faulty",
            faulty_round,
            rounds=5,
            reference="fleet_drain_clean",
            jobs=JOBS,
            retries_per_job=2,
        )
    finally:
        INJECTOR.uninstall()
    assert completed == JOBS
