"""Design-choice ablations beyond the paper's own figures.

* retry budget sweep (paper Section 8.1 fixes it at 5);
* QISMET overhead accounting (Section 8.3's ">= 2x circuits" claim);
* trust-region SPSA interaction (step bounding vs transient kicks).
"""

import numpy as np
from conftest import print_table, run_once

from repro.experiments.config import default_iterations
from repro.experiments.registry import get_app
from repro.experiments.runner import run_comparison


def retry_budget_sweep(seed=43):
    iterations = default_iterations(800, 200)
    app = get_app("App5")
    rows = {}
    for budget in (0, 1, 5, 10):
        comp = run_comparison(
            app, ["baseline", "qismet"], iterations=iterations, seed=seed,
            retry_budget=budget,
        )
        rows[budget] = comp.improvements()["qismet"]
    return rows


def test_ablation_retry_budget(benchmark):
    rows = run_once(benchmark, retry_budget_sweep)
    print_table(
        "Ablation: QISMET retry budget (expectation rel. baseline)",
        [(f"budget={k}", v) for k, v in sorted(rows.items())],
    )
    # budget 0 degenerates toward the baseline (every rejection is forced
    # through); some budget should not be dramatically worse than none.
    assert all(v > 0.5 for v in rows.values())


def overhead_accounting(seed=44):
    iterations = default_iterations(600, 200)
    app = get_app("App2")
    comp = run_comparison(app, ["baseline", "qismet"], iterations=iterations, seed=seed)
    base, qis = comp.results["baseline"], comp.results["qismet"]
    return {
        "baseline_circuits_per_job": base.total_circuits / base.total_jobs,
        "qismet_circuits_per_job": qis.total_circuits / qis.total_jobs,
        "qismet_job_overhead": qis.total_jobs / base.total_jobs,
        "qismet_skip_fraction": qis.total_retries / qis.total_jobs,
    }


def test_ablation_overhead(benchmark):
    stats = run_once(benchmark, overhead_accounting)
    print_table(
        "Ablation: QISMET overheads (paper Sec 8.3: >= 2x circuits)",
        sorted(stats.items()),
    )
    # Every QISMET execution instance reruns the reference: ~2x circuits.
    assert stats["qismet_circuits_per_job"] > 1.9
    assert stats["baseline_circuits_per_job"] < 1.1
    # Skips bounded by the 10% budget (plus retry multiplicity).
    assert stats["qismet_job_overhead"] < 1.6


def trust_region_interaction(seed=45):
    iterations = default_iterations(600, 200)
    app = get_app("App5")
    rows = {}
    for label, radius in (("unbounded", None), ("trust=0.1", 0.1)):
        comp = run_comparison(
            app, ["noise-free", "baseline"], iterations=iterations, seed=seed,
        )
        # rebuild with trust region by adjusting the optimizer directly
        from repro.experiments.metrics import tail_energy
        if radius is None:
            rows[label] = tail_energy(comp.results["baseline"])
        else:
            from repro.experiments.schemes import build_vqe
            from repro.noise.noise_model import NoiseModel
            from repro.vqa.objective import EnergyObjective
            from repro.utils.rng import derive_seed

            objective = EnergyObjective(app.build_ansatz(), app.build_hamiltonian())
            trace = app.build_trace(length=5 * iterations + 64, seed=seed)
            vqe = build_vqe(
                "baseline", objective, trace,
                noise_model=NoiseModel.from_device(app.build_device()),
                seed=derive_seed(seed, f"run:{app.name}"),
                iterations_hint=iterations,
            )
            vqe.optimizer.trust_radius = radius
            result = vqe.run(
                iterations,
                theta0=app.build_ansatz().initial_point(
                    seed=derive_seed(seed, f"theta0:{app.name}")
                ),
            )
            rows[label] = tail_energy(result)
    return rows


def test_ablation_trust_region(benchmark):
    rows = run_once(benchmark, trust_region_interaction)
    print_table(
        "Ablation: SPSA trust region under transients (final true energy)",
        sorted(rows.items()),
    )
    # Step bounding mitigates transient kicks: bounded is at least as good.
    assert rows["trust=0.1"] <= rows["unbounded"] + 0.5
