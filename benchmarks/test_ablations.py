"""Design-choice ablations beyond the paper's own figures.

* retry budget sweep (paper Section 8.1 fixes it at 5);
* QISMET overhead accounting (Section 8.3's ">= 2x circuits" claim);
* trust-region SPSA interaction (step bounding vs transient kicks).
"""

from bench_helpers import print_table, run_once

from repro.experiments.config import default_iterations
from repro.experiments.registry import get_app
from repro.experiments.runner import ComparisonResult, run_comparison
from repro.runtime import RunSpec, default_executor


def retry_budget_sweep(seed=43, executor=None):
    """One spec per (budget, scheme) cell, executed in a single fan-out —
    the overrides sweep the plan runtime was built for."""
    iterations = default_iterations(800, 200)
    app = get_app("App5")
    budgets = (0, 1, 5, 10)
    schemes = ("baseline", "qismet")
    specs = [
        RunSpec(
            app=app, scheme=scheme, iterations=iterations, seed=seed,
            overrides={"retry_budget": budget},
        )
        for budget in budgets
        for scheme in schemes
    ]
    runs = (executor or default_executor()).run(specs)
    rows = {}
    for index, budget in enumerate(budgets):
        pair = runs[index * len(schemes):(index + 1) * len(schemes)]
        comp = ComparisonResult(
            app_name=app.name,
            ground_truth=app.ground_truth_energy(),
            results={run.scheme: run.result for run in pair},
        )
        rows[budget] = comp.improvements()["qismet"]
    return rows


def test_ablation_retry_budget(benchmark):
    rows = run_once(benchmark, retry_budget_sweep)
    print_table(
        "Ablation: QISMET retry budget (expectation rel. baseline)",
        [(f"budget={k}", v) for k, v in sorted(rows.items())],
    )
    # budget 0 degenerates toward the baseline (every rejection is forced
    # through); some budget should not be dramatically worse than none.
    assert all(v > 0.5 for v in rows.values())


def overhead_accounting(seed=44):
    iterations = default_iterations(600, 200)
    app = get_app("App2")
    comp = run_comparison(app, ["baseline", "qismet"], iterations=iterations, seed=seed)
    base, qis = comp.results["baseline"], comp.results["qismet"]
    return {
        "baseline_circuits_per_job": base.total_circuits / base.total_jobs,
        "qismet_circuits_per_job": qis.total_circuits / qis.total_jobs,
        "qismet_job_overhead": qis.total_jobs / base.total_jobs,
        "qismet_skip_fraction": qis.total_retries / qis.total_jobs,
    }


def test_ablation_overhead(benchmark):
    stats = run_once(benchmark, overhead_accounting)
    print_table(
        "Ablation: QISMET overheads (paper Sec 8.3: >= 2x circuits)",
        sorted(stats.items()),
    )
    # Every QISMET execution instance reruns the reference: ~2x circuits.
    assert stats["qismet_circuits_per_job"] > 1.9
    assert stats["baseline_circuits_per_job"] < 1.1
    # Skips bounded by the 10% budget (plus retry multiplicity).
    assert stats["qismet_job_overhead"] < 1.6


def trust_region_interaction(seed=45, executor=None):
    """Bounded vs unbounded SPSA steps on the same transient trace: two
    specs differing only in the ``spsa_trust_radius`` override, so both
    rows share every random stream."""
    from repro.experiments.metrics import tail_energy

    iterations = default_iterations(600, 200)
    app = get_app("App5")
    variants = (("unbounded", {}), ("trust=0.1", {"spsa_trust_radius": 0.1}))
    specs = [
        RunSpec(
            app=app, scheme="baseline", iterations=iterations, seed=seed,
            overrides=overrides,
        )
        for _, overrides in variants
    ]
    runs = (executor or default_executor()).run(specs)
    return {
        label: tail_energy(run.result)
        for (label, _), run in zip(variants, runs)
    }


def test_ablation_trust_region(benchmark):
    rows = run_once(benchmark, trust_region_interaction)
    print_table(
        "Ablation: SPSA trust region under transients (final true energy)",
        sorted(rows.items()),
    )
    # Step bounding mitigates transient kicks: bounded is at least as good.
    assert rows["trust=0.1"] <= rows["unbounded"] + 0.5
