"""Fig. 11: QISMET vs baseline on (fake) IBMQ Guadalupe, ~270 iterations."""

from bench_helpers import print_table, run_once

from repro.experiments.figures import machine_run


def test_fig11_guadalupe(benchmark):
    data = run_once(benchmark, machine_run, "guadalupe", seed=17)
    print_table(
        "Fig. 11: Guadalupe, QISMET vs baseline (paper: ~40% improvement)",
        [
            ("iterations", data["iterations"]),
            ("improvement (x)", data["improvement"]),
            ("improvement (%)", data["improvement_pct"]),
            ("qismet retries", data["qismet_retries"]),
        ],
    )
    # Shape: QISMET at least matches the baseline on this machine.
    assert data["improvement"] > 0.9
    assert data["qismet_retries"] >= 0
