"""Figure-benchmark conftest.

The shared helpers live in :mod:`bench_helpers` (a uniquely named module:
``from conftest import ...`` became ambiguous once ``benchmarks/perf/``
gained its own conftest), see its docstring for scale/executor knobs.
"""
