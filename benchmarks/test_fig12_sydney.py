"""Fig. 12: QISMET vs baseline on (fake) IBMQ Sydney, ~350 iterations.

Sydney's profile is smooth tuning with rare sharp transient phases —
exactly the case where a handful of skips buys a large improvement.
"""

from bench_helpers import print_table, run_once

from repro.experiments.figures import machine_run


def test_fig12_sydney(benchmark):
    data = run_once(benchmark, machine_run, "sydney", seed=17)
    print_table(
        "Fig. 12: Sydney, QISMET vs baseline (paper: ~50% improvement)",
        [
            ("iterations", data["iterations"]),
            ("improvement (x)", data["improvement"]),
            ("improvement (%)", data["improvement_pct"]),
            ("qismet retries", data["qismet_retries"]),
        ],
    )
    assert data["improvement"] > 0.9
