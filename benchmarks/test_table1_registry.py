"""Table 1: the six TFIM VQA applications (configs + substrate build)."""

from bench_helpers import print_table, run_once

from repro.experiments.registry import APPLICATIONS


def build_all_apps():
    rows = []
    for name in sorted(APPLICATIONS):
        app = APPLICATIONS[name]
        ansatz = app.build_ansatz()
        ham = app.build_hamiltonian()
        trace = app.build_trace(length=256)
        rows.append(
            (
                name,
                f"{app.num_qubits}q {app.ansatz_kind} reps={app.reps} "
                f"{app.machine}({app.trial}) params={ansatz.num_parameters} "
                f"terms={len(ham)} E0={app.ground_truth_energy():.4f} "
                f"trace_p99={trace.magnitude_percentile(99):.3f}",
            )
        )
    return rows


def test_table1_registry(benchmark):
    rows = run_once(benchmark, build_all_apps)
    print_table("Table 1: TFIM VQA applications", rows)
    assert len(rows) == 6
