"""Fig. 13 through the fleet: multi-machine comparison, fleet-scheduled.

Same 6-machine x 2-scheme grid as ``test_fig13_machines``, but submitted
to the ``repro.fleet`` scheduling service at reduced iteration count: the
transient-aware scheduler spreads the 12 jobs across the simulated IBMQ
fleet and reports per-device utilization/deferral telemetry, while every
per-run number stays bit-identical to the serial build (asserted in
``tests/test_fleet_service.py``; here we assert the fleet-level shape).
"""

from bench_helpers import print_table, run_once

from repro.experiments.figures import fig13_fleet

#: Keep the fleet benchmark cheap: the serial fig13 benchmark already
#: tracks full-scale numbers; this one tracks the scheduling layer.
ITERATIONS = 40


def test_fig13_fleet(benchmark):
    data = run_once(benchmark, fig13_fleet, seed=17, iterations=ITERATIONS)
    rows = [
        (machine, f"{row['improvement']:.3f}x")
        for machine, row in sorted(data["machines"].items())
    ]
    fleet = data["fleet"]
    rows.append(("GEOMEAN", f"{data['geomean_improvement']:.3f}x"))
    rows.append(("devices used", fleet["devices_used"]))
    rows.append(("deferrals", fleet["total_deferrals"]))
    rows.append(
        ("throughput", f"{fleet['throughput_jobs_per_tick']:.2f} jobs/tick")
    )
    print_table("Fig. 13 (fleet-scheduled): QISMET improvement", rows)
    assert len(data["machines"]) == 6
    assert fleet["job_counts"]["done"] == 12
    assert fleet["job_counts"]["failed"] == 0
    # The scheduler load-balances 12 jobs across the 7-device fleet.
    assert fleet["devices_used"] >= 3
