"""Fig. 15: the only-transients skipping alternative (App1).

Paper: skipping on transient magnitude alone is *worse* than the baseline
at every threshold, and more aggressive skipping (lower percentile) is
worse — because constructive transients get skipped too and every skip
costs machine time.
"""

from bench_helpers import print_table, run_once

from repro.experiments.figures import fig15_only_transients


def test_fig15_only_transients(benchmark):
    data = run_once(benchmark, fig15_only_transients, seed=19)
    finals = data["final_energies"]
    print_table(
        f"Fig. 15: only-transients skipping under a {data['job_budget']}-job budget "
        "(final VQE expectation; lower is better)",
        sorted(finals.items()),
    )
    # Shape note: the paper finds *all* magnitude-threshold variants worse
    # than the baseline on real devices. In our energy-level substrate,
    # magnitude skipping recovers part of the transient damage too (it is
    # a blunter cousin of QISMET), so the reproduced — and mechanism-
    # faithful — shape is the paper's *reason* for the result: more
    # aggressive skipping shows diminishing/reversing returns because
    # skips burn the job budget (50p is worse than the moderate 80p).
    assert finals["50p"] >= finals["80p"] - 0.2
    # The conservative threshold barely intervenes, landing nearer the
    # baseline than the moderate skippers do.
    assert abs(finals["99p"] - finals["baseline"]) <= max(
        abs(finals["80p"] - finals["baseline"]),
        abs(finals["70p"] - finals["baseline"]),
    ) + 0.3
