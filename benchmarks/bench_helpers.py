"""Shared benchmark helpers.

Each benchmark regenerates one of the paper's tables/figures and prints
the corresponding rows/series. Heavy experiments run exactly once per
bench (``benchmark.pedantic(..., rounds=1)``); wall-clock numbers are
reported by pytest-benchmark, and the scientific output goes to stdout
(run with ``-s`` or check the captured output).

Scale: reduced by default; ``REPRO_FULL=1`` reproduces paper-scale
iteration counts.

Execution: every figure builder routes through the experiment-plan
runtime (:mod:`repro.runtime`), so the whole suite honors
``REPRO_EXECUTOR=parallel`` (fan VQE runs out across cores,
``REPRO_JOBS`` caps workers) and ``REPRO_CACHE_DIR=<dir>`` (serve
previously computed runs from disk — rebuilding a figure becomes
near-instant). Results are bit-identical across executors.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run a figure builder exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_table(title, rows):
    """Print a two-column table of (label, value) pairs."""
    print(f"\n=== {title} ===")
    width = max((len(str(label)) for label, _ in rows), default=8)
    for label, value in rows:
        if isinstance(value, float):
            print(f"  {str(label):<{width}}  {value:10.4f}")
        else:
            print(f"  {str(label):<{width}}  {value}")
