"""Fig. 10: sweeping the transient-noise magnitude from 0 to 50 %."""

import numpy as np
from bench_helpers import print_table, run_once

from repro.experiments.figures import fig10_transient_sweep


def test_fig10_transient_sweep(benchmark):
    data = run_once(benchmark, fig10_transient_sweep, seed=5)
    rows = [
        (f"{100 * fraction:.1f}% transient", energy)
        for fraction, energy in zip(data["fractions"], data["final_energies"])
    ]
    print_table("Fig. 10: VQA accuracy vs transient magnitude", rows)
    finals = np.array(data["final_energies"])
    # Shape: the no-transient run is (near-)best; the 50% run is clearly
    # worst; the overall trend degrades with magnitude.
    assert finals[0] <= finals[-1] - 0.2
    # Spearman-style check: large fractions correlate with higher energy.
    order = np.argsort(finals)
    assert order[0] in (0, 1, 2)
    assert order[-1] in (len(finals) - 1, len(finals) - 2)
