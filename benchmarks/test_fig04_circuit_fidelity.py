"""Fig. 4: circuit fidelity variation over 45 hours (shallow vs deep)."""

from bench_helpers import print_table, run_once

from repro.experiments.figures import fig4_circuit_fidelity


def test_fig4_circuit_fidelity(benchmark):
    data = run_once(benchmark, fig4_circuit_fidelity, hours=45, seed=10)
    shallow, deep = data["shallow"], data["deep"]
    print_table(
        "Fig. 4: hourly-batch circuit fidelity (paper: ~83%/5% vs ~25%/35%)",
        [
            ("shallow (4q/6CX) mean", shallow["mean_fidelity"]),
            ("shallow variation", shallow["variation"]),
            ("deep (8q/50CX) mean", deep["mean_fidelity"]),
            ("deep variation", deep["variation"]),
        ],
    )
    # Shape: deep circuits have far lower fidelity and far larger relative
    # variation under the same T1 transients.
    assert shallow["mean_fidelity"] > 0.7
    assert deep["mean_fidelity"] < 0.4
    assert shallow["variation"] < 0.15
    assert deep["variation"] > 2 * shallow["variation"]
