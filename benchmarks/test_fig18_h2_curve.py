"""Fig. 18: H2 dissociation curve under transient-only noise.

Paper: QISMET's potential-energy curve closely tracks the noise-free bell
shape while the baseline deviates, increasingly at longer bond lengths.
"""

import numpy as np
from bench_helpers import print_table, run_once

from repro.experiments.figures import fig18_h2_curve


def test_fig18_h2_curve(benchmark):
    data = run_once(benchmark, fig18_h2_curve, seed=41)
    rows = []
    for i, r in enumerate(data["bond_lengths"]):
        rows.append(
            (
                f"r={r:.2f} A",
                "fci=%.4f nf=%.4f base=%.4f qismet=%.4f"
                % (
                    data["fci"][i],
                    data["curves"]["noise-free"][i],
                    data["curves"]["baseline"][i],
                    data["curves"]["qismet"][i],
                ),
            )
        )
    rows.append(("RMS err (baseline)", data["rms_error"]["baseline"]))
    rows.append(("RMS err (qismet)", data["rms_error"]["qismet"]))
    print_table("Fig. 18: H2 potential energy (Hartree)", rows)

    # Shape 1: the noise-free curve has the physical bell shape.
    nf = np.array(data["curves"]["noise-free"])
    assert np.argmin(nf) not in (0, len(nf) - 1)
    # Shape 2: QISMET tracks noise-free at least as well as the baseline.
    assert data["rms_error"]["qismet"] <= data["rms_error"]["baseline"] + 0.01
