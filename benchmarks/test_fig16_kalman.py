"""Fig. 16: Kalman filtering vs QISMET and baseline (App6).

Paper: with oracle-tuned hyper-parameters the best Kalman variant gains
up to ~1.4x over the baseline but QISMET is substantially better, and the
best (MV, T) choice varies by application.
"""

from bench_helpers import print_table, run_once

from repro.experiments.figures import fig16_kalman


def test_fig16_kalman(benchmark):
    data = run_once(benchmark, fig16_kalman, seed=31)
    print_table(
        "Fig. 16: Kalman grid vs QISMET (expectation rel. baseline)",
        sorted(data["improvements"].items()),
    )
    # Shape: both mitigations beat the unprotected baseline, and the
    # Kalman grid's performance is strongly hyper-parameter dependent
    # (the paper's Section 7.4 point; the oracle-tuned best varies by
    # app). Note: in our energy-level substrate the shared evaluation
    # filter smooths transient kicks more effectively than on real
    # devices, so Kalman's oracle-best can exceed QISMET here — a
    # documented deviation (see EXPERIMENTS.md).
    assert data["qismet_improvement"] > 0.95
    kalman_ratios = [
        v for k, v in data["improvements"].items() if k.startswith("kalman")
    ]
    assert max(kalman_ratios) - min(kalman_ratios) > 0.1  # strong (MV,T) dependence
