"""Fig. 13: QISMET benefits across six IBMQ machines.

Paper: 1.29x-1.51x per machine, geomean 1.39x, over 200-450 iterations.
Our energy-level simulation reproduces the ordering (QISMET >= baseline on
every machine, noisier machines benefiting more); absolute factors are
smaller because the synthetic substrate softens real-device pathologies.
"""

from bench_helpers import print_table, run_once

from repro.experiments.figures import fig13_machines


def test_fig13_machines(benchmark):
    data = run_once(benchmark, fig13_machines, seed=17)
    rows = [
        (machine, f"{row['improvement']:.3f}x over {row['iterations']} iters")
        for machine, row in sorted(data["machines"].items())
    ]
    rows.append(("GEOMEAN", f"{data['geomean_improvement']:.3f}x"))
    print_table("Fig. 13: QISMET improvement per machine", rows)
    assert len(data["machines"]) == 6
    # Shape: QISMET wins on average across machines.
    assert data["geomean_improvement"] > 1.0
