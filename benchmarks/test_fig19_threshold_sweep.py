"""Fig. 19: sweeping the QISMET error threshold (skip budget).

Paper: the conservative threshold (99p, skip <= 1%) behaves like the
baseline; the best threshold (90p) wins in both regimes; the aggressive
threshold (75p) helps under high transient noise but can fall below the
baseline when transients are rare.
"""

from bench_helpers import print_table, run_once

from repro.experiments.figures import fig19_threshold_sweep


def test_fig19_threshold_sweep(benchmark):
    data = run_once(benchmark, fig19_threshold_sweep, seed=37)
    for regime in ("low", "high"):
        print_table(
            f"Fig. 19 [{regime} transient noise] (expectation rel. baseline)",
            sorted(data[regime].items()),
        )
    # Shape: conservative ~ baseline in both regimes.
    for regime in ("low", "high"):
        assert abs(data[regime]["qismet-conservative"] - 1.0) < 0.35
    # The best threshold is at least as good as conservative under high noise.
    assert (
        data["high"]["qismet"]
        >= data["high"]["qismet-conservative"] - 0.15
    )
