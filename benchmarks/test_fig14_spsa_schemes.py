"""Fig. 14: App2, QISMET vs SPSA optimization schemes.

Paper: QISMET best (~1.65x the baseline expectation); Blocking and
Resampling offer smaller, inconsistent gains; 2nd-order is *worse* than
the baseline under transients.
"""

from bench_helpers import print_table, run_once

from repro.experiments.figures import fig14_spsa_schemes


def test_fig14_spsa_schemes(benchmark):
    data = run_once(benchmark, fig14_spsa_schemes, seed=13)
    improvements = data["improvements"]
    print_table(
        f"Fig. 14: App2 schemes over {data['iterations']} iterations "
        "(expectation rel. baseline)",
        sorted(improvements.items()),
    )
    assert improvements["baseline"] == 1.0
    # Shape: QISMET at or above baseline; 2nd-order below baseline.
    assert improvements["qismet"] >= 0.95
    assert improvements["2nd-order"] < 1.0
