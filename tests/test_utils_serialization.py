import numpy as np

from repro.utils.serialization import load_json, save_json


def test_round_trip_plain(tmp_path):
    data = {"a": 1, "b": [1, 2, 3], "c": "text"}
    path = save_json(tmp_path / "x.json", data)
    assert load_json(path) == data


def test_numpy_conversion(tmp_path):
    data = {
        "arr": np.arange(3),
        "f": np.float64(1.5),
        "i": np.int32(7),
        "flag": np.bool_(True),
        "nested": {"v": np.array([[1.0, 2.0]])},
    }
    loaded = load_json(save_json(tmp_path / "y.json", data))
    assert loaded["arr"] == [0, 1, 2]
    assert loaded["f"] == 1.5
    assert loaded["i"] == 7
    assert loaded["flag"] is True
    assert loaded["nested"]["v"] == [[1.0, 2.0]]


def test_creates_parent_dirs(tmp_path):
    path = save_json(tmp_path / "deep" / "dir" / "z.json", [1])
    assert path.exists()


def test_tuple_becomes_list(tmp_path):
    loaded = load_json(save_json(tmp_path / "t.json", {"t": (1, 2)}))
    assert loaded["t"] == [1, 2]
