"""Fixed-seed regression pins for the v2 kernel engines.

The golden values below were captured from the noisy counts / energy
pipeline and are asserted *exactly* for sampled counts (the RNG draw
sequence is part of the contract) and to 1e-12 for float energies. The
suite runs the same workload under the default ``pair`` engine and under
``REPRO_KERNEL=tensordot``: both engines must reproduce the pins, which
locks the kernel refactor out of silently changing simulation results.
"""

import numpy as np
import pytest

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.backends.counts import CountsBackend
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.noise.noise_model import NoiseModel
from repro.vqa.objective import EnergyObjective

COUNTS_DM = {
    "0000": 259, "0001": 255, "0010": 40, "0011": 95,
    "0100": 405, "0101": 29, "0110": 63, "0111": 42,
    "1000": 237, "1001": 136, "1010": 145, "1011": 16,
    "1100": 255, "1101": 12, "1110": 28, "1111": 31,
}
COUNTS_TRAJ = {
    "0000": 267, "0001": 262, "0010": 47, "0011": 121,
    "0100": 418, "0101": 28, "0110": 81, "0111": 20,
    "1000": 222, "1001": 136, "1010": 129, "1011": 17,
    "1100": 239, "1101": 9, "1110": 21, "1111": 31,
}
ENERGY_COUNTS = -1.921875
ENERGY_IDEAL = -2.120523915728114
ENERGIES_BATCH = [-2.120523915728114, -4.777695361039817]


def _bound_circuit():
    ansatz = RealAmplitudes(4, reps=2)
    theta = np.linspace(-1.1, 1.3, ansatz.num_parameters)
    return ansatz.bind(theta)


@pytest.fixture(params=["pair", "tensordot"])
def engine(request, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", request.param)
    return request.param


def test_dm_counts_bit_identical(engine):
    backend = CountsBackend(
        noise_model=NoiseModel(0.004, 0.03), seed=321, engine="dm"
    )
    assert backend.run(_bound_circuit(), shots=2048) == COUNTS_DM


def test_trajectory_counts_bit_identical(engine):
    backend = CountsBackend(
        noise_model=NoiseModel(0.004, 0.03), seed=321,
        engine="traj", trajectories=128,
    )
    assert backend.run(_bound_circuit(), shots=2048) == COUNTS_TRAJ


def test_counts_energy_pinned(engine):
    backend = CountsBackend(
        noise_model=NoiseModel(0.004, 0.03), seed=55, engine="dm"
    )
    energy = backend.estimate_energy(
        _bound_circuit(), tfim_hamiltonian(4), shots_per_group=4096
    )
    assert energy == ENERGY_COUNTS


def test_ideal_and_batch_energies_pinned(engine):
    objective = EnergyObjective(EfficientSU2(6, reps=2), tfim_hamiltonian(6))
    theta = np.linspace(-0.9, 1.2, objective.num_parameters)
    assert objective.ideal_energy(theta) == pytest.approx(
        ENERGY_IDEAL, abs=1e-12
    )
    batch = objective.batch_energies(np.stack([theta, theta * 0.5]))
    np.testing.assert_allclose(batch, ENERGIES_BATCH, atol=1e-12)
