"""The perf CI gate tolerates suite growth (tools/check_bench.py).

New benchmarks must be reported as "new" and skipped — not crash the
comparison or silently gate — so a PR that *adds* benchmarks stays green
against the previous baseline.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_bench.py"
_spec = importlib.util.spec_from_file_location("check_bench", _TOOL)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _payload(benchmarks, speedup=5.0, compile_speedup=None):
    derived = {check_bench.SPEEDUP_KEY: speedup}
    if compile_speedup is not None:
        derived[check_bench.COMPILE_SPEEDUP_KEY] = compile_speedup
    return {
        "schema": 1,
        "reference_benchmark": "ref",
        "benchmarks": benchmarks,
        "derived": derived,
    }


def _bench(min_s, reference=None):
    entry = {"min_s": min_s}
    if reference is not None:
        entry["reference"] = reference
    return entry


BASE = {"ref": _bench(1.0, "ref"), "a": _bench(2.0, "ref")}


def _run(tmp_path, baseline, current, *extra):
    base_path = tmp_path / "base.json"
    cur_path = tmp_path / "cur.json"
    base_path.write_text(json.dumps(baseline))
    cur_path.write_text(json.dumps(current))
    return check_bench.main(
        ["--baseline", str(base_path), "--current", str(cur_path), *extra]
    )


def test_identical_files_pass(tmp_path, capsys):
    assert _run(tmp_path, _payload(BASE), _payload(BASE)) == 0
    assert "check_bench: ok" in capsys.readouterr().out


def test_new_benchmark_reported_and_skipped(tmp_path, capsys):
    current = dict(BASE, new_bench=_bench(5.0, "ref"))
    assert _run(tmp_path, _payload(BASE), _payload(current)) == 0
    out = capsys.readouterr().out
    assert "new_bench" in out and "(new)" in out


def test_new_self_referencing_benchmark_not_gated(tmp_path, capsys):
    # A new cost-family unit (its own reference) must neither gate nor
    # crash — the fleet perf benchmark takes this shape.
    current = dict(BASE, fleet_unit=_bench(9.9, "fleet_unit"))
    assert _run(tmp_path, _payload(BASE), _payload(current)) == 0


def test_new_benchmark_with_dangling_reference_skipped(tmp_path, capsys):
    current = dict(BASE, broken=_bench(1.0, "missing-ref"))
    assert _run(tmp_path, _payload(BASE), _payload(current)) == 0
    out = capsys.readouterr().out
    assert "skipping" in out and "broken" in out


def test_regression_still_fails(tmp_path, capsys):
    current = dict(BASE, a=_bench(4.0, "ref"))  # 2.0 -> 4.0 normalized
    assert _run(tmp_path, _payload(BASE), _payload(current)) == 1
    assert "regressed" in capsys.readouterr().out


def test_dropped_benchmark_still_fails(tmp_path, capsys):
    current = {"ref": _bench(1.0, "ref")}
    assert _run(tmp_path, _payload(BASE), _payload(current)) == 1
    assert "disappeared" in capsys.readouterr().out


def test_speedup_floor_still_gates(tmp_path, capsys):
    assert _run(tmp_path, _payload(BASE), _payload(BASE, speedup=1.5)) == 1
    assert "below floor" in capsys.readouterr().out


def test_compile_once_floor_gates_when_present(tmp_path, capsys):
    base = _payload(BASE, compile_speedup=3.0)
    good = _payload(BASE, compile_speedup=2.0)
    bad = _payload(BASE, compile_speedup=1.2)
    assert _run(tmp_path, base, good) == 0
    assert _run(tmp_path, base, bad) == 1
    assert "compile-once speedup" in capsys.readouterr().out


def test_compile_once_key_optional_for_old_baselines(tmp_path):
    # A pre-compiler baseline has no compile-once family: the current
    # file's floor still applies, the baseline's absence does not fail.
    old_base = _payload(BASE)
    assert _run(tmp_path, old_base, _payload(BASE, compile_speedup=2.5)) == 0
    # And a current file without the key is fine against an old baseline...
    assert _run(tmp_path, old_base, _payload(BASE)) == 0
    # ...but not against a baseline that had it (family disappeared).
    new_base = _payload(BASE, compile_speedup=2.5)
    assert _run(tmp_path, new_base, _payload(BASE)) == 1


def _with_retry_overhead(payload, overhead):
    payload = json.loads(json.dumps(payload))  # deep copy
    payload["derived"][check_bench.RETRY_OVERHEAD_KEY] = overhead
    return payload


def test_retry_overhead_ceiling_gates_when_present(tmp_path, capsys):
    base = _with_retry_overhead(_payload(BASE), 2.0)
    good = _with_retry_overhead(_payload(BASE), 4.0)
    bad = _with_retry_overhead(_payload(BASE), 50.0)
    assert _run(tmp_path, base, good) == 0
    assert _run(tmp_path, base, bad) == 1
    assert "above ceiling" in capsys.readouterr().out


def test_retry_overhead_first_appearance_tolerant(tmp_path):
    # A baseline predating the retry benchmark: the ceiling applies to
    # the current file only, and absence on both sides never gates.
    old_base = _payload(BASE)
    assert _run(tmp_path, old_base, _with_retry_overhead(_payload(BASE), 3.0)) == 0
    assert _run(tmp_path, old_base, _payload(BASE)) == 0
    # Once the baseline carries the family, dropping it fails...
    new_base = _with_retry_overhead(_payload(BASE), 3.0)
    assert _run(tmp_path, new_base, _payload(BASE)) == 1
    # ...unless the run is an explicit subset.
    assert _run(tmp_path, new_base, _payload(BASE), "--subset") == 0


def test_max_retry_overhead_flag(tmp_path):
    base = _with_retry_overhead(_payload(BASE), 2.0)
    current = _with_retry_overhead(_payload(BASE), 9.0)
    assert _run(tmp_path, base, current) == 1  # default ceiling 8.0
    assert _run(tmp_path, base, current, "--max-retry-overhead", "12") == 0


@pytest.mark.parametrize("slack", ["0.25", "5.0"])
def test_max_regression_flag(tmp_path, slack):
    current = dict(BASE, a=_bench(3.0, "ref"))  # +50% normalized
    expected = 1 if slack == "0.25" else 0
    result = _run(
        tmp_path, _payload(BASE), _payload(current), "--max-regression", slack
    )
    assert result == expected
