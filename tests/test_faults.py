"""repro.faults unit tests: plan grammar, deterministic schedules, retry.

The chaos-level properties (no lost jobs, fault-free vs faulty parity,
crash/resume) live in ``test_fleet_recovery.py``; this file pins the
building blocks — the ``REPRO_FAULTS`` grammar round-trips, schedules
are pure functions of their seeds, and the retry policy's budget,
backoff and classification behave exactly as documented.
"""

import pytest

from repro.faults import (
    DEFAULT_RETRYABLE,
    FAULTS_ENV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    RETRY_BACKOFF_ENV,
    RETRY_MAX_ENV,
    RetryPolicy,
    call_with_retry,
)
from repro.faults.inject import CORRUPT_PREFIX


# -- plan grammar --------------------------------------------------------------


def test_parse_render_round_trip():
    text = (
        "execute.run:fail:rate=0.25:seed=11"
        ";jobstore.mark_done:crash:hits=3"
        ";store.blob.read:corrupt:hits=0,2:max=2"
        ";jobstore.*:latency:latency=0.001:detail=disk stall"
    )
    plan = FaultPlan.parse(text)
    assert len(plan.specs) == 4
    assert plan.specs[0] == FaultSpec(
        site="execute.run", kind="fail", rate=0.25, seed=11
    )
    assert plan.specs[1].hits == (3,)
    assert plan.specs[2].max_triggers == 2
    assert plan.specs[3].detail == "disk stall"
    # render() emits the same schedule; parsing it again is a fixpoint
    assert FaultPlan.parse(plan.render()) == plan


@pytest.mark.parametrize(
    "text",
    [
        "execute.run",  # missing kind
        "execute.run:explode",  # unknown kind
        "execute.run:fail:rate",  # option without =
        "execute.run:fail:bogus=1",  # unknown option
        "execute.run:fail:rate=1.5",  # rate out of range
        "execute.run:fail:hits=-1",  # negative hit index
        "execute.run:fail:max=0",  # max below 1
        ":fail",  # empty site
    ],
)
def test_malformed_plan_text_rejected(text):
    with pytest.raises(ValueError):
        FaultPlan.parse(text)


def test_site_glob_matching():
    spec = FaultSpec(site="jobstore.*", kind="fail")
    assert spec.matches("jobstore.enqueue")
    assert spec.matches("jobstore.mark_done.commit")
    assert not spec.matches("store.blob.read")
    plan = FaultPlan(specs=(spec,))
    assert plan.matching("jobstore.enqueue") == (spec,)
    assert plan.matching("execute.run") == ()


# -- deterministic schedules ---------------------------------------------------


def _drive(injector, sites, runs, invocations=3):
    """Fire every (site, run) pair a few times, collecting outcomes."""
    outcomes = []
    for index in range(invocations):
        for site in sites:
            for run in runs:
                try:
                    injector.fire(site, run_id=run)
                    outcomes.append((site, run, index, "ok"))
                except InjectedFault:
                    outcomes.append((site, run, index, "fail"))
                except InjectedCrash:
                    outcomes.append((site, run, index, "crash"))
    return outcomes


def test_schedule_reproduces_bit_identically_across_three_fault_classes():
    plan = FaultPlan.parse(
        "execute.run:fail:rate=0.5"
        ";jobstore.mark_done:crash:hits=1"
        ";store.blob.write:corrupt:rate=0.5",
        seed=7,
    )
    sites = ("execute.run", "jobstore.mark_done")
    runs = ("run-a", "run-b", "run-c")

    def one_pass():
        injector = FaultInjector()
        injector.install(plan)
        outcomes = _drive(injector, sites, runs)
        for index in range(3):
            for run in runs:
                payload = injector.corrupt(
                    "store.blob.write", f"payload-{run}", run_id=run
                )
                outcomes.append(
                    ("store.blob.write", run, index, payload)
                )
        return outcomes, injector.trace()

    first_outcomes, first_trace = one_pass()
    second_outcomes, second_trace = one_pass()
    assert first_outcomes == second_outcomes
    assert first_trace == second_trace
    kinds = {event["kind"] for event in first_trace}
    assert kinds == {"fail", "crash", "corrupt"}  # all three classes fired


def test_schedule_immune_to_interleaving():
    """Decisions key on the per-(site, run) index, not global call order."""
    plan = FaultPlan.parse("execute.run:fail:hits=1", seed=7)

    forward = FaultInjector()
    forward.install(plan)
    _drive(forward, ("execute.run",), ("run-a", "run-b"))

    reversed_order = FaultInjector()
    reversed_order.install(plan)
    _drive(reversed_order, ("execute.run",), ("run-b", "run-a"))

    assert forward.trace() == reversed_order.trace()


def test_hits_rate_and_max_semantics():
    injector = FaultInjector()
    # hits wins over rate; max caps total triggers across keys
    injector.install(
        FaultPlan.parse("execute.run:fail:hits=0,2:max=2")
    )
    outcomes = _drive(injector, ("execute.run",), ("a", "b"), invocations=4)
    fails = [o for o in outcomes if o[3] == "fail"]
    assert len(fails) == 2  # hits would allow 4 (2 keys x 2 indices); max=2
    assert all(o[2] in (0, 2) for o in fails)

    # rate=0 never fires, rate=1 always fires
    injector.install(FaultPlan.parse("execute.run:fail:rate=0"))
    assert all(
        o[3] == "ok"
        for o in _drive(injector, ("execute.run",), ("a",), invocations=5)
    )
    injector.install(FaultPlan.parse("execute.run:fail"))
    assert all(
        o[3] == "fail"
        for o in _drive(injector, ("execute.run",), ("a",), invocations=5)
    )


def test_corrupt_prefix_breaks_payload():
    injector = FaultInjector()
    injector.install(FaultPlan.parse("store.blob.write:corrupt:hits=0"))
    mangled = injector.corrupt("store.blob.write", '{"x": 1}', run_id="r")
    assert mangled.startswith(CORRUPT_PREFIX)
    clean = injector.corrupt("store.blob.write", '{"x": 1}', run_id="r")
    assert clean == '{"x": 1}'  # invocation 1 is past the scheduled hit


def test_no_plan_is_a_noop():
    injector = FaultInjector()
    injector.install(None)
    injector.fire("execute.run", run_id="r")  # must not raise
    assert injector.corrupt("site", "payload", run_id="r") == "payload"
    assert injector.trace() == []


def test_env_plan_resolved_lazily(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "execute.run:fail:hits=0")
    injector = FaultInjector()  # no install(): resolves from env on fire
    with pytest.raises(InjectedFault):
        injector.fire("execute.run", run_id="r")
    injector.fire("execute.run", run_id="r")  # index 1: clean


# -- retry policy --------------------------------------------------------------


def test_crash_never_retryable():
    policy = RetryPolicy(retryable=(RuntimeError,))
    assert not policy.is_retryable(InjectedCrash("site", 0))
    assert policy.is_retryable(RuntimeError("x"))


def test_default_retryable_excludes_deterministic_failures():
    policy = RetryPolicy()
    assert policy.is_retryable(InjectedFault("site", "fail", 0))
    assert policy.is_retryable(TimeoutError())
    assert not policy.is_retryable(RuntimeError("same inputs, same crash"))
    assert not policy.is_retryable(ValueError("bad spec"))
    assert InjectedCrash not in DEFAULT_RETRYABLE


def test_backoff_ticks_deterministic_and_exponential():
    policy = RetryPolicy(backoff_base=2, backoff_factor=2.0, jitter=3, seed=5)
    schedule = [policy.backoff_ticks("job-1", a) for a in (1, 2, 3)]
    assert schedule == [policy.backoff_ticks("job-1", a) for a in (1, 2, 3)]
    # jitter-free floor grows exponentially; jitter adds at most 3
    for attempt, ticks in enumerate(schedule, start=1):
        floor = 2 * 2 ** (attempt - 1)
        assert floor <= ticks <= floor + 3
    # different labels de-synchronize
    other = [policy.backoff_ticks("job-2", a) for a in (1, 2, 3)]
    assert schedule != other or policy.jitter == 0


def test_backoff_always_at_least_one_tick():
    policy = RetryPolicy(backoff_base=0, jitter=0)
    assert policy.backoff_ticks("job", 1) == 1


def test_from_env(monkeypatch):
    monkeypatch.setenv(RETRY_MAX_ENV, "7")
    monkeypatch.setenv(RETRY_BACKOFF_ENV, "4")
    policy = RetryPolicy.from_env()
    assert policy.max_attempts == 7
    assert policy.backoff_base == 4
    # explicit overrides win; malformed env falls back to defaults
    assert RetryPolicy.from_env(max_attempts=2).max_attempts == 2
    monkeypatch.setenv(RETRY_MAX_ENV, "not-a-number")
    assert RetryPolicy.from_env().max_attempts == RetryPolicy().max_attempts


def test_call_with_retry_succeeds_after_transients():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise InjectedFault("site", "fail", len(calls) - 1)
        return "ok"

    slept = []
    result = call_with_retry(
        flaky,
        policy=RetryPolicy(max_attempts=3, jitter=0),
        label="job",
        sleep=slept.append,
    )
    assert result == "ok"
    assert len(calls) == 3
    assert slept == [1, 2]  # base 1, factor 2, no jitter


def test_call_with_retry_gives_up_after_budget():
    calls = []

    def always_failing():
        calls.append(1)
        raise InjectedFault("site", "fail", len(calls) - 1)

    with pytest.raises(InjectedFault):
        call_with_retry(
            always_failing, policy=RetryPolicy(max_attempts=2), label="job"
        )
    assert len(calls) == 2


def test_call_with_retry_does_not_retry_crashes_or_deterministic_errors():
    crash_calls = []

    def crashing():
        crash_calls.append(1)
        raise InjectedCrash("site", 0)

    with pytest.raises(InjectedCrash):
        call_with_retry(crashing, policy=RetryPolicy(max_attempts=5))
    assert len(crash_calls) == 1

    value_calls = []

    def deterministic():
        value_calls.append(1)
        raise ValueError("same inputs, same failure")

    with pytest.raises(ValueError):
        call_with_retry(deterministic, policy=RetryPolicy(max_attempts=5))
    assert len(value_calls) == 1
