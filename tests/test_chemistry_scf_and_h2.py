import numpy as np
import pytest

from repro.chemistry.basis import hydrogen_sto3g
from repro.chemistry.h2 import dissociation_bond_lengths, h2_problem
from repro.chemistry.hartree_fock import restricted_hartree_fock
from repro.chemistry.jordan_wigner import (
    annihilation_operator,
    creation_operator,
    molecular_hamiltonian_matrix,
    number_operator,
)


def test_rhf_h2_equilibrium_energy():
    nuclei = [(1.0, (0.0, 0.0, 0.0)), (1.0, (0.0, 0.0, 1.4))]
    basis = [hydrogen_sto3g(pos) for _, pos in nuclei]
    scf = restricted_hartree_fock(basis, nuclei, num_electrons=2)
    # Szabo & Ostlund: E(RHF/STO-3G, R=1.4) = -1.1167 Ha
    assert scf.energy == pytest.approx(-1.1167, abs=2e-3)
    assert scf.nuclear_repulsion == pytest.approx(1.0 / 1.4)
    assert scf.iterations >= 1


def test_rhf_rejects_odd_electrons():
    nuclei = [(1.0, (0.0, 0.0, 0.0))]
    basis = [hydrogen_sto3g((0.0, 0.0, 0.0))]
    with pytest.raises(ValueError):
        restricted_hartree_fock(basis, nuclei, num_electrons=1)


def test_jw_anticommutation():
    n = 4
    for i in range(n):
        for j in range(n):
            a_i = annihilation_operator(i, n)
            a_j = annihilation_operator(j, n)
            adag_j = creation_operator(j, n)
            anti = a_i @ adag_j + adag_j @ a_i
            expected = np.eye(2**n) if i == j else np.zeros((2**n, 2**n))
            assert np.allclose(anti, expected, atol=1e-12)
            assert np.allclose(a_i @ a_j + a_j @ a_i, 0.0, atol=1e-12)


def test_number_operator_spectrum():
    n = 3
    eigs = np.linalg.eigvalsh(number_operator(n))
    assert set(np.round(eigs).astype(int)) == {0, 1, 2, 3}


def test_hamiltonian_conserves_particle_number():
    h2_problem(0.9)
    # Build the matrix again and check commutation with N.
    from repro.chemistry.basis import angstrom_to_bohr

    sep = angstrom_to_bohr(0.9)
    nuclei = [(1.0, (0, 0, 0)), (1.0, (0, 0, sep))]
    basis = [hydrogen_sto3g(pos) for _, pos in nuclei]
    scf = restricted_hartree_fock(basis, nuclei, 2)
    h = molecular_hamiltonian_matrix(scf.hcore_mo, scf.eri_mo, scf.nuclear_repulsion)
    n_op = number_operator(4)
    assert np.allclose(h @ n_op - n_op @ h, 0.0, atol=1e-9)


def test_h2_problem_equilibrium_fci():
    problem = h2_problem(0.735)
    # Textbook STO-3G values near equilibrium.
    assert problem.hf_energy == pytest.approx(-1.117, abs=2e-3)
    assert problem.fci_energy == pytest.approx(-1.1373, abs=2e-3)
    assert problem.correlation_energy < 0
    assert problem.num_qubits == 4
    # qubit Hamiltonian ground state matches the 2-electron FCI energy
    assert problem.hamiltonian.ground_state_energy() == pytest.approx(
        problem.fci_energy, abs=1e-8
    )


def test_h2_dissociation_shape():
    energies = [h2_problem(r).fci_energy for r in (0.4, 0.735, 2.0)]
    # bell shape: minimum near equilibrium, repulsive wall at short r
    assert energies[1] < energies[0]
    assert energies[1] < energies[2]
    # dissociation limit approaches two H atoms (~ -0.93 Ha in STO-3G)
    assert energies[2] == pytest.approx(-0.94, abs=0.04)


def test_h2_correlation_grows_with_bond_length():
    short = h2_problem(0.5)
    long = h2_problem(1.8)
    assert abs(long.correlation_energy) > abs(short.correlation_energy)


def test_sector_energy_consistency():
    problem = h2_problem(1.0)
    full_min = problem.hamiltonian.ground_state_energy()
    assert problem.fci_energy == pytest.approx(full_min, abs=1e-8)


def test_bond_length_grid():
    grid = dissociation_bond_lengths(0.4, 2.0, 10)
    assert len(grid) == 10
    assert grid[0] == pytest.approx(0.4)
    assert grid[-1] == pytest.approx(2.0)
    with pytest.raises(ValueError):
        dissociation_bond_lengths(count=1)


def test_invalid_bond_length():
    with pytest.raises(ValueError):
        h2_problem(-0.1)
