"""repro.obs core: span trees, sampling, cross-thread attach, metrics."""

import threading

import pytest

from repro.obs import METRICS, NOOP_SPAN, Stopwatch
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture
def tracer(monkeypatch):
    """A fresh enabled tracer, isolated from the process-wide singleton."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_EXPORT", raising=False)
    tracer = Tracer()
    tracer.configure(enabled=True, kernel_stride=1)
    return tracer


# -- enable/disable and environment -------------------------------------------


def test_disabled_tracer_returns_shared_noop(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    tracer = Tracer()
    assert not tracer.enabled
    span = tracer.span("anything", category="compile")
    assert span is NOOP_SPAN
    with span as inner:
        inner.set(ignored=True)
    assert tracer.roots == []


def test_trace_env_enables(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert Tracer().enabled
    monkeypatch.setenv("REPRO_TRACE", "0")
    assert not Tracer().enabled


@pytest.mark.parametrize(
    "raw, stride",
    [
        ("8", 8),
        ("1", 1),
        ("0.25", 4),  # a rate: keep ~a quarter of sites
        ("0", 0),  # drop all kernel-site spans
        ("-3", 0),
        ("garbage", 64),  # unparsable -> default stride
    ],
)
def test_sample_env_parsing(monkeypatch, raw, stride):
    monkeypatch.setenv("REPRO_TRACE_SAMPLE", raw)
    assert Tracer().kernel_stride == stride


# -- span trees ---------------------------------------------------------------


def test_nested_spans_build_a_tree(tracer):
    with tracer.span("job", category="execute", app="App1") as job:
        with tracer.span("compile", category="compile") as compile_span:
            compile_span.set(gates_after=12)
        with tracer.span("sim", category="kernel"):
            pass
    assert [root.name for root in tracer.roots] == ["job"]
    assert [child.name for child in job.children] == ["compile", "sim"]
    assert job.attrs == {"app": "App1"}
    assert job.children[0].attrs == {"gates_after": 12}
    assert job.duration >= sum(child.duration for child in job.children) >= 0
    assert [span.name for span in job.walk()] == ["job", "compile", "sim"]


def test_sequential_roots_stay_separate(tracer):
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    assert [root.name for root in tracer.roots] == ["first", "second"]
    assert len(tracer.all_spans()) == 2


def test_reset_drops_spans_and_rereads_env(tracer, monkeypatch):
    with tracer.span("old"):
        pass
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_TRACE_SAMPLE", "7")
    tracer.reset()
    assert tracer.roots == [] and tracer.enabled
    assert tracer.kernel_stride == 7


def test_current_tracks_innermost_open_span(tracer):
    assert tracer.current() is None
    with tracer.span("outer") as outer:
        assert tracer.current() is outer
        with tracer.span("inner") as inner:
            assert tracer.current() is inner
        assert tracer.current() is outer
    assert tracer.current() is None


# -- kernel-site sampling -----------------------------------------------------


def test_kernel_span_stride_keeps_every_nth(tracer):
    tracer.configure(kernel_stride=4)
    with tracer.span("run", category="kernel"):
        kept = sum(
            1
            for _ in range(16)
            if tracer.kernel_span("kernel.gate") is not NOOP_SPAN
        )
    assert kept == 4


def test_kernel_span_stride_zero_drops_all(tracer):
    tracer.configure(kernel_stride=0)
    assert tracer.kernel_span("kernel.gate") is NOOP_SPAN


def test_kernel_sampling_uses_counter_not_rng(tracer):
    """Sampling is a per-thread counter: same call pattern, same picks."""
    tracer.configure(kernel_stride=3)
    picks = [
        tracer.kernel_span("k") is not NOOP_SPAN for _ in range(9)
    ]
    tracer2 = Tracer()
    tracer2.configure(enabled=True, kernel_stride=3)
    picks2 = [
        tracer2.kernel_span("k") is not NOOP_SPAN for _ in range(9)
    ]
    assert picks == picks2 == [True, False, False] * 3


# -- cross-thread reassembly --------------------------------------------------


def test_attach_adopts_parent_across_threads(tracer):
    barrier = threading.Barrier(4)  # distinct, concurrently-live threads

    def worker(parent, name):
        with tracer.attach(parent):
            with tracer.span(name, category="fleet"):
                barrier.wait(timeout=5)

    with tracer.span("job", category="execute") as job:
        threads = [
            threading.Thread(target=worker, args=(job, f"w{i}"))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert [root.name for root in tracer.roots] == ["job"]
    assert sorted(child.name for child in job.children) == [
        "w0", "w1", "w2", "w3"
    ]
    # Each child carries its own thread identity for the Chrome export.
    assert len({child.thread_id for child in job.children}) == 4


def test_attach_with_none_or_noop_is_a_noop(tracer):
    with tracer.attach(None):
        with tracer.span("root"):
            pass
    with tracer.attach(NOOP_SPAN):
        pass
    assert [root.name for root in tracer.roots] == ["root"]


def test_unattached_thread_spans_become_roots(tracer):
    def worker():
        with tracer.span("orphan", category="fleet"):
            pass

    with tracer.span("job"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert sorted(root.name for root in tracer.roots) == ["job", "orphan"]


# -- metrics ------------------------------------------------------------------


def test_counter_gauge_histogram_roundtrip():
    registry = MetricsRegistry()
    registry.counter("cache.plan.hits").inc()
    registry.counter("cache.plan.hits").inc(2)
    registry.gauge("fleet.queue_depth").set(5)
    registry.histogram("store.append_s").observe(0.25)
    registry.histogram("store.append_s").observe(0.75)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"cache.plan.hits": 3}
    assert snapshot["gauges"] == {"fleet.queue_depth": 5}
    histogram = snapshot["histograms"]["store.append_s"]
    assert histogram["count"] == 2
    assert histogram["mean"] == pytest.approx(0.5)
    assert histogram["min"] == 0.25 and histogram["max"] == 0.75


def test_counters_prefix_filter_and_counter_value():
    registry = MetricsRegistry()
    registry.counter("cache.plan.hits").inc(4)
    registry.counter("store.appends").inc()
    assert registry.counters("cache.") == {"cache.plan.hits": 4}
    assert registry.counter_value("cache.plan.hits") == 4
    assert registry.counter_value("never.created") == 0
    assert registry.names() == ["cache.plan.hits", "store.appends"]


def test_registry_reset_drops_everything():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.reset()
    assert registry.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}
    }


def test_concurrent_counter_bumps_all_land():
    registry = MetricsRegistry()

    def bump():
        for _ in range(1000):
            registry.counter("hot").inc()

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter_value("hot") == 8000


def test_global_registry_is_a_metrics_registry():
    assert isinstance(METRICS, MetricsRegistry)


def test_stopwatch_measures_elapsed():
    with Stopwatch() as clock:
        sum(range(1000))
    assert clock.elapsed > 0
