import pytest

from repro.circuits.library import random_circuit
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.operators.pauli import PauliString
from repro.operators.pauli_sum import PauliSum, PauliTerm
from repro.simulator.expectation import (
    expectation_from_counts,
    expectation_of_matrix,
    expectation_of_pauli_sum,
    shot_noise_sigma,
)
from repro.simulator.statevector import simulate_statevector


def test_matrix_and_pauli_sum_agree():
    ham = tfim_hamiltonian(3)
    sv = simulate_statevector(random_circuit(3, 20, seed=3))
    via_matrix = expectation_of_matrix(sv, ham.to_matrix())
    via_terms = expectation_of_pauli_sum(sv, ham)
    assert via_matrix == pytest.approx(via_terms, abs=1e-10)


def test_expectation_from_counts_identity_and_z():
    terms = [PauliTerm(0.5, PauliString("II")), PauliTerm(1.0, PauliString("ZI"))]
    counts = {"00": 75, "10": 25}
    # <ZI> = (75 - 25)/100 = 0.5; plus identity 0.5 -> 1.0
    assert expectation_from_counts(counts, terms) == pytest.approx(1.0)


def test_expectation_from_counts_empty_rejected():
    with pytest.raises(ValueError):
        expectation_from_counts({}, [PauliTerm(1.0, PauliString("Z"))])


def test_shot_noise_sigma_scaling():
    ham = tfim_hamiltonian(4)
    sigma_small = shot_noise_sigma(ham, 1024)
    sigma_large = shot_noise_sigma(ham, 4096)
    assert sigma_small == pytest.approx(2.0 * sigma_large)
    with pytest.raises(ValueError):
        shot_noise_sigma(ham, 0)


def test_shot_noise_sigma_identity_free():
    identity_only = PauliSum([(3.0, "II")])
    assert shot_noise_sigma(identity_only, 100) == 0.0
