import numpy as np
import pytest

from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.backends.counts import CountsBackend
from repro.backends.ideal import IdealBackend
from repro.backends.transient import StaticNoiseBackend, TransientBackend
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.noise.noise_model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.noise.transient.trace import TransientTrace
from repro.vqa.objective import EnergyObjective


@pytest.fixture
def objective():
    return EnergyObjective(RealAmplitudes(3, reps=1), tfim_hamiltonian(3))


def test_ideal_backend_matches_objective(objective):
    backend = IdealBackend(objective)
    theta = objective.initial_point(seed=1)
    job = backend.new_job()
    assert job.energy(theta) == pytest.approx(objective.ideal_energy(theta))
    assert backend.job_counter == 1
    assert backend.total_circuits == 1


def test_static_backend_biases_toward_mixed(objective):
    theta = objective.initial_point(seed=2)
    ideal = objective.ideal_energy(theta)
    backend = StaticNoiseBackend(
        objective, noise_model=NoiseModel(0.01, 0.05), shots=10**9, seed=3
    )
    value = backend.new_job().energy(theta)
    assert abs(value) < abs(ideal)  # shrunk toward E_mixed = 0
    assert value == pytest.approx(backend.survival * ideal, abs=1e-3)


def test_static_backend_shot_noise_scale(objective):
    backend = StaticNoiseBackend(objective, shots=1024, seed=4)
    theta = objective.initial_point(seed=2)
    values = [backend.new_job().energy(theta) for _ in range(400)]
    assert np.std(values) == pytest.approx(backend.shot_sigma, rel=0.25)


def test_transient_backend_same_job_shares_transient(objective):
    trace = TransientTrace(np.array([0.0, 0.8, 0.0]), metadata={"seed": 1.0})
    backend = TransientBackend(
        objective, trace, noise_model=NoiseModel.ideal(), shots=10**9,
        seed=5, state_sensitivity=0.0, exposure_jitter=0.0,
    )
    theta = objective.initial_point(seed=6)
    quiet = backend.new_job().energy(theta)       # trace[0] = 0
    spiked_job = backend.new_job()                # trace[1] = 0.8
    spiked_a = spiked_job.energy(theta)
    spiked_b = spiked_job.energy(theta)
    assert spiked_a == pytest.approx(spiked_b, abs=1e-3)
    ideal = objective.ideal_energy(theta)
    assert spiked_a - quiet == pytest.approx(0.8 * abs(ideal), rel=1e-2)


def test_transient_backend_clips_extreme_fractions(objective):
    trace = TransientTrace(np.array([10.0]), metadata={"seed": 1.0})
    backend = TransientBackend(
        objective, trace, noise_model=NoiseModel.ideal(), shots=10**9,
        seed=5, state_sensitivity=0.0, exposure_jitter=0.0,
    )
    theta = objective.initial_point(seed=6)
    value = backend.new_job().energy(theta)
    ideal = objective.ideal_energy(theta)
    assert value - ideal <= backend._MAX_FRACTION * abs(ideal) + 1e-6


def test_transient_exposure_field_is_trace_derived(objective):
    trace = TransientTrace(np.array([0.5]), metadata={"seed": 42.0})
    kwargs = dict(
        noise_model=NoiseModel.ideal(), shots=4096, exposure_jitter=0.0
    )
    a = TransientBackend(objective, trace, seed=1, **kwargs)
    b = TransientBackend(objective, trace, seed=2, **kwargs)
    theta = objective.initial_point(seed=3)
    # different backend seeds, same trace -> same exposure field
    assert a.exposure(theta) == pytest.approx(b.exposure(theta))


def test_transient_exposure_smoothness(objective):
    trace = TransientTrace(np.array([0.5]), metadata={"seed": 7.0})
    backend = TransientBackend(
        objective, trace, seed=1, noise_model=NoiseModel.ideal(),
        exposure_jitter=0.0,
    )
    theta = objective.initial_point(seed=4)
    near = theta + 0.01
    far = theta + 1.5
    base = backend.exposure(theta)
    assert abs(backend.exposure(near) - base) < abs(
        backend.exposure(far) - base
    ) + 0.2


def test_backend_reset(objective):
    backend = IdealBackend(objective)
    backend.new_job().energy(objective.initial_point(seed=1))
    backend.reset()
    assert backend.job_counter == 0
    assert backend.total_circuits == 0


def test_transient_validation(objective):
    trace = TransientTrace(np.array([0.1]))
    with pytest.raises(ValueError):
        TransientBackend(objective, trace, state_sensitivity=-1.0)
    with pytest.raises(ValueError):
        TransientBackend(objective, trace, field_frequency=0.0)


def test_counts_backend_energy_estimate():
    ham = tfim_hamiltonian(2)
    ansatz = RealAmplitudes(2, reps=1)
    theta = np.array([0.4, -0.2, 0.1, 0.3])
    circuit = ansatz.bind(theta)
    exact = EnergyObjective(ansatz, ham).ideal_energy(theta)
    backend = CountsBackend(seed=8)
    estimate = backend.estimate_energy(circuit, ham, shots_per_group=200_000)
    assert estimate == pytest.approx(exact, abs=0.02)


def test_counts_backend_noise_model_swap_not_served_stale():
    """Reassigning noise_model must not serve the old model's plan."""
    ansatz = RealAmplitudes(2, reps=1)
    circuit = ansatz.bind(np.array([0.4, -0.2, 0.1, 0.3]))
    backend = CountsBackend(noise_model=NoiseModel(0.2, 0.2))
    noisy = backend.probabilities(circuit)
    backend.noise_model = NoiseModel.ideal()
    clean = backend.probabilities(circuit)
    reference = CountsBackend(noise_model=NoiseModel.ideal()).probabilities(
        circuit
    )
    assert not np.allclose(noisy, clean)
    np.testing.assert_allclose(clean, reference, atol=1e-12)


def test_counts_backend_with_mitigated_readout():
    ham = tfim_hamiltonian(2)
    ansatz = RealAmplitudes(2, reps=1)
    theta = np.array([0.7, 0.2, -0.4, 0.5])
    circuit = ansatz.bind(theta)
    exact = EnergyObjective(ansatz, ham).ideal_energy(theta)
    readout = ReadoutError.uniform(2, 0.06)

    raw = CountsBackend(readout_error=readout, seed=9)
    mitigated = CountsBackend(
        readout_error=readout, mitigate_readout=True, seed=9
    )
    err_raw = abs(raw.estimate_energy(circuit, ham, 100_000) - exact)
    err_mit = abs(mitigated.estimate_energy(circuit, ham, 100_000) - exact)
    assert err_mit < err_raw
