"""Experiment store: content addressing, queries, aggregates, maintenance."""

import json

import pytest

from repro.runtime import ExperimentPlan, RunSpec, SerialExecutor
from repro.store import (
    DEFAULT_VIEW,
    ExperimentStore,
    RunQuery,
    export_plan_result,
    export_runs,
    open_store,
    payload_hash,
    resolve_store_path,
)

PLAN = ExperimentPlan(
    apps=("App1", "App2"),
    schemes=("baseline", "qismet", "noise-free"),
    iterations=6,
    seeds=(5, 7),
)


@pytest.fixture(scope="module")
def outcome():
    return SerialExecutor().run_plan(PLAN)


@pytest.fixture
def store(outcome):
    with ExperimentStore() as store:
        for run in outcome:
            store.append(run)
        yield store


# -- path resolution -----------------------------------------------------------


def test_resolve_store_path():
    assert resolve_store_path(":memory:") == ":memory:"
    assert resolve_store_path("runs/store.sqlite") == "runs/store.sqlite"
    assert resolve_store_path("runs/fleet.db") == "runs/fleet.db"
    assert resolve_store_path("runs") == "runs/store.sqlite"


def test_open_store_honors_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    scratch = open_store()
    assert scratch.path == ":memory:"
    scratch.close()

    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "results"))
    store = open_store()
    assert store.path == str(tmp_path / "results" / "store.sqlite")
    store.close()


# -- append / dedupe / content addressing --------------------------------------


def test_append_dedupes_on_run_id(outcome):
    with ExperimentStore() as store:
        run = outcome.runs[0]
        assert store.append(run) is True
        assert store.append(run) is False
        assert len(store) == 1
        assert run.run_id in store


def test_payload_is_content_addressed(store, outcome):
    run = outcome.runs[0]
    stored = store.get_stored(run.run_id)
    digest = store._conn.execute(
        "SELECT payload_hash FROM runs WHERE run_id = ?", (run.run_id,)
    ).fetchone()[0]
    assert payload_hash(stored.payload) == digest
    assert json.loads(stored.payload) == run.result.to_dict()


def test_roundtrip_is_bit_identical(store, outcome):
    for run in outcome:
        back = store.get(run.run_id)
        assert back.to_dict()["result"] == run.to_dict()["result"]
        assert back.spec == run.spec
        assert back.from_cache is True


def test_corrupt_payload_reads_as_miss_and_heals(outcome):
    with ExperimentStore() as store:
        run = outcome.runs[0]
        store.append(run)
        store._conn.execute("UPDATE blobs SET data = '{broken'")
        store._conn.commit()
        assert store.get(run.run_id) is None
        assert store.query_runs() == []
        # re-appending the same run heals the entry in place
        assert store.append(run) is True
        assert store.get(run.run_id) is not None


def test_identical_payloads_share_one_blob():
    # Same app/scheme/seed at different shots produces different run_ids
    # but (shots only affects sampling metadata here) the store still
    # dedupes at the blob level whenever payload bytes coincide.
    spec = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=3)
    run = SerialExecutor().run([spec])[0]
    with ExperimentStore() as store:
        store.append(run)
        blobs = store._conn.execute("SELECT COUNT(*) FROM blobs").fetchone()[0]
        assert blobs == 1
        info = store.info()
        assert info["runs"] == 1 and info["blobs"] == 1


# -- typed queries -------------------------------------------------------------


def test_query_filters(store):
    assert len(store.query_runs()) == 12
    assert len(store.query_runs(RunQuery(apps="App1"))) == 6
    assert len(store.query_runs(RunQuery(schemes=("qismet",)))) == 4
    assert len(store.query_runs(RunQuery(apps="App1", seeds=5))) == 3
    assert len(store.query_runs(RunQuery(limit=2))) == 2
    rows = store.query_runs(RunQuery(apps="App2", schemes="baseline", seeds=7))
    assert len(rows) == 1 and rows[0].app == "App2"


def test_query_preserves_append_order(store, outcome):
    assert [s.run_id for s in store.query_runs()] == [
        run.run_id for run in outcome
    ]
    assert store.run_ids() == [run.run_id for run in outcome]


def test_query_min_seq_watermarking(store):
    rows = store.query_runs()
    newer = store.query_runs(RunQuery(min_seq=rows[5].seq))
    assert [s.seq for s in newer] == [s.seq for s in rows[6:]]


# -- aggregation parity --------------------------------------------------------


def test_comparisons_match_plan_result(store, outcome):
    query = RunQuery(run_ids=[run.run_id for run in outcome])
    comps = store.comparisons(query)
    direct = outcome.comparisons()
    assert set(comps) == set(direct)
    for key, comp in comps.items():
        assert comp.improvements() == direct[key].improvements()


def test_aggregate_bitwise_matches_geomean(store, outcome):
    query = RunQuery(run_ids=[run.run_id for run in outcome])
    assert store.aggregate(query) == outcome.geomean_improvements()


def test_comparisons_refuse_scheme_collisions():
    specs = [
        RunSpec(
            app="App1", scheme="baseline", iterations=4, seed=3,
            overrides={"retry_budget": budget},
        )
        for budget in (1, 5)
    ]
    runs = SerialExecutor().run(specs)
    with ExperimentStore() as store:
        for run in runs:
            store.append(run)
        # overrides land in different materialization cells, so the
        # typed query API refuses only when the *query* mixes them ...
        with pytest.raises(ValueError, match="multiple 'baseline' runs"):
            store.comparisons()
        # ... while materialize keys cells on the full spec and copes.
        store.materialize()


# -- materialized aggregates ---------------------------------------------------


def test_materialize_then_aggregate_matches_direct(store, outcome):
    report = store.materialize()
    assert report["view"] == DEFAULT_VIEW
    assert report["updated_cells"] == report["total_cells"] == 4
    assert store.aggregate_materialized() == outcome.geomean_improvements()


def test_incremental_materialize_only_touches_new_cells(store):
    store.materialize()
    again = store.materialize()
    assert again["updated_cells"] == 0  # nothing newer than the watermark

    spec = RunSpec(app="App1", scheme="baseline", iterations=6, seed=11)
    run = SerialExecutor().run([spec])[0]
    store.append(run)
    incr = store.materialize()
    assert incr["updated_cells"] == 1
    assert incr["total_cells"] == 5


def test_incremental_equals_full_rebuild(store, outcome):
    store.materialize()
    extra_specs = ExperimentPlan(
        apps=("App1",),
        schemes=("baseline", "qismet", "noise-free"),
        iterations=6,
        seeds=(11,),
    ).expand()
    extra = SerialExecutor().run(extra_specs)
    for run in extra:
        store.append(run)
    store.materialize()  # incremental: only the new cell
    incremental = store.aggregate_materialized()

    with ExperimentStore() as fresh:
        for run in [*outcome, *extra]:
            fresh.append(run)
        fresh.materialize(full=True)
        assert fresh.aggregate_materialized() == incremental


def test_materialize_baseline_change_forces_rebuild(store):
    store.materialize()
    swapped = store.materialize(baseline="noise-free")
    assert swapped["updated_cells"] == 4
    agg = store.aggregate_materialized()
    assert agg["noise-free"] == pytest.approx(1.0)


def test_materialize_skips_cells_missing_baseline(outcome):
    with ExperimentStore() as store:
        for run in outcome:
            if run.spec.scheme != "baseline":
                store.append(run)
        report = store.materialize()
        assert report["updated_cells"] == 0
        with pytest.raises(ValueError, match="no materialized cells"):
            store.aggregate_materialized()


def test_aggregate_materialized_requires_materialize(store):
    with pytest.raises(ValueError, match="no materialized cells"):
        store.aggregate_materialized()


# -- maintenance ---------------------------------------------------------------


def test_prune_removes_runs_and_invalidates_views(store):
    store.materialize()
    removed = store.prune(RunQuery(apps="App2"))
    assert removed == 6
    assert len(store) == 6
    with pytest.raises(ValueError, match="no materialized cells"):
        store.aggregate_materialized()
    rebuilt = store.materialize()
    assert rebuilt["total_cells"] == 2


def test_compact_reclaims_orphaned_blobs(store):
    store.prune(RunQuery(apps="App1"))
    report = store.compact()
    assert report["blobs_removed"] == 6
    assert report["bytes_reclaimed"] > 0
    # surviving runs still resolve
    assert len(store.query_runs()) == 6


# -- legacy ingestion ----------------------------------------------------------


def test_import_legacy_plan_result_file(tmp_path, outcome):
    plan_file = tmp_path / "plan-result.json"
    with pytest.warns(DeprecationWarning):
        outcome.save(plan_file)
    with ExperimentStore() as store:
        report = store.import_legacy(plan_file)
        assert report == {"ingested": 12, "skipped": 0, "errors": 0}
        again = store.import_legacy(plan_file)
        assert again == {"ingested": 0, "skipped": 12, "errors": 0}
        assert store.aggregate(
            RunQuery(run_ids=[r.run_id for r in outcome])
        ) == outcome.geomean_improvements()


def test_import_legacy_fleet_db(tmp_path, outcome):
    import sqlite3

    db = tmp_path / "legacy-fleet.db"
    conn = sqlite3.connect(str(db))
    conn.execute(
        "CREATE TABLE jobs (run_id TEXT PRIMARY KEY, status TEXT,"
        " device TEXT, result TEXT)"
    )
    run = outcome.runs[0]
    conn.execute(
        "INSERT INTO jobs VALUES (?, 'done', 'toronto', ?)",
        (run.run_id, json.dumps(run.to_dict())),
    )
    conn.commit()
    conn.close()
    with ExperimentStore() as store:
        report = store.import_legacy(db)
        assert report["ingested"] == 1
        stored = store.get_stored(run.run_id)
        assert stored.device == "toronto" and stored.source == "import"


# -- export facade -------------------------------------------------------------


def test_export_plan_result_roundtrip(tmp_path, store, outcome):
    out = tmp_path / "export.json"
    run_ids = [run.run_id for run in outcome]
    export_plan_result(store, run_ids, out, plan=PLAN.to_dict())
    data = json.loads(out.read_text())
    assert [entry["spec"] for entry in data["runs"]] == [
        run.to_dict()["spec"] for run in outcome
    ]
    assert [entry["result"] for entry in data["runs"]] == [
        run.to_dict()["result"] for run in outcome
    ]
    assert data["plan"] == json.loads(json.dumps(PLAN.to_dict()))

    with pytest.raises(KeyError):
        export_plan_result(store, ["missing-run"], tmp_path / "nope.json")


def test_export_runs_writes_per_run_files(tmp_path, store, outcome):
    written = export_runs(store, RunQuery(apps="App1"), tmp_path / "dump")
    assert written == 6
    files = sorted((tmp_path / "dump").glob("*.json"))
    assert len(files) == 6
    # an exported directory is itself a valid legacy import source
    with ExperimentStore() as fresh:
        report = fresh.import_legacy(tmp_path / "dump")
        assert report["ingested"] == 6


# -- introspection -------------------------------------------------------------


def test_info_summarizes_contents(store):
    store.materialize()
    info = store.info()
    assert info["runs"] == 12
    assert info["apps"] == ["App1", "App2"]
    assert set(info["schemes"]) == set(PLAN.schemes)
    assert info["views"][0]["view"] == DEFAULT_VIEW
    assert info["views"][0]["cells"] == 4
