import numpy as np
import pytest

from repro.experiments.config import default_iterations, is_full_scale
from repro.experiments.metrics import (
    expectation_ratio,
    improvement_rel_baseline,
    progress_fraction,
    tail_energy,
)
from repro.experiments.registry import app_names, get_app
from repro.experiments.runner import geomean_improvements, run_comparison
from repro.experiments.schemes import SCHEME_NAMES, build_vqe
from repro.noise.noise_model import NoiseModel
from repro.vqa.objective import EnergyObjective
from repro.vqa.result import IterationRecord, VQEResult


def _fake_result(energies):
    result = VQEResult()
    for i, e in enumerate(energies):
        result.records.append(
            IterationRecord(i, e, e, e, None, None, None, 0, True, True)
        )
    return result


def test_registry_matches_table1():
    assert app_names() == [f"App{i}" for i in range(1, 7)]
    app2 = get_app("App2")
    assert (app2.ansatz_kind, app2.reps, app2.machine) == ("RA", 4, "guadalupe")
    app1 = get_app("App1")
    assert (app1.ansatz_kind, app1.reps, app1.machine) == ("SU2", 2, "toronto")
    app5 = get_app("App5")
    assert (app5.reps, app5.machine) == (8, "cairo")
    # v1 vs v2 trials of the same machine give different traces
    app3 = get_app("App3")
    t2 = app2.build_trace(100)
    t3 = app3.build_trace(100)
    assert not np.allclose(t2.values, t3.values)


def test_registry_builders():
    app = get_app("App4")
    ansatz = app.build_ansatz()
    assert ansatz.num_qubits == 6
    ham = app.build_hamiltonian()
    assert ham.num_qubits == 6
    assert app.ground_truth_energy() == pytest.approx(-7.2962, abs=1e-3)
    with pytest.raises(KeyError):
        get_app("App9")


def test_progress_fraction():
    assert progress_fraction(0.0, -5.0, -10.0) == pytest.approx(0.5)
    assert progress_fraction(0.0, 5.0, -10.0) == pytest.approx(0.02)  # floored
    with pytest.raises(ValueError):
        progress_fraction(-11.0, -5.0, -10.0)


def test_tail_energy():
    result = _fake_result([0.0, -1.0, -2.0, -3.0, -4.0])
    assert tail_energy(result, tail_fraction=0.4) == pytest.approx(-3.5)


def test_expectation_ratio():
    results = {
        "baseline": _fake_result([-1.0] * 10),
        "better": _fake_result([-2.0] * 10),
        "worse": _fake_result([-0.5] * 10),
    }
    ratios = expectation_ratio(results)
    assert ratios["baseline"] == pytest.approx(1.0)
    assert ratios["better"] == pytest.approx(2.0)
    assert ratios["worse"] == pytest.approx(0.5)
    with pytest.raises(KeyError):
        expectation_ratio(results, baseline="missing")


def test_expectation_ratio_floors_positive_tails():
    results = {
        "baseline": _fake_result([1.0] * 10),  # never descended
        "good": _fake_result([-1.0] * 10),
    }
    ratios = expectation_ratio(results, floor=1e-3)
    assert ratios["good"] == pytest.approx(1000.0)


def test_improvement_rel_baseline():
    results = {
        "baseline": _fake_result([0.0, -5.0, -5.0, -5.0, -5.0, -5.0, -5.0, -5.0, -5.0, -5.0]),
        "double": _fake_result([0.0, -10.0] + [-10.0] * 8),
    }
    ratios = improvement_rel_baseline(results, ground_truth=-10.0)
    assert ratios["double"] == pytest.approx(2.0)


def test_scheme_names_cover_paper_section_6_3():
    for name in (
        "baseline", "qismet", "qismet-conservative", "qismet-aggressive",
        "blocking", "resampling", "2nd-order", "kalman", "only-transients",
        "noise-free",
    ):
        assert name in SCHEME_NAMES


def test_build_vqe_unknown_scheme():
    app = get_app("App1")
    objective = EnergyObjective(app.build_ansatz(), app.build_hamiltonian())
    with pytest.raises(KeyError):
        build_vqe("magic", objective, None)


def test_build_vqe_requires_trace_for_noisy_schemes():
    app = get_app("App1")
    objective = EnergyObjective(app.build_ansatz(), app.build_hamiltonian())
    with pytest.raises(ValueError):
        build_vqe("baseline", objective, None)
    # noise-free works without a trace
    vqe = build_vqe("noise-free", objective, None)
    assert vqe.controller is None


def test_default_iterations_scaling(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert not is_full_scale()
    assert default_iterations(2000) == 400
    assert default_iterations(2000, 123) == 123
    monkeypatch.setenv("REPRO_FULL", "1")
    assert is_full_scale()
    assert default_iterations(2000) == 2000


def test_run_comparison_smoke():
    app = get_app("App1")
    comp = run_comparison(app, ["baseline", "qismet"], iterations=40, seed=5)
    assert set(comp.results) == {"baseline", "qismet"}
    ratios = comp.improvements()
    assert ratios["baseline"] == pytest.approx(1.0)
    assert "qismet" in ratios
    finals = comp.final_energies()
    assert finals["baseline"] < 0
    geo = geomean_improvements([comp])
    assert geo["baseline"] == pytest.approx(1.0)


def test_run_comparison_schemes_share_start():
    app = get_app("App1")
    comp = run_comparison(app, ["baseline", "qismet"], iterations=10, seed=6)
    base = comp.results["baseline"].machine_energies[0]
    qismet = comp.results["qismet"].machine_energies[0]
    # same theta0 and same first-job transient, but independent backend
    # shot-noise streams: first energies agree loosely
    assert base == pytest.approx(qismet, abs=0.5)


def test_seeds_derived_per_scheme_with_shared_spsa_pairing():
    """Regression for the schemes-module contract: backend seeds are
    derived per scheme (independent shot-noise streams) while the SPSA
    perturbation sequence stays shared (paired comparisons)."""
    from repro.noise.noise_model import NoiseModel
    from repro.runtime import RunSpec
    from repro.runtime.execute import run_seed, spsa_seed

    spec_base = RunSpec(app="App1", scheme="baseline", iterations=10, seed=9)
    spec_blocking = RunSpec(app="App1", scheme="blocking", iterations=10, seed=9)
    # per-scheme run seeds differ; the SPSA base seed is scheme-independent
    assert run_seed(spec_base) != run_seed(spec_blocking)
    assert spsa_seed(spec_base) == spsa_seed(spec_blocking)

    app = get_app("App1")
    noise_model = NoiseModel.from_device(app.build_device())
    trace = app.build_trace(length=64, seed=9)
    vqes = {}
    for spec in (spec_base, spec_blocking):
        objective = EnergyObjective(app.build_ansatz(), app.build_hamiltonian())
        vqes[spec.scheme] = build_vqe(
            spec.scheme, objective, trace, noise_model=noise_model,
            seed=run_seed(spec), spsa_seed=spsa_seed(spec),
        )
    base, blocking = vqes["baseline"], vqes["blocking"]
    # identical SPSA perturbation streams (paired comparisons) ...
    assert (
        base.optimizer.rng.bit_generator.state
        == blocking.optimizer.rng.bit_generator.state
    )
    # ... over independent backend shot-noise streams
    assert (
        base.backend.rng.bit_generator.state
        != blocking.backend.rng.bit_generator.state
    )


def test_build_vqe_trust_radius_defaults_preserved():
    """spsa_trust_radius=None must not clobber SecondOrderSPSA's own
    default step bound (regression: a literal trust_radius=None kwarg
    defeats the subclass's setdefault)."""
    app = get_app("App1")
    noise_model = NoiseModel.from_device(app.build_device())
    trace = app.build_trace(length=32, seed=4)

    def build(scheme, **kwargs):
        objective = EnergyObjective(app.build_ansatz(), app.build_hamiltonian())
        return build_vqe(scheme, objective, trace, noise_model=noise_model, **kwargs)

    assert build("2nd-order").optimizer.trust_radius == 0.1
    assert build("2nd-order", spsa_trust_radius=0.3).optimizer.trust_radius == 0.3
    assert build("baseline").optimizer.trust_radius is None
    assert build("baseline", spsa_trust_radius=0.2).optimizer.trust_radius == 0.2


def test_run_comparison_matches_standalone_spec_execution():
    """The shim is a thin veneer: a scheme's run inside a comparison is
    bit-identical to executing that scheme's spec on its own."""
    from repro.runtime import RunSpec, execute_run

    app = get_app("App1")
    comp = run_comparison(app, ["baseline", "qismet"], iterations=8, seed=11)
    solo = execute_run(
        RunSpec(app="App1", scheme="qismet", iterations=8, seed=11)
    )
    assert solo.result.to_dict() == comp.results["qismet"].to_dict()
