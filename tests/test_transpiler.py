import numpy as np
import pytest

from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.devices.coupling import falcon_map, line_map
from repro.simulator.statevector import simulate_statevector
from repro.transpiler.basis import (
    NATIVE_GATES,
    reconstruct_zsxzsxz,
    translate_to_basis,
    zsxzsxz_angles,
)
from repro.transpiler.layout import linear_chain_layout, trivial_layout
from repro.transpiler.passes import transpile
from repro.transpiler.routing import route_circuit


def _states_equal_up_to_phase(a, b, atol=1e-9):
    index = np.argmax(np.abs(b))
    if abs(b[index]) < 1e-12:
        return np.allclose(a, b, atol=atol)
    phase = a[index] / b[index]
    return np.allclose(a, phase * b, atol=atol)


def test_zsxzsxz_random_unitaries():
    rng = np.random.default_rng(0)
    for _ in range(50):
        z = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        q, r = np.linalg.qr(z)
        u = q * (np.diag(r) / np.abs(np.diag(r)))
        a, b, c = zsxzsxz_angles(u)
        recon = reconstruct_zsxzsxz(a, b, c)
        assert _states_equal_up_to_phase(recon.reshape(-1), u.reshape(-1))


def test_translate_preserves_semantics():
    circuit = random_circuit(3, 30, seed=14)
    native = translate_to_basis(circuit)
    assert set(i.name for i in native if i.name != "barrier") <= set(NATIVE_GATES)
    sv_orig = simulate_statevector(circuit)
    sv_native = simulate_statevector(native)
    assert _states_equal_up_to_phase(sv_native, sv_orig)


def test_translate_two_qubit_expansions():
    qc = QuantumCircuit(2)
    qc.cz(0, 1)
    qc.swap(0, 1)
    qc.rzz(0.7, 0, 1)
    qc.rxx(0.4, 0, 1)
    qc.crz(0.9, 0, 1)
    qc.crx(1.1, 0, 1)
    native = translate_to_basis(qc)
    sv_native = simulate_statevector(native)
    sv_orig = simulate_statevector(qc)
    assert _states_equal_up_to_phase(sv_native, sv_orig)


def test_translate_rejects_parameterized():
    from repro.circuits.parameter import Parameter

    qc = QuantumCircuit(1)
    qc.ry(Parameter("t"), 0)
    with pytest.raises(ValueError):
        translate_to_basis(qc)


def test_layouts():
    circuit = QuantumCircuit(3)
    circuit.cx(0, 1)
    cmap = falcon_map(7)
    layout = linear_chain_layout(circuit, cmap)
    chain = [layout.physical(v) for v in range(3)]
    for a, b in zip(chain, chain[1:]):
        assert cmap.are_connected(a, b)
    triv = trivial_layout(circuit, cmap)
    assert [triv.physical(v) for v in range(3)] == [0, 1, 2]


def test_layout_too_big():
    circuit = QuantumCircuit(8)
    with pytest.raises(ValueError):
        trivial_layout(circuit, falcon_map(7))


def test_routing_inserts_swaps_and_preserves_state():
    # CX between the two ends of a 3-line needs routing.
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.cx(0, 2)
    routed, permutation = route_circuit(circuit, line_map(3))
    assert routed.count_ops().get("swap", 0) >= 1
    # verify semantics through the permutation
    sv_orig = simulate_statevector(circuit)
    sv_routed = simulate_statevector(routed)
    probs_orig = (np.abs(sv_orig) ** 2).reshape((2,) * 3)
    probs_routed = (np.abs(sv_routed) ** 2).reshape((2,) * 3)
    # logical qubit q sits at physical permutation[q]; compare marginals.
    for logical in range(3):
        physical = permutation[logical]
        marg_orig = probs_orig.sum(
            axis=tuple(i for i in range(3) if i != logical)
        )
        marg_routed = probs_routed.sum(
            axis=tuple(i for i in range(3) if i != physical)
        )
        assert np.allclose(marg_orig, marg_routed, atol=1e-9)


def test_routing_noop_when_connected():
    circuit = QuantumCircuit(2)
    circuit.cx(0, 1)
    routed, permutation = route_circuit(circuit, line_map(2))
    assert routed.count_ops().get("swap", 0) == 0
    assert permutation == {0: 0, 1: 1}


def test_transpile_ansatz_swap_free_on_large_devices():
    # Linear-entanglement ansatz + chain layout routes swap-free wherever a
    # 6-chain exists (16q/27q heavy-hex); the 7q H-shape needs swaps, which
    # is physically faithful to running 6-qubit VQAs on Jakarta/Casablanca.
    ansatz = RealAmplitudes(6, reps=2)
    bound = ansatz.bind(np.zeros(ansatz.num_parameters))
    for n in (16, 27):
        result = transpile(bound, falcon_map(n))
        assert result.num_swaps == 0
        names = {i.name for i in result.circuit if i.name != "barrier"}
        assert names <= set(NATIVE_GATES)
    result7 = transpile(bound, falcon_map(7))
    assert result7.num_swaps > 0


def test_transpile_unknown_layout():
    circuit = QuantumCircuit(2)
    with pytest.raises(ValueError):
        transpile(circuit, line_map(2), layout_method="magic")
