"""Packaging metadata stays in sync with the library."""

import tomllib
from pathlib import Path

import repro

ROOT = Path(__file__).resolve().parent.parent


def _pyproject():
    with (ROOT / "pyproject.toml").open("rb") as handle:
        return tomllib.load(handle)


def test_pyproject_exists_with_src_layout():
    data = _pyproject()
    assert data["project"]["name"] == "qismet-repro"
    assert data["tool"]["setuptools"]["packages"]["find"]["where"] == ["src"]


def test_version_single_source_of_truth():
    data = _pyproject()
    assert "version" in data["project"]["dynamic"]
    attr = data["tool"]["setuptools"]["dynamic"]["version"]["attr"]
    assert attr == "repro.__version__"
    # the attribute it points at actually exists and is a sane version
    assert repro.__version__.count(".") == 2
