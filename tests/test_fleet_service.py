"""FleetService / FleetExecutor: the ISSUE acceptance criteria.

* fleet results are bit-identical to the serial executor's;
* jobs distribute across >= 3 devices;
* an injected transient window causes >= 1 deferral;
* resubmitting a plan hits the job store and re-executes nothing.
"""

import numpy as np
import pytest

from repro.fleet import FleetError, FleetExecutor, FleetService
from repro.fleet.store import DONE, FAILED
from repro.fleet.telemetry import FLEET_WIDE
from repro.runtime import ExperimentPlan, RunSpec, SerialExecutor

PLAN = ExperimentPlan(
    apps=("App1", "App2"),
    schemes=("baseline", "qismet"),
    iterations=6,
    seeds=(3, 4),
    name="fleet-test",
)


def test_fleet_results_bit_identical_to_serial():
    serial = SerialExecutor().run_plan(PLAN)
    with FleetExecutor() as executor:
        fleet = executor.run_plan(PLAN)
    assert len(fleet) == len(serial) == 8
    for serial_run, fleet_run in zip(serial, fleet):
        assert serial_run.spec == fleet_run.spec
        assert serial_run.to_dict()["result"] == fleet_run.to_dict()["result"]


def test_jobs_distribute_across_at_least_three_devices():
    with FleetExecutor() as executor:
        executor.run_plan(PLAN)
        snapshot = executor.telemetry.snapshot()
    assert snapshot["devices_used"] >= 3
    assert snapshot["total_completed"] == 8


def test_injected_transient_window_defers_jobs():
    service = FleetService()
    # App1's affinity machine is turbulent: with every queue empty the
    # scheduler would otherwise pick toronto first, so the injected
    # window must produce a deferral away from it.
    service.fleet.inject_transient("toronto", start=0, length=300, magnitude=0.9)
    spec = RunSpec(app="App1", scheme="baseline", iterations=5, seed=7)
    results = service.run_specs([spec], timeout=120)
    snapshot = service.telemetry.snapshot()
    assert snapshot["devices"]["toronto"]["deferred"] >= 1
    assert snapshot["devices"]["toronto"]["completed"] == 0
    record = service.store.fetch(spec.run_id)
    assert record.is_done and record.device != "toronto"
    assert record.defers >= 1
    # the deferral changed *where* the job ran, not *what* it computed
    serial = SerialExecutor().run([spec])[0]
    assert serial.to_dict()["result"] == results[0].to_dict()["result"]
    service.close()


def test_whole_fleet_transient_defers_then_recovers():
    service = FleetService()
    for name in service.fleet.names():
        service.fleet.inject_transient(name, start=0, length=4, magnitude=0.9)
    spec = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=5)
    service.run_specs([spec], timeout=120)
    snapshot = service.telemetry.snapshot()
    assert snapshot["devices"][FLEET_WIDE]["deferred"] >= 1
    assert service.clock.now() > 4  # the clock waited out the window
    assert service.store.counts()[DONE] == 1
    service.close()


def test_resubmission_hits_store_and_reexecutes_nothing(tmp_path):
    db = tmp_path / "fleet.db"
    with FleetExecutor(db_path=db) as executor:
        first = executor.run_plan(PLAN)
        assert executor.misses == 8 and executor.hits == 0
    # A brand-new service over the same store: everything is a hit.
    with FleetExecutor(db_path=db) as executor:
        second = executor.run_plan(PLAN)
        assert executor.hits == 8 and executor.misses == 0
        assert all(run.from_cache for run in second)
        assert executor.telemetry.snapshot()["total_completed"] == 0
    for first_run, second_run in zip(first, second):
        assert first_run.to_dict()["result"] == second_run.to_dict()["result"]


def test_duplicate_specs_execute_once():
    spec = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=9)
    with FleetExecutor() as executor:
        results = executor.run([spec, spec, spec])
        assert len(results) == 3
        assert executor.telemetry.snapshot()["total_completed"] == 1
    assert (
        results[0].to_dict()["result"]
        == results[1].to_dict()["result"]
        == results[2].to_dict()["result"]
    )


def test_failed_jobs_raise_and_are_requeued_on_resubmit():
    bad_seed = 13

    def flaky_execute(spec):
        if spec.seed == bad_seed:
            raise RuntimeError("injected failure")
        from repro.runtime.execute import execute_run

        return execute_run(spec)

    service = FleetService(execute=flaky_execute)
    good = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=1)
    bad = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=bad_seed)
    with pytest.raises(FleetError, match="injected failure"):
        service.run_specs([good, bad], timeout=120)
    counts = service.store.counts()
    assert counts[DONE] == 1 and counts[FAILED] == 1
    assert "injected failure" in service.store.fetch(bad.run_id).error
    # resubmission re-queues the failed job; with the failure gone it runs
    service.execute = __import__(
        "repro.runtime.execute", fromlist=["execute_run"]
    ).execute_run
    results = service.run_specs([good, bad], timeout=120)
    assert service.store.counts()[DONE] == 2
    assert results[0].from_cache and not results[1].from_cache
    service.close()


def test_run_specs_preserves_input_order():
    specs = [
        RunSpec(app="App1", scheme="noise-free", iterations=3, seed=s)
        for s in (5, 1, 9)
    ]
    with FleetExecutor() as executor:
        results = executor.run(specs)
    assert [r.spec for r in results] == specs
    assert all(np.isfinite(r.result.final_true_energy) for r in results)


def test_plan_result_regroups_into_comparisons():
    with FleetExecutor() as executor:
        outcome = executor.run_plan(PLAN)
    comp = outcome.comparison("App1", seed=3)
    assert set(comp.results) == {"baseline", "qismet"}
    assert set(outcome.geomean_improvements()) == {"baseline", "qismet"}


def test_double_submit_before_drain_executes_once():
    spec = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=21)
    service = FleetService()
    service.submit([spec])
    service.submit([spec])  # resubmission attaches to the queued job
    service.drain(timeout=120)
    assert service.telemetry.snapshot()["total_completed"] == 1
    assert service.store.counts()[DONE] == 1
    service.close()


def test_stale_failed_job_does_not_poison_other_plans(tmp_path):
    db = tmp_path / "fleet.db"

    def always_fail(spec):
        raise RuntimeError("device exploded")

    doomed = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=33)
    service = FleetService(db_path=str(db), execute=always_fail)
    with pytest.raises(FleetError):
        service.run_specs([doomed], timeout=120)
    service.close()

    # A different plan on the same store must not see the stale failure.
    other = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=34)
    with FleetExecutor(db_path=db) as executor:
        results = executor.run([other])
    assert len(results) == 1 and results[0].spec == other


def test_harness_failure_fails_job_instead_of_wedging():
    service = FleetService()

    def broken_verdict(device, tick):
        raise RuntimeError("monitor offline")

    service.scheduler.in_transient_window = broken_verdict
    spec = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=41)
    with pytest.raises(FleetError, match="fleet internal error"):
        service.run_specs([spec], timeout=120)  # must not hang
    assert service.store.counts()[FAILED] == 1
    service.close()


def test_telemetry_persisted_per_drain_without_close(tmp_path):
    # default_executor() users never call close(); the rollup must still
    # land in the store at the end of each drain.
    db = tmp_path / "fleet.db"
    from repro.fleet import JobStore

    executor = FleetExecutor(db_path=db)
    executor.run([RunSpec(app="App1", scheme="noise-free", iterations=3)])
    with JobStore(db) as probe:
        rollup = probe.telemetry()
    assert sum(c["completed"] for c in rollup["devices"].values()) == 1
    # closing afterwards must not double-count the same counters
    executor.close()
    with JobStore(db) as probe:
        rollup = probe.telemetry()
    assert sum(c["completed"] for c in rollup["devices"].values()) == 1


def test_store_defers_match_job_budget_accounting():
    service = FleetService()
    for name in service.fleet.names():
        service.fleet.inject_transient(name, start=0, length=3, magnitude=0.9)
    spec = RunSpec(app="App1", scheme="noise-free", iterations=3, seed=55)
    service.run_specs([spec], timeout=120)
    record = service.store.fetch(spec.run_id)
    # every fleet-wide wait and every routed-away device landed in the
    # store's per-job counter
    assert record.defers >= 3
    service.close()


def test_submit_after_close_rejected():
    service = FleetService()
    service.close()
    with pytest.raises(RuntimeError):
        service.submit([RunSpec(app="App1", scheme="noise-free", iterations=3)])
