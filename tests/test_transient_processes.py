import numpy as np
import pytest

from repro.noise.transient.processes import (
    GaussianJitterProcess,
    OrnsteinUhlenbeckProcess,
    SpikeProcess,
    TelegraphProcess,
)


def test_telegraph_two_levels():
    proc = TelegraphProcess(rate_up=0.1, rate_down=0.3, amplitude=2.0)
    path = proc.sample(2000, seed=1)
    assert set(np.unique(path)) <= {0.0, 2.0}


def test_telegraph_stationary_occupancy():
    proc = TelegraphProcess(rate_up=0.1, rate_down=0.3)
    path = proc.sample(50_000, seed=2)
    assert path.mean() == pytest.approx(proc.stationary_occupancy(), abs=0.02)
    assert proc.stationary_occupancy() == pytest.approx(0.25)


def test_telegraph_validation():
    with pytest.raises(ValueError):
        TelegraphProcess(rate_up=1.5, rate_down=0.1)


def test_ou_mean_reversion():
    proc = OrnsteinUhlenbeckProcess(theta=0.2, mu=1.0, sigma=0.05, x0=5.0)
    path = proc.sample(400, seed=3)
    assert abs(path[-1] - 1.0) < abs(5.0 - 1.0)
    assert np.mean(path[200:]) == pytest.approx(1.0, abs=0.2)


def test_ou_stationary_std():
    proc = OrnsteinUhlenbeckProcess(theta=0.1, sigma=0.05)
    path = proc.sample(100_000, seed=4)
    assert np.std(path[1000:]) == pytest.approx(proc.stationary_std(), rel=0.1)


def test_ou_validation():
    with pytest.raises(ValueError):
        OrnsteinUhlenbeckProcess(theta=0.0)
    with pytest.raises(ValueError):
        OrnsteinUhlenbeckProcess(theta=0.1, sigma=-1.0)


def test_spikes_sparse_and_signed():
    proc = SpikeProcess(rate=0.02, magnitude=0.5, negative_bias=0.0)
    path = proc.sample(5000, seed=5)
    active = np.abs(path) > 1e-12
    assert 0.005 < active.mean() < 0.12  # rate x duration
    assert np.all(path[active] > 0)  # no negative bias


def test_spike_rate_zero_is_silent():
    path = SpikeProcess(rate=0.0, magnitude=1.0).sample(100, seed=6)
    assert np.all(path == 0.0)


def test_spike_magnitudes_exceed_base():
    proc = SpikeProcess(rate=0.05, magnitude=0.4, negative_bias=0.0, wobble=0.0)
    path = proc.sample(3000, seed=7)
    active = path[path > 0]
    # Pareto multiplier >= 1, so every active value >= magnitude (up to
    # overlapping events which only add).
    assert np.all(active >= 0.4 - 1e-9)


def test_spike_wobble_varies_within_event():
    proc = SpikeProcess(
        rate=0.01, magnitude=1.0, mean_duration=8.0, wobble=0.3, negative_bias=0.0
    )
    path = proc.sample(3000, seed=8)
    active = path[path > 0]
    assert active.size > 10
    assert np.std(active) > 0.05  # within-event variation present


def test_spike_validation():
    with pytest.raises(ValueError):
        SpikeProcess(rate=2.0, magnitude=0.1)
    with pytest.raises(ValueError):
        SpikeProcess(rate=0.1, magnitude=0.1, tail=0.5)
    with pytest.raises(ValueError):
        SpikeProcess(rate=0.1, magnitude=0.1, mean_duration=0.2)
    with pytest.raises(ValueError):
        SpikeProcess(rate=0.1, magnitude=0.1, wobble=1.5)


def test_jitter_statistics():
    path = GaussianJitterProcess(sigma=0.2).sample(50_000, seed=9)
    assert np.std(path) == pytest.approx(0.2, rel=0.05)
    assert np.mean(path) == pytest.approx(0.0, abs=0.01)


def test_jitter_validation():
    with pytest.raises(ValueError):
        GaussianJitterProcess(sigma=-0.1)


def test_determinism_across_processes():
    a = SpikeProcess(rate=0.05, magnitude=0.3).sample(500, seed=11)
    b = SpikeProcess(rate=0.05, magnitude=0.3).sample(500, seed=11)
    assert np.allclose(a, b)
