"""The staged pipeline and the device-aware ``transpile_then_compile``.

Covers pass composition, the single device entry point (layout -> routing
-> native basis -> lowering -> fusion in one cached call), and the counts
backend consuming it with permutation-corrected logical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.counts import CountsBackend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import ghz_circuit, random_circuit
from repro.compiler import (
    CompilationUnit,
    FuseStaticGates,
    LowerToPlan,
    Pipeline,
    clear_plan_cache,
    compile_plan,
    plan_cache_stats,
    transpile_then_compile,
)
from repro.devices.coupling import line_map
from repro.operators.pauli_sum import PauliSum
from repro.simulator.statevector import simulate_statevector


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


# -- pipeline framework ----------------------------------------------------------


def test_pipeline_requires_lowering_pass():
    with pytest.raises(RuntimeError, match="produced no plan"):
        Pipeline([], name="empty").compile(ghz_circuit(2))


def test_custom_pipeline_composition():
    pipeline = Pipeline([LowerToPlan(), FuseStaticGates()], name="custom")
    plan = pipeline.compile(ghz_circuit(3))
    assert plan.fused
    assert "custom" in repr(pipeline)


def test_device_passes_require_coupling():
    from repro.compiler import RouteCircuit, SelectLayout

    unit = CompilationUnit(circuit=ghz_circuit(2))
    with pytest.raises(ValueError, match="coupling"):
        SelectLayout().run(unit)
    with pytest.raises(ValueError, match="coupling"):
        RouteCircuit().run(unit)


def test_select_layout_rejects_unknown_method():
    from repro.compiler import SelectLayout

    with pytest.raises(ValueError, match="unknown layout method"):
        SelectLayout("magic")


# -- transpile_then_compile ------------------------------------------------------


def _logical_statevector_probs(compiled, num_logical):
    """Outcome probabilities of the compiled plan, read back logically."""
    sv = simulate_statevector(compiled.plan)
    probs = np.abs(sv) ** 2
    return CountsBackend._logical_probabilities(probs, compiled, num_logical)


@pytest.mark.parametrize("seed", [0, 4, 9])
def test_device_compilation_preserves_distribution(seed):
    circuit = random_circuit(3, 25, seed=seed)
    compiled = transpile_then_compile(circuit, line_map(4))
    native_names = set(compiled.circuit.count_ops()) - {"barrier"}
    assert native_names <= {"rz", "sx", "x", "cx"}
    expected = np.abs(simulate_statevector(circuit)) ** 2
    observed = _logical_statevector_probs(compiled, circuit.num_qubits)
    np.testing.assert_allclose(observed, expected, atol=1e-9)


def test_device_compilation_is_cached():
    circuit = ghz_circuit(3)
    first = transpile_then_compile(circuit, line_map(3))
    hits = plan_cache_stats()["hits"]
    second = transpile_then_compile(circuit, line_map(3))
    assert first is second
    assert plan_cache_stats()["hits"] == hits + 1
    # A different coupling map is a different cache entry.
    third = transpile_then_compile(circuit, line_map(4))
    assert third is not first


def test_device_compilation_accepts_device_model_and_trims():
    from repro.devices.ibmq_fake import get_device

    device = get_device("jakarta", calibration_seed=3)
    circuit = ghz_circuit(3)
    compiled = transpile_then_compile(circuit, device)
    # Idle device wires are trimmed: a swap-free 3q chain stays 3 wide.
    assert compiled.circuit.num_qubits == 3
    assert compiled.plan.num_qubits == 3
    assert sorted(compiled.logical_positions) == [0, 1, 2]


def test_wide_device_counts_backend_stays_small():
    # A 27-qubit machine must not cost a 2**54-entry density matrix: the
    # trim pass keeps execution at the live-qubit width.
    from repro.devices.ibmq_fake import get_device

    device = get_device("toronto", calibration_seed=1)
    compiled = transpile_then_compile(ghz_circuit(3), device)
    assert compiled.circuit.num_qubits <= 5
    backend = CountsBackend(seed=2, device=device)
    probs = backend.probabilities(ghz_circuit(3))
    assert probs.shape == (8,)
    np.testing.assert_allclose(probs[0] + probs[-1], 1.0, atol=1e-9)


def test_swap_bookkeeping_exposed():
    # Forcing a far CX on a line: routing must insert swaps and report them.
    circuit = QuantumCircuit(4)
    circuit.h(0)
    circuit.cx(0, 3)
    compiled = transpile_then_compile(
        circuit, line_map(4), layout_method="trivial"
    )
    assert compiled.num_swaps > 0
    assert compiled.final_permutation != {q: q for q in range(4)}


# -- counts backend through the device path --------------------------------------


def test_counts_backend_device_probabilities_logical():
    backend = CountsBackend(seed=5, device=line_map(4))
    circuit = ghz_circuit(3)
    probs = backend.probabilities(circuit)
    assert probs.shape == (8,)
    np.testing.assert_allclose(probs[0], 0.5, atol=1e-9)
    np.testing.assert_allclose(probs[-1], 0.5, atol=1e-9)


def test_counts_backend_device_energy_matches_plain():
    # Noise-free: the device-lowered estimate must agree with the direct
    # estimate up to shot noise.
    hamiltonian = PauliSum(
        [(1.0, "ZZI"), (1.0, "IZZ"), (0.7, "XII"), (-0.4, "IIX")]
    )
    circuit = random_circuit(3, 15, seed=21)
    plain = CountsBackend(seed=3)
    routed = CountsBackend(seed=3, device=line_map(4), layout_method="trivial")
    e_plain = plain.estimate_energy(circuit, hamiltonian, shots_per_group=200_000)
    e_routed = routed.estimate_energy(circuit, hamiltonian, shots_per_group=200_000)
    assert e_routed == pytest.approx(e_plain, abs=0.05)


def test_compile_plan_rejects_foreign_parameters():
    from repro.circuits.parameter import Parameter

    theta, other = Parameter("theta"), Parameter("other")
    qc = QuantumCircuit(1)
    qc.ry(theta, 0)
    with pytest.raises(KeyError, match="missing from parameter ordering"):
        compile_plan(qc, (other,))
