import networkx as nx
import numpy as np
import pytest

from repro.hamiltonians.heisenberg import heisenberg_hamiltonian
from repro.hamiltonians.maxcut import (
    maxcut_hamiltonian,
    maxcut_value,
    random_weighted_graph,
    ring_graph,
)
from repro.hamiltonians.tfim import (
    tfim_exact_ground_energy,
    tfim_free_fermion_energy,
    tfim_hamiltonian,
)


def test_tfim_term_count():
    ham = tfim_hamiltonian(6)
    # 5 ZZ bonds + 6 X fields
    assert len(ham) == 11
    periodic = tfim_hamiltonian(6, periodic=True)
    assert len(periodic) == 12


def test_tfim_ground_energy_small_cases():
    # 2-site open TFIM with J=h=1: E0 = -sqrt(J^2... ) exact = -sqrt(5)? No:
    # H = -Z0Z1 - X0 - X1; dense diagonalization is the reference here.
    ham = tfim_hamiltonian(2)
    assert ham.ground_state_energy() == pytest.approx(
        tfim_exact_ground_energy(2)
    )
    # known closed form for the 2-site chain: -(1 + sqrt(1 + ...)); just
    # verify against brute-force eigenvalues.
    eigs = np.linalg.eigvalsh(ham.to_matrix())
    assert tfim_exact_ground_energy(2) == pytest.approx(eigs[0])


def test_tfim_free_fermion_matches_dense_periodic():
    for n in (4, 6, 8):
        dense = tfim_hamiltonian(n, periodic=True).ground_state_energy()
        analytic = tfim_free_fermion_energy(n)
        assert analytic == pytest.approx(dense, abs=1e-8)


def test_tfim_field_limits():
    # h >> J: ground state ~ product of |+>, energy ~ -h*n
    ham = tfim_hamiltonian(4, coupling=0.001, field=2.0)
    assert ham.ground_state_energy() == pytest.approx(-8.0, abs=0.02)
    # J >> h: ferromagnetic, energy ~ -J*(n-1)
    ham = tfim_hamiltonian(4, coupling=3.0, field=0.001)
    assert ham.ground_state_energy() == pytest.approx(-9.0, abs=0.02)


def test_tfim_validation():
    with pytest.raises(ValueError):
        tfim_hamiltonian(1)
    with pytest.raises(ValueError):
        tfim_exact_ground_energy(20, periodic=False)


def test_heisenberg_isotropic_ground_energy():
    # 2-site spin-1/2 Heisenberg (Pauli convention): singlet at -3.
    ham = heisenberg_hamiltonian(2)
    assert ham.ground_state_energy() == pytest.approx(-3.0)


def test_heisenberg_field_and_zero_couplings():
    ham = heisenberg_hamiltonian(3, jx=0.0, jy=0.0, jz=1.0, field=0.5)
    labels = {t.pauli.label for t in ham.terms}
    assert "XXI" not in labels and "ZZI" in labels


def test_maxcut_ground_energy_equals_negative_cut():
    graph = ring_graph(5)
    ham = maxcut_hamiltonian(graph)
    # best cut of a 5-ring cuts 4 edges
    assert ham.ground_state_energy() == pytest.approx(-4.0)


def test_maxcut_value_counts_cut_edges():
    graph = ring_graph(4)
    assert maxcut_value(graph, [1, 0, 1, 0]) == pytest.approx(4.0)
    assert maxcut_value(graph, [1, 1, 1, 1]) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        maxcut_value(graph, [1, 0])


def test_maxcut_weighted_consistency():
    graph = random_weighted_graph(5, 0.8, seed=3)
    ham = maxcut_hamiltonian(graph)
    # brute force best cut
    best = 0.0
    for mask in range(2**5):
        assignment = [(mask >> i) & 1 for i in range(5)]
        best = max(best, maxcut_value(graph, assignment))
    assert ham.ground_state_energy() == pytest.approx(-best, abs=1e-9)


def test_maxcut_empty_graph_rejected():
    with pytest.raises(ValueError):
        maxcut_hamiltonian(nx.Graph())
