"""Unit tests for the batched statevector simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATES
from repro.circuits.parameter import Parameter
from repro.circuits.program import compile_circuit
from repro.simulator.batched import (
    BATCHED_GATE_BUILDERS,
    BatchedStatevectorSimulator,
    apply_gate_batched,
    apply_gates_elementwise,
    batched_gate_matrices,
    simulate_statevectors,
)
from repro.simulator.statevector import (
    StatevectorSimulator,
    apply_gate,
    simulate_statevector,
)


def test_zero_states():
    simulator = BatchedStatevectorSimulator(3)
    states = simulator.zero_states(4)
    assert states.shape == (4, 2, 2, 2)
    flat = states.reshape(4, -1)
    np.testing.assert_allclose(flat[:, 0], 1.0)
    assert np.count_nonzero(flat) == 4


def test_validation():
    with pytest.raises(ValueError):
        BatchedStatevectorSimulator(0)
    simulator = BatchedStatevectorSimulator(2)
    with pytest.raises(ValueError):
        simulator.zero_states(0)
    program = compile_circuit(QuantumCircuit(3))
    with pytest.raises(ValueError):
        simulator.run_program(program, np.zeros((2, 0)))


@pytest.mark.parametrize("gate,qubits", [("h", (0,)), ("cx", (0, 2)), ("cx", (2, 0)), ("swap", (1, 2))])
def test_apply_gate_batched_matches_serial(gate, qubits):
    rng = np.random.default_rng(7)
    matrix = GATES[gate].matrix(())
    states = rng.standard_normal((5,) + (2,) * 3) + 1j * rng.standard_normal(
        (5,) + (2,) * 3
    )
    batched = apply_gate_batched(states, matrix, qubits)
    for i in range(5):
        expected = apply_gate(states[i], matrix, qubits)
        np.testing.assert_allclose(batched[i], expected, atol=1e-12, rtol=0.0)


@pytest.mark.parametrize("gate", sorted(BATCHED_GATE_BUILDERS))
def test_batched_gate_builders_match_scalar_constructors(gate):
    angles = np.array([-2.3, -0.5, 0.0, 0.7, 3.1])
    stacked = batched_gate_matrices(gate, angles)
    for angle, matrix in zip(angles, stacked):
        np.testing.assert_array_equal(matrix, GATES[gate].matrix((float(angle),)))


def test_batched_gate_matrices_fallback_path():
    # "u" has no vectorized builder; the stacking fallback must still work
    # for single-parameter gates without one.
    angles = np.array([0.1, 0.2])
    out = batched_gate_matrices("rx", angles)
    assert out.shape == (2, 2, 2)


def test_apply_gates_elementwise_matches_per_element():
    rng = np.random.default_rng(11)
    states = rng.standard_normal((3,) + (2,) * 4) + 1j * rng.standard_normal(
        (3,) + (2,) * 4
    )
    angles = np.array([0.3, -1.2, 2.5])
    matrices = batched_gate_matrices("rzz", angles)
    out = apply_gates_elementwise(states, matrices, (1, 3))
    for i in range(3):
        expected = apply_gate(states[i], matrices[i], (1, 3))
        np.testing.assert_allclose(out[i], expected, atol=1e-12, rtol=0.0)


def test_run_program_matches_serial_ansatz():
    ansatz = EfficientSU2(5, reps=3)
    rng = np.random.default_rng(13)
    thetas = rng.uniform(-np.pi, np.pi, (6, ansatz.num_parameters))
    batched = BatchedStatevectorSimulator(5).run_flat(ansatz.program, thetas)
    serial = StatevectorSimulator(5)
    for i, theta in enumerate(thetas):
        expected = serial.run_program(ansatz.program, theta).reshape(-1)
        np.testing.assert_allclose(batched[i], expected, atol=1e-12, rtol=0.0)


def test_run_program_initial_states():
    ansatz = EfficientSU2(2, reps=1)
    rng = np.random.default_rng(17)
    thetas = rng.uniform(-1, 1, (2, ansatz.num_parameters))
    initial = np.zeros((2, 4), dtype=complex)
    initial[:, 3] = 1.0
    batched = BatchedStatevectorSimulator(2).run_program(
        ansatz.program, thetas, initial_states=initial
    )
    serial = StatevectorSimulator(2)
    for i, theta in enumerate(thetas):
        expected = serial.run_program(
            ansatz.program, theta, initial_state=initial[i]
        )
        np.testing.assert_allclose(
            batched[i], expected, atol=1e-12, rtol=0.0
        )


def test_simulate_statevectors_accepts_circuits():
    param = Parameter("a")
    circuit = QuantumCircuit(2)
    circuit.append("h", (0,))
    circuit.append("ry", (1,), (param,))
    circuit.cx(0, 1)
    thetas = np.array([[0.4], [1.9]])
    batched = simulate_statevectors(circuit, thetas)
    for i, theta in enumerate(thetas):
        expected = simulate_statevector(circuit, theta)
        np.testing.assert_allclose(batched[i], expected, atol=1e-12, rtol=0.0)
