"""Tier-1 verifier tests: clean passes plus injected faults per RPR code."""

import numpy as np
import pytest

from repro.analysis import (
    AnalysisReport,
    PlanVerificationError,
    Severity,
    verify_circuit,
    verify_device_compilation,
    verify_gate_plan,
    verify_kraus_site,
    verify_noise_plan,
)
from repro.ansatz.efficient_su2 import EfficientSU2
from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.parameter import Parameter
from repro.compiler import (
    compile_noise_plan,
    compile_plan,
    transpile_then_compile,
)
from repro.compiler.ir import GatePlan, PlanOp
from repro.compiler.noise_plan import ChannelOp, kraus_superoperator
from repro.devices.ibmq_fake import get_device
from repro.experiments.registry import APPLICATIONS
from repro.noise import channels
from repro.noise.noise_model import NoiseModel

HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)


def codes(report: AnalysisReport):
    return {d.code for d in report}


def bell_plan(**kwargs):
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    return compile_plan(circuit, **kwargs), circuit


# -- clean passes --------------------------------------------------------------


@pytest.mark.parametrize("app_name", sorted(APPLICATIONS))
def test_registry_apps_verify_clean(app_name):
    """Every Table-1 app compiles and verifies with zero errors on every
    route: symbolic, device-routed, and noisy."""
    app = APPLICATIONS[app_name]
    ansatz = app.build_ansatz()
    circuit = ansatz.circuit
    report = AnalysisReport()
    verify_circuit(circuit, report=report)
    plan = compile_plan(circuit, ansatz.parameters)
    verify_gate_plan(plan, circuit, ansatz.parameters, report=report)

    bound = circuit.bind(np.zeros(ansatz.num_parameters))
    device = app.build_device()
    compilation = transpile_then_compile(bound, device)
    verify_device_compilation(compilation, device, report=report)

    model = device.noise_model()
    noise_plan = compile_noise_plan(bound, model)
    verify_noise_plan(noise_plan, bound, model, report=report)
    assert not report.has_errors, report.render_text()


def test_clean_symbolic_plan_reports_nothing():
    plan, circuit = bell_plan()
    report = verify_gate_plan(plan, circuit)
    assert len(report) == 0


# -- RPR001 / RPR002 / RPR003: structural op faults ----------------------------


def test_rpr001_qubit_out_of_bounds():
    plan, _ = bell_plan()
    bad_ops = plan.ops + (PlanOp((5,), matrix=np.eye(2, dtype=complex)),)
    bad = GatePlan(
        plan.num_qubits, bad_ops, plan.parameters, plan.param_indices,
        plan.coeffs, plan.offsets, plan.slot_gate_names,
        source_gate_counts=plan.source_gate_counts,
    )
    assert "RPR001" in codes(verify_gate_plan(bad))


def test_rpr001_circuit_qubit_out_of_bounds():
    circuit = QuantumCircuit(2)
    circuit._instructions.append(Instruction("x", (3,)))
    assert "RPR001" in codes(verify_circuit(circuit))


def test_rpr002_duplicate_operands():
    circuit = QuantumCircuit(2)
    circuit._instructions.append(Instruction("cx", (1, 1)))
    assert "RPR002" in codes(verify_circuit(circuit))


def test_rpr002_unknown_gate_and_arity():
    circuit = QuantumCircuit(2)
    circuit._instructions.append(Instruction("frobnicate", (0,)))
    circuit._instructions.append(Instruction("cx", (0,)))
    report = verify_circuit(circuit)
    assert sum(d.code == "RPR002" for d in report) == 2


def test_rpr003_matrix_shape_mismatch():
    plan, _ = bell_plan()
    bad_ops = plan.ops + (PlanOp((0, 1), matrix=np.eye(2, dtype=complex)),)
    bad = GatePlan(
        plan.num_qubits, bad_ops, plan.parameters, plan.param_indices,
        plan.coeffs, plan.offsets, plan.slot_gate_names,
        source_gate_counts=plan.source_gate_counts,
    )
    assert "RPR003" in codes(verify_gate_plan(bad))


# -- RPR004: parameter-binding completeness ------------------------------------


def parameterized_plan():
    theta = Parameter("t")
    circuit = QuantumCircuit(1)
    circuit.ry(theta, 0)
    return compile_plan(circuit, (theta,), cache=False), circuit


def test_rpr004_param_index_out_of_range():
    plan, _ = parameterized_plan()
    bad = GatePlan(
        plan.num_qubits, plan.ops, plan.parameters,
        np.array([7]), plan.coeffs, plan.offsets, plan.slot_gate_names,
        source_gate_counts=plan.source_gate_counts,
    )
    assert "RPR004" in codes(verify_gate_plan(bad))


def test_rpr004_slot_out_of_range():
    plan, _ = parameterized_plan()
    bad_ops = (PlanOp((0,), gate_name="ry", slot=3),)
    bad = GatePlan(
        plan.num_qubits, bad_ops, plan.parameters, plan.param_indices,
        plan.coeffs, plan.offsets, plan.slot_gate_names,
        source_gate_counts=plan.source_gate_counts,
    )
    assert "RPR004" in codes(verify_gate_plan(bad))


def test_rpr004_orphaned_table_row():
    plan, _ = parameterized_plan()
    bad = GatePlan(
        plan.num_qubits, (), plan.parameters, plan.param_indices,
        plan.coeffs, plan.offsets, plan.slot_gate_names,
        source_gate_counts=plan.source_gate_counts,
    )
    assert "RPR004" in codes(verify_gate_plan(bad))


def test_rpr004_table_length_mismatch():
    plan, _ = parameterized_plan()
    bad = GatePlan(
        plan.num_qubits, plan.ops, plan.parameters, plan.param_indices,
        np.array([1.0, 2.0]), plan.offsets, plan.slot_gate_names,
        source_gate_counts=plan.source_gate_counts,
    )
    assert "RPR004" in codes(verify_gate_plan(bad))


def test_rpr012_unused_parameter_is_warning():
    theta = Parameter("t")
    unused = Parameter("u")
    circuit = QuantumCircuit(1)
    circuit.ry(theta, 0)
    plan = compile_plan(circuit, (theta, unused), cache=False)
    report = verify_gate_plan(plan)
    assert "RPR012" in codes(report)
    assert not report.has_errors


# -- RPR005: unitarity ---------------------------------------------------------


def test_rpr005_non_unitary_fused_matrix():
    plan, _ = bell_plan()
    bad_ops = tuple(
        PlanOp(op.qubits, matrix=op.matrix * 1.5) if op.is_static else op
        for op in plan.ops
    )
    bad = GatePlan(
        plan.num_qubits, bad_ops, plan.parameters, plan.param_indices,
        plan.coeffs, plan.offsets, plan.slot_gate_names,
        source_gate_counts=plan.source_gate_counts,
    )
    report = verify_gate_plan(bad)
    assert "RPR005" in codes(report)
    assert report.has_errors


# -- RPR006 / RPR007: Kraus physics --------------------------------------------

CHANNEL_CONSTRUCTORS = [
    ("depolarizing_1q", lambda: channels.depolarizing_kraus(0.03, 1), 1),
    ("depolarizing_2q", lambda: channels.depolarizing_kraus(0.08, 2), 2),
    ("amplitude_damping", lambda: channels.amplitude_damping_kraus(0.12), 1),
    ("phase_damping", lambda: channels.phase_damping_kraus(0.2), 1),
    ("bit_flip", lambda: channels.bit_flip_kraus(0.25), 1),
    ("phase_flip", lambda: channels.phase_flip_kraus(0.4), 1),
    (
        "thermal_relaxation",
        lambda: channels.thermal_relaxation_kraus(80.0, 100.0, 0.5),
        1,
    ),
]


@pytest.mark.parametrize(
    "kraus_factory,num_qubits",
    [(factory, n) for _, factory, n in CHANNEL_CONSTRUCTORS],
    ids=[name for name, _, _ in CHANNEL_CONSTRUCTORS],
)
def test_every_channel_constructor_is_cptp_clean(kraus_factory, num_qubits):
    """Each constructor in noise/channels.py builds a verifier-clean site."""
    op = ChannelOp(tuple(range(num_qubits)), np.stack(kraus_factory()))
    report = AnalysisReport()
    verify_kraus_site(op, "site", report)
    assert len(report) == 0


@pytest.mark.parametrize(
    "kraus_factory,num_qubits",
    [(factory, n) for _, factory, n in CHANNEL_CONSTRUCTORS],
    ids=[name for name, _, _ in CHANNEL_CONSTRUCTORS],
)
def test_rpr006_corrupted_kraus_flagged_not_crashed(kraus_factory, num_qubits):
    """Scaling any constructor's Kraus stack breaks trace preservation; the
    verifier must report RPR006 and keep going."""
    corrupted = np.stack(kraus_factory()) * 1.1
    op = ChannelOp(tuple(range(num_qubits)), corrupted)
    report = AnalysisReport()
    verify_kraus_site(op, "site", report)
    assert {"RPR006"} == codes(report)


def test_rpr006_dropped_kraus_operator():
    kraus = np.stack(channels.amplitude_damping_kraus(0.3)[:1])
    op = ChannelOp((0,), kraus)
    report = AnalysisReport()
    verify_kraus_site(op, "site", report)
    assert "RPR006" in codes(report)


def test_rpr007_superoperator_mismatch():
    op = ChannelOp((0,), np.stack(channels.bit_flip_kraus(0.2)))
    # Desync the pre-compiled superoperator from the Kraus stack.
    object.__setattr__(
        op, "superop", kraus_superoperator(np.stack(channels.bit_flip_kraus(0.7)))
    )
    report = AnalysisReport()
    verify_kraus_site(op, "site", report)
    assert "RPR007" in codes(report)


def test_rpr007_probe_mismatch():
    op = ChannelOp((0,), np.stack(channels.bit_flip_kraus(0.2)))
    object.__setattr__(op, "probes", np.stack([np.eye(2), np.eye(2)]))
    report = AnalysisReport()
    verify_kraus_site(op, "site", report)
    assert "RPR007" in codes(report)


def test_rpr003_kraus_shape_mismatch():
    op = ChannelOp((0, 1), np.stack(channels.bit_flip_kraus(0.2)))
    report = AnalysisReport()
    verify_kraus_site(op, "site", report)
    assert "RPR003" in codes(report)


# -- RPR008/9/10: device conformance -------------------------------------------


def routed_bell(device):
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.cx(0, 2)
    return transpile_then_compile(circuit, device, cache=False)


def test_device_compilation_verifies_clean():
    device = get_device("guadalupe")
    compilation = routed_bell(device)
    report = verify_device_compilation(compilation, device)
    assert not report.has_errors, report.render_text()


def test_rpr009_uncoupled_two_qubit_gate():
    device = get_device("guadalupe")
    compilation = routed_bell(device)
    broken = compilation.circuit.copy()
    # Splice in a cx on a pair that is never a coupled edge under any
    # trimmed->physical mapping of this chain layout.
    far_a, far_b = 0, broken.num_qubits - 1
    assert broken.num_qubits >= 3
    broken._instructions.append(Instruction("cx", (far_a, far_b)))
    from dataclasses import replace

    bad = replace(compilation, circuit=broken)
    report = verify_device_compilation(bad, device)
    assert "RPR009" in codes(report)


def test_rpr010_non_basis_gate():
    device = get_device("guadalupe")
    compilation = routed_bell(device)
    broken = compilation.circuit.copy()
    broken._instructions.append(Instruction("rzz", (0, 1), (0.3,)))
    from dataclasses import replace

    bad = replace(compilation, circuit=broken)
    report = verify_device_compilation(bad, device)
    assert "RPR010" in codes(report)


def test_rpr008_duplicate_measurement_positions():
    device = get_device("guadalupe")
    compilation = routed_bell(device)
    from dataclasses import replace

    positions = tuple(compilation.logical_positions)
    assert len(positions) >= 2
    bad = replace(
        compilation, logical_positions=(positions[0],) * len(positions)
    )
    report = verify_device_compilation(bad, device)
    assert "RPR008" in codes(report)


def test_rpr008_position_out_of_range():
    device = get_device("guadalupe")
    compilation = routed_bell(device)
    from dataclasses import replace

    bad = replace(compilation, logical_positions=(0, 1, 99))
    report = verify_device_compilation(bad, device)
    assert "RPR008" in codes(report)


# -- RPR011: cache-key soundness -----------------------------------------------


def test_rpr011_gate_plan_key_mismatch():
    plan, circuit = bell_plan()
    other = QuantumCircuit(2)
    other.x(0)
    report = verify_gate_plan(plan, other)
    assert "RPR011" in codes(report)


def test_rpr011_noise_plan_fingerprint_folded_in():
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    bound = circuit.bind([])
    model = NoiseModel(0.01, 0.05)
    plan = compile_noise_plan(bound, model)
    # Matching (circuit, model): clean.
    assert not verify_noise_plan(plan, bound, model).has_errors
    # A different model must invalidate the key — fingerprint is folded in.
    report = verify_noise_plan(plan, bound, NoiseModel(0.02, 0.05))
    assert "RPR011" in codes(report)


def test_rpr011_cached_plan_without_fingerprint():
    circuit = QuantumCircuit(1)
    circuit.x(0)
    bound = circuit.bind([])
    model = NoiseModel(0.01, 0.05)
    plan = compile_noise_plan(bound, model)

    class Fingerprintless:
        channels_for = model.channels_for

    report = verify_noise_plan(plan, bound, Fingerprintless())
    assert "RPR011" in codes(report)


# -- pipeline integration ------------------------------------------------------


def test_verify_plan_pass_raises_on_corrupt_lowering(monkeypatch):
    """With REPRO_VERIFY on, a pass that corrupts the plan mid-pipeline is
    caught before any simulator sees it."""
    from repro.compiler.passes import (
        LowerToPlan,
        Pass,
        Pipeline,
        VerifyPlan,
    )

    class CorruptPlan(Pass):
        name = "corrupt"

        def run(self, unit):
            ops = tuple(
                PlanOp(op.qubits, matrix=op.matrix * 2.0)
                if op.is_static
                else op
                for op in unit.plan.ops
            )
            unit.plan = GatePlan(
                unit.plan.num_qubits, ops, unit.plan.parameters,
                unit.plan.param_indices, unit.plan.coeffs, unit.plan.offsets,
                unit.plan.slot_gate_names,
                source_gate_counts=unit.plan.source_gate_counts,
            )
            return unit

    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    pipeline = Pipeline([LowerToPlan(), CorruptPlan(), VerifyPlan()])
    with pytest.raises(PlanVerificationError) as excinfo:
        pipeline.compile(circuit)
    assert any(d.code == "RPR005" for d in excinfo.value.report)


def test_verify_gated_by_env(monkeypatch):
    from repro.compiler.passes import default_pipeline

    monkeypatch.setenv("REPRO_VERIFY", "0")
    assert all(p.name != "verify" for p in default_pipeline().passes)
    monkeypatch.setenv("REPRO_VERIFY", "1")
    assert any(p.name == "verify" for p in default_pipeline().passes)


def test_compile_noise_plan_verifies_under_env(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "1")

    class BrokenModel(NoiseModel):
        def channels_for(self, gate_name, qubits):
            for kraus, target in super().channels_for(gate_name, qubits):
                yield [k * 1.3 for k in kraus], target

    circuit = QuantumCircuit(1)
    circuit.x(0)
    with pytest.raises(PlanVerificationError) as excinfo:
        compile_noise_plan(circuit.bind([]), BrokenModel(0.05, 0.1))
    assert any(d.code == "RPR006" for d in excinfo.value.report)


def test_verified_ansatz_compiles_through_pipeline(monkeypatch):
    """An end-to-end compile of a real ansatz under REPRO_VERIFY=1."""
    monkeypatch.setenv("REPRO_VERIFY", "1")
    ansatz = EfficientSU2(4, reps=2)
    plan = compile_plan(ansatz.circuit, ansatz.parameters, cache=False)
    assert plan.num_parameters == ansatz.num_parameters


def test_severity_ordering():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
