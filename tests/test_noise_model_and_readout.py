import numpy as np
import pytest

from repro.circuits.library import bell_pair, random_circuit
from repro.noise.noise_model import GateError, NoiseModel
from repro.noise.readout import ReadoutError, ReadoutMitigator
from repro.simulator.density_matrix import DensityMatrixSimulator


def test_survival_factor_counts_gates():
    nm = NoiseModel(single_qubit_error=0.01, two_qubit_error=0.1)
    circuit = bell_pair()  # 1 single + 1 two-qubit gate
    assert nm.survival_factor(circuit) == pytest.approx(0.99 * 0.9)
    assert nm.survival_factor_from_counts(1, 1) == pytest.approx(0.99 * 0.9)


def test_gate_overrides():
    nm = NoiseModel(0.01, 0.1, gate_overrides={"h": 0.0})
    assert nm.error_probability("h", 1) == 0.0
    assert nm.error_probability("x", 1) == 0.01
    assert nm.error_probability("cx", 2) == 0.1


def test_ideal_model_has_no_channels():
    nm = NoiseModel.ideal()
    assert list(nm.channels_for("cx", (0, 1))) == []
    assert nm.survival_factor(random_circuit(3, 20, seed=0)) == 1.0


def test_global_depolarizing_approximation_matches_density_matrix():
    """The energy-level lambda model vs the true Kraus simulation.

    For depolarizing-per-gate noise on a traceless observable, the
    survival-factor model is close to exact density-matrix results for
    shallow circuits — validating the transient backend's static model.
    """
    from repro.hamiltonians.tfim import tfim_hamiltonian
    from repro.simulator.statevector import simulate_statevector

    circuit = random_circuit(3, 12, seed=21, two_qubit_fraction=0.3)
    ham = tfim_hamiltonian(3)
    nm = NoiseModel(0.002, 0.02)

    dm = DensityMatrixSimulator(3)
    rho = dm.run_circuit(circuit, noise_model=nm)
    noisy_energy = dm.expectation(rho, ham.to_matrix())

    sv = simulate_statevector(circuit)
    ideal_energy = ham.expectation(sv)
    approx = nm.survival_factor(circuit) * ideal_energy

    scale = max(1.0, abs(ideal_energy))
    assert abs(noisy_energy - approx) / scale < 0.1


def test_gate_error_kraus_cptp():
    from repro.noise.channels import is_cptp

    assert is_cptp(GateError(0.05, 1).kraus())
    assert is_cptp(GateError(0.05, 2).kraus())


def test_readout_confusion_matrix_columns_sum_to_one():
    err = ReadoutError([0.02, 0.05], [0.03, 0.01])
    matrix = err.confusion_matrix()
    assert np.allclose(matrix.sum(axis=0), 1.0)
    assert matrix.shape == (4, 4)


def test_readout_applies_expected_bias():
    err = ReadoutError.uniform(1, 0.1)
    probs = err.apply_to_probabilities(np.array([1.0, 0.0]))
    assert probs[1] == pytest.approx(0.1)


def test_mitigation_inverts_corruption():
    err = ReadoutError([0.03, 0.08], [0.05, 0.02])
    mitigator = ReadoutMitigator(err)
    true = np.array([0.5, 0.25, 0.125, 0.125])
    noisy = err.apply_to_probabilities(true)
    recovered = mitigator.mitigate_probabilities(noisy)
    assert np.allclose(recovered, true, atol=1e-10)


def test_mitigate_counts_normalized():
    err = ReadoutError.uniform(2, 0.05)
    mitigator = ReadoutMitigator(err)
    quasi = mitigator.mitigate_counts({"00": 900, "01": 50, "10": 40, "11": 10})
    assert sum(quasi.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in quasi.values())


def test_corrupt_counts_preserves_shots():
    err = ReadoutError.uniform(2, 0.2)
    noisy = err.corrupt_counts({"00": 100}, seed=1)
    assert sum(noisy.values()) == 100


def test_readout_validation():
    with pytest.raises(ValueError):
        ReadoutError([0.1], [0.1, 0.2])
    with pytest.raises(ValueError):
        ReadoutError([1.5], [0.0])


# -- fingerprint cache-key soundness -------------------------------------------


class _PermutedKrausModel(NoiseModel):
    """Same error strengths; optionally emits Kraus operators reversed."""

    def __init__(self, *args, flip=False, **kwargs):
        super().__init__(*args, **kwargs)
        self.flip = flip

    def channels_for(self, gate_name, qubits):
        for kraus, target in super().channels_for(gate_name, qubits):
            yield (list(reversed(kraus)) if self.flip else kraus), target


def test_fingerprint_stable_and_content_sensitive():
    assert NoiseModel(0.01, 0.05).fingerprint() == NoiseModel(0.01, 0.05).fingerprint()
    assert NoiseModel(0.01, 0.05).fingerprint() != NoiseModel(0.02, 0.05).fingerprint()
    assert (
        NoiseModel(0.01, 0.05).fingerprint()
        != NoiseModel(0.01, 0.05, gate_overrides={"rz": 0.0}).fingerprint()
    )


def test_fingerprint_distinguishes_kraus_operator_order():
    """Cache-key soundness the plan verifier (RPR011) assumes: two models
    differing only in the *order* of their Kraus operators must not share
    cached noise plans — the stacked arrays (and the trajectory engine's
    branch draws) differ."""
    plain = _PermutedKrausModel(0.01, 0.05)
    flipped = _PermutedKrausModel(0.01, 0.05, flip=True)
    assert plain.fingerprint() != flipped.fingerprint()
    # Same class, same flip: still stable.
    assert plain.fingerprint() == _PermutedKrausModel(0.01, 0.05).fingerprint()


def test_fingerprint_distinguishes_subclass_channel_rewrites():
    """A subclass that changes channels_for cannot collide with the base
    model's cache entries even with identical dataclass fields."""
    assert (
        _PermutedKrausModel(0.01, 0.05).fingerprint()
        != NoiseModel(0.01, 0.05).fingerprint()
    )
