import pytest

from repro.core.estimator import TransientEstimate, estimate_transient
from repro.core.policies import (
    AlwaysAcceptPolicy,
    CFARPolicy,
    GradientFaithfulPolicy,
    OnlyTransientsPolicy,
)


def test_estimator_equations_match_fig8():
    # Em(i) = -5.0; rerun EmR(i) = -4.2 (transient +0.8); Em(i+1) = -4.0.
    est = estimate_transient(em_prev=-5.0, em_rerun=-4.2, em_new=-4.0)
    assert est.tm == pytest.approx(0.8)       # Tm = EmR - Em
    assert est.gm == pytest.approx(1.0)       # Gm = Em(i+1) - Em(i)
    assert est.ep == pytest.approx(-4.8)      # Ep = Em(i+1) - Tm
    assert est.gp == pytest.approx(0.2)       # Gp = Ep - Em(i)


def test_gradient_agreement():
    agree = TransientEstimate(0.0, 0.0, 1.0)
    assert agree.gradients_agree
    # positive Gm but transient-dominated: Gp negative
    flip = TransientEstimate(0.0, 2.0, 1.0)
    assert flip.gm > 0 and flip.gp < 0
    assert not flip.gradients_agree
    # zero gradient counts as agreement
    flat = TransientEstimate(0.0, 0.5, 0.0)
    assert flat.gradients_agree is (flat.gm * flat.gp >= 0)


def test_fig9_scenarios():
    """The six controller scenarios of the paper's Fig. 9."""
    policy = GradientFaithfulPolicy()
    tau = 0.1
    # (a)/(b): both gradients positive -> accept
    assert policy.accepts(TransientEstimate(0.0, 0.2, 1.0), tau)
    # (d)/(e): both negative -> accept
    assert policy.accepts(TransientEstimate(0.0, -0.2, -1.0), tau)
    # (c): machine positive, predicted negative, beyond threshold -> reject
    assert not policy.accepts(TransientEstimate(0.0, 1.5, 1.0), tau)
    # (f): machine negative, predicted positive -> reject
    assert not policy.accepts(TransientEstimate(0.0, -1.5, -1.0), tau)
    # threshold region: small swings always accepted even if signs differ
    small = TransientEstimate(0.0, 0.08, 0.05)
    assert small.gm > 0 and small.gp < 0
    assert policy.accepts(small, tau)


def test_fig9_invariance_to_energy_offset():
    policy = GradientFaithfulPolicy()
    base = TransientEstimate(0.0, 1.5, 1.0)
    shifted = TransientEstimate(-7.0, -5.5, -6.0)
    assert policy.accepts(base, 0.1) == policy.accepts(shifted, 0.1)


def test_always_accept():
    policy = AlwaysAcceptPolicy()
    assert policy.accepts(TransientEstimate(0.0, 99.0, -99.0), 0.0)


def test_only_transients_threshold():
    policy = OnlyTransientsPolicy()
    small = TransientEstimate(0.0, 0.05, -1.0)
    big = TransientEstimate(0.0, 0.5, -1.0)
    assert policy.accepts(small, tau=0.1)
    assert not policy.accepts(big, tau=0.1)


def test_only_transients_ignores_direction():
    # constructive transient (helps the objective) still rejected on size —
    # the flaw the paper highlights in Section 5.3.
    policy = OnlyTransientsPolicy()
    constructive = TransientEstimate(0.0, -0.5, -0.6)
    assert not policy.accepts(constructive, tau=0.1)


def test_cfar_flags_outlier_after_warmup():
    policy = CFARPolicy(window=8, alarm_factor=3.0)
    quiet = TransientEstimate(0.0, 0.05, 0.0)
    for _ in range(8):
        assert policy.accepts(quiet, tau=0.0)
    outlier = TransientEstimate(0.0, 5.0, 0.0)
    assert not policy.accepts(outlier, tau=0.0)


def test_cfar_validation():
    with pytest.raises(ValueError):
        CFARPolicy(window=1)
    with pytest.raises(ValueError):
        CFARPolicy(alarm_factor=1.0)
