"""Job store: lifecycle transitions, dedupe, persistence, telemetry rollup."""

import pytest

from repro.fleet.store import DONE, FAILED, QUEUED, RUNNING, JobStore
from repro.runtime import RunSpec, SerialExecutor


def _spec(seed=3, scheme="noise-free"):
    return RunSpec(app="App1", scheme=scheme, iterations=3, seed=seed)


def _result(spec):
    return SerialExecutor().run([spec])[0]


def test_enqueue_new_job_is_queued():
    with JobStore() as store:
        spec = _spec()
        record = store.enqueue(spec, tick=5)
        assert record.status == QUEUED
        assert record.submitted_tick == 5
        fetched = store.fetch(spec.run_id)
        assert fetched.spec == spec
        assert fetched.status == QUEUED


def test_full_lifecycle_and_result_roundtrip():
    with JobStore() as store:
        spec = _spec()
        store.enqueue(spec)
        store.mark_running(spec.run_id, "toronto", tick=1)
        assert store.fetch(spec.run_id).status == RUNNING
        assert store.fetch(spec.run_id).device == "toronto"
        result = _result(spec)
        store.mark_done(spec.run_id, result, tick=2)
        record = store.fetch(spec.run_id)
        assert record.status == DONE and record.finished_tick == 2
        stored = store.result(spec.run_id)
        assert stored == result  # RunResult equality = spec + payload


def test_enqueue_done_job_is_dedupe_hit():
    with JobStore() as store:
        spec = _spec()
        store.enqueue(spec)
        store.mark_done(spec.run_id, _result(spec), tick=1)
        again = store.enqueue(spec, tick=9)
        assert again.is_done
        # nothing was reset: original completion metadata survives
        assert again.finished_tick == 1


def test_enqueue_failed_job_requeues():
    with JobStore() as store:
        spec = _spec()
        store.enqueue(spec)
        store.mark_running(spec.run_id, "cairo", tick=1)
        store.mark_failed(spec.run_id, "boom", tick=2)
        assert store.fetch(spec.run_id).error == "boom"
        record = store.enqueue(spec, tick=3)
        assert record.status == QUEUED
        assert record.error is None and record.defers == 0


def test_invalid_transition_rejected():
    with JobStore() as store:
        spec = _spec()
        store.enqueue(spec)
        store.mark_done(spec.run_id, _result(spec), tick=1)
        with pytest.raises(ValueError):
            store.mark_running(spec.run_id, "toronto", tick=2)
        with pytest.raises(KeyError):
            store.mark_running("no-such-job", "toronto", tick=2)


def test_record_defer_increments():
    with JobStore() as store:
        spec = _spec()
        store.enqueue(spec)
        store.record_defer(spec.run_id)
        store.record_defer(spec.run_id, count=3)
        assert store.fetch(spec.run_id).defers == 4
        with pytest.raises(ValueError):
            store.record_defer(spec.run_id, count=0)


def test_counts_jobs_and_run_ids():
    with JobStore() as store:
        done_spec, queued_spec = _spec(1), _spec(2)
        store.enqueue(done_spec)
        store.enqueue(queued_spec)
        store.mark_done(done_spec.run_id, _result(done_spec), tick=1)
        counts = store.counts()
        assert counts == {QUEUED: 1, RUNNING: 0, DONE: 1, FAILED: 0}
        assert [r.run_id for r in store.jobs(status=DONE)] == [done_spec.run_id]
        assert store.run_ids(status=DONE) == [done_spec.run_id]
        assert len(store.run_ids()) == 2
        with pytest.raises(ValueError):
            store.jobs(status="bogus")


def test_persistence_across_reopen(tmp_path):
    db = tmp_path / "fleet.db"
    spec = _spec()
    result = _result(spec)
    with JobStore(db) as store:
        store.enqueue(spec)
        store.mark_done(spec.run_id, result, tick=4)
    with JobStore(db) as store:
        assert store.fetch(spec.run_id).is_done
        assert store.result(spec.run_id) == result


def test_requeue_running_recovers_crashed_jobs(tmp_path):
    db = tmp_path / "fleet.db"
    spec = _spec()
    with JobStore(db) as store:
        store.enqueue(spec)
        store.mark_running(spec.run_id, "toronto", tick=1)
    with JobStore(db) as store:
        assert store.requeue_running() == 1
        record = store.fetch(spec.run_id)
        assert record.status == QUEUED and record.device is None


def test_result_payload_delegated_to_experiment_store():
    """mark_done hands the payload to the embedded ExperimentStore — the
    jobs table keeps lifecycle only, the store owns content."""
    with JobStore() as store:
        spec = _spec()
        store.enqueue(spec)
        store.mark_running(spec.run_id, "toronto", tick=1)
        store.mark_done(spec.run_id, _result(spec), tick=2)
        stored = store.results.get_stored(spec.run_id)
        assert stored is not None
        assert stored.source == "fleet" and stored.device == "toronto"
        # no inline payload left on the jobs row
        row = store._conn.execute(
            "SELECT result FROM jobs WHERE run_id = ?", (spec.run_id,)
        ).fetchone()
        assert row["result"] is None


def test_legacy_inline_result_backfilled(tmp_path):
    """Rows written before the store era (result JSON inline on the jobs
    table) keep resolving, and the first read migrates them."""
    import json

    db = tmp_path / "fleet.db"
    spec = _spec()
    result = _result(spec)
    with JobStore(db) as store:
        store.enqueue(spec)
        store.mark_done(spec.run_id, result, tick=1)
        # Regress the row to the legacy layout by hand.
        from repro.store import RunQuery

        store.results.prune(RunQuery(run_ids=spec.run_id))
        store._conn.execute(
            "UPDATE jobs SET result = ? WHERE run_id = ?",
            (json.dumps(result.to_dict()), spec.run_id),
        )
        store._conn.commit()
        assert store.results.get(spec.run_id) is None
        fetched = store.result(spec.run_id)
        assert fetched == result
        # the read healed the row into the store ...
        assert store.results.get_stored(spec.run_id) is not None
        # ... and blanked the inline copy.
        row = store._conn.execute(
            "SELECT result FROM jobs WHERE run_id = ?", (spec.run_id,)
        ).fetchone()
        assert row["result"] is None


def test_telemetry_rollup_accumulates(tmp_path):
    db = tmp_path / "fleet.db"
    snapshot = {
        "devices": {
            "toronto": {
                "scheduled": 2, "completed": 2, "failed": 0,
                "deferred": 1, "cache_hits": 0,
            },
        },
        "ticks_elapsed": 7,
    }
    with JobStore(db) as store:
        store.accumulate_telemetry(snapshot)
    with JobStore(db) as store:
        store.accumulate_telemetry(snapshot)
        rollup = store.telemetry()
    assert rollup["devices"]["toronto"]["completed"] == 4
    assert rollup["devices"]["toronto"]["deferred"] == 2
    assert rollup["ticks"] == 14
