import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameter import Parameter


def test_append_and_len():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    assert len(qc) == 2
    assert qc[0].name == "h"
    assert qc[1].qubits == (0, 1)


def test_qubit_range_checks():
    qc = QuantumCircuit(2)
    with pytest.raises(ValueError):
        qc.h(2)
    with pytest.raises(ValueError):
        qc.cx(0, 0)


def test_gate_arity_checks():
    qc = QuantumCircuit(2)
    with pytest.raises(ValueError):
        qc.append("cx", (0,))
    with pytest.raises(ValueError):
        qc.append("rx", (0,), ())
    with pytest.raises(KeyError):
        qc.append("foo", (0,))


def test_parameters_first_appearance_order():
    a, b = Parameter("a"), Parameter("b")
    qc = QuantumCircuit(1)
    qc.ry(b, 0)
    qc.rz(a, 0)
    qc.ry(b * 2.0, 0)
    assert qc.parameters == (b, a)
    assert qc.num_parameters == 2


def test_bind_with_mapping_and_sequence():
    theta = Parameter("t")
    qc = QuantumCircuit(1)
    qc.ry(theta, 0)
    bound_map = qc.bind({theta: 0.5})
    bound_seq = qc.bind([0.5])
    assert bound_map[0].params == (0.5,)
    assert bound_seq[0].params == (0.5,)
    assert bound_map.num_parameters == 0


def test_bind_expression():
    theta = Parameter("t")
    qc = QuantumCircuit(1)
    qc.rz(2.0 * theta + 1.0, 0)
    assert qc.bind({theta: 2.0})[0].params == (5.0,)


def test_compose_with_mapping():
    inner = QuantumCircuit(2)
    inner.cx(0, 1)
    outer = QuantumCircuit(3)
    outer.compose(inner, qubits=[2, 0])
    assert outer[0].qubits == (2, 0)


def test_compose_length_mismatch():
    inner = QuantumCircuit(2)
    outer = QuantumCircuit(3)
    with pytest.raises(ValueError):
        outer.compose(inner, qubits=[0])


def test_copy_is_independent():
    qc = QuantumCircuit(1)
    qc.x(0)
    clone = qc.copy()
    clone.x(0)
    assert len(qc) == 1
    assert len(clone) == 2


def test_depth_and_counts():
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.h(1)
    qc.cx(0, 1)
    qc.h(2)
    qc.barrier()
    assert qc.depth() == 2  # parallel Hs then CX; lone H on q2 is depth 1
    assert qc.count_ops()["h"] == 3
    assert qc.num_two_qubit_gates == 1


def test_barrier_defaults_to_all_qubits():
    qc = QuantumCircuit(3)
    qc.barrier()
    assert qc[0].qubits == (0, 1, 2)


def test_repr_mentions_counts():
    qc = QuantumCircuit(2, name="demo")
    text = repr(qc)
    assert "demo" in text and "qubits=2" in text
