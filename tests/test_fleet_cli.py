"""``python -m repro.fleet`` CLI: submit / status / stats / devices."""

import json

import pytest

from repro.fleet.cli import main
from repro.runtime import ExperimentPlan


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "fleet.db")


def _submit(db, *extra):
    return main(
        [
            "submit",
            "--apps", "App1",
            "--schemes", "baseline", "qismet",
            "--iterations", "4",
            "--seeds", "3",
            "--db", db,
            *extra,
        ]
    )


def test_devices_lists_fleet(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    for machine in ("guadalupe", "toronto", "sydney", "jakarta"):
        assert machine in out


def test_submit_then_status_then_stats(db, capsys):
    assert _submit(db) == 0
    out = capsys.readouterr().out
    assert "2 runs" in out and "executed 2" in out

    assert main(["status", "--db", db, "--expect"]) == 0
    out = capsys.readouterr().out
    assert "done=2" in out and "all 2 jobs are 'done'" in out

    assert main(["stats", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "device" in out and "throughput" in out


def test_resubmit_dedupes(db, capsys):
    assert _submit(db) == 0
    capsys.readouterr()
    assert _submit(db) == 0
    out = capsys.readouterr().out
    assert "store hits 2" in out and "executed 0" in out
    assert "cached" in out


def test_submit_from_plan_file(db, tmp_path, capsys):
    plan = ExperimentPlan(
        apps=("App1",), schemes=("noise-free",), iterations=3, name="from-file"
    )
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps(plan.to_dict()))
    assert main(["submit", "--plan", str(plan_file), "--db", db]) == 0
    out = capsys.readouterr().out
    assert "from-file" in out and "1 runs" in out


def test_submit_exports_plan_result(db, tmp_path, capsys):
    out_path = tmp_path / "result.json"
    assert _submit(db, "--export", str(out_path)) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    assert len(payload["runs"]) == 2
    assert payload["plan"]["apps"] == ["App1"]


def test_submit_out_flag_warns_but_still_exports(db, tmp_path, capsys):
    out_path = tmp_path / "result.json"
    with pytest.warns(DeprecationWarning, match="--out is deprecated"):
        assert _submit(db, "--out", str(out_path)) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    assert len(payload["runs"]) == 2


def test_stats_reports_stored_results(db, capsys):
    assert _submit(db) == 0
    capsys.readouterr()
    assert main(["stats", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "stored results: 2" in out


def test_stats_json_serves_rollup(db, capsys):
    assert _submit(db) == 0
    capsys.readouterr()
    assert main(["stats", "--db", db, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["completed"] == 2
    assert payload["stored_results"]["total"] == 2
    assert sum(payload["stored_results"]["by_device"].values()) == 2
    assert payload["ticks"] > 0 and payload["throughput"] > 0
    for counters in payload["devices"].values():
        assert set(counters) == {
            "scheduled", "completed", "failed", "deferred", "cache_hits",
            "retries", "quarantines",
        }


def test_stats_breakdown_matches_store_derived_numbers(db, capsys):
    """The rollup-served breakdown can never go stale vs the store.

    ``stats`` serves stored-result counts from the persisted telemetry
    rollup (no payload decoding); this pins that shortcut against the
    numbers rebuilt the old way — querying the fleet-sourced runs out of
    the result store and counting by device.
    """
    from repro.fleet import JobStore
    from repro.fleet.cli import stats_payload
    from repro.store.query import RunQuery

    assert _submit(db) == 0
    assert _submit(db) == 0  # resubmission: cache hits must not inflate
    capsys.readouterr()
    with JobStore(db) as store:
        payload = stats_payload(store)
        stored = store.results.query_runs(RunQuery(sources="fleet"))
    derived: dict = {}
    for run in stored:
        derived[run.device] = derived.get(run.device, 0) + 1
    assert payload["stored_results"]["by_device"] == derived
    assert payload["stored_results"]["total"] == len(stored)


def test_status_expect_fails_when_not_all_done(db, capsys):
    # empty store: expectation cannot hold
    from repro.fleet import JobStore

    JobStore(db).close()
    assert main(["status", "--db", db, "--expect"]) == 1


def test_status_requires_db(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_FLEET_DB", raising=False)
    assert main(["status"]) == 2
    assert main(["stats"]) == 2


def test_db_from_environment(db, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_FLEET_DB", db)
    assert _submit(db) == 0
    capsys.readouterr()
    assert main(["status", "--expect"]) == 0
