import numpy as np
import pytest

from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.backends.ideal import IdealBackend
from repro.backends.transient import TransientBackend
from repro.core.controller import QismetController
from repro.hamiltonians.tfim import tfim_exact_ground_energy, tfim_hamiltonian
from repro.noise.noise_model import NoiseModel
from repro.noise.transient.trace import TransientTrace
from repro.optimizers.spsa import SPSA, BlockingSPSA
from repro.vqa.objective import EnergyObjective
from repro.vqa.result import IterationRecord, VQEResult
from repro.vqa.vqe import VQE


@pytest.fixture
def objective():
    return EnergyObjective(RealAmplitudes(3, reps=2), tfim_hamiltonian(3))


def test_objective_validates_qubit_match():
    with pytest.raises(ValueError):
        EnergyObjective(RealAmplitudes(2, reps=1), tfim_hamiltonian(3))


def test_objective_energy_between_spectrum(objective):
    lo, hi = objective.hamiltonian.spectral_range()
    for seed in range(5):
        theta = objective.initial_point(seed=seed, scale=1.0)
        energy = objective.ideal_energy(theta)
        assert lo - 1e-9 <= energy <= hi + 1e-9


def test_objective_counts_evaluations(objective):
    theta = objective.initial_point(seed=1)
    objective.ideal_energy(theta)
    objective(theta)
    assert objective.evaluations == 2


def test_objective_gate_counts(objective):
    singles, twos = objective.gate_counts()
    assert singles == 9   # 3 qubits x 3 rotation layers
    assert twos == 4      # 2 reps x 2 linear bonds


def test_vqe_ideal_converges(objective):
    vqe = VQE(objective, IdealBackend(objective), SPSA(a=0.4, stability=10.0, seed=2))
    result = vqe.run(250, seed=3)
    ground = tfim_exact_ground_energy(3)
    assert result.final_true_energy < 0.7 * ground / abs(ground) * abs(ground) + 0.0
    # should close most of the gap on a noiseless backend
    assert result.final_true_energy == pytest.approx(ground, abs=0.6)
    assert result.iterations == 250
    assert result.total_jobs == 3 * 250 - 2  # 3 evals/iter, minus first iter's 2


def test_vqe_records_structure(objective):
    vqe = VQE(objective, IdealBackend(objective), SPSA(seed=1))
    result = vqe.run(5, seed=1)
    assert isinstance(result.records[0], IterationRecord)
    assert result.records[0].index == 0
    assert result.final_theta.shape == (objective.num_parameters,)
    assert len(result.machine_energies) == 5
    assert len(result.true_energies) == 5


def test_vqe_validation(objective):
    vqe = VQE(objective, IdealBackend(objective), SPSA(seed=1))
    with pytest.raises(ValueError):
        vqe.run(0)
    with pytest.raises(ValueError):
        vqe.run(5, theta0=np.zeros(3))
    with pytest.raises(ValueError):
        vqe.run(5, max_jobs=0)


def test_vqe_job_budget_stops_early(objective):
    vqe = VQE(objective, IdealBackend(objective), SPSA(seed=1))
    result = vqe.run(100, seed=1, max_jobs=30)
    assert result.total_jobs <= 33  # may finish the in-flight iteration
    assert result.iterations < 100


def test_vqe_blocking_never_accepts_much_worse(objective):
    vqe = VQE(
        objective, IdealBackend(objective),
        BlockingSPSA(allowed_increase=0.0, seed=4),
    )
    result = vqe.run(60, seed=5)
    energies = result.machine_energies
    assert np.all(np.diff(energies) <= 1e-9)


def test_vqe_with_qismet_controller_runs(objective):
    trace = TransientTrace(
        np.array([0.0] * 10 + [0.6, 0.6] + [0.0] * 200), metadata={"seed": 3.0}
    )
    backend = TransientBackend(
        objective, trace, noise_model=NoiseModel(0.001, 0.01), shots=8192, seed=6
    )
    vqe = VQE(objective, backend, SPSA(seed=7), controller=QismetController())
    result = vqe.run(40, seed=8)
    assert result.iterations == 40
    assert result.total_circuits > result.total_jobs  # reruns present
    assert result.total_retries >= 0


def test_vqe_deterministic(objective):
    def run_once():
        obj = EnergyObjective(RealAmplitudes(3, reps=2), tfim_hamiltonian(3))
        vqe = VQE(obj, IdealBackend(obj), SPSA(seed=11))
        return vqe.run(20, seed=12).machine_energies

    assert np.allclose(run_once(), run_once())


def test_result_tail_energies():
    result = VQEResult()
    for i, e in enumerate([0.0, -1.0, -2.0, -3.0]):
        result.records.append(
            IterationRecord(i, e, e, e, None, None, None, 0, True, True)
        )
    assert result.final_machine_energy == -3.0
    assert result.tail_true_energy(0.5) == pytest.approx(-2.5)
    assert result.tail_machine_energy(1.0) == pytest.approx(-1.5)


def test_result_empty_raises():
    result = VQEResult()
    with pytest.raises(ValueError):
        result.final_machine_energy


def test_result_true_energy_missing():
    result = VQEResult()
    result.records.append(
        IterationRecord(0, 1.0, None, 1.0, None, None, None, 0, True, True)
    )
    with pytest.raises(ValueError):
        result.true_energies
