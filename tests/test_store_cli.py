"""``python -m repro.store`` CLI: info / query / aggregate / maintenance."""

import json

import pytest

from repro.runtime import ExperimentPlan, SerialExecutor
from repro.store import ExperimentStore
from repro.store.cli import main

PLAN = ExperimentPlan(
    apps=("App1",),
    schemes=("baseline", "qismet"),
    iterations=5,
    seeds=(3, 4),
)


@pytest.fixture(scope="module")
def outcome():
    return SerialExecutor().run_plan(PLAN)


@pytest.fixture
def store_path(tmp_path, outcome):
    path = tmp_path / "store.sqlite"
    with ExperimentStore(path) as store:
        for run in outcome:
            store.append(run)
    return str(path)


def test_requires_store_path(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    with pytest.raises(SystemExit, match="no store given"):
        main(["info"])


def test_info(store_path, capsys):
    assert main(["--store", store_path, "info"]) == 0
    out = capsys.readouterr().out
    assert "runs: 4" in out.replace(" ", "").replace("runs:", "runs: ")

    assert main(["--store", store_path, "--json", "info"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["runs"] == 4 and info["apps"] == ["App1"]


def test_query_filters_and_json(store_path, capsys):
    assert main(["--store", store_path, "query"]) == 0
    out = capsys.readouterr().out
    assert "4 run(s)" in out

    assert main(
        ["--store", store_path, "--json", "query", "--scheme", "qismet"]
    ) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 2
    assert all(row["scheme"] == "qismet" for row in rows)


def test_aggregate_direct_and_materialized(store_path, outcome, capsys):
    expected = outcome.geomean_improvements()

    assert main(["--store", store_path, "--json", "aggregate"]) == 0
    direct = json.loads(capsys.readouterr().out)
    assert direct == expected

    assert main(["--store", store_path, "--json", "materialize"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["updated_cells"] == 2

    assert main(
        ["--store", store_path, "--json", "aggregate", "--materialized"]
    ) == 0
    materialized = json.loads(capsys.readouterr().out)
    assert materialized == expected


def test_env_store_resolution(store_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_STORE", store_path)
    assert main(["--json", "info"]) == 0
    assert json.loads(capsys.readouterr().out)["runs"] == 4


def test_compact(store_path, capsys):
    assert main(["--store", store_path, "--json", "compact"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary == {"blobs_removed": 0, "bytes_reclaimed": 0}


def test_import_legacy_strict_flag(tmp_path, capsys):
    legacy = tmp_path / "legacy"
    legacy.mkdir()
    (legacy / "bad.json").write_text("{broken")
    store = str(tmp_path / "store.sqlite")

    assert main(["--store", store, "--json", "import-legacy", str(legacy)]) == 0
    assert json.loads(capsys.readouterr().out)["errors"] == 1

    assert (
        main(
            ["--store", store, "--json", "import-legacy", str(legacy), "--strict"]
        )
        == 1
    )


def test_import_legacy_ingests_cache_dir(tmp_path, outcome, capsys):
    import warnings

    legacy = tmp_path / "cache"
    legacy.mkdir()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for run in outcome:
            run.save(legacy / f"{run.run_id}.json")
    store = str(tmp_path / "store.sqlite")
    assert main(["--store", store, "--json", "import-legacy", str(legacy)]) == 0
    assert json.loads(capsys.readouterr().out)["ingested"] == 4
    assert main(["--store", store, "--json", "query", "--source", "import"]) == 0
    assert len(json.loads(capsys.readouterr().out)) == 4


def test_module_entrypoint(store_path):
    import os
    import subprocess
    import sys
    from pathlib import Path

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.store", "--store", store_path, "info"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "runs" in proc.stdout
