import numpy as np
import pytest

from repro.circuits.library import bell_pair, random_circuit
from repro.noise.channels import depolarizing_kraus
from repro.noise.noise_model import NoiseModel
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.statevector import simulate_statevector


def test_pure_state_matches_statevector():
    circuit = random_circuit(3, 20, seed=4)
    dm = DensityMatrixSimulator(3)
    rho = dm.to_matrix(dm.run_circuit(circuit))
    sv = simulate_statevector(circuit)
    assert np.allclose(rho, np.outer(sv, sv.conj()), atol=1e-10)


def test_trace_preserved_under_noise():
    circuit = random_circuit(2, 15, seed=1)
    dm = DensityMatrixSimulator(2)
    rho = dm.run_circuit(circuit, noise_model=NoiseModel(0.01, 0.05))
    assert np.trace(dm.to_matrix(rho)).real == pytest.approx(1.0, abs=1e-10)


def test_purity_decreases_with_noise():
    circuit = bell_pair()
    dm = DensityMatrixSimulator(2)
    pure = dm.run_circuit(circuit)
    noisy = dm.run_circuit(circuit, noise_model=NoiseModel(0.02, 0.08))
    assert dm.purity(noisy) < dm.purity(pure)
    assert dm.purity(pure) == pytest.approx(1.0, abs=1e-10)


def test_full_depolarizing_gives_maximally_mixed():
    dm = DensityMatrixSimulator(1)
    rho = dm.zero_state()
    rho = dm.apply_kraus(rho, depolarizing_kraus(1.0, 1), (0,))
    assert np.allclose(dm.to_matrix(rho), np.eye(2) / 2, atol=1e-10)


def test_probabilities_sum_to_one():
    circuit = random_circuit(3, 25, seed=2)
    dm = DensityMatrixSimulator(3)
    rho = dm.run_circuit(circuit, noise_model=NoiseModel(0.005, 0.02))
    probs = dm.probabilities(rho)
    assert probs.sum() == pytest.approx(1.0)
    assert np.all(probs >= 0)


def test_expectation_against_statevector():
    circuit = random_circuit(2, 12, seed=8)
    dm = DensityMatrixSimulator(2)
    rho = dm.run_circuit(circuit)
    observable = np.kron([[1, 0], [0, -1]], np.eye(2)).astype(complex)
    sv = simulate_statevector(circuit)
    expected = np.real(np.vdot(sv, observable @ sv))
    assert dm.expectation(rho, observable) == pytest.approx(expected, abs=1e-10)


def test_unbound_circuit_rejected():
    from repro.circuits.circuit import QuantumCircuit
    from repro.circuits.parameter import Parameter

    qc = QuantumCircuit(1)
    qc.rx(Parameter("x"), 0)
    with pytest.raises(ValueError):
        DensityMatrixSimulator(1).run_circuit(qc)


def test_empty_kraus_rejected():
    dm = DensityMatrixSimulator(1)
    with pytest.raises(ValueError):
        dm.apply_kraus(dm.zero_state(), [], (0,))
