"""Seed regression: the default noisy path is bit-identical to pre-plan main.

The expected values below were captured on the per-instruction Kraus-walk
implementation (the state of ``main`` before the vectorized
noisy-execution engine landed). The default ``dm`` engine must reproduce
every sampled count and every counts-derived energy EXACTLY for fixed
seeds — the RNG stream is consumed in the same order and the compiled
noise plan perturbs outcome probabilities only at the reassociation
level (``<= 1e-12``, asserted separately), far below multinomial
sampling sensitivity.

Also hosts the counts-backend validation of the paper's
global-depolarizing approximation, which CI runs under BOTH
``REPRO_NOISY_ENGINE`` values.
"""

import numpy as np

from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.backends.counts import CountsBackend
from repro.circuits.library import random_circuit
from repro.devices.coupling import line_map
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.noise.noise_model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.statevector import simulate_statevector

NOISE = dict(single_qubit_error=0.004, two_qubit_error=0.03)

#: Captured on pre-engine main (per-instruction walk), seeds as below.
COUNTS_PLAIN = {
    "000": 1072, "001": 313, "010": 209, "011": 33,
    "100": 46, "101": 52, "110": 107, "111": 216,
}
COUNTS_PLAIN_SECOND = {
    "000": 302, "001": 66, "010": 41, "011": 10,
    "100": 9, "101": 15, "110": 30, "111": 39,
}
ENERGY_MITIGATED = -2.2409651014539915
COUNTS_DEVICE = {
    "000": 555, "001": 120, "010": 99, "011": 21,
    "100": 34, "101": 26, "110": 56, "111": 113,
}
PROBS_PLAIN = [
    0.5514092276642064, 0.1319417918753058, 0.09542346835015576,
    0.01504684541556045, 0.020487778366282575, 0.02889964456346214,
    0.05616504898977114, 0.10062619477525585,
]
COUNTS_RZFREE = {
    "000": 550, "001": 664, "010": 474, "011": 346,
    "100": 536, "101": 310, "110": 434, "111": 782,
}


def _bound_ansatz():
    ansatz = RealAmplitudes(3, reps=1)
    theta = np.linspace(-0.8, 0.9, ansatz.num_parameters)
    return ansatz.bind(theta)


def test_default_dm_counts_bit_identical_to_main():
    backend = CountsBackend(
        noise_model=NoiseModel(**NOISE), seed=1234, engine="dm"
    )
    circuit = _bound_ansatz()
    assert backend.run(circuit, shots=2048) == COUNTS_PLAIN
    # The SECOND call continues the same RNG stream — both the stream
    # order and the cached-plan numerics must match the historic walk.
    assert backend.run(circuit, shots=512) == COUNTS_PLAIN_SECOND


def test_default_dm_mitigated_energy_bit_identical_to_main():
    backend = CountsBackend(
        noise_model=NoiseModel(**NOISE),
        readout_error=ReadoutError.uniform(3, 0.02),
        mitigate_readout=True,
        seed=77,
        engine="dm",
    )
    energy = backend.estimate_energy(
        _bound_ansatz(), tfim_hamiltonian(3), shots_per_group=4096
    )
    assert energy == ENERGY_MITIGATED


def test_default_dm_device_counts_bit_identical_to_main():
    backend = CountsBackend(
        noise_model=NoiseModel(**NOISE), seed=42, device=line_map(5),
        engine="dm",
    )
    assert backend.run(_bound_ansatz(), shots=1024) == COUNTS_DEVICE


def test_default_dm_rz_override_counts_bit_identical_to_main():
    """Fusion-rich workload (noiseless rz) still reproduces main's counts."""
    model = NoiseModel(**NOISE, gate_overrides={"rz": 0.0})
    circuit = random_circuit(3, 18, seed=5, two_qubit_fraction=0.3)
    backend = CountsBackend(noise_model=model, seed=9, engine="dm")
    assert backend.run(circuit, shots=4096) == COUNTS_RZFREE


def test_dm_probabilities_match_main_to_reassociation():
    """Raw distributions agree to <= 1e-12 (fusion reassociates floats)."""
    backend = CountsBackend(noise_model=NoiseModel(**NOISE), engine="dm")
    probs = backend.probabilities(_bound_ansatz())
    np.testing.assert_allclose(probs, PROBS_PLAIN, atol=1e-12, rtol=0.0)


def test_dm_engine_matches_legacy_walk_exactly():
    """Plan-based dm execution vs the preserved per-instruction walk."""
    circuit = random_circuit(3, 16, seed=31)
    model = NoiseModel(**NOISE)
    dm = DensityMatrixSimulator(3)
    walk = dm.run_circuit_walk(circuit, model)
    planned = dm.run_circuit(circuit, noise_model=model)
    np.testing.assert_allclose(planned, walk, atol=1e-12, rtol=0.0)


def test_counts_backend_validates_global_depolarizing_approximation():
    """The paper's lambda model vs the full shot-level pipeline.

    Engine-agnostic: honors ``REPRO_NOISY_ENGINE``, so the CI matrix
    exercises it under both the density-matrix and the trajectory
    engine (the trajectory estimate carries extra sampling error, well
    inside the validation tolerance at the default ensemble size).
    """
    circuit = random_circuit(3, 12, seed=21, two_qubit_fraction=0.3)
    ham = tfim_hamiltonian(3)
    model = NoiseModel(0.002, 0.02)
    backend = CountsBackend(noise_model=model, seed=11)
    noisy_energy = backend.estimate_energy(
        circuit, ham, shots_per_group=400_000
    )
    ideal_energy = ham.expectation(simulate_statevector(circuit))
    approx = model.survival_factor(circuit) * ideal_energy
    scale = max(1.0, abs(ideal_energy))
    assert abs(noisy_energy - approx) / scale < 0.1
