"""Round-trips for the serializable result layer.

VQEResult / IterationRecord / ComparisonResult / RunResult survive
``to_dict`` -> JSON -> ``from_dict`` bit-equal, including optional fields
(``tm``, ``true_energy``, ``final_theta``) set to ``None``.
"""

import json

import numpy as np
import pytest

from repro.experiments.runner import ComparisonResult
from repro.runtime import RunResult, RunSpec
from repro.vqa.result import IterationRecord, VQEResult


def _record(index, *, tm=0.25, true_energy=-1.5):
    return IterationRecord(
        index=index,
        machine_energy=-1.0 + 0.1 * index,
        true_energy=true_energy,
        candidate_energy=-0.9,
        tm=tm,
        gm=None,
        gp=None,
        retries=index % 3,
        accepted_by_controller=True,
        accepted_by_optimizer=bool(index % 2),
    )


def _result(n=5, *, theta=True, tm=0.25, true_energy=-1.5):
    return VQEResult(
        records=[_record(i, tm=tm, true_energy=true_energy) for i in range(n)],
        final_theta=np.array([0.1, -0.2, 0.3]) if theta else None,
        total_jobs=3 * n,
        total_circuits=6 * n,
        total_retries=2,
        forced_accepts=1,
    )


def _json_round_trip(payload):
    return json.loads(json.dumps(payload))


def test_iteration_record_round_trip():
    record = _record(4)
    back = IterationRecord.from_dict(_json_round_trip(record.to_dict()))
    assert back == record


def test_iteration_record_round_trip_none_fields():
    record = _record(0, tm=None, true_energy=None)
    back = IterationRecord.from_dict(_json_round_trip(record.to_dict()))
    assert back == record
    assert back.tm is None and back.true_energy is None


def test_vqe_result_round_trip_bit_equal():
    result = _result()
    back = VQEResult.from_dict(_json_round_trip(result.to_dict()))
    assert back.records == result.records
    assert np.array_equal(back.final_theta, result.final_theta)
    assert back.to_dict() == result.to_dict()
    # derived quantities agree exactly
    assert back.tail_true_energy() == result.tail_true_energy()
    assert np.array_equal(back.machine_energies, result.machine_energies)
    assert back.summary() == result.summary()


def test_vqe_result_round_trip_none_theta_and_energies():
    result = _result(theta=False, tm=None, true_energy=None)
    back = VQEResult.from_dict(_json_round_trip(result.to_dict()))
    assert back.final_theta is None
    assert back.to_dict() == result.to_dict()
    with pytest.raises(ValueError):
        back.true_energies  # still untracked after the round trip


def test_comparison_result_round_trip():
    comp = ComparisonResult(
        app_name="App1",
        ground_truth=-7.3,
        results={"baseline": _result(), "qismet": _result(8)},
    )
    back = ComparisonResult.from_dict(_json_round_trip(comp.to_dict()))
    assert back.app_name == comp.app_name
    assert back.ground_truth == comp.ground_truth
    assert set(back.results) == set(comp.results)
    assert back.to_dict() == comp.to_dict()
    assert back.improvements() == comp.improvements()
    assert back.final_energies() == comp.final_energies()


def test_run_result_round_trip():
    spec = RunSpec(app="App1", scheme="baseline", iterations=5, seed=3)
    run = RunResult(spec=spec, result=_result(), ground_truth=-7.3, elapsed_s=1.5)
    back = RunResult.from_dict(_json_round_trip(run.to_dict()))
    assert back == run  # elapsed_s/from_cache excluded from equality
    assert back.run_id == run.run_id
    assert back.to_dict()["result"] == run.to_dict()["result"]
