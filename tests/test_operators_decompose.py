import numpy as np
import pytest

from repro.operators.decompose import pauli_coefficients, pauli_decompose
from repro.operators.pauli import pauli_matrix
from repro.operators.pauli_sum import PauliSum


def test_round_trip():
    original = PauliSum([(0.5, "XZ"), (-1.25, "YI"), (0.75, "II")])
    recovered = pauli_decompose(original.to_matrix())
    recovered_map = {t.pauli.label: t.coefficient for t in recovered.terms}
    for term in original.terms:
        assert recovered_map[term.pauli.label] == pytest.approx(term.coefficient)


def test_random_hermitian_reconstruction():
    rng = np.random.default_rng(3)
    raw = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
    hermitian = raw + raw.conj().T
    decomposed = pauli_decompose(hermitian)
    assert np.allclose(decomposed.to_matrix(), hermitian, atol=1e-9)


def test_non_hermitian_rejected():
    matrix = np.array([[0, 1], [0, 0]], dtype=complex)
    with pytest.raises(ValueError):
        pauli_decompose(matrix)


def test_non_power_of_two_rejected():
    with pytest.raises(ValueError):
        pauli_decompose(np.eye(3))
    with pytest.raises(ValueError):
        pauli_decompose(np.ones((2, 4)))


def test_single_pauli_isolated():
    coefficients = pauli_coefficients(3.0 * pauli_matrix("ZX"))
    assert coefficients == {"ZX": pytest.approx(3.0)}


def test_zero_matrix():
    decomposed = pauli_decompose(np.zeros((2, 2)))
    assert decomposed.terms[0].coefficient == 0.0
