"""The GatePlan IR, vectorized binding, and the shared plan cache.

Fusion *correctness* (fused vs unfused parity across simulators) lives in
``tests/test_compiler_fusion.py``; this module covers the structural
contracts: lowering equivalence with the legacy ``CompiledProgram`` path,
the one-affine-map binding, cache keying/LRU behavior, and the
``REPRO_FUSION`` / ``REPRO_PLAN_CACHE`` knobs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.parameter import Parameter
from repro.circuits.program import compile_circuit
from repro.compiler import (
    PLAN_CACHE,
    GatePlan,
    clear_plan_cache,
    compile_plan,
    fusion_enabled,
    lower_program,
    plan_cache_stats,
)
from repro.simulator.statevector import StatevectorSimulator


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _param_circuit() -> QuantumCircuit:
    a, b = Parameter("a"), Parameter("b")
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.ry(a, 0)
    qc.cx(0, 1)
    qc.rz(2 * b + 0.5, 2)
    qc.sx(1)
    qc.rx(b, 1)
    qc.crz(-1.0 * a + 0.25, 1, 2)
    return qc


# -- lowering --------------------------------------------------------------------


def test_lowering_matches_compiled_program_exactly():
    qc = _param_circuit()
    program = compile_circuit(qc)
    plan = lower_program(program)
    theta = np.array([0.31, -1.7])
    plan_mats = list(plan.op_matrices(theta))
    prog_mats = program.op_matrices(theta)
    assert len(plan_mats) == len(prog_mats)
    for (q_plan, m_plan), (q_prog, m_prog) in zip(plan_mats, prog_mats):
        assert q_plan == q_prog
        np.testing.assert_array_equal(m_plan, m_prog)


def test_plan_records_source_gate_counts():
    qc = _param_circuit()
    plan = compile_plan(qc, fusion=True, cache=False)
    # 5 single-qubit ops + cx + crz, regardless of fusion.
    assert plan.source_gate_counts == (5, 2)
    assert plan.num_1q_gates == 5
    assert plan.num_2q_gates == 2


def test_barriers_are_dropped_in_lowering():
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.barrier()
    qc.cx(0, 1)
    plan = compile_plan(qc, fusion=False, cache=False)
    assert len(plan.ops) == 2


# -- vectorized binding ----------------------------------------------------------


def test_bind_angles_is_affine_map():
    qc = _param_circuit()
    plan = compile_plan(qc, fusion=False, cache=False)
    theta = np.array([0.4, 1.1])
    angles = plan.bind_angles(theta)
    expected = plan.coeffs * theta[plan.param_indices] + plan.offsets
    np.testing.assert_array_equal(angles, expected)
    # ry(a), rz(2b+0.5), rx(b), crz(-a+0.25)
    np.testing.assert_allclose(
        angles, [0.4, 2 * 1.1 + 0.5, 1.1, -0.4 + 0.25], atol=1e-15
    )


def test_bind_angles_batch_matches_rowwise():
    qc = _param_circuit()
    plan = compile_plan(qc, cache=False)
    rng = np.random.default_rng(7)
    thetas = rng.uniform(-np.pi, np.pi, (5, plan.num_parameters))
    batch = plan.bind_angles_batch(thetas)
    assert batch.shape == (5, plan.num_param_ops)
    for i, theta in enumerate(thetas):
        np.testing.assert_array_equal(batch[i], plan.bind_angles(theta))


def test_bind_angles_validates_shape():
    plan = compile_plan(_param_circuit(), cache=False)
    with pytest.raises(ValueError, match="expected 2 parameters"):
        plan.bind_angles(np.zeros(3))
    with pytest.raises(ValueError, match=r"expected thetas of shape \(B, 2\)"):
        plan.bind_angles_batch(np.zeros((4, 3)))


def test_compiled_program_op_matrices_still_validates():
    program = compile_circuit(_param_circuit())
    with pytest.raises(ValueError, match="expected 2 parameters"):
        program.op_matrices(np.zeros(5))


def test_vectorized_program_matches_scalar_constructors():
    # The shim's kind-grouped stacked builders must be bit-identical to
    # the old per-op scalar path.
    from repro.circuits.gates import GATES

    qc = _param_circuit()
    program = compile_circuit(qc)
    theta = np.array([-0.9, 2.2])
    for op, (qubits, matrix) in zip(program.ops, program.op_matrices(theta)):
        assert qubits == op.qubits
        if op.matrix is not None:
            np.testing.assert_array_equal(matrix, op.matrix)
        else:
            angle = op.coeff * theta[op.param_index] + op.offset
            np.testing.assert_array_equal(
                matrix, GATES[op.gate_name].matrix((angle,))
            )


# -- plan cache ------------------------------------------------------------------


def test_repeated_compile_hits_cache():
    qc = random_circuit(3, 12, seed=3)
    first = compile_plan(qc)
    before = plan_cache_stats()
    second = compile_plan(qc)
    after = plan_cache_stats()
    assert first is second
    assert after["hits"] == before["hits"] + 1


def test_structurally_identical_circuits_share_plans():
    plan_a = EfficientSU2(4, reps=2).plan
    plan_b = EfficientSU2(4, reps=2).plan
    assert plan_a is plan_b
    assert EfficientSU2(4, reps=3).plan is not plan_a


def test_run_circuit_is_compile_free_on_repeat():
    qc = random_circuit(4, 20, seed=11).copy()
    sim = StatevectorSimulator(4)
    first = sim.run_circuit(qc)
    misses_after_first = plan_cache_stats()["misses"]
    for _ in range(3):
        again = sim.run_circuit(qc)
    assert plan_cache_stats()["misses"] == misses_after_first
    np.testing.assert_array_equal(first, again)


def test_cache_lru_eviction(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_CACHE", "2")
    clear_plan_cache()
    circuits = [random_circuit(2, 6, seed=s) for s in range(3)]
    for qc in circuits:
        compile_plan(qc)
    stats = plan_cache_stats()
    assert stats["size"] == 2
    assert stats["evictions"] == 1
    # Oldest entry (seed 0) was evicted: recompiling it misses.
    misses = plan_cache_stats()["misses"]
    compile_plan(circuits[0])
    assert plan_cache_stats()["misses"] == misses + 1


def test_cache_disabled_via_env(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
    clear_plan_cache()
    qc = random_circuit(2, 5, seed=1)
    first = compile_plan(qc)
    second = compile_plan(qc)
    assert first is not second
    assert plan_cache_stats()["size"] == 0


def test_cache_keys_separate_fused_and_unfused():
    qc = random_circuit(3, 15, seed=9)
    fused = compile_plan(qc, fusion=True)
    unfused = compile_plan(qc, fusion=False)
    assert fused is not unfused
    assert fused.fused and not unfused.fused
    assert len(PLAN_CACHE) == 2


# -- REPRO_FUSION kill switch ----------------------------------------------------


def test_fusion_env_kill_switch(monkeypatch):
    monkeypatch.delenv("REPRO_FUSION", raising=False)
    assert fusion_enabled()
    for value in ("0", "off", "false", "no"):
        monkeypatch.setenv("REPRO_FUSION", value)
        assert not fusion_enabled()
    monkeypatch.setenv("REPRO_FUSION", "1")
    assert fusion_enabled()


def test_fusion_disabled_produces_unfused_plan(monkeypatch):
    qc = random_circuit(3, 20, seed=5)
    fused = compile_plan(qc, cache=False)
    monkeypatch.setenv("REPRO_FUSION", "0")
    unfused = compile_plan(qc, cache=False)
    assert not unfused.fused
    assert len(unfused.ops) == len(compile_circuit(qc).ops)
    assert len(fused.ops) < len(unfused.ops)


def test_plan_repr_and_key():
    qc = random_circuit(2, 4, seed=2)
    plan = compile_plan(qc)
    assert isinstance(plan, GatePlan)
    assert plan.key and plan.key.startswith("plan:")
    assert "GatePlan" in repr(plan)
