"""Channel-aware noise-plan lowering, fusion, and stacked-Kraus parity."""

import numpy as np
import pytest

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.circuits.library import random_circuit
from repro.compiler import (
    ChannelOp,
    clear_plan_cache,
    compile_noise_plan,
    fuse_noise_plan,
    lower_noise_plan,
    noise_fingerprint,
    plan_cache_stats,
)
from repro.compiler.noise_plan import absorb_unitaries, kraus_superoperator
from repro.noise.channels import (
    amplitude_damping_kraus,
    depolarizing_kraus,
    thermal_relaxation_kraus,
)
from repro.noise.noise_model import NoiseModel
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.transpiler.basis import translate_to_basis


def _native_circuit(num_qubits=4, reps=2, seed=3):
    ansatz = EfficientSU2(num_qubits, reps=reps)
    theta = np.random.default_rng(seed).uniform(
        -np.pi, np.pi, ansatz.num_parameters
    )
    return translate_to_basis(ansatz.bind(theta))


def test_lowering_interleaves_channels_with_gates():
    circuit = random_circuit(3, 12, seed=0)
    nm = NoiseModel(0.01, 0.05)
    plan = lower_noise_plan(circuit, nm)
    gates = sum(1 for inst in circuit if inst.name != "barrier")
    assert plan.num_unitary_ops == gates
    assert plan.num_channels == gates  # uniform model: one channel per gate
    assert plan.source_gate_counts == (
        sum(1 for i in circuit if i.name != "barrier" and len(i.qubits) == 1),
        sum(1 for i in circuit if len(i.qubits) == 2),
    )


def test_channel_ops_carry_stacked_kraus_and_superop():
    circuit = random_circuit(3, 10, seed=1)
    plan = lower_noise_plan(circuit, NoiseModel(0.01, 0.05))
    for op in plan.ops:
        if isinstance(op, ChannelOp):
            k = len(op.qubits)
            assert op.kraus.shape == (op.num_kraus, 2**k, 2**k)
            assert op.superop.shape == (4**k, 4**k)
            assert op.matrix is None


def test_identical_channel_sites_share_one_stacked_array():
    circuit = random_circuit(3, 20, seed=2, two_qubit_fraction=0.0)
    plan = lower_noise_plan(circuit, NoiseModel(0.01, 0.05))
    stacks = {
        id(op.kraus) for op in plan.ops if isinstance(op, ChannelOp)
    }
    assert len(stacks) == 1  # every 1q depolarizing site shares one array


def test_kraus_superoperator_matches_definition():
    for kraus in (
        depolarizing_kraus(0.07, 1),
        depolarizing_kraus(0.12, 2),
        amplitude_damping_kraus(0.2),
        thermal_relaxation_kraus(40.0, 60.0, 0.5),
    ):
        stack = np.asarray(kraus)
        # kron(K, conj(K)) indexes as [(i,l),(j,k)] = K[i,j] conj(K)[l,k],
        # exactly the combined ket/bra layout the simulator contracts.
        expected = sum(np.kron(k, k.conj()) for k in stack)
        np.testing.assert_allclose(
            kraus_superoperator(stack), expected, atol=1e-14
        )


def test_fusion_merges_runs_between_channel_sites():
    circuit = _native_circuit()
    nm = NoiseModel(0.004, 0.03, gate_overrides={"rz": 0.0})
    unfused = lower_noise_plan(circuit, nm)
    fused = fuse_noise_plan(unfused)
    assert fused.fused and not unfused.fused
    assert len(fused.ops) < len(unfused.ops)
    assert fused.num_channels == unfused.num_channels
    assert fused.source_gate_counts == unfused.source_gate_counts


def test_absorption_folds_gate_into_following_channel():
    circuit = _native_circuit()
    nm = NoiseModel(0.004, 0.03)  # uniform: every gate carries a channel
    fused = fuse_noise_plan(lower_noise_plan(circuit, nm))
    # Each (gate, channel) pair collapsed into one channel site.
    assert fused.num_unitary_ops == 0
    assert fused.num_channels == sum(
        1 for inst in circuit if inst.name != "barrier"
    )


def test_absorb_unitaries_is_semantics_preserving():
    circuit = random_circuit(4, 24, seed=9)
    nm = NoiseModel(0.01, 0.05)
    plain = lower_noise_plan(circuit, nm)
    absorbed = plain.__class__(
        plain.num_qubits,
        absorb_unitaries(plain.ops),
        source_gate_counts=plain.source_gate_counts,
    )
    dm = DensityMatrixSimulator(4)
    np.testing.assert_allclose(
        dm.run_noise_plan(absorbed),
        dm.run_noise_plan(plain),
        atol=1e-12,
        rtol=0.0,
    )


@pytest.mark.parametrize("overrides", [{}, {"rz": 0.0}])
def test_fused_noise_plan_parity_with_unfused_walk(overrides):
    """Channel-aware fusion parity <= 1e-12 vs the per-instruction walk."""
    circuit = _native_circuit()
    nm = NoiseModel(0.004, 0.03, gate_overrides=overrides)
    dm = DensityMatrixSimulator(circuit.num_qubits)
    walk = dm.run_circuit_walk(circuit, nm)
    fused = dm.run_noise_plan(compile_noise_plan(circuit, nm, cache=False))
    np.testing.assert_allclose(fused, walk, atol=1e-12, rtol=0.0)


def test_stacked_apply_kraus_matches_explicit_loop():
    """Vectorized apply_kraus parity <= 1e-12 vs the operator loop."""
    dm = DensityMatrixSimulator(4)
    rho = dm.run_circuit_walk(random_circuit(4, 10, seed=5), NoiseModel(0.01, 0.05))
    cases = [
        (depolarizing_kraus(0.1, 1), (2,)),
        (depolarizing_kraus(0.2, 2), (0, 3)),
        (amplitude_damping_kraus(0.3), (1,)),
        (thermal_relaxation_kraus(30.0, 50.0, 1.0), (3,)),
    ]
    for kraus, qubits in cases:
        fast = dm.apply_kraus(rho, np.asarray(kraus), qubits)
        slow = dm.apply_kraus_loop(rho, kraus, qubits)
        np.testing.assert_allclose(fast, slow, atol=1e-12, rtol=0.0)
    # iterable (non-stacked) input still accepted
    fast = dm.apply_kraus(rho, iter(depolarizing_kraus(0.1, 1)), (0,))
    slow = dm.apply_kraus_loop(rho, depolarizing_kraus(0.1, 1), (0,))
    np.testing.assert_allclose(fast, slow, atol=1e-12, rtol=0.0)


def test_apply_kraus_rejects_bad_input():
    dm = DensityMatrixSimulator(2)
    rho = dm.zero_state()
    with pytest.raises(ValueError):
        dm.apply_kraus(rho, np.empty((0, 2, 2)), (0,))
    with pytest.raises(ValueError):
        dm.apply_kraus_loop(rho, [], (0,))


def test_noise_plan_caching_by_circuit_and_model():
    clear_plan_cache()
    circuit = random_circuit(3, 8, seed=6)
    nm = NoiseModel(0.01, 0.05)
    first = compile_noise_plan(circuit, nm)
    again = compile_noise_plan(circuit, nm)
    assert first is again
    assert first.key.startswith("noise:")
    # a different model misses
    other = compile_noise_plan(circuit, NoiseModel(0.02, 0.05))
    assert other is not first
    stats = plan_cache_stats()
    assert stats["hits"] >= 1


def test_noise_fingerprint_protocol():
    assert noise_fingerprint(NoiseModel(0.01, 0.05)) is not None
    assert noise_fingerprint(object()) is None
    a = NoiseModel(0.01, 0.05).fingerprint()
    b = NoiseModel(0.01, 0.05, gate_overrides={"rz": 0.0}).fingerprint()
    assert a != b
    assert NoiseModel(0.01, 0.05).fingerprint() == a


def test_uncacheable_model_still_lowers():
    class Protocol:
        def channels_for(self, gate_name, qubits):
            if len(qubits) == 1:
                yield depolarizing_kraus(0.05, 1), qubits

    circuit = random_circuit(3, 8, seed=7)
    plan = compile_noise_plan(circuit, Protocol())
    assert plan.key is None
    assert plan.num_channels > 0


def test_unbound_circuit_rejected():
    from repro.ansatz.real_amplitudes import RealAmplitudes

    ansatz = RealAmplitudes(2, reps=1)
    with pytest.raises(ValueError):
        lower_noise_plan(ansatz.circuit, NoiseModel(0.01, 0.05))
