import numpy as np
import pytest

from repro.noise.channels import (
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    is_cptp,
    phase_damping_kraus,
    phase_flip_kraus,
    thermal_relaxation_kraus,
)


@pytest.mark.parametrize("p", [0.0, 0.1, 0.5, 1.0])
def test_all_single_qubit_channels_cptp(p):
    for maker in (
        lambda: depolarizing_kraus(p, 1),
        lambda: amplitude_damping_kraus(p),
        lambda: phase_damping_kraus(p),
        lambda: bit_flip_kraus(p),
        lambda: phase_flip_kraus(p),
    ):
        assert is_cptp(maker())


@pytest.mark.parametrize("p", [0.0, 0.3, 1.0])
def test_two_qubit_depolarizing_cptp(p):
    assert is_cptp(depolarizing_kraus(p, 2))


def test_depolarizing_on_z_expectation():
    # <Z> under depolarizing(p): scales by (1-p).
    rho = np.diag([1.0, 0.0]).astype(complex)
    p = 0.4
    out = sum(k @ rho @ k.conj().T for k in depolarizing_kraus(p, 1))
    z = np.diag([1.0, -1.0])
    assert np.trace(out @ z).real == pytest.approx(1.0 - p, abs=1e-10)


def test_amplitude_damping_decays_excited_state():
    rho = np.diag([0.0, 1.0]).astype(complex)
    gamma = 0.3
    out = sum(k @ rho @ k.conj().T for k in amplitude_damping_kraus(gamma))
    assert out[0, 0].real == pytest.approx(gamma)
    assert out[1, 1].real == pytest.approx(1 - gamma)


def test_phase_damping_kills_coherence_only():
    rho = 0.5 * np.ones((2, 2), dtype=complex)
    lam = 0.5
    out = sum(k @ rho @ k.conj().T for k in phase_damping_kraus(lam))
    assert out[0, 0].real == pytest.approx(0.5)
    assert abs(out[0, 1]) < 0.5


def test_thermal_relaxation_cptp_and_limits():
    ops = thermal_relaxation_kraus(t1=50.0, t2=70.0, gate_time=0.1)
    assert is_cptp(ops)
    with pytest.raises(ValueError):
        thermal_relaxation_kraus(t1=10.0, t2=25.0, gate_time=0.1)
    with pytest.raises(ValueError):
        thermal_relaxation_kraus(t1=-1.0, t2=1.0, gate_time=0.1)


def test_thermal_relaxation_coherence_decay_rate():
    t1, t2, dt = 80.0, 60.0, 5.0
    ops = thermal_relaxation_kraus(t1, t2, dt)
    plus = 0.5 * np.ones((2, 2), dtype=complex)
    out = sum(k @ plus @ k.conj().T for k in ops)
    assert abs(out[0, 1]) == pytest.approx(0.5 * np.exp(-dt / t2), abs=1e-10)


def test_probability_validation():
    with pytest.raises(ValueError):
        depolarizing_kraus(1.5)
    with pytest.raises(ValueError):
        bit_flip_kraus(-0.1)
    with pytest.raises(ValueError):
        depolarizing_kraus(0.1, 3)


def test_is_cptp_rejects_non_channel():
    assert not is_cptp([np.eye(2) * 2.0])
    assert not is_cptp([])
