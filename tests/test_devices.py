import numpy as np
import pytest

from repro.devices.calibration import CalibrationSnapshot
from repro.devices.coupling import (
    CouplingMap,
    falcon_map,
    grid_map,
    line_map,
    ring_map,
)
from repro.devices.ibmq_fake import available_machines, get_device


def test_line_ring_grid():
    assert line_map(4).edges == [(0, 1), (1, 2), (2, 3)]
    assert len(ring_map(5).edges) == 5
    assert grid_map(2, 3).num_qubits == 6
    assert grid_map(2, 3).are_connected(0, 3)


def test_coupling_validation():
    with pytest.raises(ValueError):
        CouplingMap(2, [(0, 2)])
    with pytest.raises(ValueError):
        CouplingMap(2, [(0, 0)])


def test_falcon_maps_connected():
    for n in (7, 16, 27):
        cmap = falcon_map(n)
        assert cmap.num_qubits == n
        assert cmap.is_connected_graph()
    with pytest.raises(ValueError):
        falcon_map(12)


def test_falcon_7q_h_shape():
    cmap = falcon_map(7)
    # hub qubits 1 and 5 have degree 3 on the real Casablanca/Jakarta
    assert len(cmap.neighbors(1)) == 3
    assert len(cmap.neighbors(5)) == 3


def test_distance_and_path():
    cmap = line_map(5)
    assert cmap.distance(0, 4) == 4
    assert cmap.shortest_path(0, 2) == [0, 1, 2]


def test_best_linear_chain():
    # The 7q H-shaped Falcon has no simple 6-path (longest chain is 5);
    # the 16q and 27q heavy-hex devices host 6-chains easily.
    chain5 = falcon_map(7).best_linear_chain(5)
    assert len(set(chain5)) == 5
    with pytest.raises(ValueError):
        falcon_map(7).best_linear_chain(6)
    for n in (16, 27):
        cmap = falcon_map(n)
        chain = cmap.best_linear_chain(6)
        assert len(set(chain)) == 6
        for a, b in zip(chain, chain[1:]):
            assert cmap.are_connected(a, b)


def test_chain_too_long_raises():
    with pytest.raises(ValueError):
        line_map(3).best_linear_chain(4)


def test_calibration_generation_bounds():
    cal = CalibrationSnapshot.generate(7, 6, seed=3)
    assert cal.num_qubits == 7
    assert np.all(cal.t2_us <= 2 * cal.t1_us + 1e-9)
    assert np.all(cal.single_qubit_errors > 0)
    assert np.all(cal.readout_errors < 0.5)


def test_calibration_refresh_changes_values():
    cal = CalibrationSnapshot.generate(5, 4, seed=1)
    new = cal.refresh(seed=2)
    assert new.cycle == cal.cycle + 1
    assert not np.allclose(new.t1_us, cal.t1_us)
    assert np.all(new.t2_us <= 2 * new.t1_us + 1e-9)


def test_calibration_validation():
    with pytest.raises(ValueError):
        CalibrationSnapshot(
            t1_us=np.array([10.0]),
            t2_us=np.array([30.0]),  # violates T2 <= 2 T1
            single_qubit_errors=np.array([1e-3]),
            two_qubit_errors=np.array([1e-2]),
            readout_errors=np.array([1e-2]),
        )


def test_all_paper_machines_available():
    machines = available_machines()
    for name in ("guadalupe", "toronto", "sydney", "casablanca", "jakarta", "mumbai", "cairo"):
        assert name in machines


def test_get_device_properties():
    device = get_device("Guadalupe")
    assert device.num_qubits == 16
    assert device.name == "guadalupe"
    nm = device.noise_model()
    assert 0 < nm.two_qubit_error < 0.1
    readout = device.readout_error()
    assert readout.num_qubits == 16
    assert device.mean_t1_us() > 20


def test_get_device_deterministic():
    a = get_device("toronto")
    b = get_device("toronto")
    assert np.allclose(a.calibration.t1_us, b.calibration.t1_us)


def test_unknown_device():
    with pytest.raises(KeyError):
        get_device("nairobi")


def test_device_transient_trace_and_recalibrate():
    device = get_device("jakarta")
    trace = device.transient_trace(300, seed=4)
    assert len(trace) == 300
    assert trace.machine == "jakarta"
    scaled = device.transient_trace(300, seed=4, magnitude_scale=2.0)
    assert np.abs(scaled.values).max() > np.abs(trace.values).max()
    recal = device.recalibrate(seed=9)
    assert recal.calibration.cycle == 1
    assert recal.name == device.name
