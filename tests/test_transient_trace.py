import numpy as np
import pytest

from repro.noise.transient.t1_model import T1FluctuationModel, t1_to_error_fraction
from repro.noise.transient.trace import TransientTrace, concatenate_traces
from repro.noise.transient.trace_generator import (
    MACHINE_PROFILES,
    TransientProfile,
    generate_trace,
    machine_trace,
    profile_for_machine,
)


def test_trace_cyclic_indexing():
    trace = TransientTrace(np.array([0.1, 0.2, 0.3]))
    assert trace[0] == pytest.approx(0.1)
    assert trace[3] == pytest.approx(0.1)
    assert trace[5] == pytest.approx(0.3)
    assert len(trace) == 3


def test_trace_immutable():
    trace = TransientTrace(np.array([0.1, 0.2]))
    with pytest.raises(ValueError):
        trace.values[0] = 9.0


def test_trace_scaled():
    trace = TransientTrace(np.array([0.1, -0.2]))
    scaled = trace.scaled(2.0)
    assert scaled[1] == pytest.approx(-0.4)
    assert scaled.metadata["scale"] == 2.0


def test_trace_percentile_and_active_fraction():
    trace = TransientTrace(np.concatenate([np.zeros(90), np.full(10, 0.5)]))
    assert trace.magnitude_percentile(89) == pytest.approx(0.0)
    assert trace.magnitude_percentile(99) == pytest.approx(0.5)
    assert trace.active_fraction(0.1) == pytest.approx(0.1)


def test_trace_segment_cyclic():
    trace = TransientTrace(np.array([1.0, 2.0, 3.0]))
    seg = trace.segment(2, 3)
    assert np.allclose(seg.values, [3.0, 1.0, 2.0])


def test_trace_validation():
    with pytest.raises(ValueError):
        TransientTrace(np.array([]))
    with pytest.raises(ValueError):
        TransientTrace(np.zeros((2, 2)))


def test_concatenate():
    a = TransientTrace(np.array([1.0]))
    b = TransientTrace(np.array([2.0, 3.0]))
    c = concatenate_traces(a, b)
    assert len(c) == 3
    with pytest.raises(ValueError):
        concatenate_traces()


def test_generate_trace_deterministic():
    profile = TransientProfile()
    a = generate_trace(profile, 500, seed=3)
    b = generate_trace(profile, 500, seed=3)
    assert np.allclose(a.values, b.values)
    assert not np.allclose(a.values, generate_trace(profile, 500, seed=4).values)


def test_trace_is_mostly_quiet_with_outliers():
    trace = machine_trace("guadalupe", 4000, seed=5)
    values = np.abs(trace.values)
    # quiet bulk well below spike scale
    assert np.median(values) < 0.05
    # but spikes exist
    assert values.max() > 0.3
    assert 0.01 < trace.active_fraction(0.2) < 0.35


def test_machine_profiles_complete_and_ordered():
    paper_machines = {
        "guadalupe", "toronto", "sydney", "casablanca", "jakarta", "mumbai", "cairo",
    }
    assert set(MACHINE_PROFILES) == paper_machines
    # the 7-qubit Falcons are the most transient-prone (paper narrative)
    assert (
        MACHINE_PROFILES["casablanca"].spike_rate
        > MACHINE_PROFILES["sydney"].spike_rate
    )


def test_profile_lookup():
    assert profile_for_machine("GUADALUPE").spike_rate > 0
    with pytest.raises(KeyError):
        profile_for_machine("unknown")


def test_profile_scaled():
    profile = TransientProfile(spike_magnitude=0.4)
    assert profile.scaled(0.5).spike_magnitude == pytest.approx(0.2)


def test_t1_model_fig3_shape():
    model = T1FluctuationModel()
    times, t1 = model.sample_hours(65.0, seed=9)
    assert times[-1] == pytest.approx(65.0)
    assert len(times) == len(t1)
    assert np.all(t1 >= model.floor_us)
    # dips below the baseline exist (circled outliers of Fig. 3)
    assert model.outlier_count(t1, threshold_fraction=0.6) > 0
    # but the typical value sits near the baseline
    assert np.median(t1) == pytest.approx(model.baseline_us, rel=0.2)


def test_t1_model_validation():
    with pytest.raises(ValueError):
        T1FluctuationModel().sample_hours(0.0, seed=1)


def test_t1_to_error_fraction_monotone():
    t1 = np.array([70.0, 35.0, 10.0])
    excess = t1_to_error_fraction(t1, circuit_duration_us=5.0, baseline_us=70.0)
    assert excess[0] == pytest.approx(0.0)
    assert excess[1] < excess[2]
    with pytest.raises(ValueError):
        t1_to_error_fraction(t1, circuit_duration_us=0.0, baseline_us=70.0)
