"""Unit tests for the matrix-free bitmask Pauli engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.operators.pauli import PauliString
from repro.operators.pauli_apply import (
    apply_pauli,
    pauli_expectation,
    pauli_masks,
    pauli_sum_expectation,
)
from repro.operators.pauli_sum import PauliSum


def random_state(rng, num_qubits):
    psi = rng.standard_normal(2**num_qubits) + 1j * rng.standard_normal(
        2**num_qubits
    )
    return psi / np.linalg.norm(psi)


def test_pauli_masks_conventions():
    # Qubit 0 is the most-significant bit of the flat index.
    x_mask, zy_mask, n_y = pauli_masks("XIZ")
    assert x_mask == 0b100
    assert zy_mask == 0b001
    assert n_y == 0
    x_mask, zy_mask, n_y = pauli_masks("YY")
    assert x_mask == 0b11
    assert zy_mask == 0b11
    assert n_y == 2


def test_pauli_masks_rejects_bad_labels():
    with pytest.raises(ValueError):
        pauli_masks("XQ")


@pytest.mark.parametrize("num_qubits", [1, 2, 3, 4, 6])
def test_apply_pauli_matches_dense(num_qubits):
    rng = np.random.default_rng(num_qubits)
    for _ in range(10):
        label = "".join(rng.choice(list("IXYZ"), size=num_qubits))
        psi = random_state(rng, num_qubits)
        dense = PauliString(label).to_matrix() @ psi
        np.testing.assert_allclose(
            apply_pauli(label, psi), dense, atol=1e-12, rtol=0.0
        )


def test_apply_pauli_batched_axes():
    rng = np.random.default_rng(3)
    states = np.stack([random_state(rng, 3) for _ in range(4)])
    out = apply_pauli("XYZ", states)
    for i in range(4):
        np.testing.assert_allclose(
            out[i], apply_pauli("XYZ", states[i]), atol=1e-12, rtol=0.0
        )


def test_apply_pauli_validates_dimension():
    with pytest.raises(ValueError):
        apply_pauli("XX", np.zeros(2, dtype=complex))


def test_pauli_expectation_scalar_and_batch():
    rng = np.random.default_rng(9)
    psi = random_state(rng, 4)
    label = "ZXIY"
    expected = np.real(
        np.vdot(psi, PauliString(label).to_matrix() @ psi)
    )
    scalar = pauli_expectation(label, psi)
    assert isinstance(scalar, float)
    assert scalar == pytest.approx(expected, abs=1e-12)
    batch = pauli_expectation(label, np.stack([psi, psi]))
    np.testing.assert_allclose(batch, [expected, expected], atol=1e-12)


def test_pauli_sum_expectation_matches_dense():
    rng = np.random.default_rng(11)
    operator = PauliSum(
        [(0.5, "XZI"), (-1.25, "YYZ"), (2.0, "III"), (0.75, "ZIZ")]
    )
    psi = random_state(rng, 3)
    dense = operator.to_matrix()
    expected = float(np.real(np.vdot(psi, dense @ psi)))
    assert operator.expectation(psi) == pytest.approx(expected, abs=1e-12)
    value = pauli_sum_expectation(
        operator.coefficients, tuple(p.label for p in operator.paulis), psi
    )
    assert value == pytest.approx(expected, abs=1e-12)


def test_pauli_sum_batch_expectations():
    rng = np.random.default_rng(13)
    operator = PauliSum([(1.0, "XY"), (0.5, "ZZ"), (-0.25, "IX")])
    states = np.stack([random_state(rng, 2) for _ in range(5)])
    batch = operator.batch_expectations(states)
    assert batch.shape == (5,)
    for i in range(5):
        assert batch[i] == pytest.approx(
            operator.expectation(states[i]), abs=1e-12
        )


def test_string_expectation_accepts_tensor_and_flat():
    rng = np.random.default_rng(17)
    psi = random_state(rng, 3)
    pauli = PauliString("ZXY")
    flat = pauli.expectation(psi)
    tensor = pauli.expectation(psi.reshape((2, 2, 2)))
    assert flat == pytest.approx(tensor, abs=1e-14)


def test_apply_to_state_round_trip():
    # P*P = I for any Pauli string: applying twice must return the input.
    rng = np.random.default_rng(19)
    psi = random_state(rng, 4).reshape((2,) * 4)
    pauli = PauliString("XYZI")
    twice = pauli.apply_to_state(pauli.apply_to_state(psi))
    np.testing.assert_allclose(twice, psi, atol=1e-12, rtol=0.0)
