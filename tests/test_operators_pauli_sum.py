import numpy as np
import pytest

from repro.circuits.library import random_circuit
from repro.operators.pauli_sum import PauliSum, pauli_sum_from_dict
from repro.simulator.statevector import simulate_statevector


def test_term_merging_and_pruning():
    ham = PauliSum([(0.5, "XZ"), (0.5, "XZ"), (1.0, "ZZ"), (-1.0, "ZZ")])
    labels = {t.pauli.label for t in ham}
    assert labels == {"XZ"}
    assert ham.coefficients[0] == pytest.approx(1.0)


def test_zero_operator_keeps_identity():
    ham = PauliSum([(1.0, "X"), (-1.0, "X")])
    assert len(ham) == 1
    assert ham.terms[0].coefficient == 0.0


def test_qubit_count_mismatch():
    with pytest.raises(ValueError):
        PauliSum([(1.0, "X"), (1.0, "XX")])


def test_algebra():
    a = PauliSum([(1.0, "Z")])
    b = PauliSum([(2.0, "X")])
    total = a + b
    assert len(total) == 2
    scaled = 3.0 * a
    assert scaled.coefficients[0] == pytest.approx(3.0)
    diff = total - b
    assert {t.pauli.label for t in diff if abs(t.coefficient) > 0} == {"Z"}


def test_matrix_hermitian_and_expectation_consistency():
    ham = PauliSum([(0.7, "XZ"), (-0.3, "ZI"), (0.1, "YY")])
    mat = ham.to_matrix()
    assert np.allclose(mat, mat.conj().T)
    sv = simulate_statevector(random_circuit(2, 15, seed=5))
    direct = ham.expectation(sv)
    via_matrix = np.real(np.vdot(sv, mat @ sv))
    assert direct == pytest.approx(via_matrix, abs=1e-10)


def test_ground_state_energy_and_range():
    ham = PauliSum([(1.0, "Z")])
    assert ham.ground_state_energy() == pytest.approx(-1.0)
    lo, hi = ham.spectral_range()
    assert (lo, hi) == (pytest.approx(-1.0), pytest.approx(1.0))


def test_one_norm_and_identity_coefficient():
    ham = PauliSum([(0.5, "II"), (-1.5, "XZ")])
    assert ham.one_norm() == pytest.approx(2.0)
    assert ham.identity_coefficient() == pytest.approx(0.5)
    assert ham.maximally_mixed_expectation() == pytest.approx(0.5)


def test_from_dict():
    ham = pauli_sum_from_dict(2, {"XZ": 1.0, "II": -0.5})
    assert ham.num_qubits == 2
    with pytest.raises(ValueError):
        pauli_sum_from_dict(2, {"X": 1.0})


def test_expectation_bounded_by_spectrum():
    ham = PauliSum([(1.0, "ZZ"), (0.5, "XI")])
    lo, hi = ham.spectral_range()
    sv = simulate_statevector(random_circuit(2, 25, seed=2))
    value = ham.expectation(sv)
    assert lo - 1e-9 <= value <= hi + 1e-9
