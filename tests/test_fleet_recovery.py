"""Chaos and crash-recovery properties of the fleet (the ISSUE gates).

* **No lost jobs**: under injected transient failures every submitted
  job still reaches ``done``, and the stored payloads are byte-identical
  to a fault-free run (the determinism contract makes retries safe).
* **Deterministic chaos**: the same fault plan against the same workload
  injects the same faults — the injector traces match run-over-run.
* **Crash safety**: a crash between payload persist and status commit
  leaves a ``running`` row that the next service recovers and completes
  bit-identically; a SIGKILLed CLI sweep resumes with ``drain --resume``.
* **Shared stores**: two concurrent services on one database file never
  lose or duplicate work (idempotent ``mark_done``); corrupt payloads
  self-heal on resubmission.
* **Degradation**: repeated failures quarantine a device; probes
  re-admit it when clean.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import threading
import time
from typing import Dict

import pytest

from repro.faults import INJECTOR, FaultPlan, RetryPolicy
from repro.fleet import DeviceHealth, FleetService, HealthConfig
from repro.fleet.store import DONE, FAILED, QUEUED, RUNNING
from repro.runtime import RunSpec
from repro.runtime.execute import execute_run

MACHINES = ["toronto", "cairo"]

SPECS = [
    RunSpec(app="App1", scheme="baseline", iterations=4, seed=seed)
    for seed in (3, 4, 5)
]

#: run_id -> canonical stored payload text from a fault-free fleet run.
_REFERENCE: Dict[str, str] = {}


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.uninstall()
    yield
    INJECTOR.uninstall()


def stored_payloads(service, specs) -> Dict[str, str]:
    return {
        spec.run_id: service.store.results.get_stored(spec.run_id).payload
        for spec in specs
    }


def reference_payloads() -> Dict[str, str]:
    """Fault-free payload bytes for SPECS (computed once per session)."""
    if not _REFERENCE:
        INJECTOR.uninstall()
        with FleetService(machines=MACHINES) as service:
            service.run_specs(SPECS, timeout=120)
            _REFERENCE.update(stored_payloads(service, SPECS))
    return _REFERENCE


# -- chaos parity --------------------------------------------------------------


def chaos_sweep():
    """One faulty sweep: first attempt of every job fails, then latency."""
    INJECTOR.install(
        FaultPlan.parse(
            "execute.run:fail:hits=0"
            ";jobstore.mark_done:latency:latency=0.001"
        )
    )
    service = FleetService(
        machines=MACHINES,
        retry=RetryPolicy(max_attempts=3, jitter=0),
    )
    try:
        service.run_specs(SPECS, timeout=120)
        counts = service.store.counts()
        payloads = stored_payloads(service, SPECS)
        attempts = {
            spec.run_id: service.store.fetch(spec.run_id).attempts
            for spec in SPECS
        }
        return counts, payloads, attempts, INJECTOR.trace()
    finally:
        service.close()


def test_chaos_sweep_loses_no_jobs_and_matches_fault_free_bytes():
    counts, payloads, attempts, trace = chaos_sweep()
    assert counts[DONE] == len(SPECS)  # zero lost jobs
    assert counts.get(FAILED, 0) == 0
    assert payloads == reference_payloads()  # byte-identical parity
    assert all(count == 1 for count in attempts.values())  # one retry each
    assert [event["site"] for event in trace].count("execute.run") == len(SPECS)


def test_chaos_schedule_is_deterministic_run_over_run():
    first = chaos_sweep()
    second = chaos_sweep()
    assert first == second  # counts, payloads, attempts AND fault trace


def test_retry_lifecycle_recorded_in_journal():
    INJECTOR.install(FaultPlan.parse("execute.run:fail:hits=0"))
    spec = SPECS[0]
    with FleetService(
        machines=MACHINES, retry=RetryPolicy(max_attempts=3, jitter=0)
    ) as service:
        service.run_specs([spec], timeout=120)
        events = [
            entry["event"]
            for entry in service.store.results.journal_entries(spec.run_id)
        ]
        snapshot = service.telemetry.snapshot()
    assert events == ["enqueue", "running", "retry", "running", "done"]
    retried = sum(
        counters.get("retries", 0)
        for counters in snapshot["devices"].values()
    )
    assert retried >= 1


# -- crash safety --------------------------------------------------------------


def test_crash_before_commit_recovers_bit_identically(tmp_path):
    db = str(tmp_path / "fleet.db")
    spec = SPECS[0]
    INJECTOR.install(
        FaultPlan.parse("jobstore.mark_done.commit:crash:hits=0")
    )
    first = FleetService(machines=MACHINES, db_path=db)
    try:
        first.submit([spec])
        first.drain(timeout=120)
        # The crash hit between payload persist and the status flip:
        # the row is stranded mid-transition, the payload already stored.
        assert first.store.counts()[RUNNING] == 1
    finally:
        first.close()

    INJECTOR.uninstall()
    second = FleetService(machines=MACHINES, db_path=db)
    try:
        assert second.recovered == 1  # requeued on open
        second.run_specs([spec], timeout=120)
        assert second.store.counts()[DONE] == 1
        payload = second.store.results.get_stored(spec.run_id).payload
        events = [
            entry["event"]
            for entry in second.store.results.journal_entries(spec.run_id)
        ]
    finally:
        second.close()
    assert payload == reference_payloads()[spec.run_id]
    assert events == ["enqueue", "running", "requeue", "running", "done"]


def _job_counts(db: str) -> Dict[str, int]:
    """Poll job statuses without opening a JobStore (whose constructor
    requeues ``running`` rows — exactly what a poller must not do)."""
    conn = sqlite3.connect(db, timeout=10)
    try:
        rows = conn.execute(
            "SELECT status, COUNT(*) FROM jobs GROUP BY status"
        ).fetchall()
    finally:
        conn.close()
    return {status: count for status, count in rows}


def test_sigkill_mid_sweep_then_drain_resume(tmp_path):
    db = str(tmp_path / "fleet.db")
    env = dict(
        os.environ,
        PYTHONPATH="src",
        # Stretch every commit so the poller reliably observes a
        # mid-sweep state before the kill.
        REPRO_FAULTS="jobstore.mark_done:latency:latency=0.5",
    )
    child = subprocess.Popen(
        [
            sys.executable, "-m", "repro.fleet", "submit",
            "--apps", "App1", "--schemes", "baseline", "qismet",
            "--iterations", "10", "--seeds", "3", "4", "5",
            "--db", db, "--machines", *MACHINES,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    total = 6
    deadline = time.time() + 120
    try:
        while time.time() < deadline:
            counts = _job_counts(db) if os.path.exists(db) else {}
            if 1 <= counts.get(DONE, 0) < total:
                break
            if child.poll() is not None:
                pytest.fail("sweep finished before it could be killed")
            time.sleep(0.02)
        else:
            pytest.fail("sweep never reached a mid-drain state")
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)

    counts = _job_counts(db)
    assert counts.get(DONE, 0) < total  # the kill interrupted real work

    resume = subprocess.run(
        [
            sys.executable, "-m", "repro.fleet", "drain", "--resume",
            "--db", db, "--machines", *MACHINES, "--timeout", "300",
        ],
        env=dict(os.environ, PYTHONPATH="src"),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert resume.returncode == 0, resume.stderr
    assert _job_counts(db) == {DONE: total}

    # Bit-identical to an uninterrupted sweep of the same plan.
    specs = [
        RunSpec(app="App1", scheme=scheme, iterations=10, seed=seed)
        for scheme in ("baseline", "qismet")
        for seed in (3, 4, 5)
    ]
    with FleetService(machines=MACHINES) as clean:
        clean.run_specs(specs, timeout=300)
        expected = stored_payloads(clean, specs)
    conn = sqlite3.connect(db, timeout=10)
    try:
        blob_for = dict(
            conn.execute(
                "SELECT runs.run_id, blobs.data FROM runs"
                " JOIN blobs ON blobs.hash = runs.payload_hash"
            ).fetchall()
        )
    finally:
        conn.close()
    assert {spec.run_id: blob_for[spec.run_id] for spec in specs} == expected


# -- shared stores -------------------------------------------------------------


def test_concurrent_services_on_one_store_lose_nothing(tmp_path):
    db = str(tmp_path / "fleet.db")
    first = FleetService(machines=MACHINES, db_path=db)
    second = FleetService(machines=["jakarta", "mumbai"], db_path=db)
    errors = []

    def run(service):
        try:
            service.run_specs(SPECS, timeout=120)
        except Exception as exc:  # noqa: BLE001 — collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(service,))
        for service in (first, second)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    try:
        assert errors == []
        assert first.store.counts()[DONE] == len(SPECS)
        assert stored_payloads(first, SPECS) == reference_payloads()
    finally:
        first.close()
        second.close()


def test_requeue_while_first_writer_still_running(tmp_path):
    db = str(tmp_path / "fleet.db")
    spec = SPECS[0]
    started = threading.Event()
    release = threading.Event()

    def gated_execute(run_spec):
        started.set()
        assert release.wait(60)
        return execute_run(run_spec)

    first = FleetService(machines=["toronto"], db_path=db, execute=gated_execute)
    first.submit([spec])
    drainer = threading.Thread(target=first.drain, kwargs={"timeout": 120})
    drainer.start()
    try:
        assert started.wait(60)
        # The row is mid-flight (`running`) on the shared store: a second
        # writer opening the database requeues it as stranded.
        second = FleetService(machines=["cairo"], db_path=db)
        assert second.recovered == 1
        second.close()
    finally:
        release.set()
        drainer.join(timeout=120)
    # The straggler's completion still landed: queued -> done is allowed
    # precisely so a live writer beats a concurrent requeue verdict.
    assert first.store.counts()[DONE] == 1
    # ... and a resubmission dedupes against the stored payload.
    third = FleetService(machines=MACHINES, db_path=db)
    results = third.run_specs([spec], timeout=120)
    assert third.store_hits == 1
    payload = third.store.results.get_stored(spec.run_id).payload
    third.close()
    first.close()
    assert len(results) == 1
    assert payload == reference_payloads()[spec.run_id]


def test_corrupt_payload_self_heals_on_resubmission(tmp_path):
    db = str(tmp_path / "fleet.db")
    spec = SPECS[0]
    with FleetService(machines=MACHINES, db_path=db) as service:
        service.run_specs([spec], timeout=120)
    conn = sqlite3.connect(db)
    conn.execute("UPDATE blobs SET data = 'garbage'")
    conn.commit()
    conn.close()

    with FleetService(machines=MACHINES, db_path=db) as service:
        # Enqueue notices the done row's payload fails its content
        # address, requeues it, and the deterministic workload
        # regenerates the bytes in flight.
        results = service.run_specs([spec], timeout=120)
        assert service.store_hits == 0
        payload = service.store.results.get_stored(spec.run_id).payload
        events = [
            entry["event"]
            for entry in service.store.results.journal_entries(spec.run_id)
        ]
    assert len(results) == 1
    assert payload == reference_payloads()[spec.run_id]
    assert "heal" in events


# -- drain timeout (satellite a) ----------------------------------------------


def test_drain_timeout_strands_no_running_rows():
    release = threading.Event()

    def wedged_execute(run_spec):
        assert release.wait(60)
        return execute_run(run_spec)

    service = FleetService(machines=["toronto"], execute=wedged_execute)
    spec = SPECS[0]
    service.submit([spec])
    try:
        with pytest.raises(TimeoutError):
            service.drain(timeout=0.3)
        counts = service.store.counts()
        assert counts[RUNNING] == 0  # nothing stranded mid-flight
        assert counts[QUEUED] == 0
        assert counts[FAILED] == 1
        record = service.store.fetch(spec.run_id)
        assert "timeout" in record.error
    finally:
        release.set()
        service.close()


# -- degradation ---------------------------------------------------------------


def test_consecutive_failures_quarantine_then_probe_readmits():
    health = DeviceHealth(HealthConfig(failure_threshold=3, quarantine_ticks=4))
    assert not health.record_failure("toronto", tick=10)
    assert not health.record_failure("toronto", tick=11)
    assert health.record_failure("toronto", tick=12)  # newly quarantined
    assert health.quarantines == 1
    assert health.blocked("toronto", tick=13)
    assert health.blocked("toronto", tick=15)
    # At the window's end a flagged probe extends, a clean one re-admits.
    assert health.blocked("toronto", tick=16, probe=lambda name: True)
    assert health.blocked("toronto", tick=17)  # extension in force
    assert not health.blocked("toronto", tick=20, probe=lambda name: False)
    assert health.quarantined_devices() == {}
    # Re-quarantining the same device is not double-counted while active.
    health.record_failure("cairo", tick=0)
    health.record_failure("cairo", tick=0)
    assert health.record_failure("cairo", tick=0)
    assert health.quarantines == 2


def test_success_clears_consecutive_counters():
    health = DeviceHealth(HealthConfig(failure_threshold=2))
    health.record_failure("toronto", tick=0)
    health.record_success("toronto")
    assert not health.record_failure("toronto", tick=1)  # streak broken
    health.record_transient("toronto", tick=1)
    health.record_success("toronto")
    assert health.quarantined_devices() == {}


def test_transient_streak_quarantines():
    health = DeviceHealth(HealthConfig(transient_threshold=3))
    assert not health.record_transient("sydney", tick=0)
    assert not health.record_transient("sydney", tick=1)
    assert health.record_transient("sydney", tick=2)
    assert "sydney" in health.quarantined_devices()


def test_fleet_routes_around_quarantined_device():
    spec = SPECS[0]
    health = DeviceHealth(HealthConfig(quarantine_ticks=10_000))
    # App1's affinity machine starts quarantined: routing must pick
    # another device rather than wait out the (enormous) window.
    health.record_failure("toronto", tick=0)
    health.record_failure("toronto", tick=0)
    health.record_failure("toronto", tick=0)
    with FleetService(machines=["toronto", "cairo"], health=health) as service:
        service.run_specs([spec], timeout=120)
        record = service.store.fetch(spec.run_id)
        payload = service.store.results.get_stored(spec.run_id).payload
    assert record.is_done and record.device == "cairo"
    assert payload == reference_payloads()[spec.run_id]
