"""Fusion correctness: fused execution must match unfused to <= 1e-12.

Property tests over random 2-8 qubit circuits across every simulator
consuming :class:`~repro.compiler.GatePlan` (statevector, batched,
density-matrix, sampling), plus ``REPRO_FUSION=0`` parity on the SPSA/VQE
hot path — the acceptance contract of the unified compiler pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.parameter import Parameter
from repro.compiler import clear_plan_cache, compile_plan, fuse_plan
from repro.compiler.passes import _expand_matrix, fuse_static_ops
from repro.compiler.ir import PlanOp
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.optimizers.spsa import SPSA
from repro.simulator.batched import BatchedStatevectorSimulator
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.sampling import sample_plan
from repro.simulator.statevector import StatevectorSimulator, simulate_statevector
from repro.vqa.objective import EnergyObjective
from repro.vqa.vqe import VQE

TOLERANCE = 1e-12


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _random_parameterized(num_qubits: int, depth: int, seed: int) -> QuantumCircuit:
    """A random circuit mixing static gates and symbolic rotations."""
    rng = np.random.default_rng(seed)
    params = [Parameter(f"t{i}") for i in range(max(2, depth // 4))]
    qc = QuantumCircuit(num_qubits)
    static_1q = ("h", "sx", "s", "x", "t")
    rotations = ("rx", "ry", "rz")
    for _ in range(depth):
        roll = rng.random()
        if num_qubits >= 2 and roll < 0.3:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            qc.cx(int(a), int(b))
        elif roll < 0.6:
            qc.append(str(rng.choice(static_1q)), (int(rng.integers(num_qubits)),))
        else:
            param = params[int(rng.integers(len(params)))]
            coeff = float(rng.choice((1.0, -1.0, 2.0, 0.5)))
            offset = float(rng.uniform(-1.0, 1.0))
            qc.append(
                str(rng.choice(rotations)),
                (int(rng.integers(num_qubits)),),
                (coeff * param + offset,),
            )
    return qc


@pytest.mark.parametrize("num_qubits", [2, 3, 4, 5, 6, 7, 8])
def test_fused_statevector_matches_unfused(num_qubits):
    for seed in range(3):
        depth = 10 + 6 * num_qubits
        qc = _random_parameterized(num_qubits, depth, seed=100 * num_qubits + seed)
        theta = np.random.default_rng(seed).uniform(-np.pi, np.pi, qc.num_parameters)
        params = qc.parameters
        fused = compile_plan(qc, params, fusion=True, cache=False)
        unfused = compile_plan(qc, params, fusion=False, cache=False)
        assert fused.fused and len(fused.ops) < len(unfused.ops)
        sim = StatevectorSimulator(num_qubits)
        sv_fused = sim.run_plan(fused, theta).reshape(-1)
        sv_unfused = sim.run_plan(unfused, theta).reshape(-1)
        np.testing.assert_allclose(sv_fused, sv_unfused, atol=TOLERANCE, rtol=0.0)


@pytest.mark.parametrize("num_qubits", [2, 4, 6])
def test_fused_batched_matches_unfused(num_qubits):
    qc = _random_parameterized(num_qubits, 30, seed=num_qubits)
    params = qc.parameters
    thetas = np.random.default_rng(5).uniform(-np.pi, np.pi, (6, len(params)))
    fused = compile_plan(qc, params, fusion=True, cache=False)
    unfused = compile_plan(qc, params, fusion=False, cache=False)
    sim = BatchedStatevectorSimulator(num_qubits)
    np.testing.assert_allclose(
        sim.run_flat(fused, thetas),
        sim.run_flat(unfused, thetas),
        atol=TOLERANCE,
        rtol=0.0,
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fused_density_matrix_matches_unfused(seed):
    qc = random_circuit(4, 30, seed=seed)
    fused = compile_plan(qc, fusion=True, cache=False)
    unfused = compile_plan(qc, fusion=False, cache=False)
    dm = DensityMatrixSimulator(4)
    rho_fused = dm.to_matrix(dm.run_plan(fused))
    rho_unfused = dm.to_matrix(dm.run_plan(unfused))
    np.testing.assert_allclose(rho_fused, rho_unfused, atol=TOLERANCE, rtol=0.0)


def test_noiseless_run_circuit_matches_instruction_walk():
    # The DM simulator's plan fast path must agree with the legacy
    # per-instruction walk (exercised via an identity-noise-free run).
    from repro.circuits.gates import GATES

    qc = random_circuit(3, 25, seed=7)
    dm = DensityMatrixSimulator(3)
    rho_plan = dm.to_matrix(dm.run_circuit(qc))
    rho_legacy = dm.zero_state()
    for inst in qc:
        if inst.name == "barrier":
            continue
        matrix = GATES[inst.name].matrix(tuple(float(p) for p in inst.params))
        rho_legacy = dm.apply_unitary(rho_legacy, matrix, inst.qubits)
    np.testing.assert_allclose(
        rho_plan, dm.to_matrix(rho_legacy), atol=TOLERANCE, rtol=0.0
    )


@pytest.mark.parametrize("seed", [3, 8])
def test_fused_sampling_matches_unfused(seed):
    qc = random_circuit(5, 40, seed=seed)
    fused = compile_plan(qc, fusion=True, cache=False)
    unfused = compile_plan(qc, fusion=False, cache=False)
    counts_fused = sample_plan(fused, shots=4096, seed=seed)
    counts_unfused = sample_plan(unfused, shots=4096, seed=seed)
    assert counts_fused == counts_unfused


def test_simulate_statevector_circuit_entry_is_fused_and_correct():
    qc = _random_parameterized(3, 24, seed=42)
    theta = np.linspace(-1.0, 1.0, qc.num_parameters)
    via_circuit = simulate_statevector(qc, theta)
    via_unfused = simulate_statevector(
        compile_plan(qc, qc.parameters, fusion=False, cache=False), theta
    )
    np.testing.assert_allclose(via_circuit, via_unfused, atol=TOLERANCE, rtol=0.0)


# -- fusion internals ------------------------------------------------------------


def test_expand_matrix_embeds_identity_on_extras():
    from repro.circuits.gates import gate_matrix

    h = gate_matrix("h")
    # H on qubit 1 inside support (0, 1): I (x) H in (q0, q1) axis order.
    expanded = _expand_matrix(h, (1,), (0, 1))
    np.testing.assert_allclose(expanded, np.kron(np.eye(2), h), atol=0)
    # H on qubit 0 inside support (0, 1): H (x) I.
    expanded = _expand_matrix(h, (0,), (0, 1))
    np.testing.assert_allclose(expanded, np.kron(h, np.eye(2)), atol=0)


def test_fusion_collapses_native_1q_runs():
    # rz sx rz sx rz (a basis-translated unitary) must fuse to ONE op.
    qc = QuantumCircuit(1)
    qc.rz(0.3, 0)
    qc.sx(0)
    qc.rz(1.1, 0)
    qc.sx(0)
    qc.rz(-0.4, 0)
    plan = compile_plan(qc, fusion=True, cache=False)
    assert len(plan.ops) == 1


def test_fusion_barrier_at_parameterized_ops():
    theta = Parameter("theta")
    qc = QuantumCircuit(1)
    qc.h(0)
    qc.ry(theta, 0)
    qc.h(0)
    plan = compile_plan(qc, (theta,), fusion=True, cache=False)
    # The parameterized ry blocks fusion of the surrounding H gates.
    assert len(plan.ops) == 3


def test_fusion_does_not_merge_across_intervening_touch():
    ops = (
        PlanOp((0, 1), matrix=np.eye(4, dtype=complex)),  # CX-like on (0,1)
        PlanOp((1,), gate_name="ry", slot=0),  # parameterized barrier on q1
        PlanOp((1,), matrix=np.eye(2, dtype=complex)),  # must NOT fuse into op0
    )
    fused = fuse_static_ops(ops, 2)
    assert len(fused) == 3


def test_fuse_plan_is_idempotent():
    qc = random_circuit(3, 20, seed=1)
    plan = compile_plan(qc, fusion=True, cache=False)
    assert fuse_plan(plan) is plan


# -- SPSA/VQE hot-path parity (REPRO_FUSION=0) -----------------------------------


def _vqe_energies(num_iterations: int = 8) -> list:
    objective = EnergyObjective(EfficientSU2(4, reps=2), tfim_hamiltonian(4))
    from repro.backends.ideal import IdealBackend

    vqe = VQE(objective, IdealBackend(objective), SPSA(seed=11))
    result = vqe.run(num_iterations, seed=23)
    return [record.machine_energy for record in result.records]


def test_vqe_hot_path_parity_with_fusion_kill_switch(monkeypatch):
    fused_energies = _vqe_energies()
    clear_plan_cache()
    monkeypatch.setenv("REPRO_FUSION", "0")
    unfused_energies = _vqe_energies()
    assert len(fused_energies) == len(unfused_energies)
    np.testing.assert_allclose(
        fused_energies, unfused_energies, atol=1e-10, rtol=0.0
    )
