"""Chrome trace export/validation, reports, and store persistence."""

import json

import pytest

from repro.obs.export import (
    build_trace_document,
    chrome_trace_events,
    export_chrome_trace,
    load_trace_summaries,
    persist_trace_summary,
    span_tree_lines,
    trace_summary,
    validate_chrome_trace,
)
from repro.obs.report import (
    build_report,
    cache_scoreboard,
    phase_breakdown,
    render_json,
    render_markdown,
    render_text,
    root_wall_seconds,
)
from repro.obs.trace import Tracer
from repro.store import ExperimentStore


@pytest.fixture
def tracer():
    tracer = Tracer()
    tracer.configure(enabled=True, kernel_stride=1)
    with tracer.span("job", category="execute", app="App1"):
        with tracer.span("compile.default", category="compile", qubits=4):
            pass
        with tracer.span("sim.sv", category="kernel"):
            pass
    return tracer


# -- Chrome trace events ------------------------------------------------------


def test_chrome_events_shape(tracer):
    events = chrome_trace_events(tracer)
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert [e["name"] for e in complete] == [
        "job", "compile.default", "sim.sv"
    ]
    assert {e["cat"] for e in complete} == {"execute", "compile", "kernel"}
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
    assert complete[1]["args"] == {"qubits": 4}
    assert metadata and metadata[0]["name"] == "thread_name"


def test_document_carries_metrics_and_phases(tracer):
    document = build_trace_document(tracer)
    assert document["displayTimeUnit"] == "ms"
    other = document["otherData"]
    assert other["generator"] == "repro.obs"
    assert set(other["metrics"]) == {"counters", "gauges", "histograms"}
    assert set(other["phases"]) >= {"execute", "compile", "kernel"}


def test_export_roundtrips_and_validates(tracer, tmp_path):
    path = tmp_path / "trace.json"
    document = export_chrome_trace(str(path), tracer)
    loaded = json.loads(path.read_text())
    assert loaded == document
    events = validate_chrome_trace(loaded)
    assert len(events) == len(document["traceEvents"])


# -- validation ---------------------------------------------------------------


def test_validate_accepts_bare_event_array():
    events = [{"name": "a", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]
    assert validate_chrome_trace(events) == events


@pytest.mark.parametrize(
    "document, message",
    [
        ({"noTraceEvents": []}, "missing 'traceEvents'"),
        ("a string", "not a trace document"),
        ({"traceEvents": ["nope"]}, "not an object"),
        ({"traceEvents": [{"ph": "X", "ts": 0, "pid": 1, "tid": 1}]},
         "missing required key 'name'"),
        ({"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
        ]}, "needs numeric 'dur'"),
        ({"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1}
        ]}, "needs numeric 'dur'"),
        ({"traceEvents": [
            {"name": "a", "ph": "B", "ts": "zero", "pid": 1, "tid": 1}
        ]}, "'ts' must be numeric"),
        ({"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 0, "pid": 1, "tid": 1,
             "args": [1]}
        ]}, "'args' must be an object"),
    ],
)
def test_validate_rejects_malformed(document, message):
    with pytest.raises(ValueError, match=message):
        validate_chrome_trace(document)


# -- reports ------------------------------------------------------------------


def test_phase_self_time_partitions_the_root(tracer):
    phases = phase_breakdown(tracer=tracer)
    wall = root_wall_seconds(tracer=tracer)
    accounted = sum(bucket["self_s"] for bucket in phases.values())
    assert accounted == pytest.approx(wall, rel=1e-6)
    assert phases["execute"]["count"] == 1
    assert phases["compile"]["total_s"] <= phases["execute"]["total_s"]


def test_report_from_live_tracer_has_full_coverage(tracer):
    report = build_report(tracer=tracer)
    assert report["coverage"] == pytest.approx(1.0, rel=1e-6)
    assert set(report["phases"]) == {"execute", "compile", "kernel"}
    for bucket in report["phases"].values():
        assert 0.0 <= bucket["share"] <= 1.0


def test_report_from_exported_document_matches_live(tracer, tmp_path):
    live = build_report(tracer=tracer)
    path = tmp_path / "trace.json"
    document = export_chrome_trace(str(path), tracer)
    from_file = build_report(document=document)
    assert from_file["wall_s"] == pytest.approx(live["wall_s"], rel=1e-6)
    assert set(from_file["phases"]) == set(live["phases"])
    for category, bucket in live["phases"].items():
        assert from_file["phases"][category]["self_s"] == pytest.approx(
            bucket["self_s"], rel=1e-6
        )
    assert from_file["coverage"] == pytest.approx(1.0, rel=1e-6)


def test_events_renesting_handles_sibling_threads():
    """Events from different tids never nest into each other."""
    events = [
        {"name": "a", "cat": "execute", "ph": "X", "ts": 0.0, "dur": 100.0,
         "pid": 1, "tid": 1},
        {"name": "b", "cat": "fleet", "ph": "X", "ts": 10.0, "dur": 50.0,
         "pid": 1, "tid": 2},
    ]
    phases = phase_breakdown(events=events)
    assert phases["execute"]["self_s"] == pytest.approx(100e-6)
    assert phases["fleet"]["self_s"] == pytest.approx(50e-6)
    assert root_wall_seconds(events=events) == pytest.approx(150e-6)


def test_cache_scoreboard_folds_families():
    counters = {
        "cache.plan.hits": 6,
        "cache.plan.misses": 2,
        "cache.plan.evictions": 1,
        "cache.counts.lowerings.hits": 3,
        "cache.counts.lowerings.misses": 1,
        "store.appends": 9,  # not a cache counter
    }
    board = cache_scoreboard({"counters": counters})
    assert set(board) == {"plan", "counts.lowerings"}
    assert board["plan"] == {
        "hits": 6, "misses": 2, "evictions": 1, "hit_rate": 0.75
    }
    assert board["counts.lowerings"]["hit_rate"] == 0.75


def test_renderers_cover_phases_and_caches(tracer):
    report = build_report(tracer=tracer)
    report["cache"] = cache_scoreboard(
        {"counters": {"cache.plan.hits": 1, "cache.plan.misses": 1}}
    )
    text = render_text(report)
    assert "coverage" in text and "compile" in text and "plan" in text
    markdown = render_markdown(report)
    assert "| compile |" in markdown and "## Cache scoreboard" in markdown
    assert json.loads(render_json(report))["phases"]["compile"]


def test_span_tree_lines_indent(tracer):
    lines = span_tree_lines(tracer.roots[0])
    assert lines[0].startswith("job [execute]")
    assert lines[1].startswith("  compile.default [compile]")


# -- store persistence --------------------------------------------------------


def test_summary_persists_and_loads_from_store(tracer):
    summary = trace_summary(tracer, label="unit")
    assert summary["span_count"] == 3 and summary["wall_s"] > 0
    with ExperimentStore(":memory:") as store:
        trace_id = persist_trace_summary(store, summary)
        assert trace_id >= 1
        loaded = load_trace_summaries(store)
        assert len(loaded) == 1
        assert loaded[0]["label"] == "unit"
        assert loaded[0]["phases"].keys() == summary["phases"].keys()
        assert loaded[0]["trace_id"] == trace_id
        assert store.info()["traces"] == 1


def test_trace_summaries_are_most_recent_first():
    with ExperimentStore(":memory:") as store:
        for index in range(3):
            store.append_trace({"wall_s": float(index)}, label=f"run{index}")
        loaded = store.traces(limit=2)
        assert [entry["label"] for entry in loaded] == ["run2", "run1"]


def test_compact_preserves_trace_payloads():
    with ExperimentStore(":memory:") as store:
        store.append_trace({"wall_s": 1.0}, label="keep-me")
        store.compact()
        assert store.traces()[0]["label"] == "keep-me"
