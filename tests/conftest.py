"""Suite-wide configuration.

Static plan verification (:mod:`repro.analysis`) is always-on under the
test suite: every pipeline compile and every noise-plan lowering in any
test runs the Tier-1 verifiers, so a regression that produces a
non-unitary fused matrix, a non-CPTP Kraus stack or a broken parameter
table fails loudly at compile time instead of corrupting results.
``REPRO_VERIFY`` set explicitly in the environment (e.g. ``=0`` to
bisect verifier overhead) still wins.
"""

import os

os.environ.setdefault("REPRO_VERIFY", "1")
