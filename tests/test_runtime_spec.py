"""RunSpec / ExperimentPlan: identity, expansion, serialization."""

import json

import pytest

from repro.experiments.registry import AppConfig, get_app, machine_app
from repro.runtime import ExperimentPlan, RunSpec, freeze_overrides, resolve_app


def test_run_spec_defaults_and_identity():
    spec = RunSpec(app="App1", scheme="baseline", iterations=100)
    assert spec.seed == 2023
    assert spec.shots == 8192
    assert spec.trace_scale == 1.0
    assert spec.app_name == "App1"
    assert len(spec.run_id) == 16
    # content-hash: same fields -> same id, any field change -> new id
    assert spec.run_id == RunSpec(app="App1", scheme="baseline", iterations=100).run_id
    assert spec.run_id != RunSpec(app="App1", scheme="qismet", iterations=100).run_id
    assert spec.run_id != RunSpec(app="App1", scheme="baseline", iterations=101).run_id
    assert spec.run_id != RunSpec(
        app="App1", scheme="baseline", iterations=100, seed=1
    ).run_id
    assert spec.run_id != RunSpec(
        app="App1", scheme="baseline", iterations=100, overrides={"retry_budget": 3}
    ).run_id


def test_run_spec_validation():
    with pytest.raises(KeyError):
        RunSpec(app="App1", scheme="nope", iterations=10)
    with pytest.raises(KeyError):
        RunSpec(app="App99", scheme="baseline", iterations=10)
    with pytest.raises(ValueError):
        RunSpec(app="App1", scheme="baseline", iterations=0)
    with pytest.raises(ValueError):
        RunSpec(app="App1", scheme="baseline", iterations=10, shots=0)
    with pytest.raises(TypeError):
        RunSpec(
            app="App1", scheme="baseline", iterations=10,
            overrides={"bad": object()},
        )


def test_run_spec_json_round_trip():
    spec = RunSpec(
        app="App2", scheme="qismet", iterations=50, seed=7, shots=1024,
        trace_scale=1.5, overrides={"retry_budget": 3, "theta0": (0.1, -0.2)},
    )
    wire = json.loads(json.dumps(spec.to_dict()))
    back = RunSpec.from_dict(wire)
    assert back == spec
    assert back.run_id == spec.run_id
    assert back.override_dict() == {"retry_budget": 3, "theta0": (0.1, -0.2)}


def test_run_spec_with_explicit_app_config():
    app = AppConfig("Custom", 6, "RA", 4, "jakarta", "v1")
    spec = RunSpec(app=app, scheme="baseline", iterations=10)
    assert spec.app_name == "Custom"
    back = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert back == spec
    assert resolve_app(back.app) == app


def test_app_spelling_canonicalized_for_stable_cache_keys():
    """Equivalent app spellings must produce identical run_ids, or cache
    entries warmed through one entry point miss for another."""
    by_name = RunSpec(app="App1", scheme="baseline", iterations=10)
    by_config = RunSpec(app=get_app("App1"), scheme="baseline", iterations=10)
    assert by_config.app == "App1"
    assert by_name.run_id == by_config.run_id

    by_ref = RunSpec(app="machine:Sydney", scheme="baseline", iterations=10)
    by_machine = RunSpec(app=machine_app("sydney"), scheme="baseline", iterations=10)
    assert by_ref.app == by_machine.app == "machine:sydney"
    assert by_ref.run_id == by_machine.run_id

    # genuinely ad-hoc AppConfigs stay as-is
    custom = AppConfig("Custom", 6, "RA", 4, "jakarta", "v1")
    assert RunSpec(app=custom, scheme="baseline", iterations=10).app == custom

    plan = ExperimentPlan(
        apps=(get_app("App1"), machine_app("toronto")), schemes=("baseline",),
        iterations=10,
    )
    assert plan.apps == ("App1", "machine:toronto")


def test_resolve_app_forms():
    assert resolve_app("App3") == get_app("App3")
    machine = resolve_app("machine:sydney")
    assert machine == machine_app("sydney")
    assert machine.machine == "sydney"
    with pytest.raises(KeyError):
        resolve_app("AppX")


def test_freeze_overrides_sorts_and_freezes():
    frozen = freeze_overrides({"b": [1, 2], "a": 1.5})
    assert frozen == (("a", 1.5), ("b", (1, 2)))
    # hashable (usable in frozen dataclasses / dict keys)
    hash(frozen)


def test_plan_expansion_order_and_len():
    plan = ExperimentPlan(
        apps=("App1", "App2"), schemes=("baseline", "qismet"),
        iterations=30, seeds=(1, 2), trace_scales=(1.0, 2.0),
    )
    specs = plan.expand()
    assert len(specs) == len(plan) == 2 * 2 * 2 * 2
    # deterministic: apps outer, schemes inner; comparison cells adjacent
    assert [s.scheme for s in specs[:2]] == ["baseline", "qismet"]
    assert specs[0].comparison_key == specs[1].comparison_key
    assert specs[0].comparison_key == ("App1", 1, 1.0)
    assert specs[-1].comparison_key == ("App2", 2, 2.0)
    # expansion is stable
    assert [s.run_id for s in specs] == [s.run_id for s in plan.expand()]
    assert len(plan.plan_id) == 16


def test_plan_validation_and_round_trip():
    with pytest.raises(ValueError):
        ExperimentPlan(apps=(), schemes=("baseline",), iterations=10)
    with pytest.raises(ValueError):
        ExperimentPlan(apps=("App1",), schemes=(), iterations=10)
    plan = ExperimentPlan(
        apps=("App1", machine_app("toronto")), schemes=("baseline",),
        iterations=10, seeds=(3,), overrides={"retry_budget": 2}, name="t",
    )
    back = ExperimentPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert back == plan
    assert back.plan_id == plan.plan_id


def test_plan_single_matches_run_comparison_shape():
    plan = ExperimentPlan.single(
        "App1", ("baseline", "qismet"), 40, seed=5, trace_scale=2.0
    )
    specs = plan.expand()
    assert len(specs) == 2
    assert {s.scheme for s in specs} == {"baseline", "qismet"}
    assert all(s.seed == 5 and s.trace_scale == 2.0 for s in specs)
