"""Executors: serial/parallel equivalence, disk caching, env selection.

The headline guarantee: because every RunSpec is fully seed-determined,
the executor choice changes wall-clock time only — per-run results are
bit-equal after serialization across serial, process-pool and cached
execution.
"""

from typing import List, Sequence

import pytest

from repro.runtime import (
    CachedExecutor,
    ExperimentPlan,
    ParallelExecutor,
    PlanResult,
    RunResult,
    RunSpec,
    SerialExecutor,
    default_executor,
    execute_run,
)
from repro.runtime.executors import BaseExecutor


class CountingExecutor(BaseExecutor):
    """Serial executor that counts how many runs it actually executed."""

    def __init__(self):
        self.executed = 0

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        specs = list(specs)
        self.executed += len(specs)
        return [execute_run(spec) for spec in specs]


# The acceptance-scale plan: 2 apps x 3 schemes x 2 seeds = 12 runs.
PLAN = ExperimentPlan(
    apps=("App1", "App2"),
    schemes=("baseline", "qismet", "noise-free"),
    iterations=6,
    seeds=(5, 7),
)


@pytest.fixture(scope="module")
def serial_outcome() -> PlanResult:
    return SerialExecutor().run_plan(PLAN)


def _result_dicts(outcome: PlanResult):
    return [run.to_dict()["result"] for run in outcome]


def test_serial_executes_plan(serial_outcome):
    assert len(serial_outcome) == 12
    assert len(serial_outcome.by_run_id) == 12
    assert serial_outcome.total_elapsed_s > 0
    # 4 comparison cells (2 apps x 2 seeds), 3 schemes each
    comps = serial_outcome.comparisons()
    assert len(comps) == 4
    assert all(set(c.results) == set(PLAN.schemes) for c in comps.values())
    geo = serial_outcome.geomean_improvements()
    assert geo["baseline"] == pytest.approx(1.0)
    assert set(geo) == set(PLAN.schemes)


def test_parallel_matches_serial_bit_equal(serial_outcome):
    parallel = ParallelExecutor(max_workers=4).run_plan(PLAN)
    assert _result_dicts(parallel) == _result_dicts(serial_outcome)
    assert [r.run_id for r in parallel] == [r.run_id for r in serial_outcome]


def test_cached_executor_skips_reexecution(tmp_path, serial_outcome):
    counting = CountingExecutor()
    cached = CachedExecutor(tmp_path / "cache", inner=counting)

    first = cached.run_plan(PLAN)
    assert counting.executed == 12
    assert (cached.hits, cached.misses) == (0, 12)
    assert first.cache_hits == 0
    assert _result_dicts(first) == _result_dicts(serial_outcome)

    second = cached.run_plan(PLAN)
    assert counting.executed == 12  # nothing re-executed
    assert (cached.hits, cached.misses) == (12, 12)
    assert second.cache_hits == 12
    # cache round-trip is lossless: identical results and metrics
    assert _result_dicts(second) == _result_dicts(serial_outcome)
    for fresh, warm in zip(serial_outcome.comparisons().values(),
                           second.comparisons().values()):
        assert fresh.improvements() == warm.improvements()
        assert fresh.final_energies() == warm.final_energies()


def test_cached_executor_partial_miss(tmp_path):
    counting = CountingExecutor()
    cached = CachedExecutor(tmp_path / "cache", inner=counting)
    specs = PLAN.expand()
    cached.run(specs[:4])
    assert counting.executed == 4
    out = cached.run(specs)  # 4 warm, 8 cold
    assert counting.executed == 12
    assert [r.run_id for r in out] == [s.run_id for s in specs]
    assert [r.from_cache for r in out] == [True] * 4 + [False] * 8


def test_cached_executor_rejects_corrupt_entries(tmp_path):
    cached = CachedExecutor(tmp_path / "cache")
    spec = PLAN.expand()[0]
    run = cached.run_one(spec)
    # Corrupt the stored payload behind the content address: the store
    # notices the hash mismatch, treats it as a miss and heals the entry.
    conn = cached.store._conn
    conn.execute(
        "UPDATE blobs SET data = ? WHERE hash = "
        "(SELECT payload_hash FROM runs WHERE run_id = ?)",
        ("{not json", spec.run_id),
    )
    conn.commit()
    again = cached.run_one(spec)
    assert not again.from_cache
    assert again.to_dict()["result"] == run.to_dict()["result"]
    # ... and the heal sticks: next lookup is a clean hit again.
    healed = cached.run_one(spec)
    assert healed.from_cache


def test_cached_executor_serves_legacy_json_dir(tmp_path):
    """Pre-store caches (one JSON file per run) keep working as hits and
    are ingested into the store on first touch."""
    import json
    import warnings

    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    spec = PLAN.expand()[0]
    legacy = execute_run(spec)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy.save(cache_dir / f"{spec.run_id}.json")

    counting = CountingExecutor()
    cached = CachedExecutor(cache_dir, inner=counting)
    hit = cached.run_one(spec)
    assert hit.from_cache and counting.executed == 0
    assert hit.to_dict()["result"] == legacy.to_dict()["result"]
    # The legacy entry now lives in the store, tagged as an import.
    stored = cached.store.get_stored(spec.run_id)
    assert stored is not None and stored.source == "import"
    assert json.loads(stored.payload) == legacy.result.to_dict()


def test_cached_executor_shares_existing_store(tmp_path):
    from repro.store import ExperimentStore

    with ExperimentStore(tmp_path / "store.sqlite") as store:
        counting = CountingExecutor()
        cached = CachedExecutor(store, inner=counting)
        spec = PLAN.expand()[0]
        cached.run_one(spec)
        assert counting.executed == 1
        assert spec.run_id in store
        # A second executor over the same store sees the hit.
        warm = CachedExecutor(store, inner=counting)
        assert warm.run_one(spec).from_cache
        assert counting.executed == 1


def test_executor_for_resolution(monkeypatch, tmp_path):
    from repro.runtime import executor_for
    from repro.store import ExperimentStore

    for env in ("REPRO_EXECUTOR", "REPRO_CACHE_DIR", "REPRO_STORE", "REPRO_JOBS"):
        monkeypatch.delenv(env, raising=False)

    assert isinstance(executor_for(), SerialExecutor)
    assert isinstance(executor_for("parallel"), ParallelExecutor)
    assert executor_for("parallel", max_workers=2).max_workers == 2

    # Explicit store argument wins over everything.
    with ExperimentStore(tmp_path / "explicit.sqlite") as store:
        cached = executor_for(store=store)
        assert isinstance(cached, CachedExecutor)
        assert cached.store is store

    # REPRO_STORE picks a sqlite-backed cache ...
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store.sqlite"))
    cached = executor_for()
    assert isinstance(cached, CachedExecutor)
    assert cached.store.path == str(tmp_path / "env-store.sqlite")
    cached.close()

    # ... but an explicit cache_dir argument still beats the env knob.
    cached = executor_for(cache_dir=tmp_path / "dir-cache")
    assert cached.cache_dir == tmp_path / "dir-cache"
    cached.close()


def test_comparisons_refuses_lossy_overrides_regrouping():
    """An overrides sweep repeats (cell, scheme); regrouping it into one
    ComparisonResult would silently drop runs."""
    specs = [
        RunSpec(
            app="App1", scheme="baseline", iterations=4, seed=3,
            overrides={"retry_budget": budget},
        )
        for budget in (1, 5)
    ]
    outcome = PlanResult(runs=SerialExecutor().run(specs))
    with pytest.raises(ValueError, match="multiple 'baseline' runs"):
        outcome.comparisons()


def test_parallel_executor_validation():
    with pytest.raises(ValueError):
        ParallelExecutor(max_workers=0)
    with pytest.raises(ValueError):
        ParallelExecutor(chunksize=0)


def test_parallel_single_spec_stays_in_process():
    spec = RunSpec(app="App1", scheme="noise-free", iterations=4, seed=3)
    out = ParallelExecutor().run([spec])
    assert len(out) == 1 and out[0].run_id == spec.run_id


def test_default_executor_env_selection(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert isinstance(default_executor(), SerialExecutor)

    monkeypatch.setenv("REPRO_EXECUTOR", "parallel")
    monkeypatch.setenv("REPRO_JOBS", "3")
    executor = default_executor()
    assert isinstance(executor, ParallelExecutor)
    assert executor.max_workers == 3

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cached = default_executor()
    assert isinstance(cached, CachedExecutor)
    assert isinstance(cached.inner, ParallelExecutor)

    monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
    with pytest.raises(ValueError):
        default_executor()


def test_default_executor_fleet_selection(monkeypatch, tmp_path):
    from repro.fleet import FleetExecutor

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setenv("REPRO_EXECUTOR", "fleet")
    monkeypatch.setenv("REPRO_FLEET_DB", str(tmp_path / "fleet.db"))
    monkeypatch.setenv("REPRO_FLEET_MACHINES", "toronto,guadalupe")
    executor = default_executor()
    try:
        assert isinstance(executor, FleetExecutor)
        assert executor.store.path == str(tmp_path / "fleet.db")
        assert executor.fleet.names() == ["guadalupe", "toronto"]
    finally:
        executor.close()

    # REPRO_CACHE_DIR composes: disk cache in front of the fleet.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cached = default_executor()
    try:
        assert isinstance(cached, CachedExecutor)
        assert isinstance(cached.inner, FleetExecutor)
    finally:
        cached.inner.close()


def test_run_comparison_shim_accepts_executor(tmp_path):
    from repro.experiments import get_app, run_comparison

    cached = CachedExecutor(tmp_path / "cache", inner=CountingExecutor())
    comp = run_comparison(
        get_app("App1"), ["baseline", "qismet"], iterations=5, seed=6,
        executor=cached,
    )
    assert set(comp.results) == {"baseline", "qismet"}
    assert cached.misses == 2
    comp2 = run_comparison(
        get_app("App1"), ["baseline", "qismet"], iterations=5, seed=6,
        executor=cached,
    )
    assert cached.inner.executed == 2  # second comparison fully cached
    assert comp2.improvements() == comp.improvements()
