import numpy as np
import pytest

from repro.circuits.gates import GATES, gate_matrix


@pytest.mark.parametrize("name", sorted(GATES))
def test_all_gates_are_unitary(name):
    spec = GATES[name]
    params = tuple(0.37 + 0.11 * i for i in range(spec.num_params))
    matrix = spec.matrix(params)
    dim = 2**spec.num_qubits
    assert matrix.shape == (dim, dim)
    assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)


def test_known_matrices():
    x = gate_matrix("x")
    assert np.allclose(x, [[0, 1], [1, 0]])
    h = gate_matrix("h")
    assert np.allclose(h @ h, np.eye(2), atol=1e-12)
    cx = gate_matrix("cx")
    # |10> -> |11> in (control, target) ordering
    state = np.zeros(4)
    state[2] = 1.0
    assert np.allclose(cx @ state, [0, 0, 0, 1])


def test_rotation_periodicity():
    rz0 = gate_matrix("rz", (0.0,))
    rz4pi = gate_matrix("rz", (4 * np.pi,))
    assert np.allclose(rz0, rz4pi, atol=1e-9)


def test_rotation_composition():
    a, b = 0.3, 0.9
    composed = gate_matrix("ry", (a,)) @ gate_matrix("ry", (b,))
    assert np.allclose(composed, gate_matrix("ry", (a + b,)), atol=1e-10)


def test_sx_squared_is_x():
    sx = gate_matrix("sx")
    assert np.allclose(sx @ sx, gate_matrix("x"), atol=1e-10)


def test_s_and_sdg_inverse():
    assert np.allclose(gate_matrix("s") @ gate_matrix("sdg"), np.eye(2))


def test_u_gate_covers_ry_rz():
    theta = 0.7
    # u(theta, 0, 0) equals ry(theta) up to global phase; here exactly.
    assert np.allclose(gate_matrix("u", (theta, 0.0, 0.0)), gate_matrix("ry", (theta,)))


def test_param_count_enforced():
    with pytest.raises(ValueError):
        gate_matrix("rx", ())
    with pytest.raises(ValueError):
        gate_matrix("h", (1.0,))


def test_unknown_gate():
    with pytest.raises(KeyError):
        gate_matrix("nope")


def test_rzz_diagonal():
    theta = 0.8
    mat = gate_matrix("rzz", (theta,))
    assert np.allclose(mat, np.diag(np.diag(mat)))


def test_crx_controls_correctly():
    theta = 1.1
    mat = gate_matrix("crx", (theta,))
    assert np.allclose(mat[:2, :2], np.eye(2))
    assert np.allclose(mat[2:, 2:], gate_matrix("rx", (theta,)))
