"""CLI and diagnostics-framework tests for ``python -m repro.analysis``."""

import json

import pytest

from repro.analysis import (
    CODE_TABLE,
    AnalysisReport,
    Severity,
    make_diagnostic,
    merge_reports,
    render_code_table,
)
from repro.analysis.cli import main


# -- diagnostics framework -----------------------------------------------------


def test_diagnostic_rendering_and_location():
    diagnostic = make_diagnostic(
        "RPR101", "unseeded rng", file="a.py", line=3, column=4, hint="seed it"
    )
    text = diagnostic.render()
    assert "a.py:3:4" in text
    assert "RPR101" in text and "unseeded-rng" in text
    assert "hint: seed it" in text


def test_locus_rendering_for_ir_findings():
    diagnostic = make_diagnostic("RPR005", "bad matrix", locus="GatePlan.ops[2]")
    assert diagnostic.render().startswith("GatePlan.ops[2]:")


def test_default_severity_comes_from_registry():
    assert make_diagnostic("RPR012", "x").severity == Severity.WARNING
    assert make_diagnostic("RPR005", "x").severity == Severity.ERROR


def test_unknown_code_rejected():
    with pytest.raises(KeyError):
        make_diagnostic("RPR999", "x")


def test_report_aggregation_and_json_roundtrip():
    report = AnalysisReport()
    report.add("RPR005", "one")
    report.add("RPR012", "two", locus="GatePlan")
    payload = json.loads(report.to_json())
    assert payload["counts"] == {"error": 1, "warning": 1}
    assert payload["ok"] is False
    assert len(payload["diagnostics"]) == 2
    assert report.has_errors
    assert len(report.errors) == 1 and len(report.warnings) == 1


def test_merge_reports_accumulates_suppressed():
    a = AnalysisReport(suppressed=1)
    a.add("RPR005", "x")
    b = AnalysisReport()
    merged = merge_reports([a, b])
    assert len(merged) == 1 and merged.suppressed == 1


def test_render_text_orders_by_severity():
    report = AnalysisReport()
    report.add("RPR012", "warn first added")
    report.add("RPR005", "error second added")
    lines = report.render_text().splitlines()
    assert "RPR005" in lines[0]
    assert "1 error, 1 warning" in lines[-1]


def test_code_table_covers_both_tiers():
    verifier = [c for c in CODE_TABLE if c < "RPR100"]
    linter = [c for c in CODE_TABLE if c >= "RPR100"]
    assert len(verifier) >= 10 and len(linter) >= 4
    table = render_code_table()
    for code in CODE_TABLE:
        assert code in table


# -- CLI -----------------------------------------------------------------------


def test_cli_codes_subcommand(capsys):
    assert main(["codes"]) == 0
    out = capsys.readouterr().out
    assert "RPR005" in out and "RPR101" in out


def test_cli_lint_clean_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("from repro.utils.rng import ensure_rng\n")
    assert main(["lint", str(clean)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_lint_flags_unseeded_rng(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "import numpy as np\nrng = np.random.default_rng()\n"
    )
    assert main(["lint", str(dirty)]) == 1
    assert "RPR101" in capsys.readouterr().out


def test_cli_lint_json_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nnp.random.seed(1)\n")
    assert main(["--json", "lint", str(dirty)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["diagnostics"][0]["code"] == "RPR101"


def test_cli_fail_on_warning(tmp_path):
    warn_only = tmp_path / "warn.py"
    warn_only.write_text("def broken(:\n")  # parse error -> RPR100 warning
    assert main(["lint", str(warn_only)]) == 0
    assert main(["--fail-on", "warning", "lint", str(warn_only)]) == 1


def test_cli_verify_single_app(capsys):
    assert main(["verify", "--app", "App1"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_verify_all_apps_clean(capsys):
    """Acceptance: the registry-wide sweep (with and without noise) reports
    zero error-severity diagnostics."""
    assert main(["verify", "--all-apps"]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out


def test_cli_verify_no_noise_leg(capsys):
    assert main(["verify", "--app", "App2", "--no-noise"]) == 0
