import numpy as np
import pytest

from repro.circuits.library import (
    bell_pair,
    ghz_circuit,
    layered_cx_circuit,
    random_circuit,
)
from repro.simulator.statevector import simulate_statevector


def test_bell_pair_state():
    sv = simulate_statevector(bell_pair())
    expected = np.zeros(4, dtype=complex)
    expected[0] = expected[3] = 1 / np.sqrt(2)
    assert np.allclose(sv, expected)


def test_ghz_state():
    sv = simulate_statevector(ghz_circuit(4))
    assert abs(sv[0]) ** 2 == pytest.approx(0.5, abs=1e-12)
    assert abs(sv[-1]) ** 2 == pytest.approx(0.5, abs=1e-12)
    assert np.sum(np.abs(sv) ** 2) == pytest.approx(1.0)


def test_ghz_minimum_size():
    with pytest.raises(ValueError):
        ghz_circuit(1)


def test_random_circuit_deterministic_by_seed():
    a = random_circuit(3, 20, seed=5)
    b = random_circuit(3, 20, seed=5)
    assert [i.name for i in a] == [i.name for i in b]
    assert len(a) == 20


def test_random_circuit_validation():
    with pytest.raises(ValueError):
        random_circuit(2, 0)
    with pytest.raises(ValueError):
        random_circuit(2, 5, two_qubit_fraction=1.5)


def test_layered_cx_counts():
    qc = layered_cx_circuit(4, 6, seed=3)
    ops = qc.count_ops()
    assert ops["ry"] == 24
    # alternating brick pattern: 2 or 1 CX per layer on 4 qubits
    assert 6 <= ops["cx"] <= 12
