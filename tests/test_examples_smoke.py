"""Smoke tests: the example scripts' building blocks stay runnable.

The examples themselves are exercised at reduced scale here so CI catches
API drift without paying their full runtime.
"""

import importlib.util
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    for name in (
        "quickstart",
        "h2_dissociation",
        "scheme_comparison",
        "device_transient_analysis",
        "experiment_sweep",
        "fleet_demo",
    ):
        assert (EXAMPLES / f"{name}.py").exists()


def test_experiment_sweep_plan_declared():
    sweep = _load("experiment_sweep")
    # acceptance shape: >= 2 apps x >= 3 schemes x >= 2 seeds
    assert len(sweep.PLAN.apps) >= 2
    assert len(sweep.PLAN.schemes) >= 3
    assert len(sweep.PLAN.seeds) >= 2
    specs = sweep.PLAN.expand()
    assert len({spec.run_id for spec in specs}) == len(sweep.PLAN)


def test_scheme_comparison_plan_small(tmp_path):
    comparison = _load("scheme_comparison")
    from repro.runtime import CachedExecutor, ExperimentPlan, SerialExecutor

    plan = ExperimentPlan.single(
        comparison.get_app("App2"), ("baseline", "qismet"), 8,
        seed=comparison.SEED,
    )
    executor = CachedExecutor(tmp_path / "cache", inner=SerialExecutor())
    outcome = executor.run_plan(plan)
    assert set(outcome.comparison("App2").results) == {"baseline", "qismet"}
    assert executor.misses == 2


def test_fleet_demo_plan_and_reduced_run(tmp_path):
    demo = _load("fleet_demo")
    assert len(demo.PLAN) == 12
    # the demo's moves, at reduced scale: inject a window, run, resubmit
    from repro.fleet import FleetExecutor
    from repro.runtime import ExperimentPlan

    plan = ExperimentPlan.single(
        "App1", ("baseline",), 4, seed=7, name="fleet-demo-smoke"
    )
    db = tmp_path / "fleet.db"
    with FleetExecutor(db_path=db) as executor:
        executor.fleet.inject_transient("toronto", 0, 100, magnitude=0.8)
        executor.run_plan(plan)
        assert executor.telemetry.snapshot()["devices"]["toronto"]["deferred"] >= 1
    with FleetExecutor(db_path=db) as executor:
        again = executor.run_plan(plan)
        assert executor.hits == 1 and all(r.from_cache for r in again)


def test_quickstart_builders():
    quickstart = _load("quickstart")
    vqe = quickstart.build_vqe(use_qismet=True)
    assert vqe.controller is not None
    result = vqe.run(12, seed=1)
    assert result.iterations == 12


def test_h2_example_solver_small():
    h2 = _load("h2_dissociation")
    energy = h2.solve("noise-free", 0.735, index=0)
    # a short run should land below the HF reference region
    assert energy < -0.8


def test_device_analysis_main_runs(capsys):
    analysis = _load("device_transient_analysis")
    analysis.main()
    out = capsys.readouterr().out
    assert "T1 fluctuations" in out
    assert "guadalupe" in out
