import numpy as np
import pytest

from repro.optimizers.base import IterativeOptimizer
from repro.optimizers.gradient_descent import ParameterShiftGradientDescent
from repro.optimizers.scipy_wrappers import minimize_scipy
from repro.optimizers.spsa import (
    SPSA,
    BlockingSPSA,
    ResamplingSPSA,
    SecondOrderSPSA,
)


def quadratic(theta):
    return float(np.sum((np.asarray(theta) - 1.0) ** 2))


def _drive(optimizer, objective, theta0, iterations):
    theta = np.asarray(theta0, dtype=float)
    energy = objective(theta)
    for _ in range(iterations):
        candidate = optimizer.propose(theta, objective)
        cand_energy = objective(candidate)
        accepted = optimizer.accepts(energy, cand_energy)
        if accepted:
            theta, energy = candidate, cand_energy
        optimizer.feedback(accepted, theta, energy)
    return theta, energy


def test_spsa_minimizes_quadratic():
    opt = SPSA(a=0.6, c=0.1, stability=10.0, seed=3)
    theta, energy = _drive(opt, quadratic, np.zeros(4), 300)
    assert energy < 0.05
    assert np.allclose(theta, 1.0, atol=0.3)


def test_spsa_two_evaluations_per_step():
    opt = SPSA(seed=1)
    opt.propose(np.zeros(3), quadratic)
    assert opt.state.evaluations == 2


def test_spsa_gain_schedules_decay():
    opt = SPSA()
    assert opt.learning_rate(0) > opt.learning_rate(100)
    assert opt.perturbation_size(0) > opt.perturbation_size(100)


def test_spsa_trust_region_caps_step():
    opt = SPSA(a=100.0, trust_radius=0.05, stability=0.0, seed=2)
    theta = np.zeros(5)
    candidate = opt.propose(theta, quadratic)
    assert np.linalg.norm(candidate - theta) <= 0.05 + 1e-12


def test_spsa_no_trust_region_by_default():
    assert SPSA().trust_radius is None


def test_spsa_validation():
    with pytest.raises(ValueError):
        SPSA(a=-1.0)
    with pytest.raises(ValueError):
        SPSA(trust_radius=0.0)


def test_spsa_seeded_reproducibility():
    a = _drive(SPSA(seed=9), quadratic, np.zeros(3), 50)[0]
    b = _drive(SPSA(seed=9), quadratic, np.zeros(3), 50)[0]
    assert np.allclose(a, b)


def test_resampling_uses_double_evaluations():
    opt = ResamplingSPSA(resamplings=2, seed=1)
    opt.propose(np.zeros(3), quadratic)
    assert opt.state.evaluations == 4
    with pytest.raises(ValueError):
        ResamplingSPSA(resamplings=0)


def test_resampling_reduces_gradient_variance():
    rng = np.random.default_rng(0)

    def noisy(theta):
        return quadratic(theta) + rng.normal(0, 0.5)

    def spread(opt_cls, **kw):
        grads = []
        for seed in range(30):
            opt = opt_cls(seed=seed, **kw)
            candidate = opt.propose(np.zeros(3), noisy)
            grads.append(candidate)
        return np.mean(np.var(grads, axis=0))

    assert spread(ResamplingSPSA, resamplings=4) < spread(SPSA)


def test_blocking_rejects_worsening():
    opt = BlockingSPSA(allowed_increase=0.0, seed=1)
    assert opt.accepts(1.0, 0.5)
    assert not opt.accepts(1.0, 1.5)


def test_blocking_noise_allowance_adapts():
    opt = BlockingSPSA(seed=1)
    for value in (1.0, 0.9, 1.1, 0.95, 1.05):
        opt.feedback(True, np.zeros(1), value)
    assert opt._noise_estimate > 0
    # small increases within noise are accepted
    assert opt.accepts(1.0, 1.0 + opt._noise_estimate)


def test_second_order_minimizes_quadratic():
    opt = SecondOrderSPSA(a=0.5, stability=10.0, seed=5)
    theta, energy = _drive(opt, quadratic, np.zeros(3), 300)
    assert energy < 0.2


def test_second_order_four_evaluations():
    opt = SecondOrderSPSA(seed=2)
    opt.propose(np.zeros(2), quadratic)
    assert opt.state.evaluations == 4
    with pytest.raises(ValueError):
        SecondOrderSPSA(regularization=0.0)


def test_parameter_shift_exact_on_sinusoid():
    def cost(theta):
        return float(np.sin(theta[0]))

    opt = ParameterShiftGradientDescent(learning_rate=0.5)
    grad = opt.gradient(np.array([0.0]), cost)
    # parameter-shift of sin at 0: (sin(pi/2) - sin(-pi/2))/2 = 1
    assert grad[0] == pytest.approx(1.0)


def test_parameter_shift_descends():
    opt = ParameterShiftGradientDescent(learning_rate=0.3)
    theta, energy = _drive(opt, quadratic, np.zeros(2), 40)
    # note: parameter-shift is exact only for rotation-generated costs;
    # on a plain quadratic it still descends.
    assert energy < quadratic(np.zeros(2))


def test_parameter_shift_validation():
    with pytest.raises(ValueError):
        ParameterShiftGradientDescent(learning_rate=0.0)
    with pytest.raises(ValueError):
        ParameterShiftGradientDescent(learning_rate=0.1, decay=-1.0)


def test_scipy_wrapper():
    result = minimize_scipy(quadratic, np.zeros(3), method="COBYLA")
    assert result.fun < 0.05
    with pytest.raises(ValueError):
        minimize_scipy(quadratic, np.zeros(2), method="BFGS")


def test_base_optimizer_protocol():
    opt = IterativeOptimizer()
    with pytest.raises(NotImplementedError):
        opt.propose(np.zeros(1), quadratic)
    assert opt.accepts(1.0, 2.0)
    opt.feedback(True, np.zeros(1), 1.0)
    assert opt.state.iteration == 1
    opt.reset()
    assert opt.state.iteration == 0
