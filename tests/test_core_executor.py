import numpy as np
import pytest

from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.backends.ideal import IdealBackend
from repro.backends.transient import TransientBackend
from repro.core.controller import QismetController
from repro.core.executor import GuardedEvaluator, PlainEvaluator
from repro.core.thresholds import FixedThreshold
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.noise.noise_model import NoiseModel
from repro.noise.transient.trace import TransientTrace
from repro.vqa.objective import EnergyObjective


@pytest.fixture
def objective():
    return EnergyObjective(RealAmplitudes(3, reps=1), tfim_hamiltonian(3))


def _noiseless_transient_backend(objective, trace_values):
    trace = TransientTrace(np.asarray(trace_values, dtype=float),
                           metadata={"seed": 1.0})
    return TransientBackend(
        objective, trace, noise_model=NoiseModel.ideal(), shots=10**12,
        seed=3, state_sensitivity=0.0, exposure_jitter=0.0,
    )


def test_plain_evaluator_one_job_per_call(objective):
    backend = IdealBackend(objective)
    evaluator = PlainEvaluator(backend)
    theta = objective.initial_point(seed=1)
    evaluator.energy(theta)
    evaluator.energy(theta)
    assert backend.job_counter == 2
    assert evaluator.total_retries == 0


def test_guarded_evaluator_runs_reference_rerun(objective):
    backend = IdealBackend(objective)
    controller = QismetController(threshold=FixedThreshold(10.0))
    evaluator = GuardedEvaluator(backend, controller)
    theta = objective.initial_point(seed=1)
    evaluator.energy(theta)          # first: no reference yet -> 1 circuit
    evaluator.energy(theta + 0.01)   # second: candidate + rerun -> 2 circuits
    assert backend.total_circuits == 3
    assert backend.job_counter == 2


def test_guarded_evaluator_retries_through_spike(objective):
    # Trace: quiet, quiet, SPIKE, quiet... The third evaluation lands on
    # the spike, gets retried once, and succeeds in the quiet job after.
    backend = _noiseless_transient_backend(objective, [0.0, 0.0, 0.9, 0.0, 0.0, 0.0])
    controller = QismetController(
        threshold=FixedThreshold(0.05), retry_budget=5,
        max_skip_fraction=1.0, warmup_decisions=0,
    )
    evaluator = GuardedEvaluator(backend, controller)
    theta = objective.initial_point(seed=2)

    evaluator.energy(theta)                 # job 0, quiet
    evaluator.energy(theta + 0.05)          # job 1, quiet
    e2 = evaluator.energy(theta + 0.10)     # job 2 spiked -> retry -> job 3
    assert evaluator.total_retries == 1
    assert backend.job_counter == 4
    # the accepted value comes from the clean job
    clean = objective.ideal_energy(theta + 0.10)
    assert e2 == pytest.approx(clean, abs=1e-6)


def test_guarded_evaluator_forced_accept_on_long_transient(objective):
    backend = _noiseless_transient_backend(objective, [0.0, 0.0] + [0.9] * 10)
    controller = QismetController(
        threshold=FixedThreshold(0.05), retry_budget=3,
        max_skip_fraction=1.0, warmup_decisions=0,
    )
    evaluator = GuardedEvaluator(backend, controller)
    theta = objective.initial_point(seed=2)
    evaluator.energy(theta)
    evaluator.energy(theta + 0.05)
    value = evaluator.energy(theta + 0.10)  # enters the long transient
    assert controller.stats.forced_accepts == 1
    assert evaluator.total_retries == 3
    # value is corrupted (the transient was eventually accepted)
    clean = objective.ideal_energy(theta + 0.10)
    assert value > clean + 1.0


def test_guarded_evaluator_accepts_aligned_transient(objective):
    # Spike hits BOTH candidate and rerun equally; candidate truly improves
    # so Gm and Gp stay negative -> accepted without retries (Fig. 9 d/e).
    backend = _noiseless_transient_backend(objective, [0.0, 0.3, 0.3])
    controller = QismetController(
        threshold=FixedThreshold(0.05), max_skip_fraction=1.0,
        warmup_decisions=0,
    )
    evaluator = GuardedEvaluator(backend, controller)
    theta = objective.initial_point(seed=2)
    evaluator.energy(theta)
    # jump to a far better point so deltaE dominates the transient delta
    better = theta * 0.0 + 0.7
    evaluator.energy(better)
    assert evaluator.total_retries == 0


def test_guarded_evaluator_reset(objective):
    backend = IdealBackend(objective)
    evaluator = GuardedEvaluator(backend, QismetController())
    evaluator.energy(objective.initial_point(seed=1))
    evaluator.reset()
    assert evaluator._last_theta is None
    assert backend.job_counter == 0
