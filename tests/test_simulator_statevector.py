import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.circuits.library import random_circuit
from repro.simulator.statevector import (
    StatevectorSimulator,
    apply_gate,
    simulate_statevector,
)


def _dense_unitary(circuit):
    """Reference: build the full-circuit unitary by kron products."""
    n = circuit.num_qubits
    dim = 2**n
    total = np.eye(dim, dtype=complex)
    for inst in circuit:
        if inst.name == "barrier":
            continue
        gate = gate_matrix(inst.name, tuple(float(p) for p in inst.params))
        full = _embed(gate, inst.qubits, n)
        total = full @ total
    return total


def _embed(gate, qubits, n):
    dim = 2**n
    full = np.zeros((dim, dim), dtype=complex)
    k = len(qubits)
    for row in range(dim):
        row_bits = [(row >> (n - 1 - q)) & 1 for q in range(n)]
        sub_row = 0
        for q in qubits:
            sub_row = (sub_row << 1) | row_bits[q]
        for sub_col in range(2**k):
            amp = gate[sub_row, sub_col]
            if amp == 0:
                continue
            col_bits = list(row_bits)
            for i, q in enumerate(qubits):
                col_bits[q] = (sub_col >> (k - 1 - i)) & 1
            col = 0
            for bit in col_bits:
                col = (col << 1) | bit
            full[row, col] += amp
    return full


def test_zero_state():
    sim = StatevectorSimulator(3)
    state = sim.zero_state().reshape(-1)
    assert state[0] == 1.0
    assert np.sum(np.abs(state)) == 1.0


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_matches_dense_unitary_reference(seed):
    circuit = random_circuit(3, 25, seed=seed)
    sv = simulate_statevector(circuit)
    ref = _dense_unitary(circuit)[:, 0]
    assert np.allclose(sv, ref, atol=1e-10)


def test_norm_preserved():
    circuit = random_circuit(4, 60, seed=9)
    sv = simulate_statevector(circuit)
    assert np.vdot(sv, sv).real == pytest.approx(1.0, abs=1e-10)


def test_apply_gate_two_qubit_ordering():
    # CX with control 1, target 0 on |01> (q0=0, q1=1) -> |11>
    sim = StatevectorSimulator(2)
    state = sim.zero_state()
    state = apply_gate(state, gate_matrix("x"), (1,))
    state = apply_gate(state, gate_matrix("cx"), (1, 0))
    flat = state.reshape(-1)
    assert abs(flat[0b11]) == pytest.approx(1.0)


def test_unbound_circuit_rejected():
    from repro.circuits.parameter import Parameter

    qc = QuantumCircuit(1)
    qc.ry(Parameter("t"), 0)
    sim = StatevectorSimulator(1)
    with pytest.raises(ValueError):
        sim.run_circuit(qc)


def test_initial_state_respected():
    sim = StatevectorSimulator(1)
    plus = np.array([1, 1]) / np.sqrt(2)
    qc = QuantumCircuit(1)
    qc.h(0)
    out = sim.run_circuit(qc, initial_state=plus).reshape(-1)
    # H|+> = |0>
    assert abs(out[0]) == pytest.approx(1.0, abs=1e-10)
