"""v2 gate kernels: classification, parity vs. the tensordot reference,
fusion structures, chunk/thread bit-identity and metrics accounting."""

import numpy as np
import pytest

from repro.ansatz.efficient_su2 import EfficientSU2
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.compiler import compile_plan
from repro.compiler.ir import (
    KERNEL_1Q_PAIR,
    KERNEL_2Q_QUAD,
    KERNEL_DENSE,
    KERNEL_DIAGONAL,
    kernel_class_of_gate,
    kernel_class_of_matrix,
)
from repro.obs.metrics import METRICS
from repro.simulator import kernels
from repro.simulator.batched import BatchedStatevectorSimulator
from repro.simulator.kernels.reference import (
    apply_gate_tensordot,
    apply_gates_elementwise_reference,
)
from repro.simulator.statevector import StatevectorSimulator


@pytest.fixture(autouse=True)
def _exercise_pair_kernels(monkeypatch):
    """Drop the small-state floor so tiny test states hit the real kernels.

    Production dispatch routes states below ``PAIR_MIN_STATE_SIZE``
    elements to the tensordot reference (dispatch overhead dominates
    there); the parity tests exist to exercise the pair kernels
    themselves, so they disable the floor.
    """
    monkeypatch.setattr(kernels, "PAIR_MIN_STATE_SIZE", 0)


def _random_state(n, rng, batch=None):
    shape = ((batch,) if batch else ()) + (2,) * n
    state = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return np.ascontiguousarray(state / np.linalg.norm(state))


def _random_unitary(dim, rng):
    q, r = np.linalg.qr(
        rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    )
    return q * (np.diagonal(r) / np.abs(np.diagonal(r)))


# ---------------------------------------------------------------- classes


def test_kernel_class_of_matrix_structural():
    assert kernel_class_of_matrix(gate_matrix("rz", [0.3])) == KERNEL_DIAGONAL
    assert kernel_class_of_matrix(gate_matrix("cz")) == KERNEL_DIAGONAL
    assert kernel_class_of_matrix(gate_matrix("h")) == KERNEL_1Q_PAIR
    assert kernel_class_of_matrix(gate_matrix("cx")) == KERNEL_2Q_QUAD
    assert kernel_class_of_matrix(_TOFFOLI) == KERNEL_DENSE


def test_kernel_class_of_gate_lowering():
    assert kernel_class_of_gate("rz", 1) == KERNEL_DIAGONAL
    assert kernel_class_of_gate("ry", 1) == KERNEL_1Q_PAIR
    assert kernel_class_of_gate("rxx", 2) == KERNEL_2Q_QUAD
    assert kernel_class_of_gate("ccx", 3) == KERNEL_DENSE


def test_plan_ops_carry_kernel_class():
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.rz(0.4, 1)
    circuit.cx(0, 1)
    plan = compile_plan(circuit, fusion=False, cache=False)
    classes = [op.kernel_class for op in plan.ops]
    assert classes == [KERNEL_1Q_PAIR, KERNEL_DIAGONAL, KERNEL_2Q_QUAD]


# ----------------------------------------------------- shared-gate parity


_TOFFOLI = np.eye(8, dtype=complex)
_TOFFOLI[[6, 7], [6, 7]] = 0.0
_TOFFOLI[6, 7] = _TOFFOLI[7, 6] = 1.0

_SHARED_CASES = [
    ("h", (0,)), ("rz", (1,)), ("x", (2,)),
    ("cx", (0, 1)), ("cx", (2, 0)), ("cz", (1, 2)),
    ("rxx", (0, 2)), ("swap", (2, 1)), ("ccx", (0, 1, 2)),
    ("ccx", (2, 0, 1)),
]


@pytest.mark.parametrize("n", [3, 5, 8])
@pytest.mark.parametrize("name,qubits", _SHARED_CASES)
def test_apply_gate_matches_reference(n, name, qubits):
    seed = n * 1009 + len(name) * 101 + sum(qubits)
    rng = np.random.default_rng(seed)
    params = [0.7] if name in ("rz", "rxx") else []
    matrix = _TOFFOLI if name == "ccx" else gate_matrix(name, params)
    state = _random_state(n, rng)
    expected = apply_gate_tensordot(state, matrix, qubits)
    got = kernels.apply_gate(state, matrix, qubits, engine="pair")
    np.testing.assert_allclose(got, expected, atol=1e-12)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_apply_gate_dense_random_unitary(k):
    rng = np.random.default_rng(11 + k)
    n = 6
    matrix = _random_unitary(1 << k, rng)
    for qubits in [tuple(range(k)), tuple(range(k))[::-1],
                   tuple(range(n - k, n))]:
        state = _random_state(n, rng)
        expected = apply_gate_tensordot(state, matrix, qubits)
        got = kernels.apply_gate(state, matrix, qubits, engine="pair")
        np.testing.assert_allclose(got, expected, atol=1e-12)


def test_apply_gate_batch_axis_parity():
    rng = np.random.default_rng(5)
    states = _random_state(4, rng, batch=3)
    matrix = gate_matrix("cx")
    expected = apply_gate_tensordot(states, matrix, (1, 3), batch_axes=1)
    got = kernels.apply_gate(
        states, matrix, (1, 3), batch_axes=1, engine="pair"
    )
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_apply_gate_does_not_mutate_input_by_default():
    rng = np.random.default_rng(9)
    state = _random_state(4, rng)
    before = state.copy()
    for name, qubits in [("rz", (1,)), ("h", (0,)), ("cx", (0, 1))]:
        kernels.apply_gate(
            state, gate_matrix(name, [0.3] if name == "rz" else []),
            qubits, engine="pair",
        )
        np.testing.assert_array_equal(state, before)


def test_apply_gate_tensordot_engine_is_reference():
    rng = np.random.default_rng(3)
    state = _random_state(4, rng)
    matrix = gate_matrix("h")
    got = kernels.apply_gate(state, matrix, (2,), engine="tensordot")
    np.testing.assert_array_equal(
        got, apply_gate_tensordot(state, matrix, (2,))
    )


def test_small_states_route_to_reference(monkeypatch):
    monkeypatch.setattr(kernels, "PAIR_MIN_STATE_SIZE", 1 << 12)
    rng = np.random.default_rng(7)
    state = _random_state(4, rng)  # 16 elements, far below the floor
    matrix = gate_matrix("h")
    got = kernels.apply_gate(state, matrix, (1,), engine="pair")
    np.testing.assert_array_equal(
        got, apply_gate_tensordot(state, matrix, (1,))
    )


# ----------------------------------------------- elementwise-stack parity


@pytest.mark.parametrize("n", [3, 6, 14])
@pytest.mark.parametrize("batch", [2, 5])
@pytest.mark.parametrize("kind", ["1q", "2q", "3q", "diag"])
def test_apply_gates_elementwise_matches_reference(n, batch, kind):
    rng = np.random.default_rng(n * 100 + batch * 10 + len(kind))
    if kind == "diag":
        qubits = (0, 1)
        phases = np.exp(1j * rng.uniform(0, np.pi, (batch, 4)))
        matrices = np.zeros((batch, 4, 4), dtype=complex)
        matrices[:, np.arange(4), np.arange(4)] = phases
    else:
        k = {"1q": 1, "2q": 2, "3q": 3}[kind]
        qubits = tuple(range(min(k, n)))[:k]
        if k > n:
            pytest.skip("operator wider than register")
        matrices = np.stack(
            [_random_unitary(1 << k, rng) for _ in range(batch)]
        )
    states = _random_state(n, rng, batch=batch)
    expected = apply_gates_elementwise_reference(states, matrices, qubits)
    got = kernels.apply_gates_elementwise(
        states, matrices, qubits, engine="pair"
    )
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_apply_gates_elementwise_reversed_qubits():
    rng = np.random.default_rng(17)
    states = _random_state(14, rng, batch=2)
    matrices = np.stack([_random_unitary(4, rng) for _ in range(2)])
    expected = apply_gates_elementwise_reference(states, matrices, (5, 2))
    got = kernels.apply_gates_elementwise(
        states, matrices, (5, 2), engine="pair"
    )
    np.testing.assert_allclose(got, expected, atol=1e-12)


# ------------------------------------------------------ fusion structures


def test_absorb_pending_2q_folds_rotation_layer():
    rng = np.random.default_rng(23)
    pending = kernels.PendingOneQubitGates(3)
    ry0 = gate_matrix("ry", [0.4])
    rz1 = gate_matrix("rz", [0.9])
    pending.push(0, ry0, KERNEL_1Q_PAIR)
    pending.push(1, rz1, KERNEL_DIAGONAL)
    cx = gate_matrix("cx")
    merged, merged_class = kernels.absorb_pending_2q(
        pending, cx, (0, 1), KERNEL_2Q_QUAD
    )
    assert merged_class == KERNEL_2Q_QUAD
    np.testing.assert_allclose(merged, cx @ np.kron(ry0, rz1), atol=1e-12)
    assert not pending.active
    # nothing pending -> the exact input object comes back (permutation
    # fast path for bare cx depends on it)
    same, same_class = kernels.absorb_pending_2q(
        pending, cx, (0, 1), KERNEL_2Q_QUAD
    )
    assert same is cx and same_class == KERNEL_2Q_QUAD
    _ = rng


def test_fusion_window_merges_overlapping_quads():
    applied = []
    window = kernels.FusionWindow(
        lambda m, q, c: applied.append((m, q, c))
    )
    rng = np.random.default_rng(29)
    a = _random_unitary(4, rng)
    b = _random_unitary(4, rng)
    window.push(a, (0, 1), KERNEL_2Q_QUAD)
    window.push(b, (1, 2), KERNEL_2Q_QUAD)
    window.flush()
    assert len(applied) == 1
    matrix, qubits, kernel_class = applied[0]
    assert qubits == (0, 1, 2)
    assert kernel_class == KERNEL_DENSE
    expected = np.kron(np.eye(2), b) @ np.kron(a, np.eye(2))
    np.testing.assert_allclose(matrix, expected, atol=1e-12)


def test_fusion_window_caps_span_and_skips_non_ascending():
    applied = []
    window = kernels.FusionWindow(
        lambda m, q, c: applied.append(q)
    )
    rng = np.random.default_rng(31)
    a = _random_unitary(4, rng)
    # span 0..3 would exceed MAX_FUSED_SPAN: the held block flushes
    window.push(a, (0, 1), KERNEL_2Q_QUAD)
    window.push(a, (2, 3), KERNEL_2Q_QUAD)  # disjoint: flush + hold
    assert applied == [(0, 1)]
    # non-ascending qubits bypass the window entirely
    window.push(a, (3, 2), KERNEL_2Q_QUAD)
    assert applied == [(0, 1), (2, 3), (3, 2)]
    window.flush()
    assert applied == [(0, 1), (2, 3), (3, 2)]


def test_flush_pending_paired_merges_adjacent_qubits():
    applied = []
    pending = kernels.PendingOneQubitGates(4)
    h = gate_matrix("h")
    rz = gate_matrix("rz", [0.2])
    pending.push(0, h, KERNEL_1Q_PAIR)
    pending.push(1, rz, KERNEL_DIAGONAL)
    pending.push(3, h, KERNEL_1Q_PAIR)
    kernels.flush_pending_paired(
        pending, lambda m, q, c: applied.append((m, q, c))
    )
    assert [entry[1] for entry in applied] == [(0, 1), (3,)]
    np.testing.assert_allclose(applied[0][0], np.kron(h, rz), atol=1e-12)
    assert applied[0][2] == KERNEL_2Q_QUAD


def test_kron_1q_per_element_stack():
    rng = np.random.default_rng(37)
    stack = np.stack([_random_unitary(2, rng) for _ in range(3)])
    shared = _random_unitary(2, rng)
    got = kernels.kron_1q(stack, shared)
    expected = np.stack([np.kron(stack[b], shared) for b in range(3)])
    np.testing.assert_allclose(got, expected, atol=1e-12)


# -------------------------------------------- plan-level engine parity


def _plan_and_theta(num_qubits=6, reps=2):
    ansatz = EfficientSU2(num_qubits, reps=reps)
    theta = np.linspace(-0.8, 1.1, ansatz.num_parameters)
    return ansatz.plan, theta


def test_serial_plan_pair_matches_tensordot(monkeypatch):
    plan, theta = _plan_and_theta()
    monkeypatch.setenv("REPRO_KERNEL", "tensordot")
    expected = StatevectorSimulator(plan.num_qubits).run_plan(plan, theta)
    monkeypatch.setenv("REPRO_KERNEL", "pair")
    got = StatevectorSimulator(plan.num_qubits).run_plan(plan, theta)
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_batched_plan_pair_matches_tensordot(monkeypatch):
    plan, theta = _plan_and_theta()
    thetas = np.stack([theta, theta * 0.5, -theta])
    sim = BatchedStatevectorSimulator(plan.num_qubits)
    monkeypatch.setenv("REPRO_KERNEL", "tensordot")
    expected = sim.run_flat(plan, thetas)
    monkeypatch.setenv("REPRO_KERNEL", "pair")
    got = sim.run_flat(plan, thetas)
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_chunked_and_threaded_runs_are_bit_identical(monkeypatch):
    plan, theta = _plan_and_theta(num_qubits=8)
    monkeypatch.setenv("REPRO_KERNEL", "pair")
    baseline = StatevectorSimulator(plan.num_qubits).run_plan(plan, theta)
    monkeypatch.setenv("REPRO_KERNEL_CHUNK", "2048")
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "2")
    chunked = StatevectorSimulator(plan.num_qubits).run_plan(plan, theta)
    np.testing.assert_array_equal(chunked, baseline)


# --------------------------------------------------------------- metrics


def test_kernel_metrics_counters_increment():
    rng = np.random.default_rng(41)
    state = _random_state(5, rng)

    def snapshot(name):
        return METRICS.snapshot()["counters"].get(name, 0)

    calls_before = snapshot("kernel.1q-pair.calls")
    bytes_before = snapshot("kernel.1q-pair.bytes")
    kernels.apply_gate(state, gate_matrix("h"), (1,), engine="pair")
    assert snapshot("kernel.1q-pair.calls") == calls_before + 1
    assert snapshot("kernel.1q-pair.bytes") > bytes_before
