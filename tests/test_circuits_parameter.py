import pytest

from repro.circuits.parameter import Parameter, ParameterExpression, ParameterVector


def test_parameter_identity_not_name():
    a1, a2 = Parameter("a"), Parameter("a")
    assert a1 != a2
    assert a1 == a1
    assert len({a1, a2}) == 2


def test_parameter_bind():
    theta = Parameter("theta")
    assert theta.bind({theta: 1.25}) == 1.25
    with pytest.raises(KeyError):
        theta.bind({})


def test_expression_affine_arithmetic():
    theta = Parameter("t")
    expr = 2.0 * theta + 1.0
    assert isinstance(expr, ParameterExpression)
    assert expr.bind({theta: 3.0}) == pytest.approx(7.0)
    assert (-expr).bind({theta: 3.0}) == pytest.approx(-7.0)
    assert (expr - 1.0).bind({theta: 3.0}) == pytest.approx(6.0)


def test_expression_right_ops():
    theta = Parameter("t")
    assert (1.0 + theta * 3.0).bind({theta: 2.0}) == pytest.approx(7.0)


def test_parameter_vector_basics():
    vec = ParameterVector("p", 4)
    assert len(vec) == 4
    assert vec[2].name == "p[2]"
    names = [p.name for p in vec]
    assert names == ["p[0]", "p[1]", "p[2]", "p[3]"]


def test_parameter_vector_bind_array():
    vec = ParameterVector("p", 3)
    values = vec.bind_array([0.1, 0.2, 0.3])
    assert values[vec[1]] == pytest.approx(0.2)
    with pytest.raises(ValueError):
        vec.bind_array([1.0])


def test_parameter_vector_negative_length():
    with pytest.raises(ValueError):
        ParameterVector("p", -1)
