import numpy as np
import pytest

from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.backends.ideal import IdealBackend
from repro.filtering.cfar import cfar_detect
from repro.filtering.kalman import KalmanFilter1D, KalmanFilteredBackend
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.vqa.objective import EnergyObjective


def test_kalman_smooths_noise():
    rng = np.random.default_rng(1)
    truth = np.linspace(0, -5, 200)
    noisy = truth + rng.normal(0, 0.5, 200)
    filtered = KalmanFilter1D(
        transition=1.0, measurement_variance=0.25, process_variance=1e-3
    ).filter_series(noisy)
    assert np.mean((filtered[20:] - truth[20:]) ** 2) < np.mean(
        (noisy[20:] - truth[20:]) ** 2
    )


def test_kalman_first_measurement_initializes():
    kf = KalmanFilter1D()
    assert kf.update(3.0) == 3.0


def test_kalman_low_mv_tracks_measurements():
    kf_low = KalmanFilter1D(measurement_variance=1e-4)
    kf_high = KalmanFilter1D(measurement_variance=10.0)
    for kf in (kf_low, kf_high):
        kf.update(0.0)
    low = kf_low.update(1.0)
    high = kf_high.update(1.0)
    # low MV trusts the new measurement far more
    assert low > high


def test_kalman_transition_below_one_drifts_down():
    kf = KalmanFilter1D(transition=0.9, measurement_variance=10.0)
    kf.update(-1.0)
    values = [kf.update(-1.0) for _ in range(50)]
    # forced descent: prediction keeps shrinking toward 0 * ... actually
    # T<1 pulls magnitude down each prediction; with high MV the filter
    # barely corrects, so the estimate decays in magnitude.
    assert abs(values[-1]) < 1.0


def test_kalman_validation():
    with pytest.raises(ValueError):
        KalmanFilter1D(measurement_variance=0.0)
    with pytest.raises(ValueError):
        KalmanFilter1D(process_variance=-1.0)


def test_kalman_backend_filters_and_resets():
    objective = EnergyObjective(RealAmplitudes(2, reps=1), tfim_hamiltonian(2))
    inner = IdealBackend(objective)
    backend = KalmanFilteredBackend(inner, measurement_variance=0.5)
    theta = objective.initial_point(seed=1)
    first = backend.new_job().energy(theta)
    second = backend.new_job().energy(theta + 0.5)
    raw_second = objective.ideal_energy(theta + 0.5)
    # the filter pulls the second estimate toward the first
    assert abs(second - first) < abs(raw_second - first)
    backend.reset()
    assert backend.filter.estimate is None
    assert inner.job_counter == 0


def test_cfar_detects_isolated_spike():
    series = np.ones(60) * 0.1
    series[30] = 3.0
    mask = cfar_detect(series, train_cells=6, guard_cells=1, alarm_factor=4.0)
    assert mask[30]
    assert mask.sum() == 1


def test_cfar_quiet_series_no_alarms():
    rng = np.random.default_rng(2)
    series = rng.normal(0, 0.1, 100)
    mask = cfar_detect(series, alarm_factor=8.0)
    assert mask.sum() <= 2


def test_cfar_guard_cells_protect_wide_spikes():
    series = np.ones(40) * 0.1
    series[20:22] = 2.0
    no_guard = cfar_detect(series, train_cells=5, guard_cells=0, alarm_factor=3.0)
    with_guard = cfar_detect(series, train_cells=5, guard_cells=2, alarm_factor=3.0)
    assert with_guard[20] and with_guard[21]
    assert with_guard.sum() >= no_guard.sum()


def test_cfar_constant_trace_no_alarms():
    # A constant series has cell == noise floor everywhere: no cell can
    # exceed alarm_factor * floor, whatever the factor.
    for level in (0.0, 0.1, 5.0):
        mask = cfar_detect(np.full(50, level), alarm_factor=1.5)
        assert not mask.any()


def test_cfar_trace_shorter_than_training_window():
    # 3 cells against train_cells=8 per side: training windows clamp to
    # whatever exists instead of reading out of bounds.
    series = np.array([0.1, 5.0, 0.1])
    mask = cfar_detect(series, train_cells=8, guard_cells=0, alarm_factor=3.0)
    assert mask[1]
    assert not mask[0] and not mask[2]


def test_cfar_single_element_trace():
    # One cell has no training cells at all: never an alarm, never a crash.
    assert not cfar_detect([7.0], train_cells=8).any()


def test_cfar_guard_cells_consume_short_trace():
    # Guard cells can swallow the whole series: empty training -> no alarm.
    series = np.array([0.1, 9.0, 0.1])
    mask = cfar_detect(series, train_cells=2, guard_cells=4, alarm_factor=2.0)
    assert not mask.any()


def test_cfar_all_transient_trace_no_alarms():
    # An entirely turbulent series raises the estimated noise floor with
    # it; CFAR is a *contrast* detector, so a wall of transients yields no
    # alarms (exactly why the scheduler also keeps an absolute Kalman
    # check; see repro.fleet.scheduler).
    rng = np.random.default_rng(7)
    series = 5.0 + 0.1 * rng.standard_normal(80)
    mask = cfar_detect(series, alarm_factor=1.5)
    assert not mask.any()


def test_cfar_boundary_spikes_detected():
    # Spikes in the first/last cell only have one-sided training windows
    # but are still detected.
    series = np.ones(30) * 0.1
    series[0] = 4.0
    series[-1] = 4.0
    mask = cfar_detect(series, train_cells=6, guard_cells=1, alarm_factor=3.0)
    assert mask[0] and mask[-1]


def test_cfar_validation():
    with pytest.raises(ValueError):
        cfar_detect([1.0], train_cells=0)
    with pytest.raises(ValueError):
        cfar_detect([1.0], guard_cells=-1)
    with pytest.raises(ValueError):
        cfar_detect([1.0], alarm_factor=0.0)
