"""Batched quantum-trajectory simulation: unraveling, convergence, RNG."""

import numpy as np
import pytest

from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.backends.counts import CountsBackend
from repro.circuits.library import bell_pair, random_circuit
from repro.compiler import compile_noise_plan
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.noise.channels import bit_flip_kraus, depolarizing_kraus
from repro.noise.noise_model import NoiseModel
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.statevector import simulate_statevector
from repro.simulator.trajectory import (
    TrajectorySimulator,
    unravel_channel_batched,
)


def _noisy_plan(num_qubits=3, depth=18, seed=11, p1=0.01, p2=0.05):
    circuit = random_circuit(num_qubits, depth, seed=seed)
    return circuit, compile_noise_plan(
        circuit, NoiseModel(p1, p2), cache=False
    )


def test_unravel_preserves_norm_and_collapses_to_kraus_branch():
    rng = np.random.default_rng(0)
    sim = TrajectorySimulator(2)
    states = sim.zero_states(64)
    kraus = np.asarray(bit_flip_kraus(0.5))
    out = unravel_channel_batched(states, kraus, (0,), rng)
    flat = out.reshape(64, -1)
    np.testing.assert_allclose(np.linalg.norm(flat, axis=1), 1.0, atol=1e-12)
    # every trajectory landed on |00> (no flip) or |10> (flip)
    populated = {int(np.argmax(np.abs(row))) for row in flat}
    assert populated == {0, 2}
    # roughly half flip at p = 0.5
    flips = sum(int(np.argmax(np.abs(row))) == 2 for row in flat)
    assert 10 < flips < 54


def test_unravel_branch_frequencies_match_born_probabilities():
    rng = np.random.default_rng(1)
    sim = TrajectorySimulator(1)
    states = sim.zero_states(20_000)
    p = 0.3
    kraus = np.asarray(bit_flip_kraus(p))
    out = unravel_channel_batched(states, kraus, (0,), rng)
    flipped = np.abs(out.reshape(-1, 2)[:, 1]) > 0.5
    assert flipped.mean() == pytest.approx(p, abs=0.02)


def test_trajectory_statistical_convergence_to_density_matrix():
    """Energy estimates agree with the dm engine within sampling error.

    The trajectory mean converges at O(1/sqrt(B)); with B growing the
    error against the exact density-matrix energy must shrink inside a
    widening-confidence envelope.
    """
    circuit, plan = _noisy_plan()
    ham = tfim_hamiltonian(3)
    dm = DensityMatrixSimulator(3)
    exact = dm.expectation(dm.run_noise_plan(plan), ham.to_matrix())

    sim = TrajectorySimulator(3, seed=7)
    states = sim.run_noise_plan(plan, 4096)
    energies = ham.batch_expectations(states.reshape(4096, -1))
    spread = energies.std(ddof=1)
    for batch in (256, 1024, 4096):
        estimate = energies[:batch].mean()
        margin = 5.0 * spread / np.sqrt(batch)
        assert abs(estimate - exact) < margin


def test_trajectory_probabilities_converge():
    circuit, plan = _noisy_plan(seed=3)
    dm = DensityMatrixSimulator(3)
    exact = dm.probabilities(dm.run_noise_plan(plan))
    sim = TrajectorySimulator(3, seed=5)
    estimate = sim.probabilities(plan, 8192)
    assert np.abs(estimate - exact).sum() < 0.05


def test_noiseless_plan_trajectories_are_deterministic():
    circuit = bell_pair()
    plan = compile_noise_plan(circuit, NoiseModel.ideal(), cache=False)
    assert plan.num_channels == 0
    sim = TrajectorySimulator(2, seed=9)
    states = sim.run_noise_plan(plan, 8)
    reference = simulate_statevector(circuit)
    for row in states.reshape(8, -1):
        np.testing.assert_allclose(row, reference, atol=1e-12)


def test_trajectory_rng_reproducible_and_stream_stable():
    _, plan = _noisy_plan(seed=21)
    a = TrajectorySimulator(3, seed=13).run_noise_plan(plan, 32)
    b = TrajectorySimulator(3, seed=13).run_noise_plan(plan, 32)
    np.testing.assert_array_equal(a, b)
    # one uniform batch per channel site: stream position after a run
    # depends only on the plan, not the branches taken
    rng1 = np.random.default_rng(13)
    TrajectorySimulator(3).run_noise_plan(plan, 32, rng=rng1)
    rng2 = np.random.default_rng(13)
    for _ in range(plan.num_channels):
        rng2.random(32)
    assert rng1.random() == rng2.random()


def test_trajectory_qubit_mismatch_rejected():
    _, plan = _noisy_plan()
    with pytest.raises(ValueError):
        TrajectorySimulator(4).run_noise_plan(plan, 8)
    with pytest.raises(ValueError):
        TrajectorySimulator(3).zero_states(0)


def test_counts_backend_traj_engine_energy_matches_dm():
    nm = NoiseModel(0.004, 0.03)
    ansatz = RealAmplitudes(3, reps=1)
    theta = np.linspace(-0.8, 0.9, ansatz.num_parameters)
    circuit = ansatz.bind(theta)
    ham = tfim_hamiltonian(3)
    dm_energy = CountsBackend(noise_model=nm, seed=5).estimate_energy(
        circuit, ham, shots_per_group=200_000
    )
    traj_energy = CountsBackend(
        noise_model=nm, seed=5, engine="traj", trajectories=2048
    ).estimate_energy(circuit, ham, shots_per_group=200_000)
    assert traj_energy == pytest.approx(dm_energy, abs=0.08)


def test_counts_backend_traj_shots_batched_sampling():
    nm = NoiseModel(0.01, 0.05)
    circuit = bell_pair()
    backend = CountsBackend(
        noise_model=nm, seed=2, engine="traj", trajectories=64
    )
    counts = backend.run(circuit, shots=999)
    assert sum(counts.values()) == 999
    # Bell statistics survive the unraveling: 00/11 dominate
    correlated = counts.get("00", 0) + counts.get("11", 0)
    assert correlated > 900


def test_counts_backend_invalid_engine_rejected():
    with pytest.raises(ValueError):
        CountsBackend(engine="nope")


def test_counts_backend_engine_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_NOISY_ENGINE", "traj")
    assert CountsBackend().engine == "traj"
    monkeypatch.setenv("REPRO_NOISY_ENGINE", "dm")
    assert CountsBackend().engine == "dm"
    monkeypatch.delenv("REPRO_NOISY_ENGINE")
    assert CountsBackend().engine == "dm"
    monkeypatch.setenv("REPRO_NOISY_ENGINE", "bogus")
    with pytest.raises(ValueError):
        CountsBackend().engine
    monkeypatch.delenv("REPRO_NOISY_ENGINE")
    monkeypatch.setenv("REPRO_TRAJECTORIES", "17")
    assert CountsBackend().trajectories == 17


def test_unravel_channel_rejects_dead_batch():
    rng = np.random.default_rng(0)
    states = np.zeros((4, 2, 2), dtype=complex)  # zero norm everywhere
    kraus = np.asarray(depolarizing_kraus(0.1, 1))
    with pytest.raises(ValueError):
        unravel_channel_batched(states, kraus, (0,), rng)
