"""Observability acceptance: determinism, counters, overhead, reassembly.

The contracts the obs layer ships with:

* tracing never changes results — a traced sweep produces byte-identical
  result payloads to an untraced one;
* cache counters are exact — a deterministic cold/warm two-pass hits the
  predicted hit/miss numbers, not approximations;
* the per-phase report accounts for (nearly) all of the job span's wall
  time;
* disabled tracing costs one attribute read on the kernel hot path
  (<2% of a batched evaluation);
* fleet worker threads' spans reassemble under the drain's span tree.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.compiler import clear_plan_cache, compile_noise_plan, compile_plan
from repro.noise.noise_model import NoiseModel
from repro.obs import METRICS, TRACER
from repro.obs.report import build_report
from repro.runtime import ExperimentPlan, ParallelExecutor, SerialExecutor
from repro.utils.serialization import canonical_json

PLAN = ExperimentPlan(
    apps=("App1",),
    schemes=("baseline", "qismet"),
    iterations=4,
    seeds=(3,),
)


@pytest.fixture
def traced(monkeypatch):
    """Enable the process-wide tracer for one test, then restore it."""
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_EXPORT", raising=False)
    TRACER.reset()
    yield TRACER
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    TRACER.reset()


def _payloads(outcome):
    return [canonical_json(run.result.to_dict()) for run in outcome.runs]


def _circuit():
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(0.25, 2)
    circuit.cx(1, 2)
    return circuit


# -- determinism: tracing never touches results -------------------------------


def test_traced_sweep_payloads_are_byte_identical(traced):
    baseline_outcome = None
    traced.configure(enabled=False)
    baseline_outcome = SerialExecutor().run_plan(PLAN)
    traced.reset()  # re-enables from REPRO_TRACE=1
    assert traced.enabled
    traced_outcome = SerialExecutor().run_plan(PLAN)
    assert traced.roots, "tracing was on but recorded nothing"
    assert _payloads(traced_outcome) == _payloads(baseline_outcome)


def test_kernel_sampling_rate_never_perturbs_results(traced):
    traced.configure(kernel_stride=1)
    dense = SerialExecutor().run([PLAN.expand()[0]])
    traced.reset()
    traced.configure(kernel_stride=97)
    sparse = SerialExecutor().run([PLAN.expand()[0]])
    assert canonical_json(dense[0].result.to_dict()) == canonical_json(
        sparse[0].result.to_dict()
    )


# -- exact cache counters -----------------------------------------------------


def test_plan_cache_counters_exact_cold_warm():
    circuit = _circuit()
    METRICS.reset()
    clear_plan_cache()
    compile_plan(circuit)  # cold: one miss
    assert METRICS.counter_value("cache.plan.misses") == 1
    assert METRICS.counter_value("cache.plan.hits") == 0
    compile_plan(circuit)  # warm: one hit, no new miss
    assert METRICS.counter_value("cache.plan.misses") == 1
    assert METRICS.counter_value("cache.plan.hits") == 1


def test_noise_plan_cache_counters_exact_cold_warm():
    circuit = _circuit()
    noise = NoiseModel(0.01, 0.05)
    METRICS.reset()
    clear_plan_cache()
    compile_noise_plan(circuit, noise)
    assert METRICS.counter_value("cache.noise.misses") == 1
    assert METRICS.counter_value("cache.noise.hits") == 0
    compile_noise_plan(circuit, noise)
    assert METRICS.counter_value("cache.noise.misses") == 1
    assert METRICS.counter_value("cache.noise.hits") == 1


def test_uncached_compile_bumps_no_counters():
    METRICS.reset()
    clear_plan_cache()
    compile_plan(_circuit(), cache=False)
    assert METRICS.counter_value("cache.plan.misses") == 0
    assert METRICS.counter_value("cache.plan.hits") == 0


def test_eviction_counter_counts_evicted_entries():
    from repro.compiler.cache import PlanCache

    METRICS.reset()
    cache = PlanCache(capacity=2, name="tiny")
    for key in ("a", "b", "c"):
        cache.get_or_build(key, lambda key=key: key)
    assert METRICS.counter_value("cache.tiny.evictions") == 1
    assert METRICS.counter_value("cache.tiny.misses") == 3


# -- phase report coverage ----------------------------------------------------


def test_traced_run_report_covers_job_wall_time(traced):
    SerialExecutor().run_plan(PLAN)
    report = build_report(tracer=traced)
    assert report["wall_s"] > 0
    # Self-time partitions each root exactly, so coverage is ~100%;
    # the acceptance floor is 90%.
    assert report["coverage"] >= 0.90
    assert {"compile", "execute"} <= set(report["phases"])
    assert "job.run_plan" in [root.name for root in traced.roots]


# -- disabled overhead --------------------------------------------------------


def test_disabled_tracing_overhead_under_2_percent():
    """The disabled kernel-path guard must cost <2% of a batched eval.

    End-to-end wall-clock comparisons drown in scheduler noise, so the
    bound is asserted structurally: per-op cost of the disabled guard
    (one attribute read + branch) vs the measured per-op kernel cost of
    ``batch_8x_eval_8q``-shaped work.
    """
    import timeit

    from repro.ansatz.efficient_su2 import EfficientSU2
    from repro.hamiltonians.tfim import tfim_hamiltonian
    from repro.vqa.objective import EnergyObjective

    objective = EnergyObjective(EfficientSU2(8, reps=3), tfim_hamiltonian(8))
    thetas = np.random.default_rng(2023).uniform(
        -np.pi, np.pi, (8, objective.num_parameters)
    )
    objective.batch_energies(thetas)  # warm caches
    rounds = 5
    batch_s = min(
        timeit.repeat(
            lambda: objective.batch_energies(thetas), number=1, repeat=rounds
        )
    )
    # The batched engine guards once per plan op (plus a handful of
    # run-level spans); 10x the op count is a generous upper bound.
    from repro.transpiler.basis import translate_to_basis

    plan = compile_plan(
        translate_to_basis(objective.ansatz.bind(thetas[0])), cache=False
    )
    guard_checks = 10 * max(len(plan.ops), 1)
    guard_s = min(
        timeit.repeat(
            "tracer.enabled",
            globals={"tracer": TRACER},
            number=guard_checks,
            repeat=rounds,
        )
    )
    assert not TRACER.enabled
    assert guard_s < 0.02 * batch_s, (
        f"disabled guard cost {guard_s:.6f}s for {guard_checks} checks vs "
        f"batch eval {batch_s:.6f}s"
    )


# -- span reassembly across workers -------------------------------------------


def test_fleet_worker_spans_reassemble_under_drain(traced, tmp_path):
    from repro.fleet.service import FleetService

    specs = ExperimentPlan(
        apps=("App1",),
        schemes=("baseline", "qismet"),
        iterations=3,
        seeds=(5,),
    ).expand()
    with FleetService(db_path=str(tmp_path / "fleet.db")) as service:
        service.run_specs(specs)
    drains = [root for root in traced.roots if root.name == "fleet.drain"]
    assert len(drains) == 1
    drain = drains[0]
    jobs = [span for span in drain.walk() if span.name == "fleet.job"]
    assert len(jobs) == len(specs)
    assert {job.attrs["outcome"] for job in jobs} == {"completed"}
    # Worker-thread execution nests the runtime's span under the fleet's.
    for job in jobs:
        assert "run.execute" in [span.name for span in job.walk()]
    # Workers ran on their own threads yet landed in the drain's tree.
    assert {job.thread_name for job in jobs} != {drain.thread_name}
    dispatches = [
        span for span in drain.walk() if span.name == "fleet.dispatch"
    ]
    assert len(dispatches) >= len(specs)


def test_parallel_executor_records_fanout_span(traced):
    outcome = ParallelExecutor(max_workers=2).run_plan(PLAN)
    assert len(outcome.runs) == len(PLAN)
    names = [span.name for root in traced.roots for span in root.walk()]
    assert "executor.parallel.fanout" in names


def test_parallel_and_serial_agree_while_traced(traced):
    serial = SerialExecutor().run_plan(PLAN)
    parallel = ParallelExecutor(max_workers=2).run_plan(PLAN)
    assert _payloads(serial) == _payloads(parallel)
