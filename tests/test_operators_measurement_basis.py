import pytest

from repro.operators.measurement_basis import basis_rotation_circuit, diagonal_value
from repro.operators.pauli import PauliString
from repro.simulator.statevector import simulate_statevector
from repro.circuits.circuit import QuantumCircuit


def test_rotation_circuit_structure():
    circuit = basis_rotation_circuit("XYZ")
    names = [inst.name for inst in circuit]
    # X -> h ; Y -> sdg, h ; Z -> nothing
    assert names == ["h", "sdg", "h"]


def test_invalid_basis_character():
    with pytest.raises(ValueError):
        basis_rotation_circuit("XA")


def test_diagonal_value_parity():
    assert diagonal_value("ZZ", "00") == 1
    assert diagonal_value("ZZ", "01") == -1
    assert diagonal_value("ZI", "01") == 1
    assert diagonal_value("II", "11") == 1
    with pytest.raises(ValueError):
        diagonal_value("Z", "00")


def test_rotation_diagonalizes_x_measurement():
    # <+|X|+> = 1: preparing |+> and rotating X->Z must always read 0.
    prep = QuantumCircuit(1)
    prep.h(0)
    prep.compose(basis_rotation_circuit("X"))
    sv = simulate_statevector(prep)
    assert abs(sv[0]) ** 2 == pytest.approx(1.0, abs=1e-10)


def test_rotation_diagonalizes_y_measurement():
    # |i> = (|0> + i|1>)/sqrt(2) has <Y> = 1.
    prep = QuantumCircuit(1)
    prep.h(0)
    prep.s(0)
    prep.compose(basis_rotation_circuit("Y"))
    sv = simulate_statevector(prep)
    assert abs(sv[0]) ** 2 == pytest.approx(1.0, abs=1e-10)


def test_expectation_via_rotated_sampling_matches_exact():
    from repro.circuits.library import random_circuit
    from repro.simulator.sampling import sample_counts
    from repro.simulator.expectation import expectation_from_counts
    from repro.operators.pauli_sum import PauliTerm

    circuit = random_circuit(2, 12, seed=13)
    pauli = PauliString("XY")
    exact = pauli.expectation(simulate_statevector(circuit))

    measured = circuit.copy()
    measured.compose(basis_rotation_circuit("XY"))
    counts = sample_counts(simulate_statevector(measured), shots=400_000, seed=5)
    estimate = expectation_from_counts(counts, [PauliTerm(1.0, pauli)])
    assert estimate == pytest.approx(exact, abs=0.01)
