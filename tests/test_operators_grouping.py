import pytest

from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.operators.grouping import (
    group_commuting_terms,
    measurement_bases,
    qubitwise_commutes,
)
from repro.operators.pauli import PauliString
from repro.operators.pauli_sum import PauliSum


def test_qwc_basics():
    assert qubitwise_commutes(PauliString("XI"), PauliString("IX"))
    assert qubitwise_commutes(PauliString("XI"), PauliString("XZ"))
    assert not qubitwise_commutes(PauliString("XI"), PauliString("ZI"))
    with pytest.raises(ValueError):
        qubitwise_commutes(PauliString("X"), PauliString("XX"))


def test_groups_are_internally_qwc():
    ham = tfim_hamiltonian(5)
    groups = group_commuting_terms(ham)
    for group in groups:
        non_identity = [t for t in group if not t.pauli.is_identity]
        for i in range(len(non_identity)):
            for j in range(i + 1, len(non_identity)):
                assert qubitwise_commutes(
                    non_identity[i].pauli, non_identity[j].pauli
                )


def test_groups_cover_all_terms():
    ham = PauliSum([(1.0, "XX"), (0.5, "ZZ"), (0.2, "XI"), (0.1, "II")])
    groups = group_commuting_terms(ham)
    grouped = [t.pauli.label for g in groups for t in g]
    assert sorted(grouped) == sorted(t.pauli.label for t in ham.terms)


def test_tfim_groups_into_two():
    # TFIM's ZZ terms all QWC with each other, X terms likewise -> 2 groups.
    ham = tfim_hamiltonian(6)
    assert len(group_commuting_terms(ham)) == 2


def test_identity_only():
    ham = PauliSum([(2.0, "II")])
    groups = group_commuting_terms(ham)
    assert len(groups) == 1
    assert groups[0][0].pauli.is_identity


def test_measurement_bases_merge():
    ham = PauliSum([(1.0, "XI"), (1.0, "IX")])
    groups = group_commuting_terms(ham)
    assert len(groups) == 1
    assert measurement_bases(groups[0]) == "XX"


def test_measurement_bases_default_z():
    ham = PauliSum([(1.0, "ZI")])
    groups = group_commuting_terms(ham)
    assert measurement_bases(groups[0]) == "ZZ"


def test_measurement_bases_empty():
    with pytest.raises(ValueError):
        measurement_bases([])
