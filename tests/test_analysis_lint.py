"""Tier-2 determinism/concurrency linter tests."""

import textwrap

from repro.analysis import Severity, lint_paths, lint_source
from repro.analysis.lint import is_rng_module, is_seed_critical


def lint(code, path="src/repro/simulator/example.py"):
    return lint_source(textwrap.dedent(code), path)


def codes(report):
    return [d.code for d in report]


# -- RPR101: unseeded RNG ------------------------------------------------------


def test_unseeded_default_rng_flagged():
    report = lint(
        """
        import numpy as np

        def draw():
            rng = np.random.default_rng()
            return rng.random()
        """
    )
    assert codes(report) == ["RPR101"]
    assert report.diagnostics[0].line == 5


def test_explicit_none_seed_flagged():
    report = lint(
        """
        import numpy as np

        rng = np.random.default_rng(None)
        """
    )
    assert codes(report) == ["RPR101"]


def test_legacy_global_api_flagged():
    report = lint(
        """
        import numpy as np

        def noisy():
            np.random.seed(3)
            return np.random.rand(4)
        """
    )
    assert codes(report) == ["RPR101", "RPR101"]


def test_numpy_import_alias_tracked():
    report = lint(
        """
        import numpy

        x = numpy.random.normal(0, 1)
        """
    )
    assert codes(report) == ["RPR101"]


def test_from_import_default_rng_tracked():
    report = lint(
        """
        from numpy.random import default_rng

        rng = default_rng()
        """
    )
    assert codes(report) == ["RPR101"]


def test_generator_annotations_not_flagged():
    report = lint(
        """
        import numpy as np

        def use(rng: np.random.Generator) -> np.random.Generator:
            return rng
        """
    )
    assert len(report) == 0


# -- RPR102: seed not threaded through ensure_rng ------------------------------


def test_seeded_default_rng_outside_rng_module_flagged():
    report = lint(
        """
        import numpy as np

        def build(seed):
            return np.random.default_rng(seed)
        """
    )
    assert codes(report) == ["RPR102"]


def test_rng_module_exempt_from_threading_rule():
    report = lint(
        """
        import numpy as np

        def ensure(seed):
            return np.random.default_rng(seed)
        """,
        path="src/repro/utils/rng.py",
    )
    assert len(report) == 0


def test_ensure_rng_usage_clean():
    report = lint(
        """
        from repro.utils.rng import ensure_rng

        def build(seed):
            return ensure_rng(seed)
        """
    )
    assert len(report) == 0


# -- RPR103: set iteration in seed-critical modules ----------------------------


def test_set_iteration_flagged_in_seed_critical_module():
    report = lint(
        """
        def walk(items):
            for item in set(items):
                yield item
        """
    )
    assert codes(report) == ["RPR103"]


def test_set_literal_and_comprehension_iteration_flagged():
    report = lint(
        """
        def walk():
            total = 0
            for item in {1, 2, 3}:
                total += item
            return [x for x in {i for i in range(4)}]
        """
    )
    assert codes(report) == ["RPR103", "RPR103"]


def test_local_set_variable_iteration_flagged():
    report = lint(
        """
        def walk(items):
            seen = set(items)
            for item in seen:
                yield item
        """
    )
    assert codes(report) == ["RPR103"]


def test_sorted_set_iteration_clean():
    report = lint(
        """
        def walk(items):
            seen = set(items)
            for item in sorted(seen):
                yield item
        """
    )
    assert len(report) == 0


def test_set_iteration_ignored_outside_seed_critical_modules():
    report = lint(
        """
        def walk(items):
            for item in set(items):
                yield item
        """,
        path="src/repro/chemistry/example.py",
    )
    assert len(report) == 0


def test_membership_tests_not_flagged():
    report = lint(
        """
        def check(items, probe):
            seen = set(items)
            return probe in seen
        """
    )
    assert len(report) == 0


# -- RPR104: module-level caches mutated without a lock ------------------------


def test_unlocked_cache_mutation_flagged():
    report = lint(
        """
        _PLAN_CACHE = {}

        def remember(key, value):
            _PLAN_CACHE[key] = value
        """,
        path="src/repro/fleet/example.py",
    )
    assert codes(report) == ["RPR104"]


def test_cache_mutation_under_lock_clean():
    report = lint(
        """
        import threading

        _PLAN_CACHE = {}
        _LOCK = threading.Lock()

        def remember(key, value):
            with _LOCK:
                _PLAN_CACHE[key] = value
        """,
        path="src/repro/fleet/example.py",
    )
    assert len(report) == 0


def test_cache_method_mutation_flagged():
    report = lint(
        """
        _result_cache = []

        def remember(value):
            _result_cache.append(value)
        """,
        path="src/repro/fleet/example.py",
    )
    assert codes(report) == ["RPR104"]


def test_module_level_cache_init_clean():
    report = lint(
        """
        _cache = {}
        _cache["seed"] = 1
        """,
        path="src/repro/fleet/example.py",
    )
    assert len(report) == 0


def test_non_cache_named_dict_not_flagged():
    report = lint(
        """
        settings = {}

        def set_option(key, value):
            settings[key] = value
        """,
        path="src/repro/fleet/example.py",
    )
    assert len(report) == 0


# -- RPR105: result dumps bypassing the experiment store -----------------------


def test_direct_save_json_result_dump_flagged():
    report = lint(
        """
        from repro.utils import save_json

        def persist(result):
            save_json("out.json", result.to_dict())
        """,
        path="src/repro/experiments/example.py",
    )
    assert codes(report) == ["RPR105"]


def test_attribute_save_json_flagged():
    report = lint(
        """
        import repro.utils.serialization as ser

        def persist(result):
            ser.save_json("out.json", result.to_dict())
        """,
        path="src/repro/experiments/example.py",
    )
    assert codes(report) == ["RPR105"]


def test_store_package_exempt_from_result_dump_rule():
    code = """
        from repro.utils import save_json

        def persist(result):
            save_json("out.json", result.to_dict())
        """
    assert len(lint(code, path="src/repro/store/export.py")) == 0
    assert len(lint(code, path="src/repro/utils/serialization.py")) == 0
    # fleet/store.py is a *file* named store, not the store package: it
    # must delegate payloads, so the rule still applies there.
    assert codes(lint(code, path="src/repro/fleet/store.py")) == ["RPR105"]


def test_result_dump_suppression():
    report = lint(
        """
        from repro.utils import save_json

        def persist(result):
            save_json("out.json", result.to_dict())  # repro: allow-direct-result-dump
        """,
        path="src/repro/experiments/example.py",
    )
    assert len(report) == 0
    assert report.suppressed == 1


# -- suppression comments ------------------------------------------------------


def test_same_line_suppression():
    report = lint(
        """
        import numpy as np

        rng = np.random.default_rng()  # repro: allow-unseeded-rng
        """
    )
    assert len(report) == 0
    assert report.suppressed == 1


def test_line_above_suppression():
    report = lint(
        """
        import numpy as np

        # repro: allow-unseeded-rng
        rng = np.random.default_rng()
        """
    )
    assert len(report) == 0
    assert report.suppressed == 1


def test_suppression_is_rule_specific():
    report = lint(
        """
        import numpy as np

        rng = np.random.default_rng()  # repro: allow-set-iteration
        """
    )
    assert codes(report) == ["RPR101"]
    assert report.suppressed == 0


# -- RPR106: direct timing -----------------------------------------------------


def test_direct_time_calls_flagged():
    report = lint(
        """
        import time

        started = time.time()

        def wait():
            return time.monotonic() - time.perf_counter()
        """,
        path="src/repro/runtime/example.py",
    )
    assert codes(report) == ["RPR106", "RPR106", "RPR106"]
    assert "repro.obs" in report.diagnostics[0].hint


def test_from_import_timing_flagged_but_sleep_ignored():
    report = lint(
        """
        from time import perf_counter as pc, sleep

        def wait():
            sleep(0.1)
            return pc()
        """,
        path="src/repro/fleet/example.py",
    )
    assert codes(report) == ["RPR106"]


def test_time_ns_variants_flagged():
    report = lint(
        """
        import time as t

        stamp = t.perf_counter_ns()
        """,
        path="src/repro/runtime/example.py",
    )
    assert codes(report) == ["RPR106"]


def test_obs_package_is_exempt_from_timing_rule():
    code = """
    import time

    def perf_counter():
        return time.perf_counter()
    """
    assert codes(lint(code, path="src/repro/obs/clock.py")) == []
    assert codes(lint(code, path="src/repro/runtime/x.py")) == ["RPR106"]


def test_timing_suppression_comment():
    report = lint(
        """
        import time

        stamp = time.time()  # repro: allow-direct-timing
        """,
        path="src/repro/runtime/example.py",
    )
    assert codes(report) == []
    assert report.suppressed == 1


def test_unrelated_time_attributes_not_flagged():
    report = lint(
        """
        import time

        stamp = time.strftime("%Y")
        time.sleep(0.5)
        """,
        path="src/repro/runtime/example.py",
    )
    assert codes(report) == []


# -- RPR107: swallowed exceptions ----------------------------------------------


def test_broad_except_pass_flagged():
    report = lint(
        """
        def load():
            try:
                return open("x").read()
            except Exception:
                pass
        """
    )
    assert codes(report) == ["RPR107"]


def test_bare_except_flagged():
    report = lint(
        """
        def load():
            try:
                return 1
            except:
                return None
        """
    )
    assert codes(report) == ["RPR107"]


def test_broad_tuple_except_flagged():
    report = lint(
        """
        def load():
            try:
                return 1
            except (ValueError, Exception):
                return None
        """
    )
    assert codes(report) == ["RPR107"]


def test_narrow_except_not_flagged():
    report = lint(
        """
        def load():
            try:
                return 1
            except (ValueError, KeyError):
                return None
        """
    )
    assert codes(report) == []


def test_reraise_not_flagged():
    report = lint(
        """
        def load():
            try:
                return 1
            except Exception as exc:
                raise RuntimeError("wrapped") from exc
        """
    )
    assert codes(report) == []


def test_failure_sink_call_not_flagged():
    report = lint(
        """
        def run(store, job, tick):
            try:
                return job()
            except Exception as exc:
                store.mark_failed(job.run_id, str(exc), tick)
        """
    )
    assert codes(report) == []


def test_record_retry_sink_not_flagged():
    report = lint(
        """
        def run(store, job, tick):
            try:
                return job()
            except Exception as exc:
                store.record_retry(job.run_id, str(exc), tick)
        """
    )
    assert codes(report) == []


def test_swallow_suppression_with_reason():
    report = lint(
        """
        def warm():
            try:
                compile_it()
            # repro: allow-swallow — warm-up is best effort
            except Exception:
                pass
        """
    )
    assert codes(report) == []
    assert report.suppressed == 1


# -- path classification and whole-tree runs -----------------------------------


def test_path_classification():
    from pathlib import Path

    assert is_seed_critical(Path("src/repro/simulator/batched.py"))
    assert is_seed_critical(Path("src/repro/fleet/workers.py"))
    assert not is_seed_critical(Path("src/repro/chemistry/h2.py"))
    assert is_rng_module(Path("src/repro/utils/rng.py"))
    assert not is_rng_module(Path("src/repro/utils/stats.py"))
    from repro.analysis.lint import is_obs_module

    assert is_obs_module(Path("src/repro/obs/trace.py"))
    assert not is_obs_module(Path("src/repro/runtime/execute.py"))


def test_parse_error_reported_not_raised():
    report = lint_source("def broken(:\n", "bad.py")
    assert codes(report) == ["RPR100"]
    assert not report.has_errors  # warning severity


def test_src_tree_lints_clean():
    """The acceptance gate: zero errors over src/, with exactly the
    sanctioned suppressions — one in utils/rng.py, the two deprecation
    shims in runtime/results.py that still write result JSON directly,
    and the two deliberate swallows in fleet/service.py (best-effort
    plan-cache warm-up; mark_failed on an already-down store)."""
    report = lint_paths(["src"])
    errors = [d for d in report if d.severity >= Severity.ERROR]
    assert errors == [], "\n".join(d.render() for d in errors)
    assert report.suppressed == 5
