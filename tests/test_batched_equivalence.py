"""The batched/serial equivalence contract.

Property-style coverage: for random circuits over 2-8 qubits and both
expectation paths (dense-matrix cache and the matrix-free bitmask
engine), ``batch_energies(thetas)[i]`` must equal
``ideal_energy(thetas[i])`` to within documented fp-reassociation
tolerance (1e-12 absolute), and batched backend evaluation must consume
seed-derived noise streams exactly like the serial path.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.vqa.objective as objective_module
from repro.ansatz.efficient_su2 import EfficientSU2
from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.backends.ideal import IdealBackend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameter import Parameter
from repro.circuits.program import compile_circuit
from repro.experiments.registry import get_app
from repro.experiments.schemes import build_vqe
from repro.hamiltonians.tfim import tfim_hamiltonian
from repro.noise.noise_model import NoiseModel
from repro.operators.pauli_sum import PauliSum
from repro.optimizers.base import evaluate_many
from repro.optimizers.spsa import SPSA
from repro.simulator.batched import BatchedStatevectorSimulator
from repro.simulator.statevector import StatevectorSimulator
from repro.vqa.multi_vqe import PopulationVQE
from repro.vqa.objective import EnergyObjective
from repro.vqa.vqe import VQE

TOLERANCE = 1e-12

_FIXED_GATES = ["h", "x", "s", "sx", "t"]
_PARAM_GATES_1Q = ["rx", "ry", "rz", "p"]
_PARAM_GATES_2Q = ["rzz", "rxx", "crx", "crz"]
_FIXED_GATES_2Q = ["cx", "cz", "swap"]


def random_parameterized_circuit(
    rng: np.random.Generator, num_qubits: int, depth: int = 12
) -> QuantumCircuit:
    """A random circuit mixing fixed and parameterized 1q/2q gates."""
    circuit = QuantumCircuit(num_qubits, name="random")
    parameters = []
    for _ in range(depth):
        kind = rng.integers(0, 4)
        if kind == 0:
            gate = _FIXED_GATES[rng.integers(0, len(_FIXED_GATES))]
            circuit.append(gate, (int(rng.integers(0, num_qubits)),))
        elif kind == 1 and num_qubits >= 2:
            gate = _FIXED_GATES_2Q[rng.integers(0, len(_FIXED_GATES_2Q))]
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(gate, (int(a), int(b)))
        elif kind == 2 and num_qubits >= 2:
            gate = _PARAM_GATES_2Q[rng.integers(0, len(_PARAM_GATES_2Q))]
            a, b = rng.choice(num_qubits, size=2, replace=False)
            param = Parameter(f"t{len(parameters)}")
            parameters.append(param)
            circuit.append(gate, (int(a), int(b)), (param,))
        else:
            gate = _PARAM_GATES_1Q[rng.integers(0, len(_PARAM_GATES_1Q))]
            param = Parameter(f"t{len(parameters)}")
            parameters.append(param)
            circuit.append(gate, (int(rng.integers(0, num_qubits)),), (param,))
    return circuit


@pytest.mark.parametrize("num_qubits", [2, 3, 4, 5, 6, 7, 8])
def test_batched_simulator_matches_serial_on_random_circuits(num_qubits):
    rng = np.random.default_rng(100 + num_qubits)
    for trial in range(3):
        circuit = random_parameterized_circuit(rng, num_qubits)
        program = compile_circuit(circuit)
        thetas = rng.uniform(-np.pi, np.pi, (5, program.num_parameters))
        serial = StatevectorSimulator(num_qubits)
        batched = BatchedStatevectorSimulator(num_qubits)
        batch_states = batched.run_flat(program, thetas)
        for i, theta in enumerate(thetas):
            expected = serial.run_program(program, theta).reshape(-1)
            np.testing.assert_allclose(
                batch_states[i], expected, atol=TOLERANCE, rtol=0.0
            )


def _random_hamiltonian(rng: np.random.Generator, num_qubits: int) -> PauliSum:
    terms = []
    for _ in range(6):
        label = "".join(rng.choice(list("IXYZ"), size=num_qubits))
        terms.append((float(rng.normal()), label))
    return PauliSum(terms)


@pytest.mark.parametrize("num_qubits", [2, 3, 4, 5, 6, 7, 8])
@pytest.mark.parametrize("dense_path", [True, False])
def test_batch_energies_match_serial_both_paths(
    monkeypatch, num_qubits, dense_path
):
    # Force the dense-cache path or the matrix-free path irrespective of
    # the qubit-count threshold, so both expectation engines are covered
    # at every size.
    monkeypatch.setattr(
        objective_module,
        "_DENSE_LIMIT_QUBITS",
        16 if dense_path else 0,
    )
    rng = np.random.default_rng(31 * num_qubits + int(dense_path))
    hamiltonian = _random_hamiltonian(rng, num_qubits)
    ansatz_cls = EfficientSU2 if num_qubits % 2 == 0 else RealAmplitudes
    objective = EnergyObjective(ansatz_cls(num_qubits, reps=2), hamiltonian)
    assert objective.uses_dense_hamiltonian is dense_path

    thetas = rng.uniform(-np.pi, np.pi, (6, objective.num_parameters))
    batch = objective.batch_energies(thetas)
    serial = np.array([objective.ideal_energy(theta) for theta in thetas])
    np.testing.assert_allclose(batch, serial, atol=TOLERANCE, rtol=0.0)


def test_batch_energies_validates_shape():
    objective = EnergyObjective(EfficientSU2(3, reps=1), tfim_hamiltonian(3))
    with pytest.raises(ValueError):
        objective.batch_energies(np.zeros(objective.num_parameters))
    with pytest.raises(ValueError):
        objective.batch_energies(np.zeros((2, objective.num_parameters + 1)))


def test_batch_energies_counts_evaluations():
    objective = EnergyObjective(EfficientSU2(3, reps=1), tfim_hamiltonian(3))
    objective.batch_energies(np.zeros((5, objective.num_parameters)))
    assert objective.evaluations == 5


def test_dense_hamiltonian_is_lazy():
    objective = EnergyObjective(EfficientSU2(4, reps=1), tfim_hamiltonian(4))
    assert objective._dense is None  # construction is O(terms)
    objective.ideal_energy(np.zeros(objective.num_parameters))
    assert objective._dense is not None


def test_large_system_never_densifies(monkeypatch):
    monkeypatch.setattr(objective_module, "_DENSE_LIMIT_QUBITS", 3)
    objective = EnergyObjective(EfficientSU2(4, reps=1), tfim_hamiltonian(4))
    assert not objective.uses_dense_hamiltonian
    objective.ideal_energy(np.zeros(objective.num_parameters))
    objective.batch_energies(np.zeros((3, objective.num_parameters)))
    assert objective._dense is None


def test_spsa_batched_run_is_bit_identical_to_serial(monkeypatch):
    """The regression oracle: batching must not change *any* result.

    The transient backend consumes seed-derived RNG streams; running the
    same spec with batching disabled (``REPRO_BATCH=0``) must reproduce
    the batched run bit-for-bit.
    """
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    app = get_app("App1")

    def run_once():
        hamiltonian = app.build_hamiltonian()
        noise_model = NoiseModel.from_device(app.build_device())
        trace = app.build_trace(length=200, seed=7)
        objective = EnergyObjective(app.build_ansatz(), hamiltonian)
        vqe = build_vqe(
            "baseline",
            objective,
            trace=trace,
            noise_model=noise_model,
            seed=11,
            spsa_seed=13,
            iterations_hint=25,
        )
        return vqe.run(25, theta0=objective.initial_point(seed=17))

    batched = run_once()
    monkeypatch.setenv("REPRO_BATCH", "0")
    serial = run_once()

    assert batched.total_jobs == serial.total_jobs
    assert batched.total_circuits == serial.total_circuits
    np.testing.assert_array_equal(
        batched.machine_energies, serial.machine_energies
    )
    np.testing.assert_array_equal(batched.final_theta, serial.final_theta)


def test_population_vqe_matches_serial_seed_runs():
    hamiltonian = tfim_hamiltonian(4)
    seeds = [5, 6, 7]
    objective = EnergyObjective(RealAmplitudes(4, reps=2), hamiltonian)
    population = PopulationVQE(objective, lambda seed: SPSA(seed=seed))
    pop_results = population.run(20, seeds=seeds)

    for seed, pop_result in zip(seeds, pop_results):
        solo_objective = EnergyObjective(RealAmplitudes(4, reps=2), hamiltonian)
        vqe = VQE(solo_objective, IdealBackend(solo_objective), SPSA(seed=seed))
        solo = vqe.run(20, theta0=solo_objective.initial_point(seed=seed))
        assert pop_result.total_jobs == solo.total_jobs
        assert pop_result.total_circuits == solo.total_circuits
        np.testing.assert_allclose(
            pop_result.machine_energies,
            solo.machine_energies,
            atol=TOLERANCE,
            rtol=0.0,
        )
        np.testing.assert_allclose(
            pop_result.true_energies, solo.true_energies, atol=TOLERANCE, rtol=0.0
        )
        np.testing.assert_allclose(
            pop_result.final_theta, solo.final_theta, atol=TOLERANCE, rtol=0.0
        )


def test_population_vqe_rejects_non_plain_spsa():
    from repro.optimizers.spsa import (
        BlockingSPSA,
        ResamplingSPSA,
        SecondOrderSPSA,
    )

    objective = EnergyObjective(RealAmplitudes(3, reps=1), tfim_hamiltonian(3))
    for optimizer_cls in (BlockingSPSA, ResamplingSPSA, SecondOrderSPSA):
        population = PopulationVQE(
            objective, lambda seed: optimizer_cls(seed=seed)
        )
        with pytest.raises(TypeError):
            population.run(5, seeds=[1])


def test_evaluate_many_serial_fallback():
    calls = []

    def evaluate(theta):
        calls.append(np.array(theta))
        return float(np.sum(theta))

    out = evaluate_many(evaluate, np.array([[1.0, 2.0], [3.0, 4.0]]))
    np.testing.assert_allclose(out, [3.0, 7.0])
    assert len(calls) == 2


def test_evaluate_many_uses_batch_contract():
    class Batchy:
        def __call__(self, theta):  # pragma: no cover - must not be used
            raise AssertionError("batched path should win")

        def energies(self, thetas):
            return np.sum(thetas, axis=1)

    out = evaluate_many(Batchy(), np.array([[1.0, 2.0], [3.0, 4.0]]))
    np.testing.assert_allclose(out, [3.0, 7.0])
