import numpy as np
import pytest

from repro.simulator.sampling import (
    counts_from_probabilities,
    counts_from_trajectory_rows,
    probabilities_from_counts,
    sample_counts,
)


def test_counts_total_and_keys():
    probs = np.array([0.5, 0.5, 0.0, 0.0])
    counts = counts_from_probabilities(probs, shots=1000, seed=3)
    assert sum(counts.values()) == 1000
    assert set(counts) <= {"00", "01"}


def test_bitstring_orientation():
    # index 2 = binary '10' = qubit0 measured 1, qubit1 measured 0
    probs = np.array([0.0, 0.0, 1.0, 0.0])
    counts = counts_from_probabilities(probs, shots=10, seed=0)
    assert counts == {"10": 10}


def test_statistical_convergence():
    probs = np.array([0.25, 0.75])
    counts = counts_from_probabilities(probs, shots=200_000, seed=1)
    assert counts["1"] / 200_000 == pytest.approx(0.75, abs=0.01)


def test_sample_counts_from_statevector():
    sv = np.array([1, 1j]) / np.sqrt(2)
    counts = sample_counts(sv, shots=50_000, seed=7)
    assert counts["0"] / 50_000 == pytest.approx(0.5, abs=0.02)


def test_normalization_tolerated():
    probs = np.array([2.0, 2.0])
    counts = counts_from_probabilities(probs, shots=100, seed=0)
    assert sum(counts.values()) == 100


def test_validation():
    with pytest.raises(ValueError):
        counts_from_probabilities(np.array([1.0, 0.0]), shots=0)
    with pytest.raises(ValueError):
        counts_from_probabilities(np.array([1.0, 0.0, 0.0]), shots=10)
    with pytest.raises(ValueError):
        counts_from_probabilities(np.zeros(2), shots=10)


def test_probabilities_from_counts():
    probs = probabilities_from_counts({"00": 3, "11": 1})
    assert probs["00"] == pytest.approx(0.75)
    with pytest.raises(ValueError):
        probabilities_from_counts({})


def test_counts_from_trajectory_rows_preserves_shots_and_spreads():
    rows = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
    counts = counts_from_trajectory_rows(rows, shots=301, seed=0)
    assert sum(counts.values()) == 301
    # rows 0/1 are deterministic and get >= 100 shots each
    assert counts["0"] >= 100 and counts["1"] >= 100


def test_counts_from_trajectory_rows_more_rows_than_shots():
    rows = np.tile(np.array([[0.25, 0.75]]), (16, 1))
    counts = counts_from_trajectory_rows(rows, shots=5, seed=1)
    assert sum(counts.values()) == 5


def test_counts_from_trajectory_rows_single_row_matches_multinomial():
    probs = np.array([0.1, 0.2, 0.3, 0.4])
    a = counts_from_trajectory_rows(probs[None, :], shots=1000, seed=3)
    assert sum(a.values()) == 1000
    assert set(a) <= {"00", "01", "10", "11"}


def test_counts_from_trajectory_rows_validation():
    with pytest.raises(ValueError):
        counts_from_trajectory_rows(np.ones((2, 2)), shots=0)
    with pytest.raises(ValueError):
        counts_from_trajectory_rows(np.ones(4), shots=10)
    with pytest.raises(ValueError):
        counts_from_trajectory_rows(np.ones((2, 3)), shots=10)
    with pytest.raises(ValueError):
        counts_from_trajectory_rows(np.zeros((2, 2)), shots=10)
