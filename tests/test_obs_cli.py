"""``python -m repro.obs`` CLI: trace / report / metrics / validate."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import persist_trace_summary, trace_summary
from repro.obs.trace import TRACER, Tracer
from repro.store import ExperimentStore


@pytest.fixture
def trace_file(tmp_path):
    """A small exported trace, built from an isolated tracer."""
    from repro.obs.export import export_chrome_trace

    tracer = Tracer()
    tracer.configure(enabled=True)
    with tracer.span("job", category="execute"):
        with tracer.span("compile.default", category="compile"):
            pass
    path = tmp_path / "trace.json"
    export_chrome_trace(str(path), tracer)
    return str(path)


def test_trace_runs_script_and_exports(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    script = tmp_path / "tiny.py"
    script.write_text(
        "from repro.obs import TRACER\n"
        "with TRACER.span('work', category='execute'):\n"
        "    pass\n"
    )
    out = tmp_path / "out.json"
    try:
        assert main(["trace", str(script), "--out", str(out)]) == 0
    finally:
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        TRACER.reset()
    captured = capsys.readouterr()
    assert "wrote" in captured.err
    document = json.loads(out.read_text())
    assert any(
        event["name"] == "work" for event in document["traceEvents"]
    )
    assert main(["validate", "--trace", str(out)]) == 0


def test_report_text_from_trace_file(trace_file, capsys):
    assert main(["report", "--trace", trace_file]) == 0
    out = capsys.readouterr().out
    assert "job wall time" in out and "compile" in out


def test_report_json_and_markdown(trace_file, capsys):
    assert main(["report", "--trace", trace_file, "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["coverage"] == pytest.approx(1.0, rel=1e-6)
    assert main(
        ["report", "--trace", trace_file, "--format", "markdown"]
    ) == 0
    assert "## Phase breakdown" in capsys.readouterr().out


def test_report_from_store_summary(tmp_path, capsys):
    tracer = Tracer()
    tracer.configure(enabled=True)
    with tracer.span("job", category="execute"):
        pass
    db = tmp_path / "store.sqlite"
    with ExperimentStore(str(db)) as store:
        persist_trace_summary(store, trace_summary(tracer, label="cli-test"))
    assert main(["report", "--store", str(db)]) == 0
    assert "job wall time" in capsys.readouterr().out
    assert main(["metrics", "--store", str(db), "--json"]) == 0
    assert "counters" in json.loads(capsys.readouterr().out)


def test_report_on_empty_store_exits_with_message(tmp_path):
    db = tmp_path / "empty.sqlite"
    with ExperimentStore(str(db)):
        pass
    with pytest.raises(SystemExit, match="no trace summaries"):
        main(["report", "--store", str(db)])


def test_metrics_text_lists_counters(trace_file, capsys):
    assert main(["metrics", "--trace", trace_file]) == 0
    capsys.readouterr()  # counters present or empty: exit code is the contract


def test_validate_rejects_malformed_trace(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    assert main(["validate", "--trace", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_missing_trace_file_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="no trace file"):
        main(["report", "--trace", str(tmp_path / "nope.json")])


def test_non_json_trace_file_is_a_clean_error(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("not json {")
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(["report", "--trace", str(path)])
