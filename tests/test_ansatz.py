import numpy as np
import pytest

from repro.ansatz.base import TwoLocalAnsatz
from repro.ansatz.efficient_su2 import EfficientSU2
from repro.ansatz.entanglement import entanglement_pairs
from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.simulator.statevector import simulate_statevector


def test_entanglement_patterns():
    assert entanglement_pairs(4, "linear") == [(0, 1), (1, 2), (2, 3)]
    assert (3, 0) in entanglement_pairs(4, "circular")
    assert len(entanglement_pairs(4, "full")) == 6
    assert entanglement_pairs(4, "pairwise") == [(0, 1), (2, 3), (1, 2)]
    assert entanglement_pairs(1, "linear") == []
    with pytest.raises(ValueError):
        entanglement_pairs(3, "bogus")


def test_real_amplitudes_parameter_count():
    for reps in (2, 4, 8):
        ansatz = RealAmplitudes(6, reps=reps)
        assert ansatz.num_parameters == 6 * (reps + 1)
        assert ansatz.num_two_qubit_gates == 5 * reps


def test_efficient_su2_parameter_count():
    for reps in (2, 4):
        ansatz = EfficientSU2(6, reps=reps)
        assert ansatz.num_parameters == 2 * 6 * (reps + 1)


def test_real_amplitudes_state_is_real():
    ansatz = RealAmplitudes(3, reps=2)
    theta = ansatz.initial_point(seed=2, scale=0.5)
    sv = simulate_statevector(ansatz.program, theta)
    assert np.allclose(sv.imag, 0.0, atol=1e-10)


def test_zero_parameters_give_zero_state():
    ansatz = RealAmplitudes(4, reps=3)
    sv = simulate_statevector(ansatz.program, np.zeros(ansatz.num_parameters))
    assert abs(sv[0]) == pytest.approx(1.0, abs=1e-10)


def test_bind_matches_program():
    ansatz = EfficientSU2(3, reps=2)
    theta = ansatz.initial_point(seed=7)
    sv_program = simulate_statevector(ansatz.program, theta)
    sv_bound = simulate_statevector(ansatz.bind(theta))
    assert np.allclose(sv_program, sv_bound, atol=1e-12)


def test_bind_shape_check():
    ansatz = RealAmplitudes(2, reps=1)
    with pytest.raises(ValueError):
        ansatz.bind([0.1])


def test_initial_point_seeded_and_small():
    ansatz = RealAmplitudes(4, reps=2)
    a = ansatz.initial_point(seed=5)
    b = ansatz.initial_point(seed=5)
    assert np.allclose(a, b)
    assert np.all(np.abs(a) <= 0.1 * np.pi)


def test_circuit_copy_isolated():
    ansatz = RealAmplitudes(2, reps=1)
    circ = ansatz.circuit
    circ.x(0)
    assert len(ansatz.circuit) == len(circ) - 1


def test_two_local_validation():
    with pytest.raises(ValueError):
        TwoLocalAnsatz(3, rotation_gates=(), reps=1)
    with pytest.raises(ValueError):
        TwoLocalAnsatz(3, rotation_gates=("ry",), reps=-1)


def test_expressivity_reaches_ghz_overlap():
    # sanity: the ansatz explores entangled space (nonzero gradient of
    # entanglement); RA(2, reps=1) can produce a Bell state exactly.
    ansatz = RealAmplitudes(2, reps=1)
    theta = np.array([np.pi / 2, 0.0, 0.0, 0.0])
    sv = simulate_statevector(ansatz.program, theta)
    probs = np.abs(sv) ** 2
    assert probs[0] == pytest.approx(0.5, abs=1e-10)
    assert probs[3] == pytest.approx(0.5, abs=1e-10)
