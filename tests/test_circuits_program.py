import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameter import Parameter
from repro.circuits.program import compile_circuit
from repro.simulator.statevector import simulate_statevector


def test_compiled_matches_bound_circuit():
    theta = Parameter("t")
    phi = Parameter("p")
    qc = QuantumCircuit(2)
    qc.ry(theta, 0)
    qc.cx(0, 1)
    qc.rz(phi, 1)
    program = compile_circuit(qc)
    values = [0.4, -0.9]
    sv_prog = simulate_statevector(program, values)
    sv_bound = simulate_statevector(qc.bind(values))
    assert np.allclose(sv_prog, sv_bound, atol=1e-12)


def test_explicit_parameter_order():
    a, b = Parameter("a"), Parameter("b")
    qc = QuantumCircuit(1)
    qc.ry(a, 0)
    qc.rz(b, 0)
    program = compile_circuit(qc, parameters=[b, a])
    # values now ordered (b, a)
    sv = simulate_statevector(program, [0.3, 0.7])
    ref = simulate_statevector(qc.bind({a: 0.7, b: 0.3}))
    assert np.allclose(sv, ref)


def test_affine_expression_compiles():
    theta = Parameter("t")
    qc = QuantumCircuit(1)
    qc.ry(2.0 * theta + 0.5, 0)
    program = compile_circuit(qc)
    sv = simulate_statevector(program, [0.25])
    ref = simulate_statevector(qc.bind({theta: 0.25}))
    assert np.allclose(sv, ref)


def test_barriers_skipped():
    qc = QuantumCircuit(1)
    qc.x(0)
    qc.barrier()
    program = compile_circuit(qc)
    assert len(program.ops) == 1


def test_missing_parameter_raises():
    a, b = Parameter("a"), Parameter("b")
    qc = QuantumCircuit(1)
    qc.ry(a, 0)
    with pytest.raises(KeyError):
        compile_circuit(qc, parameters=[b])


def test_wrong_theta_shape():
    theta = Parameter("t")
    qc = QuantumCircuit(1)
    qc.ry(theta, 0)
    program = compile_circuit(qc)
    with pytest.raises(ValueError):
        program.op_matrices([0.1, 0.2])


def test_multi_param_gate_rejected():
    qc = QuantumCircuit(1)
    t = Parameter("t")
    qc.u(t, 0.0, 0.0, 0)
    with pytest.raises(ValueError):
        compile_circuit(qc)
