import numpy as np
import pytest

from repro.chemistry.basis import angstrom_to_bohr, hydrogen_sto3g
from repro.chemistry.integrals import (
    boys_f0,
    electron_repulsion_tensor,
    kinetic_matrix,
    nuclear_attraction_matrix,
    nuclear_repulsion_energy,
    overlap_matrix,
)


@pytest.fixture
def h2_basis():
    # Szabo & Ostlund's canonical H2 geometry: R = 1.4 Bohr.
    nuclei = [(1.0, (0.0, 0.0, 0.0)), (1.0, (0.0, 0.0, 1.4))]
    basis = [hydrogen_sto3g(pos) for _, pos in nuclei]
    return basis, nuclei


def test_boys_limits():
    assert boys_f0(np.array(0.0)) == pytest.approx(1.0)
    assert boys_f0(np.array(1e-14)) == pytest.approx(1.0, abs=1e-10)
    # large-t asymptotic: F0(t) ~ 0.5 sqrt(pi/t)
    t = 50.0
    assert boys_f0(np.array(t)) == pytest.approx(0.5 * np.sqrt(np.pi / t), rel=1e-6)


def test_overlap_normalized_diagonal(h2_basis):
    basis, _ = h2_basis
    s = overlap_matrix(basis)
    assert s[0, 0] == pytest.approx(1.0, abs=1e-6)
    assert s[1, 1] == pytest.approx(1.0, abs=1e-6)
    # Szabo & Ostlund Table 3.5: S12 = 0.6593 for STO-3G at R=1.4
    assert s[0, 1] == pytest.approx(0.6593, abs=2e-3)


def test_kinetic_reference_values(h2_basis):
    basis, _ = h2_basis
    t = kinetic_matrix(basis)
    # Szabo & Ostlund: T11 = 0.7600, T12 = 0.2365
    assert t[0, 0] == pytest.approx(0.7600, abs=2e-3)
    assert t[0, 1] == pytest.approx(0.2365, abs=2e-3)


def test_nuclear_attraction_reference(h2_basis):
    basis, nuclei = h2_basis
    v = nuclear_attraction_matrix(basis, nuclei)
    # Szabo & Ostlund: V11 (both nuclei) = -1.2266 + -0.6538 = -1.8804
    assert v[0, 0] == pytest.approx(-1.8804, abs=5e-3)
    assert np.allclose(v, v.T)


def test_eri_reference_values(h2_basis):
    basis, _ = h2_basis
    eri = electron_repulsion_tensor(basis)
    # Szabo & Ostlund Table 3.6 (chemists' notation):
    # (11|11)=0.7746, (11|22)=0.5697, (21|21)=0.2970, (21|11)=0.4441
    assert eri[0, 0, 0, 0] == pytest.approx(0.7746, abs=2e-3)
    assert eri[0, 0, 1, 1] == pytest.approx(0.5697, abs=2e-3)
    assert eri[1, 0, 1, 0] == pytest.approx(0.2970, abs=2e-3)
    assert eri[1, 0, 0, 0] == pytest.approx(0.4441, abs=2e-3)


def test_eri_symmetries(h2_basis):
    basis, _ = h2_basis
    eri = electron_repulsion_tensor(basis)
    # 8-fold permutational symmetry of real orbitals
    assert eri[0, 1, 0, 1] == pytest.approx(eri[1, 0, 0, 1], abs=1e-10)
    assert eri[0, 1, 1, 0] == pytest.approx(eri[1, 0, 0, 1], abs=1e-10)
    assert eri[0, 0, 0, 1] == pytest.approx(eri[0, 1, 0, 0], abs=1e-10)


def test_nuclear_repulsion():
    nuclei = [(1.0, (0, 0, 0)), (1.0, (0, 0, 1.4))]
    assert nuclear_repulsion_energy(nuclei) == pytest.approx(1.0 / 1.4)
    with pytest.raises(ValueError):
        nuclear_repulsion_energy([(1.0, (0, 0, 0)), (1.0, (0, 0, 0))])


def test_angstrom_conversion():
    assert angstrom_to_bohr(1.0) == pytest.approx(1.8897259886)
