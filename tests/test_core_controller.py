import numpy as np
import pytest

from repro.core.controller import ControllerDecision, QismetController
from repro.core.estimator import TransientEstimate
from repro.core.thresholds import (
    FixedThreshold,
    OnlinePercentileThreshold,
    RobustNoiseThreshold,
    TraceCalibratedThreshold,
)
from repro.noise.transient.trace import TransientTrace


def _flip(tm=1.5):
    """An estimate whose transient flips the gradient direction."""
    return TransientEstimate(em_prev=0.0, em_rerun=tm, em_new=1.0)


def _clean():
    return TransientEstimate(em_prev=0.0, em_rerun=0.01, em_new=-0.2)


def _warm(controller, n=20):
    for _ in range(n):
        controller.decide(_clean(), retries_so_far=0)


def test_accept_clean_iterations():
    controller = QismetController(threshold=FixedThreshold(0.1))
    _warm(controller)
    assert controller.decide(_clean(), 0) is ControllerDecision.ACCEPT


def test_retry_on_flip_then_budget():
    controller = QismetController(
        threshold=FixedThreshold(0.1), retry_budget=2, max_skip_fraction=1.0,
        warmup_decisions=0,
    )
    _warm(controller)
    assert controller.decide(_flip(), 0) is ControllerDecision.RETRY
    assert controller.decide(_flip(), 1) is ControllerDecision.RETRY
    assert controller.decide(_flip(), 2) is ControllerDecision.FORCED_ACCEPT
    assert controller.stats.forced_accepts == 1


def test_skip_budget_limits_fraction():
    controller = QismetController(
        threshold=FixedThreshold(0.1), max_skip_fraction=0.10,
        warmup_decisions=0,
    )
    _warm(controller, 100)
    skipped = 0
    for _ in range(100):
        decision = controller.decide(_flip(), 0)
        if decision is ControllerDecision.RETRY:
            skipped += 1
            # pretend retry succeeded next attempt
            controller.decide(_clean(), 1)
    assert controller.stats.skip_fraction <= 0.11
    assert controller.stats.budget_accepts > 0


def test_threshold_only_fed_on_first_attempts():
    threshold = RobustNoiseThreshold(warmup=1)
    controller = QismetController(threshold=threshold, max_skip_fraction=1.0,
                                  warmup_decisions=0)
    controller.decide(_flip(5.0), 0)
    count_after_first = len(threshold._values)
    controller.decide(_flip(5.0), 1)  # retry re-measurement
    assert len(threshold._values) == count_after_first


def test_retry_budget_validation():
    with pytest.raises(ValueError):
        QismetController(retry_budget=-1)
    with pytest.raises(ValueError):
        QismetController(max_skip_fraction=1.5)


def test_fixed_threshold():
    assert FixedThreshold(0.5).current() == 0.5
    with pytest.raises(ValueError):
        FixedThreshold(-1.0)


def test_online_percentile_threshold_warmup_and_value():
    threshold = OnlinePercentileThreshold(percentile=50.0, warmup=3)
    assert threshold.current() == float("inf")
    for v in (1.0, 2.0, 3.0):
        threshold.observe(v)
    assert threshold.current() == pytest.approx(2.0)


def test_robust_threshold_ignores_outliers():
    threshold = RobustNoiseThreshold(multiplier=4.0, warmup=4)
    # bulk at sigma ~ 0.05, plus massive outliers
    rng = np.random.default_rng(0)
    for _ in range(100):
        threshold.observe(abs(rng.normal(0, 0.05)))
    for _ in range(20):
        threshold.observe(5.0)
    tau = threshold.current()
    # stays near 4 * 0.05, far below the outlier level
    assert 0.05 < tau < 0.6


def test_robust_threshold_validation():
    with pytest.raises(ValueError):
        RobustNoiseThreshold(multiplier=0.0)
    with pytest.raises(ValueError):
        RobustNoiseThreshold(window=2)


def test_trace_calibrated_threshold():
    trace = TransientTrace(np.concatenate([np.zeros(90), np.full(10, 0.8)]))
    threshold = TraceCalibratedThreshold(trace, percentile=95.0, reference_scale=2.0)
    assert threshold.current() == pytest.approx(1.6)
    with pytest.raises(ValueError):
        TraceCalibratedThreshold(trace, reference_scale=0.0)


def test_stats_tracking():
    controller = QismetController(threshold=FixedThreshold(0.1),
                                  max_skip_fraction=1.0, warmup_decisions=0)
    controller.decide(_clean(), 0)
    controller.decide(_flip(), 0)
    assert controller.stats.decisions == 2
    assert controller.stats.first_attempts == 2
    assert len(controller.stats.tm_history) == 2
    assert controller.stats.skipped_iterations == 1
