import numpy as np
import pytest

from repro.utils.stats import (
    geometric_mean,
    moving_average,
    relative_variation,
    running_percentile,
    summary,
)


def test_geometric_mean_simple():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([3.0]) == pytest.approx(3.0)


def test_geometric_mean_rejects_nonpositive_and_empty():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -2.0])


def test_moving_average_warmup_and_steady_state():
    out = moving_average([1, 2, 3, 4, 5], window=2)
    assert out[0] == pytest.approx(1.0)
    assert out[1] == pytest.approx(1.5)
    assert out[4] == pytest.approx(4.5)


def test_moving_average_window_one_is_identity():
    values = [3.0, -1.0, 2.0]
    assert np.allclose(moving_average(values, 1), values)


def test_moving_average_rejects_bad_window():
    with pytest.raises(ValueError):
        moving_average([1.0], 0)


def test_relative_variation():
    assert relative_variation([1.0, 1.0, 1.0]) == pytest.approx(0.0)
    # range 0.2 over mean 1.0
    assert relative_variation([0.9, 1.0, 1.1]) == pytest.approx(0.2)


def test_relative_variation_zero_mean():
    assert relative_variation([0.0, 0.0]) == 0.0


def test_summary_fields():
    s = summary([1.0, 2.0, 3.0])
    assert s.mean == pytest.approx(2.0)
    assert s.minimum == 1.0
    assert s.maximum == 3.0
    assert s.count == 3
    assert set(s.as_dict()) == {"mean", "std", "min", "max", "variation", "count"}


def test_running_percentile_tracks_window():
    rp = running_percentile(50.0, window=3)
    assert rp.value(default=-1.0) == -1.0
    for v in (1.0, 2.0, 3.0, 100.0):
        rp.update(v)
    # window keeps (2, 3, 100); median is 3
    assert rp.value() == pytest.approx(3.0)
    assert rp.count == 3


def test_running_percentile_validates():
    with pytest.raises(ValueError):
        running_percentile(101.0)
    with pytest.raises(ValueError):
        running_percentile(50.0, window=0)
