"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.library import random_circuit
from repro.core.estimator import TransientEstimate
from repro.core.policies import GradientFaithfulPolicy
from repro.noise.channels import (
    amplitude_damping_kraus,
    depolarizing_kraus,
    is_cptp,
    phase_damping_kraus,
    thermal_relaxation_kraus,
)
from repro.noise.readout import ReadoutError, ReadoutMitigator
from repro.operators.pauli import PauliString
from repro.simulator.statevector import simulate_statevector

pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=4)
probabilities = st.floats(min_value=0.0, max_value=1.0)
energies = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 4), depth=st.integers(1, 40))
def test_statevector_norm_preserved(seed, n, depth):
    sv = simulate_statevector(random_circuit(n, depth, seed=seed))
    assert np.vdot(sv, sv).real == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=80, deadline=None)
@given(a=pauli_labels, b=pauli_labels)
def test_pauli_product_group_law(a, b):
    if len(a) != len(b):
        a = a[: min(len(a), len(b))].ljust(min(len(a), len(b)), "I")
        b = b[: len(a)]
    pa, pb = PauliString(a), PauliString(b)
    phase, product = pa.multiply(pb)
    assert abs(phase) == pytest.approx(1.0)
    # (ab)b = a up to phase
    phase2, back = product.multiply(pb)
    assert back.label == pa.label


@settings(max_examples=80, deadline=None)
@given(a=pauli_labels, b=pauli_labels)
def test_pauli_commutation_symmetric(a, b):
    size = min(len(a), len(b))
    pa, pb = PauliString(a[:size]), PauliString(b[:size])
    assert pa.commutes_with(pb) == pb.commutes_with(pa)


@settings(max_examples=60, deadline=None)
@given(p=probabilities)
def test_depolarizing_always_cptp(p):
    assert is_cptp(depolarizing_kraus(p, 1))
    assert is_cptp(depolarizing_kraus(p, 2))


@settings(max_examples=60, deadline=None)
@given(p=probabilities)
def test_damping_channels_cptp(p):
    assert is_cptp(amplitude_damping_kraus(p))
    assert is_cptp(phase_damping_kraus(p))


@settings(max_examples=40, deadline=None)
@given(
    t1=st.floats(min_value=1.0, max_value=200.0),
    ratio=st.floats(min_value=0.05, max_value=2.0),
    dt=st.floats(min_value=0.001, max_value=10.0),
)
def test_thermal_relaxation_cptp(t1, ratio, dt):
    assert is_cptp(thermal_relaxation_kraus(t1, ratio * t1, dt))


@settings(max_examples=40, deadline=None)
@given(
    p01=st.lists(st.floats(0.0, 0.3), min_size=1, max_size=3),
    p10=st.lists(st.floats(0.0, 0.3), min_size=1, max_size=3),
)
def test_readout_mitigation_inverts_its_confusion(p01, p10):
    size = min(len(p01), len(p10))
    error = ReadoutError(p01[:size], p10[:size])
    mitigator = ReadoutMitigator(error)
    rng = np.random.default_rng(0)
    true = rng.dirichlet(np.ones(2**size))
    noisy = error.apply_to_probabilities(true)
    recovered = mitigator.mitigate_probabilities(noisy)
    assert np.allclose(recovered, true, atol=1e-8)


@settings(max_examples=100, deadline=None)
@given(em_prev=energies, em_rerun=energies, em_new=energies)
def test_estimator_identities(em_prev, em_rerun, em_new):
    est = TransientEstimate(em_prev, em_rerun, em_new)
    assert est.gp == pytest.approx(est.gm - est.tm, abs=1e-9)
    assert est.ep == pytest.approx(em_new - est.tm, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    em_prev=energies, em_rerun=energies, em_new=energies,
    offset=st.floats(-100.0, 100.0, allow_nan=False),
    tau=st.floats(0.0, 10.0),
)
def test_controller_policy_offset_invariance(em_prev, em_rerun, em_new, offset, tau):
    """Adding a constant to all energies never changes the decision.

    Exact-zero gradients sit on a sign knife edge that float cancellation
    can cross under an offset; exclude that measure-zero set.
    """
    from hypothesis import assume

    a = TransientEstimate(em_prev, em_rerun, em_new)
    assume(abs(a.gm) > 1e-6 and abs(a.gp) > 1e-6)
    policy = GradientFaithfulPolicy()
    b = TransientEstimate(em_prev + offset, em_rerun + offset, em_new + offset)
    assert policy.accepts(a, tau) == policy.accepts(b, tau)


@settings(max_examples=100, deadline=None)
@given(em_prev=energies, em_new=energies, tau=st.floats(0.0, 10.0))
def test_no_transient_always_accepted(em_prev, em_new, tau):
    """With a faithful rerun (Tm = 0) the gradient is trivially faithful."""
    policy = GradientFaithfulPolicy()
    est = TransientEstimate(em_prev, em_prev, em_new)
    assert policy.accepts(est, tau)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 1000), length=st.integers(1, 200))
def test_trace_cyclic_indexing_property(seed, length):
    from repro.noise.transient.trace import TransientTrace

    rng = np.random.default_rng(seed)
    trace = TransientTrace(rng.normal(0, 0.1, length))
    index = int(rng.integers(0, 10_000))
    assert trace[index] == trace[index % length]


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=50),
    shift=st.floats(-3, 3, allow_nan=False),
)
def test_kalman_shift_equivariance(values, shift):
    """Filtering commutes with constant shifts (linearity)."""
    from repro.filtering.kalman import KalmanFilter1D

    f1 = KalmanFilter1D(transition=1.0, measurement_variance=0.5)
    f2 = KalmanFilter1D(transition=1.0, measurement_variance=0.5)
    out1 = f1.filter_series(values)
    out2 = f2.filter_series([v + shift for v in values])
    assert np.allclose(out2, out1 + shift, atol=1e-8)
