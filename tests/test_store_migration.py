"""Schema migrations and legacy-cache ingestion round-trips."""

import json
import sqlite3

import pytest

from repro.runtime import CachedExecutor, ExperimentPlan, SerialExecutor
from repro.store import ExperimentStore, RunQuery, SchemaError, payload_hash
from repro.store.schema import SCHEMA_VERSION, create_v1_store, create_v2_store
from repro.utils.serialization import canonical_json

PLAN = ExperimentPlan(
    apps=("App1",),
    schemes=("baseline", "qismet"),
    iterations=5,
    seeds=(3, 4),
)


def _v1_store(path, runs):
    """Lay down a v1-layout store file holding the given runs inline."""
    conn = sqlite3.connect(str(path))
    conn.row_factory = sqlite3.Row
    create_v1_store(conn)
    for run in runs:
        conn.execute(
            "INSERT INTO runs (run_id, app, scheme, seed, shots, trace_scale,"
            " iterations, device, source, ground_truth, elapsed_s, created_at,"
            " spec, payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run.run_id,
                run.spec.app_name,
                run.spec.scheme,
                run.spec.seed,
                run.spec.shots,
                run.spec.trace_scale,
                run.spec.iterations,
                None,
                "executor",
                float(run.ground_truth),
                float(run.elapsed_s),
                "2026-01-01T00:00:00+00:00",
                canonical_json(run.spec.to_dict()),
                canonical_json(run.result.to_dict()),
            ),
        )
    conn.commit()
    conn.close()


def test_v1_to_v2_migration_preserves_payload_bits(tmp_path):
    runs = SerialExecutor().run_plan(PLAN).runs
    db = tmp_path / "store.sqlite"
    _v1_store(db, runs)
    v1_payloads = {
        run.run_id: canonical_json(run.result.to_dict()) for run in runs
    }

    with ExperimentStore(db) as store:
        assert store.migrated_from == 1
        # every payload moved verbatim: byte-equal text, matching address
        for stored in store.query_runs():
            assert stored.payload == v1_payloads[stored.run_id]
        # append order survives as seq order
        assert store.run_ids() == [run.run_id for run in runs]
        # the migrated store is fully functional: aggregate + materialize
        direct = store.aggregate(RunQuery(run_ids=[r.run_id for r in runs]))
        store.materialize()
        assert store.aggregate_materialized() == direct

    # reopening is a no-op migration
    with ExperimentStore(db) as store:
        assert store.migrated_from == SCHEMA_VERSION


def test_v1_duplicate_payloads_collapse_into_one_blob(tmp_path):
    runs = SerialExecutor().run_plan(PLAN).runs
    db = tmp_path / "store.sqlite"
    # two v1 rows with identical payload text (a synthetic duplicate):
    # content addressing must collapse them into one blob
    dup = runs[:1] * 1
    _v1_store(db, runs)
    conn = sqlite3.connect(str(db))
    conn.execute(
        "INSERT INTO runs SELECT 'copy-of-first', app, scheme, seed, shots,"
        " trace_scale, iterations, device, source, ground_truth, elapsed_s,"
        " created_at, spec, payload FROM runs WHERE run_id = ?",
        (dup[0].run_id,),
    )
    conn.commit()
    conn.close()

    with ExperimentStore(db) as store:
        payload = canonical_json(dup[0].result.to_dict())
        count = store._conn.execute(
            "SELECT COUNT(*) FROM blobs WHERE hash = ?",
            (payload_hash(payload),),
        ).fetchone()[0]
        assert count == 1
        assert len(store) == len(runs) + 1


def test_v2_to_v3_migration_is_additive(tmp_path):
    """v2 -> v3 adds the ``traces`` table; run rows do not move."""
    runs = SerialExecutor().run_plan(PLAN).runs
    db = tmp_path / "store.sqlite"
    conn = sqlite3.connect(str(db))
    conn.row_factory = sqlite3.Row
    create_v2_store(conn)
    conn.close()
    with ExperimentStore(db) as store:
        for run in runs:
            store.append(run)

    # Rewind the version stamp to 2: the rows above are v2-layout rows.
    conn = sqlite3.connect(str(db))
    conn.execute("DROP TABLE traces")
    conn.execute(
        "UPDATE store_meta SET value = '2' WHERE key = 'schema_version'"
    )
    conn.commit()
    conn.close()

    with ExperimentStore(db) as store:
        assert store.migrated_from == 2
        assert store.run_ids() == [run.run_id for run in runs]
        for stored in store.query_runs():
            assert json.loads(stored.payload) == {
                run.run_id: run.result.to_dict() for run in runs
            }[stored.run_id]
        # the migrated store accepts trace summaries immediately
        trace_id = store.append_trace({"wall_s": 1.5}, label="post-migration")
        assert store.traces()[0]["trace_id"] == trace_id
        assert store.info()["traces"] == 1

    with ExperimentStore(db) as store:  # reopening is a no-op migration
        assert store.migrated_from == SCHEMA_VERSION
        assert store.traces()[0]["label"] == "post-migration"


def test_trace_payloads_are_content_addressed(tmp_path):
    db = tmp_path / "store.sqlite"
    with ExperimentStore(db) as store:
        store.append_trace({"wall_s": 2.0}, label="a")
        store.append_trace({"wall_s": 2.0}, label="b")  # same payload bits
    conn = sqlite3.connect(str(db))
    blobs = conn.execute("SELECT COUNT(*) FROM blobs").fetchone()[0]
    rows = conn.execute("SELECT COUNT(*) FROM traces").fetchone()[0]
    conn.close()
    assert rows == 2 and blobs == 1  # two summaries, one shared blob


def test_future_schema_refused(tmp_path):
    db = tmp_path / "store.sqlite"
    with ExperimentStore(db):
        pass
    conn = sqlite3.connect(str(db))
    conn.execute(
        "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
        (str(SCHEMA_VERSION + 1),),
    )
    conn.commit()
    conn.close()
    with pytest.raises(SchemaError, match="newer than this code"):
        ExperimentStore(db)


def test_import_legacy_cached_executor_dir(tmp_path):
    """A pre-store CachedExecutor cache directory ingests cleanly and
    dedupes on run_id against runs already stored."""
    import warnings

    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    runs = SerialExecutor().run_plan(PLAN).runs
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for run in runs:
            run.save(cache_dir / f"{run.run_id}.json")
    (cache_dir / "garbage.json").write_text("{not json")

    with ExperimentStore() as store:
        # pre-seed one run: the import must skip it (run_id dedupe)
        store.append(runs[0])
        report = store.import_legacy(cache_dir)
        assert report == {
            "ingested": len(runs) - 1,
            "skipped": 1,
            "errors": 1,
        }
        assert len(store) == len(runs)
        for run in runs:
            stored = store.get_stored(run.run_id)
            assert json.loads(stored.payload) == run.result.to_dict()
        # pre-seeded run keeps its original source; imports are tagged
        assert store.get_stored(runs[0].run_id).source == "executor"
        assert store.get_stored(runs[1].run_id).source == "import"


def test_cached_executor_upgrades_legacy_dir_in_place(tmp_path):
    """Pointing today's CachedExecutor at a legacy JSON cache directory
    works without re-execution and grows a store.sqlite alongside."""
    import warnings

    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    specs = PLAN.expand()
    runs = SerialExecutor().run(specs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for run in runs:
            run.save(cache_dir / f"{run.run_id}.json")

    cached = CachedExecutor(cache_dir)
    out = cached.run(specs)
    assert all(run.from_cache for run in out)
    assert (cache_dir / "store.sqlite").exists()
    assert len(cached.store) == len(specs)
    cached.close()
