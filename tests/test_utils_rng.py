import numpy as np

from repro.utils.rng import derive_rng, derive_seed, ensure_rng


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    assert np.allclose(a, b)


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(1)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_derive_seed_stable_and_distinct():
    assert derive_seed(7, "a") == derive_seed(7, "a")
    assert derive_seed(7, "a") != derive_seed(7, "b")
    assert derive_seed(7, "a") != derive_seed(8, "a")


def test_derive_seed_is_63_bit_nonnegative():
    for label in ("x", "y", "z"):
        seed = derive_seed(123456, label)
        assert 0 <= seed < 2**63


def test_derive_rng_independent_streams():
    a = derive_rng(9, "left").random(4)
    b = derive_rng(9, "right").random(4)
    assert not np.allclose(a, b)


def test_derive_rng_none_seed_ok():
    gen = derive_rng(None, "whatever")
    assert isinstance(gen, np.random.Generator)
