"""Fleet registry + clock + transient-aware routing decisions."""

import numpy as np
import pytest

from repro.fleet import (
    DeviceFleet,
    InjectedWindow,
    SchedulerConfig,
    SimulatedClock,
    TransientAwareScheduler,
)
from repro.runtime import RunSpec

QUIET = SchedulerConfig()


def _spec(app="App1"):
    return RunSpec(app=app, scheme="baseline", iterations=5, seed=7)


# -- clock -------------------------------------------------------------------


def test_clock_advances_and_wakes_waiters():
    clock = SimulatedClock()
    assert clock.now() == 0
    assert clock.advance(3) == 3
    assert clock.wait_beyond(2, timeout=0.1)
    assert not clock.wait_beyond(99, timeout=0.01)
    with pytest.raises(ValueError):
        clock.advance(0)


# -- registry ----------------------------------------------------------------


def test_fleet_defaults_to_all_paper_machines():
    fleet = DeviceFleet(seed=1)
    assert len(fleet) == 7
    assert fleet.names() == sorted(
        ["guadalupe", "toronto", "sydney", "casablanca", "jakarta", "mumbai", "cairo"]
    )
    with pytest.raises(KeyError):
        fleet.device("osaka")
    with pytest.raises(ValueError):
        DeviceFleet(machines=["toronto", "Toronto"], seed=1)


def test_injected_window_overlays_monitor_trace():
    fleet = DeviceFleet(machines=["toronto"], seed=1)
    device = fleet.device("toronto")
    base = [device.observed(t) for t in range(10)]
    fleet.inject_transient("toronto", start=3, length=4, magnitude=0.5)
    for t in range(10):
        expected = base[t] + (0.5 if 3 <= t < 7 else 0.0)
        assert device.observed(t) == pytest.approx(expected)
    with pytest.raises(ValueError):
        InjectedWindow(start=-1, length=2, magnitude=0.5)
    with pytest.raises(ValueError):
        InjectedWindow(start=0, length=0, magnitude=0.5)


def test_observed_window_clamps_at_time_zero():
    fleet = DeviceFleet(machines=["toronto"], seed=1)
    device = fleet.device("toronto")
    assert device.observed_window(0, 32).shape == (1,)
    assert device.observed_window(5, 3).shape == (3,)
    full = device.observed_window(40, 32)
    assert full.shape == (32,)
    assert full[-1] == device.observed(40)


def test_calibration_snapshots_advance_with_ticks():
    fleet = DeviceFleet(machines=["toronto"], seed=1, recalibration_period=10)
    device = fleet.device("toronto")
    day0 = device.model_at(0)
    assert day0.calibration.cycle == 0
    day2 = device.model_at(25)
    assert day2.calibration.cycle == 2
    # refreshes drift the calibration, deterministically per fleet seed
    assert not np.array_equal(day0.calibration.t1_us, day2.calibration.t1_us)
    other = DeviceFleet(machines=["toronto"], seed=1, recalibration_period=10)
    assert np.array_equal(
        other.device("toronto").model_at(25).calibration.t1_us,
        day2.calibration.t1_us,
    )


def test_queue_depth_reserve_release():
    fleet = DeviceFleet(machines=["toronto"], seed=1)
    device = fleet.device("toronto")
    assert device.depth == 0
    device.reserve()
    device.reserve()
    assert device.depth == 2
    device.release()
    assert device.depth == 1
    device.release()
    with pytest.raises(RuntimeError):
        device.release()


# -- transient verdicts ------------------------------------------------------


def test_injected_window_flags_verdict():
    fleet = DeviceFleet(seed=1)
    scheduler = TransientAwareScheduler(fleet, config=QUIET)
    fleet.inject_transient("toronto", start=0, length=100, magnitude=0.9)
    verdict = scheduler.verdict(fleet.device("toronto"), tick=10)
    assert verdict.flagged
    assert verdict.observed > 0.9


def test_verdict_is_pure_function_of_tick():
    fleet = DeviceFleet(seed=5)
    scheduler = TransientAwareScheduler(fleet)
    device = fleet.device("sydney")
    first = scheduler.verdict(device, tick=17)
    second = scheduler.verdict(device, tick=17)
    assert first == second


def test_quiet_device_mostly_unflagged():
    fleet = DeviceFleet(seed=1)
    scheduler = TransientAwareScheduler(fleet)
    # Sydney is the fleet's smoothest machine (rare sharp phases); its
    # verdicts should be quiet most of the time. (Noisier machines can
    # legitimately spend long stretches flagged — e.g. mumbai's seed-1
    # monitor trace opens with an extended burst.)
    flagged = sum(
        scheduler.in_transient_window(fleet.device("sydney"), t)
        for t in range(200)
    )
    assert flagged < 60


# -- routing -----------------------------------------------------------------


def test_route_prefers_affinity_machine_when_idle():
    fleet = DeviceFleet(seed=1)
    scheduler = TransientAwareScheduler(fleet)
    # App1 is profiled on toronto; all depths equal => affinity wins
    # (unless toronto happens to be flagged at tick 0, which it is not
    # for this fleet seed).
    decision = scheduler.route(_spec("App1"), tick=0)
    assert decision.placed
    assert decision.device.name == "toronto"


def test_route_load_balances_on_queue_depth():
    fleet = DeviceFleet(seed=1)
    scheduler = TransientAwareScheduler(fleet)
    fleet.device("toronto").reserve()  # affinity machine is busy
    decision = scheduler.route(_spec("App1"), tick=0)
    assert decision.placed
    assert decision.device.name != "toronto"


def test_route_defers_away_from_injected_transient():
    fleet = DeviceFleet(seed=1)
    scheduler = TransientAwareScheduler(fleet)
    fleet.inject_transient("toronto", start=0, length=50, magnitude=0.9)
    decision = scheduler.route(_spec("App1"), tick=0)
    assert decision.placed
    assert decision.device.name != "toronto"
    assert [v.device for v in decision.deferred_from] == ["toronto"]


def test_route_returns_none_when_whole_fleet_transient():
    fleet = DeviceFleet(seed=1)
    scheduler = TransientAwareScheduler(fleet)
    for name in fleet.names():
        fleet.inject_transient(name, start=0, length=50, magnitude=0.9)
    decision = scheduler.route(_spec(), tick=0)
    assert not decision.placed
    assert len(decision.deferred_from) == len(fleet)
    forced = scheduler.route(_spec(), tick=0, force=True)
    assert forced.placed and forced.forced


def test_route_exclude_falls_back_instead_of_dead_ending():
    fleet = DeviceFleet(machines=["toronto", "sydney"], seed=1)
    scheduler = TransientAwareScheduler(fleet)
    decision = scheduler.route(_spec(), tick=0, exclude=["toronto", "sydney"])
    assert decision.placed  # exclusion of everything is ignored


def test_scheduler_config_validation():
    with pytest.raises(ValueError):
        SchedulerConfig(window=0)
    with pytest.raises(ValueError):
        SchedulerConfig(defer_budget=-1)
    with pytest.raises(ValueError):
        SchedulerConfig(transient_level=0.0)
