"""End-to-end integration tests for the QISMET pipeline."""

import numpy as np
import pytest

from repro.experiments.figures import fig3_t1_transients, fig4_circuit_fidelity
from repro.experiments.registry import get_app
from repro.experiments.runner import run_comparison
from repro.hamiltonians.tfim import tfim_exact_ground_energy


@pytest.fixture(scope="module")
def small_comparison():
    """One shared reduced-scale comparison used by several assertions."""
    app = get_app("App2")
    return run_comparison(
        app,
        ["noise-free", "static-only", "baseline", "qismet"],
        iterations=120,
        seed=11,
    )


def test_fig1_line_ordering(small_comparison):
    """The paper's Fig. 1 story: ideal <= static-only <= transient baseline.

    (Energies; lower is better. QISMET sits between the transient baseline
    and the static-only line in expectation; at small scale we only assert
    the ideal/static/transient ordering loosely.)
    """
    finals = {
        name: result.tail_true_energy()
        for name, result in small_comparison.results.items()
    }
    assert finals["noise-free"] <= finals["static-only"] + 0.4
    assert finals["static-only"] <= finals["baseline"] + 0.6


def test_all_runs_descend(small_comparison):
    ground = tfim_exact_ground_energy(6)
    for name, result in small_comparison.results.items():
        energies = result.true_energies
        # Short runs can start with a transient kick or end inside a
        # burst; assert the optimizer makes progress from its worst point
        # and energies never dip below the exact ground energy.
        tail = float(np.mean(energies[-20:]))
        assert tail < np.max(energies) - 0.5, name
        assert np.all(energies > ground - 1e-6), name


def test_qismet_overhead_is_2x_circuits(small_comparison):
    base = small_comparison.results["baseline"]
    qis = small_comparison.results["qismet"]
    assert base.total_circuits == base.total_jobs
    assert qis.total_circuits >= 2 * qis.total_jobs - 2


def test_qismet_skip_rate_bounded(small_comparison):
    qis = small_comparison.results["qismet"]
    # 10% budget times retry multiplicity (max 5) bounds extra jobs.
    assert qis.total_jobs <= 1.6 * small_comparison.results["baseline"].total_jobs


def test_comparison_is_deterministic():
    app = get_app("App1")
    a = run_comparison(app, ["baseline"], iterations=30, seed=3)
    b = run_comparison(app, ["baseline"], iterations=30, seed=3)
    assert np.allclose(
        a.results["baseline"].machine_energies,
        b.results["baseline"].machine_energies,
    )


def test_trace_scale_monotonicity():
    """More transient noise cannot help the baseline (paper Fig. 10)."""
    app = get_app("App1")
    finals = []
    for scale in (0.0, 3.0):
        comp = run_comparison(
            app, ["baseline"], iterations=150, seed=9, trace_scale=scale
        )
        finals.append(comp.results["baseline"].tail_true_energy())
    assert finals[0] < finals[1] + 0.2


def test_figure_builders_cheap_ones_run():
    fig3 = fig3_t1_transients(hours=10.0, seed=1)
    assert len(fig3["t1_us"]) > 10
    fig4 = fig4_circuit_fidelity(hours=10, seed=2)
    assert fig4["deep"]["mean_fidelity"] < fig4["shallow"]["mean_fidelity"]
