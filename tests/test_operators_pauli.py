import numpy as np
import pytest

from repro.circuits.library import random_circuit
from repro.operators.pauli import PauliString, pauli_matrix
from repro.simulator.statevector import simulate_statevector


def test_label_validation():
    with pytest.raises(ValueError):
        PauliString("AB")
    with pytest.raises(ValueError):
        PauliString("")
    assert PauliString("xyz").label == "XYZ"


def test_identity_support_weight():
    p = PauliString("IXIZ")
    assert not p.is_identity
    assert p.support == (1, 3)
    assert p.weight == 2
    assert PauliString("II").is_identity


def test_equality_and_hash():
    assert PauliString("XY") == PauliString("XY")
    assert len({PauliString("XY"), PauliString("XY"), PauliString("YX")}) == 2


def test_commutation_rules():
    assert PauliString("XX").commutes_with(PauliString("ZZ"))  # two anticommuting sites
    assert not PauliString("XI").commutes_with(PauliString("ZI"))
    assert PauliString("XI").commutes_with(PauliString("IZ"))


def test_multiplication_phases():
    phase, product = PauliString("X").multiply(PauliString("Y"))
    assert phase == 1j and product.label == "Z"
    phase, product = PauliString("Y").multiply(PauliString("X"))
    assert phase == -1j and product.label == "Z"
    phase, product = PauliString("XZ").multiply(PauliString("XZ"))
    assert phase == 1 and product.label == "II"


def test_multiply_matches_matrices():
    a, b = PauliString("XYZ"), PauliString("ZZX")
    phase, product = a.multiply(b)
    lhs = a.to_matrix() @ b.to_matrix()
    rhs = phase * product.to_matrix()
    assert np.allclose(lhs, rhs)


@pytest.mark.parametrize("label", ["XIZ", "YYI", "ZXY", "III"])
def test_apply_to_state_matches_matrix(label):
    sv = simulate_statevector(random_circuit(3, 20, seed=6))
    tensor = sv.reshape((2, 2, 2))
    applied = PauliString(label).apply_to_state(tensor).reshape(-1)
    expected = pauli_matrix(label) @ sv
    assert np.allclose(applied, expected, atol=1e-10)


def test_apply_does_not_mutate_input():
    sv = simulate_statevector(random_circuit(2, 10, seed=3))
    tensor = sv.reshape((2, 2))
    before = tensor.copy()
    PauliString("ZY").apply_to_state(tensor)
    assert np.allclose(tensor, before)


def test_expectation_real_and_bounded():
    sv = simulate_statevector(random_circuit(3, 30, seed=11))
    for label in ("XXI", "ZZZ", "IYX"):
        value = PauliString(label).expectation(sv)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


def test_expectation_known_state():
    # |0> : <Z> = 1, <X> = 0
    sv = np.array([1.0, 0.0], dtype=complex)
    assert PauliString("Z").expectation(sv) == pytest.approx(1.0)
    assert PauliString("X").expectation(sv) == pytest.approx(0.0)


def test_immutability():
    p = PauliString("X")
    with pytest.raises(AttributeError):
        p.label = "Y"
