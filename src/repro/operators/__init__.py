"""Pauli operators, Pauli-sum observables and measurement grouping."""

from repro.operators.pauli import PauliString, pauli_matrix
from repro.operators.pauli_apply import (
    apply_pauli,
    pauli_expectation,
    pauli_masks,
    pauli_sum_expectation,
)
from repro.operators.pauli_sum import PauliSum, PauliTerm
from repro.operators.grouping import group_commuting_terms, qubitwise_commutes
from repro.operators.decompose import pauli_decompose
from repro.operators.measurement_basis import basis_rotation_circuit, diagonal_value

__all__ = [
    "PauliString",
    "pauli_matrix",
    "apply_pauli",
    "pauli_expectation",
    "pauli_masks",
    "pauli_sum_expectation",
    "PauliSum",
    "PauliTerm",
    "group_commuting_terms",
    "qubitwise_commutes",
    "pauli_decompose",
    "basis_rotation_circuit",
    "diagonal_value",
]
