"""Dense matrix -> Pauli-basis decomposition.

Used by the chemistry stack: the second-quantized molecular Hamiltonian is
assembled as a Fock-space matrix via Jordan-Wigner ladder operators, then
decomposed into Pauli strings for measurement-based VQE.
"""

from __future__ import annotations

from itertools import product
from typing import Dict

import numpy as np

from repro.operators.pauli import pauli_matrix
from repro.operators.pauli_sum import PauliSum


def pauli_decompose(matrix: np.ndarray, tol: float = 1e-10) -> PauliSum:
    """Decompose a Hermitian matrix into a real-coefficient PauliSum.

    Coefficients are Hilbert-Schmidt inner products
    ``c_P = tr(P M) / 2**n``. Raises if the matrix has a significant
    non-Hermitian component (imaginary coefficients).
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("matrix must be square")
    dim = matrix.shape[0]
    num_qubits = int(np.log2(dim))
    if 2**num_qubits != dim:
        raise ValueError("matrix dimension must be a power of two")

    terms = []
    for chars in product("IXYZ", repeat=num_qubits):
        label = "".join(chars)
        coefficient = np.trace(pauli_matrix(label) @ matrix) / dim
        if abs(coefficient.imag) > 1e-8:
            raise ValueError(
                f"matrix is not Hermitian: imaginary coefficient on {label}"
            )
        if abs(coefficient.real) > tol:
            terms.append((float(coefficient.real), label))
    if not terms:
        terms = [(0.0, "I" * num_qubits)]
    return PauliSum(terms)


def pauli_coefficients(matrix: np.ndarray, tol: float = 1e-10) -> Dict[str, float]:
    """Dictionary form of :func:`pauli_decompose`."""
    decomposed = pauli_decompose(matrix, tol=tol)
    return {term.pauli.label: term.coefficient for term in decomposed.terms}
