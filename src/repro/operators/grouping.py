"""Grouping Pauli terms into simultaneously measurable sets.

Qubit-wise commuting (QWC) terms can be measured from the same shots after
one basis-rotation circuit. Grouping is a graph-coloring problem on the
non-QWC conflict graph; we use networkx's greedy coloring, which is the
standard practical choice.
"""

from __future__ import annotations

from typing import List, Sequence

import networkx as nx

from repro.operators.pauli import PauliString
from repro.operators.pauli_sum import PauliSum, PauliTerm


def qubitwise_commutes(a: PauliString, b: PauliString) -> bool:
    """True if every qubit position agrees or one side is the identity."""
    if a.num_qubits != b.num_qubits:
        raise ValueError("qubit count mismatch")
    return all(
        ca == "I" or cb == "I" or ca == cb for ca, cb in zip(a.label, b.label)
    )


def group_commuting_terms(observable: PauliSum) -> List[List[PauliTerm]]:
    """Partition terms into QWC groups via greedy graph coloring.

    The identity term (if any) joins the first group since it is measurable
    in any basis.
    """
    terms = [t for t in observable.terms if not t.pauli.is_identity]
    identity_terms = [t for t in observable.terms if t.pauli.is_identity]
    if not terms:
        return [identity_terms] if identity_terms else []

    graph = nx.Graph()
    graph.add_nodes_from(range(len(terms)))
    for i in range(len(terms)):
        for j in range(i + 1, len(terms)):
            if not qubitwise_commutes(terms[i].pauli, terms[j].pauli):
                graph.add_edge(i, j)
    coloring = nx.greedy_color(graph, strategy="largest_first")
    num_groups = max(coloring.values()) + 1 if coloring else 1
    groups: List[List[PauliTerm]] = [[] for _ in range(num_groups)]
    for index, color in coloring.items():
        groups[color].append(terms[index])
    groups = [group for group in groups if group]
    if identity_terms:
        if groups:
            groups[0] = identity_terms + groups[0]
        else:
            groups = [identity_terms]
    return groups


def measurement_bases(group: Sequence[PauliTerm]) -> str:
    """The merged measurement basis label for one QWC group.

    Each qubit's basis is the non-identity Pauli appearing there (all terms
    agree by construction), defaulting to ``Z``.
    """
    if not group:
        raise ValueError("empty group")
    num_qubits = group[0].pauli.num_qubits
    basis = ["Z"] * num_qubits
    for term in group:
        for qubit, char in enumerate(term.pauli.label):
            if char == "I":
                continue
            if basis[qubit] not in ("Z", char) and basis[qubit] != char:
                raise ValueError("group is not qubit-wise commuting")
            basis[qubit] = char
    return "".join(basis)
