"""Matrix-free Pauli-string application to flat statevectors.

A Pauli string is a signed permutation of the computational basis: for a
basis index ``b`` (qubit 0 as the most-significant bit, matching the
tensor layout in :mod:`repro.simulator.statevector`),

``P |b> = i**n_Y * (-1)**popcount(b & zy_mask) * |b ^ x_mask>``

where ``x_mask`` has a bit per X/Y factor (those flip the qubit) and
``zy_mask`` a bit per Z/Y factor (those contribute a sign). Applying a
string therefore costs one fancy-index gather plus one elementwise
multiply — no ``2**n x 2**n`` matrix is ever built — and the gather
vectorizes over any number of leading batch axes.

The per-label index permutation and phase vector are memoized, so
repeated expectation evaluation (the VQE hot path) pays the mask
construction once per ``(label)`` and an O(2**n) gather per call.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np


def _parity(values: np.ndarray) -> np.ndarray:
    """Bit parity (popcount mod 2) of each entry of an integer array."""
    if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
        return np.bitwise_count(values) & 1
    parity = np.zeros_like(values)
    shift = values.copy()
    while shift.any():
        parity ^= shift & 1
        shift >>= 1
    return parity


def pauli_masks(label: str) -> Tuple[int, int, int]:
    """``(x_mask, zy_mask, n_y)`` for a Pauli label, qubit 0 as MSB."""
    n = len(label)
    x_mask = 0
    zy_mask = 0
    n_y = 0
    for qubit, char in enumerate(label):
        bit = 1 << (n - 1 - qubit)
        if char in "XY":
            x_mask |= bit
        if char in "ZY":
            zy_mask |= bit
        if char == "Y":
            n_y += 1
        elif char not in "IXZ":
            raise ValueError(f"invalid Pauli label {label!r}")
    return x_mask, zy_mask, n_y


@lru_cache(maxsize=512)
def _permutation_and_phase(label: str) -> Tuple[np.ndarray, np.ndarray]:
    """Memoized ``(gather indices, phases)`` arrays for one label.

    ``(P psi)[j] = phases[j ^ x_mask] * psi[j ^ x_mask]``; both returned
    arrays have length ``2**n``. The phase array is kept real (``+-1``)
    when the string has an even number of Y factors.
    """
    x_mask, zy_mask, n_y = pauli_masks(label)
    dim = 1 << len(label)
    indices = np.arange(dim, dtype=np.intp) ^ x_mask
    signs = 1.0 - 2.0 * _parity(indices & zy_mask)
    prefactor = 1j**n_y
    if n_y % 2 == 0:
        phases = float(np.real(prefactor)) * signs
    else:
        phases = prefactor * signs.astype(complex)
    return indices, phases


def apply_pauli(label: str, states: np.ndarray) -> np.ndarray:
    """``P @ states`` for flat statevectors along the last axis.

    ``states`` has shape ``(..., 2**n)``; any leading axes are batch axes.
    """
    states = np.asarray(states)
    indices, phases = _permutation_and_phase(label)
    if states.shape[-1] != indices.size:
        raise ValueError(
            f"state dimension {states.shape[-1]} does not match "
            f"{len(label)}-qubit label {label!r}"
        )
    return phases * states[..., indices]


def pauli_expectation(label: str, states: np.ndarray) -> np.ndarray:
    """``<psi|P|psi>`` along the last axis; real-valued, batch-shaped.

    Returns a scalar ``float`` for a single flat statevector and an array
    of shape ``states.shape[:-1]`` for batched input.
    """
    states = np.asarray(states, dtype=complex)
    transformed = apply_pauli(label, states)
    values = np.real(np.einsum("...i,...i->...", np.conj(states), transformed))
    if values.ndim == 0:
        return float(values)
    return values


def pauli_sum_expectation(
    coefficients: np.ndarray, labels: Tuple[str, ...], states: np.ndarray
) -> np.ndarray:
    """Weighted-sum expectation of several Pauli strings, batch-aware.

    ``states`` is ``(..., 2**n)``; the return value is a float for 1-D
    input and a ``states.shape[:-1]`` array otherwise.
    """
    states = np.asarray(states, dtype=complex)
    total = np.zeros(states.shape[:-1])
    for coefficient, label in zip(coefficients, labels):
        total = total + coefficient * pauli_expectation(label, states)
    if total.ndim == 0:
        return float(total)
    return total
