"""Measurement-basis rotations and diagonal evaluation of Pauli terms.

To measure a Pauli string from computational-basis shots, each qubit with
``X`` gets an ``H`` rotation and each with ``Y`` gets ``Sdg; H`` before
measurement; the term's value on a bitstring is then the parity of the
bits in the string's support.
"""

from __future__ import annotations

from typing import Union

from repro.circuits.circuit import QuantumCircuit
from repro.operators.pauli import PauliString


def basis_rotation_circuit(basis: Union[str, PauliString]) -> QuantumCircuit:
    """Pre-measurement rotation circuit for a basis label.

    ``basis`` uses one character per qubit from ``{I, X, Y, Z}``; ``I`` and
    ``Z`` need no rotation.
    """
    label = basis.label if isinstance(basis, PauliString) else basis.upper()
    circuit = QuantumCircuit(len(label), name=f"meas[{label}]")
    for qubit, char in enumerate(label):
        if char in ("I", "Z"):
            continue
        if char == "X":
            circuit.h(qubit)
        elif char == "Y":
            circuit.sdg(qubit)
            circuit.h(qubit)
        else:
            raise ValueError(f"invalid basis character {char!r}")
    return circuit


def diagonal_value(pauli: Union[str, PauliString], bitstring: str) -> int:
    """Value (+1/-1) of a Pauli term on a measured bitstring.

    Assumes the state was already rotated into the term's basis, so only
    the support parity matters. Bitstrings are qubit-0-leftmost.
    """
    label = pauli.label if isinstance(pauli, PauliString) else pauli.upper()
    if len(label) != len(bitstring):
        raise ValueError("bitstring length mismatch")
    parity = 0
    for char, bit in zip(label, bitstring):
        if char != "I" and bit == "1":
            parity ^= 1
    return -1 if parity else 1
