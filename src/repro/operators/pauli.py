"""Pauli strings.

A :class:`PauliString` is an n-character label over ``{I, X, Y, Z}`` with
character 0 acting on qubit 0. Strings multiply with phase tracking and can
be applied directly to statevector tensors (used for exact expectation
values without building dense matrices).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

_PAULI_MATRICES: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

# Single-Pauli products: (left, right) -> (phase, result)
_PRODUCT: Dict[Tuple[str, str], Tuple[complex, str]] = {}
for _a in "IXYZ":
    _PRODUCT[("I", _a)] = (1.0, _a)
    _PRODUCT[(_a, "I")] = (1.0, _a)
    _PRODUCT[(_a, _a)] = (1.0, "I")
_PRODUCT[("X", "Y")] = (1j, "Z")
_PRODUCT[("Y", "X")] = (-1j, "Z")
_PRODUCT[("Y", "Z")] = (1j, "X")
_PRODUCT[("Z", "Y")] = (-1j, "X")
_PRODUCT[("Z", "X")] = (1j, "Y")
_PRODUCT[("X", "Z")] = (-1j, "Y")


def pauli_matrix(label: str) -> np.ndarray:
    """Dense matrix of a Pauli string (kron ordered with qubit 0 first)."""
    matrix = np.array([[1.0 + 0j]])
    for char in label:
        matrix = np.kron(matrix, _PAULI_MATRICES[char])
    return matrix


class PauliString:
    """An immutable Pauli string such as ``"XIZ"``."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        label = label.upper()
        if not label:
            raise ValueError("empty Pauli label")
        if any(char not in "IXYZ" for char in label):
            raise ValueError(f"invalid Pauli label {label!r}")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("PauliString is immutable")

    @property
    def num_qubits(self) -> int:
        return len(self.label)

    @property
    def is_identity(self) -> bool:
        return set(self.label) == {"I"}

    @property
    def support(self) -> Tuple[int, ...]:
        """Qubits on which the string acts non-trivially."""
        return tuple(i for i, char in enumerate(self.label) if char != "I")

    @property
    def weight(self) -> int:
        return len(self.support)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PauliString) and self.label == other.label

    def __hash__(self) -> int:
        return hash(self.label)

    def __repr__(self) -> str:
        return f"PauliString({self.label!r})"

    def __str__(self) -> str:
        return self.label

    def __getitem__(self, qubit: int) -> str:
        return self.label[qubit]

    def commutes_with(self, other: "PauliString") -> bool:
        """True if the full operators commute (anti-commutation parity)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        anti = sum(
            1
            for a, b in zip(self.label, other.label)
            if a != "I" and b != "I" and a != b
        )
        return anti % 2 == 0

    def multiply(self, other: "PauliString") -> Tuple[complex, "PauliString"]:
        """Return ``(phase, product)`` with ``self * other = phase * product``."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        phase: complex = 1.0
        chars = []
        for a, b in zip(self.label, other.label):
            factor, result = _PRODUCT[(a, b)]
            phase *= factor
            chars.append(result)
        return phase, PauliString("".join(chars))

    def to_matrix(self) -> np.ndarray:
        return pauli_matrix(self.label)

    def apply_to_state(self, state: np.ndarray) -> np.ndarray:
        """Apply the string to a state tensor of shape ``(2,)*n``.

        Implemented axis-by-axis with flips/phases instead of matrix
        contraction, which keeps exact expectation evaluation cheap.
        """
        out = np.array(state, dtype=complex, copy=True)
        for qubit, char in enumerate(self.label):
            if char == "I":
                continue
            if char == "X":
                out = np.flip(out, axis=qubit).copy()
            elif char == "Z":
                index = [slice(None)] * out.ndim
                index[qubit] = 1
                out[tuple(index)] = -out[tuple(index)]
            else:  # Y: flip then phase (Y|0> = i|1>, Y|1> = -i|0>)
                out = np.flip(out, axis=qubit).copy()
                index0 = [slice(None)] * out.ndim
                index1 = [slice(None)] * out.ndim
                index0[qubit] = 0
                index1[qubit] = 1
                out[tuple(index0)] = out[tuple(index0)] * (-1j)
                out[tuple(index1)] = out[tuple(index1)] * (1j)
        return out

    def expectation(self, state: np.ndarray) -> float:
        """Exact ``<psi|P|psi>`` for a state tensor or flat statevector."""
        tensor = np.asarray(state)
        if tensor.ndim == 1:
            tensor = tensor.reshape((2,) * self.num_qubits)
        transformed = self.apply_to_state(tensor)
        return float(np.real(np.vdot(tensor, transformed)))
