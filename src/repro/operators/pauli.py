"""Pauli strings.

A :class:`PauliString` is an n-character label over ``{I, X, Y, Z}`` with
character 0 acting on qubit 0. Strings multiply with phase tracking and can
be applied directly to statevector tensors (used for exact expectation
values without building dense matrices).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

_PAULI_MATRICES: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

# Single-Pauli products: (left, right) -> (phase, result)
_PRODUCT: Dict[Tuple[str, str], Tuple[complex, str]] = {}
for _a in "IXYZ":
    _PRODUCT[("I", _a)] = (1.0, _a)
    _PRODUCT[(_a, "I")] = (1.0, _a)
    _PRODUCT[(_a, _a)] = (1.0, "I")
_PRODUCT[("X", "Y")] = (1j, "Z")
_PRODUCT[("Y", "X")] = (-1j, "Z")
_PRODUCT[("Y", "Z")] = (1j, "X")
_PRODUCT[("Z", "Y")] = (-1j, "X")
_PRODUCT[("Z", "X")] = (1j, "Y")
_PRODUCT[("X", "Z")] = (-1j, "Y")


def pauli_matrix(label: str) -> np.ndarray:
    """Dense matrix of a Pauli string (kron ordered with qubit 0 first)."""
    matrix = np.array([[1.0 + 0j]])
    for char in label:
        matrix = np.kron(matrix, _PAULI_MATRICES[char])
    return matrix


class PauliString:
    """An immutable Pauli string such as ``"XIZ"``."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        label = label.upper()
        if not label:
            raise ValueError("empty Pauli label")
        if any(char not in "IXYZ" for char in label):
            raise ValueError(f"invalid Pauli label {label!r}")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("PauliString is immutable")

    @property
    def num_qubits(self) -> int:
        return len(self.label)

    @property
    def is_identity(self) -> bool:
        return set(self.label) == {"I"}

    @property
    def support(self) -> Tuple[int, ...]:
        """Qubits on which the string acts non-trivially."""
        return tuple(i for i, char in enumerate(self.label) if char != "I")

    @property
    def weight(self) -> int:
        return len(self.support)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PauliString) and self.label == other.label

    def __hash__(self) -> int:
        return hash(self.label)

    def __repr__(self) -> str:
        return f"PauliString({self.label!r})"

    def __str__(self) -> str:
        return self.label

    def __getitem__(self, qubit: int) -> str:
        return self.label[qubit]

    def commutes_with(self, other: "PauliString") -> bool:
        """True if the full operators commute (anti-commutation parity)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        anti = sum(
            1
            for a, b in zip(self.label, other.label)
            if a != "I" and b != "I" and a != b
        )
        return anti % 2 == 0

    def multiply(self, other: "PauliString") -> Tuple[complex, "PauliString"]:
        """Return ``(phase, product)`` with ``self * other = phase * product``."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        phase: complex = 1.0
        chars = []
        for a, b in zip(self.label, other.label):
            factor, result = _PRODUCT[(a, b)]
            phase *= factor
            chars.append(result)
        return phase, PauliString("".join(chars))

    def to_matrix(self) -> np.ndarray:
        return pauli_matrix(self.label)

    def apply_to_state(self, state: np.ndarray) -> np.ndarray:
        """Apply the string to a state tensor of shape ``(2,)*n``.

        Routed through the matrix-free bitmask engine
        (:mod:`repro.operators.pauli_apply`): one index-permutation gather
        plus one phase multiply, never a dense matrix.
        """
        from repro.operators.pauli_apply import apply_pauli

        tensor = np.asarray(state, dtype=complex)
        return apply_pauli(self.label, tensor.reshape(-1)).reshape(tensor.shape)

    def expectation(self, state: np.ndarray) -> float:
        """Exact ``<psi|P|psi>`` for a state tensor or flat statevector."""
        from repro.operators.pauli_apply import pauli_expectation

        return float(pauli_expectation(self.label, np.asarray(state).reshape(-1)))
