"""Weighted sums of Pauli strings (Hamiltonians / observables)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple, Union

import numpy as np

from repro.operators.pauli import PauliString
from repro.operators.pauli_apply import pauli_sum_expectation


@dataclass(frozen=True)
class PauliTerm:
    """A single ``coefficient * PauliString`` term."""

    coefficient: float
    pauli: PauliString

    def __repr__(self) -> str:
        return f"{self.coefficient:+.6g}*{self.pauli.label}"


class PauliSum:
    """A real-coefficient linear combination of Pauli strings.

    Real coefficients suffice for Hermitian observables expressed in the
    Pauli basis, which covers every Hamiltonian in the paper (TFIM, H2).
    """

    def __init__(self, terms: Iterable[Tuple[float, Union[str, PauliString]]]):
        collected: Dict[PauliString, float] = {}
        num_qubits = None
        for coefficient, pauli in terms:
            if not isinstance(pauli, PauliString):
                pauli = PauliString(pauli)
            if num_qubits is None:
                num_qubits = pauli.num_qubits
            elif pauli.num_qubits != num_qubits:
                raise ValueError("all terms must act on the same qubit count")
            collected[pauli] = collected.get(pauli, 0.0) + float(coefficient)
        if num_qubits is None:
            raise ValueError("a PauliSum needs at least one term")
        self.num_qubits = num_qubits
        self._terms: List[PauliTerm] = [
            PauliTerm(coeff, pauli)
            for pauli, coeff in collected.items()
            if abs(coeff) > 1e-14
        ]
        if not self._terms:
            # The all-identity zero operator: keep one explicit zero term so
            # downstream code always has a qubit count to work with.
            self._terms = [PauliTerm(0.0, PauliString("I" * num_qubits))]

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[PauliTerm]:
        return iter(self._terms)

    @property
    def terms(self) -> Tuple[PauliTerm, ...]:
        return tuple(self._terms)

    @property
    def coefficients(self) -> np.ndarray:
        return np.array([term.coefficient for term in self._terms])

    @property
    def paulis(self) -> Tuple[PauliString, ...]:
        return tuple(term.pauli for term in self._terms)

    # -- algebra ---------------------------------------------------------------------

    def __add__(self, other: "PauliSum") -> "PauliSum":
        return PauliSum(
            [(t.coefficient, t.pauli) for t in self._terms]
            + [(t.coefficient, t.pauli) for t in other._terms]
        )

    def __mul__(self, scalar: float) -> "PauliSum":
        return PauliSum([(t.coefficient * scalar, t.pauli) for t in self._terms])

    __rmul__ = __mul__

    def __sub__(self, other: "PauliSum") -> "PauliSum":
        return self + (other * -1.0)

    # -- numerics ----------------------------------------------------------------------

    def to_matrix(self) -> np.ndarray:
        """Dense matrix (2**n x 2**n); fine for the <= 12-qubit regime."""
        dim = 2**self.num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for term in self._terms:
            matrix += term.coefficient * term.pauli.to_matrix()
        return matrix

    def expectation(self, state: np.ndarray) -> float:
        """Exact expectation against a statevector (flat or tensor).

        Routed through the matrix-free bitmask engine: each term costs one
        index-permutation gather, so no per-term dense matrix (and no
        axis-by-axis tensor manipulation) is ever materialized.
        """
        psi = np.asarray(state, dtype=complex).reshape(-1)
        coefficients, labels = self._flat_terms()
        return float(pauli_sum_expectation(coefficients, labels, psi))

    def batch_expectations(self, states: np.ndarray) -> np.ndarray:
        """Exact expectations for a batch of flat statevectors.

        ``states`` has shape ``(..., 2**n)``; returns ``states.shape[:-1]``
        real values, evaluating every term vectorized over the batch axes.
        """
        states = np.asarray(states, dtype=complex)
        coefficients, labels = self._flat_terms()
        return np.asarray(pauli_sum_expectation(coefficients, labels, states))

    def _flat_terms(self) -> Tuple[np.ndarray, Tuple[str, ...]]:
        """``(coefficients, labels)`` in term order (cached; terms are
        immutable, so the hot path avoids rebuilding them per call)."""
        cached = getattr(self, "_flat_cache", None)
        if cached is None:
            cached = (
                np.array([term.coefficient for term in self._terms]),
                tuple(term.pauli.label for term in self._terms),
            )
            self._flat_cache = cached
        return cached

    def ground_state_energy(self) -> float:
        """Smallest eigenvalue by dense diagonalization."""
        eigenvalues = np.linalg.eigvalsh(self.to_matrix())
        return float(eigenvalues[0])

    def spectral_range(self) -> Tuple[float, float]:
        eigenvalues = np.linalg.eigvalsh(self.to_matrix())
        return float(eigenvalues[0]), float(eigenvalues[-1])

    def one_norm(self) -> float:
        """Sum of |coefficients|; bounds shot-noise scale."""
        return float(np.sum(np.abs(self.coefficients)))

    def identity_coefficient(self) -> float:
        for term in self._terms:
            if term.pauli.is_identity:
                return term.coefficient
        return 0.0

    def maximally_mixed_expectation(self) -> float:
        """Expectation under the maximally mixed state = identity weight."""
        return self.identity_coefficient()

    def __repr__(self) -> str:
        body = " ".join(repr(term) for term in self._terms[:6])
        suffix = " ..." if len(self._terms) > 6 else ""
        return f"PauliSum({body}{suffix})"


def pauli_sum_from_dict(
    num_qubits: int, coefficients: Mapping[str, float]
) -> PauliSum:
    """Build a PauliSum from ``{"XIZ": 0.5, ...}`` style dictionaries."""
    terms = []
    for label, coefficient in coefficients.items():
        if len(label) != num_qubits:
            raise ValueError(
                f"label {label!r} does not match num_qubits={num_qubits}"
            )
        terms.append((coefficient, label))
    return PauliSum(terms)
