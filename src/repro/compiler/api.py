"""Compile entry points: one API for every execution layer.

:func:`compile_plan` is the way to turn a circuit into an executable
:class:`~repro.compiler.ir.GatePlan` — the statevector, batched,
density-matrix and sampling simulators, the energy backends, the VQE
objective and the fleet workers all consume its output. Plans are keyed by
content hash in the shared LRU cache, so repeated ``run_circuit`` /
figure / fleet invocations never recompile.

:func:`transpile_then_compile` is the single device-aware entry point: it
runs the full staged pipeline (layout -> routing -> native basis ->
lowering -> fusion) and returns the plan together with the transpilation
bookkeeping (layout, final measurement permutation, swap count) needed to
interpret results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameter import Parameter
from repro.compiler.cache import (
    PLAN_CACHE,
    circuit_fingerprint,
    coupling_fingerprint,
    fusion_enabled,
)
from repro.compiler.ir import GatePlan
from repro.compiler.passes import (
    CompilationUnit,
    default_pipeline,
    device_pipeline,
)
from repro.transpiler.layout import Layout


def compile_plan(
    circuit: QuantumCircuit,
    parameters: Optional[Sequence[Parameter]] = None,
    *,
    fusion: Optional[bool] = None,
    cache: bool = True,
) -> GatePlan:
    """Compile a circuit into a (cached, fused) :class:`GatePlan`.

    ``parameters`` fixes the theta ordering (defaulting to first-appearance
    order, like :func:`repro.circuits.program.compile_circuit`). ``fusion``
    defaults to the ``REPRO_FUSION`` environment switch. ``cache=False``
    bypasses the shared plan cache (the cache key is still computed so the
    returned plan is identifiable).
    """
    fuse = fusion_enabled() if fusion is None else bool(fusion)
    key = "plan:" + circuit_fingerprint(
        circuit, parameters, extra=("fused" if fuse else "raw",)
    )
    pipeline = default_pipeline(fusion=fuse)

    def build() -> GatePlan:
        plan = pipeline.compile(circuit, parameters)
        plan.key = key
        return plan

    if not cache:
        return build()
    return PLAN_CACHE.get_or_build(key, build)


@dataclass(frozen=True)
class DeviceCompilation:
    """A device-lowered plan plus the bookkeeping to interpret results.

    ``circuit`` / ``plan`` are *trimmed* to the device qubits the routed
    circuit actually uses (see
    :class:`~repro.compiler.passes.TrimIdleWires`); ``layout`` and
    ``final_permutation`` stay in physical device indices, and
    ``logical_positions[v]`` is where logical qubit ``v`` sits in the
    trimmed circuit at measurement time.
    """

    plan: GatePlan
    circuit: QuantumCircuit
    layout: Layout
    final_permutation: Dict[int, int]
    num_swaps: int
    logical_positions: tuple = ()
    #: ``physical_qubits[i]`` is the physical device index of trimmed
    #: qubit ``i`` (empty means trimmed == physical). The conformance
    #: verifier maps gates back through this to check coupling adjacency.
    physical_qubits: tuple = ()

    @property
    def num_two_qubit_gates(self) -> int:
        return self.circuit.num_two_qubit_gates


def _coupling_of(device):
    """Accept either a ``DeviceModel``-like object or a bare coupling map."""
    return getattr(device, "coupling_map", device)


def transpile_then_compile(
    circuit: QuantumCircuit,
    device,
    *,
    layout_method: str = "chain",
    fusion: Optional[bool] = None,
    cache: bool = True,
) -> DeviceCompilation:
    """Lower a bound circuit onto a device and compile it, in one call.

    ``device`` is a :class:`~repro.devices.device.DeviceModel` or a bare
    :class:`~repro.devices.coupling.CouplingMap`. The whole result —
    native circuit, plan, layout, final permutation — is cached under one
    content key, so re-running the same bound circuit never re-transpiles.

    Note on cache behavior: native-basis translation is numeric (ZSXZSXZ
    decomposition of each bound 1q unitary), so device compilation keys
    on the *bound* circuit — an optimization loop that rebinds per step
    inserts one entry per theta and misses on each new point. That is
    inherent to the workload (each binding genuinely is a new native
    circuit); hot symbolic plans are safe because LRU recency keeps
    frequently-touched entries alive while one-shot entries age out.
    """
    coupling = _coupling_of(device)
    fuse = fusion_enabled() if fusion is None else bool(fusion)
    key = "device:" + circuit_fingerprint(
        circuit,
        extra=(
            coupling_fingerprint(coupling),
            layout_method,
            "fused" if fuse else "raw",
        ),
    )

    def build() -> DeviceCompilation:
        unit = device_pipeline(layout_method, fusion=fuse).run(
            CompilationUnit(circuit=circuit, coupling=coupling)
        )
        unit.plan.key = key
        return DeviceCompilation(
            plan=unit.plan,
            circuit=unit.circuit,
            layout=unit.layout,
            final_permutation=dict(unit.final_permutation or {}),
            num_swaps=unit.num_swaps,
            logical_positions=tuple(unit.metadata.get("logical_positions", ())),
            physical_qubits=tuple(
                unit.metadata.get("trimmed_physical_qubits", ())
            ),
        )

    if not cache:
        return build()
    return PLAN_CACHE.get_or_build(key, build)
