"""The :class:`GatePlan` intermediate representation.

A gate plan is the executable form every simulation layer consumes: an
ordered tuple of :class:`PlanOp` records (static ops carry a precomputed —
possibly fused — matrix; parameterized ops carry a *slot* into a
structure-of-arrays parameter table) plus the SoA table itself:

* ``param_indices`` — which entry of ``theta`` each parameterized op reads,
* ``coeffs`` / ``offsets`` — the affine map per op,
* ``slot_gate_names`` — the gate kind per op, grouped so matrices build
  per kind through the stacked constructors.

Binding a parameter vector is therefore ONE NumPy affine map
``angles = coeffs * theta[param_indices] + offsets`` (with a batched
``(B, P)`` variant used by :class:`~repro.simulator.batched.
BatchedStatevectorSimulator`), replacing the per-op Python branch of the
legacy :class:`~repro.circuits.program.CompiledProgram` path.

Plans also remember their *pre-fusion* single-/two-qubit gate counts so
noise modelling (global-depolarizing survival factors) keeps seeing the
physical circuit, not the fused execution schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.gates import stacked_gate_matrices
from repro.circuits.parameter import Parameter
from repro.circuits.program import CompiledProgram

# -- kernel classes -----------------------------------------------------------
#
# Every op lowers to exactly one kernel class, so the simulators dispatch
# gate application with a table lookup instead of per-gate matrix
# inspection (see ``repro.simulator.kernels``). Classification lives here
# (not in the kernels package) because the compiler may not import the
# simulator layer.

#: Diagonal matrix — applies as a pure elementwise multiply.
KERNEL_DIAGONAL = "diagonal"
#: Dense single-qubit gate — bit-indexed amplitude-pair update.
KERNEL_1Q_PAIR = "1q-pair"
#: Dense two-qubit gate — bit-indexed amplitude-quad update.
KERNEL_2Q_QUAD = "2q-quad"
#: Dense k>=3 qubit operator — falls back to the tensordot reference.
KERNEL_DENSE = "dense-k"

KERNEL_CLASSES = (KERNEL_DIAGONAL, KERNEL_1Q_PAIR, KERNEL_2Q_QUAD, KERNEL_DENSE)

#: Kernel class of each parameterized gate kind, keyed by gate name.
#: Parameterized ops carry no matrix at lowering time, so their class
#: comes from this table instead of matrix inspection.
PARAM_GATE_KERNEL_CLASSES: Dict[str, str] = {
    "rz": KERNEL_DIAGONAL,
    "p": KERNEL_DIAGONAL,
    "rzz": KERNEL_DIAGONAL,
    "crz": KERNEL_DIAGONAL,
    "rx": KERNEL_1Q_PAIR,
    "ry": KERNEL_1Q_PAIR,
    "u": KERNEL_1Q_PAIR,
    "rxx": KERNEL_2Q_QUAD,
    "crx": KERNEL_2Q_QUAD,
}

_DENSE_CLASS_BY_DIM = {2: KERNEL_1Q_PAIR, 4: KERNEL_2Q_QUAD}


def kernel_class_of_matrix(matrix: np.ndarray) -> str:
    """Classify an operator matrix into one of the four kernel classes.

    Diagonality is decided structurally (exact zeros off the diagonal),
    which is stable because gate constructors and fusion products build
    their zeros exactly. Dimensions other than 2/4 (including channel
    superoperators viewed as ``2k``-qubit operators) classify as
    ``dense-k`` unless diagonal.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return KERNEL_DENSE
    dim = matrix.shape[0]
    off_diagonal = matrix[~np.eye(dim, dtype=bool)]
    if not np.any(off_diagonal):
        return KERNEL_DIAGONAL
    return _DENSE_CLASS_BY_DIM.get(dim, KERNEL_DENSE)


def kernel_class_of_gate(gate_name: str, num_qubits: int) -> str:
    """Kernel class of a parameterized gate kind (table lookup)."""
    try:
        return PARAM_GATE_KERNEL_CLASSES[gate_name]
    except KeyError:
        return _DENSE_CLASS_BY_DIM.get(2**num_qubits, KERNEL_DENSE)


@dataclass(frozen=True)
class PlanOp:
    """One executable plan operation.

    ``matrix`` is set for static ops (possibly the product of several
    fused source gates). Parameterized ops set ``gate_name`` and ``slot``
    — the row of the plan's parameter table holding their affine map.
    ``kernel_class`` is derived at construction (matrix structure for
    static ops, the gate-kind table for parameterized ops), so execution
    dispatch is a plain table lookup.
    """

    qubits: Tuple[int, ...]
    matrix: Optional[np.ndarray] = None
    gate_name: Optional[str] = None
    slot: int = -1
    kernel_class: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kernel_class is not None:
            return
        if self.matrix is not None:
            derived = kernel_class_of_matrix(self.matrix)
        elif self.gate_name is not None:
            derived = kernel_class_of_gate(self.gate_name, len(self.qubits))
        else:
            derived = _DENSE_CLASS_BY_DIM.get(2 ** len(self.qubits), KERNEL_DENSE)
        object.__setattr__(self, "kernel_class", derived)

    @property
    def is_static(self) -> bool:
        return self.matrix is not None


class GatePlan:
    """Structure-of-arrays executable form of a circuit."""

    def __init__(
        self,
        num_qubits: int,
        ops: Sequence[PlanOp],
        parameters: Tuple[Parameter, ...],
        param_indices: np.ndarray,
        coeffs: np.ndarray,
        offsets: np.ndarray,
        slot_gate_names: Tuple[str, ...],
        *,
        source_gate_counts: Tuple[int, int],
        fused: bool = False,
        key: Optional[str] = None,
    ):
        self.num_qubits = num_qubits
        self.ops: Tuple[PlanOp, ...] = tuple(ops)
        self.parameters = parameters
        self.param_indices = np.asarray(param_indices, dtype=np.intp)
        self.coeffs = np.asarray(coeffs, dtype=float)
        self.offsets = np.asarray(offsets, dtype=float)
        self.slot_gate_names = tuple(slot_gate_names)
        #: (single-qubit, two-qubit) gate counts of the *source* circuit,
        #: stable under fusion — noise models consume these.
        self.source_gate_counts = source_gate_counts
        self.fused = fused
        #: Content-hash cache key (set when compiled through the cache).
        self.key = key
        kind_slots: Dict[str, List[int]] = {}
        for slot, name in enumerate(self.slot_gate_names):
            kind_slots.setdefault(name, []).append(slot)
        self._kind_slots = {
            name: np.asarray(slots, dtype=np.intp)
            for name, slots in kind_slots.items()
        }

    # -- shape -----------------------------------------------------------------

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    @property
    def num_param_ops(self) -> int:
        return int(self.param_indices.size)

    @property
    def num_static_ops(self) -> int:
        return sum(1 for op in self.ops if op.is_static)

    @property
    def num_1q_gates(self) -> int:
        return self.source_gate_counts[0]

    @property
    def num_2q_gates(self) -> int:
        return self.source_gate_counts[1]

    # -- parameter binding -----------------------------------------------------

    def bind_angles(self, theta: Sequence[float]) -> np.ndarray:
        """Per-slot angles for one parameter vector — a single affine map."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} parameters, got shape {theta.shape}"
            )
        return self.coeffs * theta[self.param_indices] + self.offsets

    def bind_angles_batch(self, thetas: np.ndarray) -> np.ndarray:
        """``(B, num_param_ops)`` angles for a ``(B, P)`` parameter batch."""
        thetas = np.asarray(thetas, dtype=float)
        if thetas.ndim != 2 or thetas.shape[1] != self.num_parameters:
            raise ValueError(
                f"expected thetas of shape (B, {self.num_parameters}), "
                f"got {thetas.shape}"
            )
        return self.coeffs * thetas[:, self.param_indices] + self.offsets

    # -- materialization -------------------------------------------------------

    def slot_matrices(self, angles: np.ndarray) -> List[np.ndarray]:
        """One matrix per parameterized op, built per gate kind.

        ``angles`` is the output of :meth:`bind_angles`; kinds sharing a
        builder are constructed in one stacked call each.
        """
        materialized: List[Optional[np.ndarray]] = [None] * self.num_param_ops
        for kind, slots in self._kind_slots.items():
            stacked = stacked_gate_matrices(kind, angles[slots])
            for position, slot in enumerate(slots):
                materialized[slot] = stacked[position]
        return materialized

    def op_matrices(
        self, theta: Sequence[float]
    ) -> Iterator[Tuple[Tuple[int, ...], np.ndarray]]:
        """Yield ``(qubits, matrix)`` pairs for a parameter vector."""
        matrices = self.slot_matrices(self.bind_angles(theta))
        for op in self.ops:
            yield op.qubits, (op.matrix if op.matrix is not None else matrices[op.slot])

    def __repr__(self) -> str:
        return (
            f"GatePlan(qubits={self.num_qubits}, ops={len(self.ops)}, "
            f"params={self.num_parameters}, fused={self.fused})"
        )


def lower_program(program: CompiledProgram, *, key: Optional[str] = None) -> GatePlan:
    """Lower a legacy :class:`CompiledProgram` into an (unfused) plan.

    The compiler's lowering pass routes through
    :func:`repro.circuits.program.compile_circuit` and this function, so
    there is exactly one circuit-walking implementation in the codebase.
    """
    ops: List[PlanOp] = []
    param_indices: List[int] = []
    coeffs: List[float] = []
    offsets: List[float] = []
    slot_gate_names: List[str] = []
    singles = 0
    twos = 0
    for op in program.ops:
        if len(op.qubits) == 2:
            twos += 1
        else:
            singles += 1
        if op.matrix is not None:
            ops.append(PlanOp(op.qubits, matrix=op.matrix))
            continue
        slot = len(param_indices)
        param_indices.append(op.param_index)
        coeffs.append(op.coeff)
        offsets.append(op.offset)
        slot_gate_names.append(op.gate_name)
        ops.append(PlanOp(op.qubits, gate_name=op.gate_name, slot=slot))
    return GatePlan(
        program.num_qubits,
        ops,
        program.parameters,
        np.asarray(param_indices, dtype=np.intp),
        np.asarray(coeffs, dtype=float),
        np.asarray(offsets, dtype=float),
        tuple(slot_gate_names),
        source_gate_counts=(singles, twos),
        fused=False,
        key=key,
    )
