"""The :class:`NoisePlan` IR: channel-aware lowering of noisy circuits.

The density-matrix simulator's historic noisy path walked the bound
circuit instruction by instruction, rebuilding every gate matrix and
every channel's Kraus operator list on each call, and never fused
anything — fusion was disabled entirely for noisy runs because a fused
:class:`~repro.compiler.ir.GatePlan` no longer exposes the per-physical-
gate sites a noise model attaches channels to.

A noise plan fixes that by lowering the *(circuit, noise model)* pair as
one unit. Its op stream interleaves two record kinds:

* :class:`~repro.compiler.ir.PlanOp` — a static unitary (noisy circuits
  are bound, so every gate has a concrete matrix, possibly the product of
  several fused source gates);
* :class:`ChannelOp` — a noise-channel site whose Kraus operators are
  pre-stacked into one ``(K, 2**k, 2**k)`` array, ready for the
  simulator's stacked-tensordot application.

Each channel site also pre-compiles its *superoperator*
``S = sum_m K_m (x) conj(K_m)`` — a ``(4**k, 4**k)`` matrix acting on the
site's combined ket/bra axes — so the simulator applies a whole channel
as ONE tensordot whose cost is independent of the number of Kraus
operators (a two-qubit depolarizing channel has 16 of them; the historic
loop paid 32 full-state contractions per site).

Channel-aware fusion then works at two levels:

* channel sites act as fusion barriers on their qubits, so static-gate
  runs *between* channels still fuse (the existing
  :func:`~repro.compiler.passes.fuse_static_ops` treats any op without a
  ``matrix`` as a barrier) — under noiseless gate kinds (e.g. virtual
  ``rz`` via ``gate_overrides={"rz": 0.0}``) the interleaved 1q runs
  collapse;
* a static unitary directly preceding a channel site *absorbs into* the
  site's Kraus stack (``K_m <- K_m @ U`` on the union support), so under
  a uniform per-gate noise model — where every gate carries a channel —
  each (gate, channel) pair still executes as a single contraction.

Plans are cached in the shared :data:`~repro.compiler.cache.PLAN_CACHE`
keyed by circuit content hash plus the noise model's
:meth:`~repro.noise.noise_model.NoiseModel.fingerprint`; models without a
fingerprint are still lowered, just never cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATES
from repro.compiler.cache import PLAN_CACHE, circuit_fingerprint, fusion_enabled
from repro.compiler.ir import PlanOp, kernel_class_of_matrix
from repro.compiler.passes import (
    MAX_FUSION_SUPPORT,
    _expand_matrix,
    fuse_static_ops,
)


def kraus_superoperator(kraus: np.ndarray) -> np.ndarray:
    """Fold a stacked ``(K, d, d)`` Kraus array into its superoperator.

    One stacked contraction + sum over the operator axis:
    ``S[(i,l),(j,k)] = sum_m K_m[i,j] conj(K_m)[l,k]``. Applying ``S`` to
    the channel qubits' combined ket/bra axes is exactly
    ``sum_m K_m rho K_m^dagger``, with per-application cost independent
    of ``K``.
    """
    dim = kraus.shape[1]
    stacked = np.tensordot(
        kraus, kraus.conj(), axes=(0, 0)
    )  # (i, j, l, k) summed over m
    return np.ascontiguousarray(
        stacked.transpose(0, 2, 1, 3).reshape(dim * dim, dim * dim)
    )


@dataclass(frozen=True)
class ChannelOp:
    """One noise-channel site with pre-stacked Kraus operators.

    ``kraus`` has shape ``(K, 2**k, 2**k)`` for ``k = len(qubits)``;
    ``superop`` is the pre-compiled ``(4**k, 4**k)`` superoperator the
    density-matrix simulator applies as a single tensordot, and
    ``probes`` the stacked ``K_m^dagger K_m`` effect operators the
    trajectory engine contracts for branch probabilities — both are
    plan-constant, so they compile once per site. ``matrix`` is always
    ``None`` — it exists so the fusion pass (which treats matrix-less
    ops as barriers on their qubits) and the execution loops can handle
    :class:`PlanOp` and :class:`ChannelOp` uniformly.

    ``superop_class`` / ``kraus_classes`` are the kernel classes of the
    superoperator and of each Kraus operator (see
    :func:`~repro.compiler.ir.kernel_class_of_matrix`), derived once at
    construction so the simulators dispatch per site without matrix
    inspection — a pure-dephasing site, for example, has a diagonal
    superoperator and rides the elementwise fast path.
    """

    qubits: Tuple[int, ...]
    kraus: np.ndarray
    superop: np.ndarray = field(default=None)
    probes: np.ndarray = field(default=None)
    matrix: None = field(default=None, init=False)
    superop_class: str = field(default=None)
    kraus_classes: Tuple[str, ...] = field(default=None)

    def __post_init__(self):
        if self.superop is None:
            object.__setattr__(self, "superop", kraus_superoperator(self.kraus))
        if self.probes is None:
            object.__setattr__(
                self,
                "probes",
                np.matmul(self.kraus.conj().transpose(0, 2, 1), self.kraus),
            )
        if self.superop_class is None:
            object.__setattr__(
                self, "superop_class", kernel_class_of_matrix(self.superop)
            )
        if self.kraus_classes is None:
            object.__setattr__(
                self,
                "kraus_classes",
                tuple(kernel_class_of_matrix(k) for k in self.kraus),
            )

    @property
    def num_kraus(self) -> int:
        return int(self.kraus.shape[0])


NoisePlanOp = Union[PlanOp, ChannelOp]


class NoisePlan:
    """Executable form of a bound circuit under a fixed noise model."""

    def __init__(
        self,
        num_qubits: int,
        ops: Tuple[NoisePlanOp, ...],
        *,
        source_gate_counts: Tuple[int, int],
        fused: bool = False,
        key: Optional[str] = None,
    ):
        self.num_qubits = num_qubits
        self.ops = tuple(ops)
        #: (single-qubit, two-qubit) counts of the *source* circuit,
        #: stable under fusion — survival-factor models consume these.
        self.source_gate_counts = source_gate_counts
        self.fused = fused
        self.key = key

    @property
    def num_channels(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, ChannelOp))

    @property
    def num_unitary_ops(self) -> int:
        return sum(1 for op in self.ops if not isinstance(op, ChannelOp))

    def __repr__(self) -> str:
        return (
            f"NoisePlan(qubits={self.num_qubits}, "
            f"unitaries={self.num_unitary_ops}, "
            f"channels={self.num_channels}, fused={self.fused})"
        )


def _stack_kraus(kraus_ops, dedupe: Dict[bytes, np.ndarray]) -> np.ndarray:
    """Stack a channel's Kraus list into ``(K, d, d)``, deduplicating.

    Noise models rebuild their operator lists on every ``channels_for``
    call; content-keyed deduplication makes every identical channel site
    in a plan share one stacked array.
    """
    stacked = np.ascontiguousarray(np.asarray(kraus_ops, dtype=complex))
    if stacked.ndim != 3 or stacked.shape[1] != stacked.shape[2]:
        raise ValueError(
            f"Kraus operators must stack to (K, d, d), got {stacked.shape}"
        )
    content = stacked.tobytes() + str(stacked.shape).encode()
    shared = dedupe.get(content)
    if shared is not None:
        return shared
    dedupe[content] = stacked
    return stacked


def lower_noise_plan(
    circuit: QuantumCircuit, noise_model, *, key: Optional[str] = None
) -> NoisePlan:
    """Lower a bound circuit and its noise model into an (unfused) plan.

    ``noise_model`` follows the ``repro.noise.NoiseModel`` protocol:
    ``channels_for(gate_name, qubits)`` yields ``(kraus_ops, qubits)``
    pairs applied after the ideal gate.
    """
    if circuit.num_parameters:
        raise ValueError("circuit has unbound parameters; bind it first")
    ops: List[NoisePlanOp] = []
    dedupe: Dict[bytes, np.ndarray] = {}
    singles = 0
    twos = 0
    for inst in circuit:
        if inst.name == "barrier":
            continue
        if len(inst.qubits) == 2:
            twos += 1
        else:
            singles += 1
        matrix = GATES[inst.name].matrix(tuple(float(p) for p in inst.params))
        ops.append(PlanOp(inst.qubits, matrix=matrix))
        for kraus_ops, qubits in noise_model.channels_for(
            inst.name, inst.qubits
        ):
            ops.append(ChannelOp(tuple(qubits), _stack_kraus(kraus_ops, dedupe)))
    return NoisePlan(
        circuit.num_qubits,
        tuple(ops),
        source_gate_counts=(singles, twos),
        fused=False,
        key=key,
    )


def absorb_unitaries(
    ops: Tuple[NoisePlanOp, ...], max_support: int = MAX_FUSION_SUPPORT
) -> Tuple[NoisePlanOp, ...]:
    """Merge static unitaries directly preceding a channel into its Kraus.

    When a channel site immediately follows a static op in the schedule
    and their union support stays within ``max_support`` qubits, the
    unitary folds into every Kraus operator (``K_m <- K_m @ U`` on the
    union support) and the pair executes as one superoperator
    contraction. Under a uniform per-gate noise model this halves the
    number of full-state contractions: every (gate, channel) pair the
    lowering emitted becomes a single site.
    """
    absorbed: List[NoisePlanOp] = []
    for op in ops:
        if (
            isinstance(op, ChannelOp)
            and absorbed
            and not isinstance(absorbed[-1], ChannelOp)
            and absorbed[-1].matrix is not None
        ):
            target = absorbed[-1]
            union = target.qubits + tuple(
                q for q in op.qubits if q not in target.qubits
            )
            if len(union) <= max_support:
                unitary = _expand_matrix(target.matrix, target.qubits, union)
                kraus = np.stack(
                    [
                        _expand_matrix(k, op.qubits, union) @ unitary
                        for k in op.kraus
                    ]
                )
                absorbed[-1] = ChannelOp(union, kraus)
                continue
        absorbed.append(op)
    return tuple(absorbed)


def fuse_noise_plan(
    plan: NoisePlan, max_support: int = MAX_FUSION_SUPPORT
) -> NoisePlan:
    """A channel-aware fused copy of ``plan``.

    Two stages. First the plan-level
    :func:`~repro.compiler.passes.fuse_static_ops` merges static-gate
    runs — channel sites have no ``matrix`` so they act as fusion
    barriers on exactly their own qubits, just like parameterized ops in
    the noiseless pipeline. Then :func:`absorb_unitaries` folds each
    surviving unitary that directly precedes a channel site into that
    site's Kraus stack.
    """
    if plan.fused:
        return plan
    fused_ops = fuse_static_ops(plan.ops, plan.num_qubits, max_support)
    fused_ops = absorb_unitaries(fused_ops, max_support)
    return NoisePlan(
        plan.num_qubits,
        tuple(fused_ops),
        source_gate_counts=plan.source_gate_counts,
        fused=True,
        key=plan.key,
    )


def noise_fingerprint(noise_model) -> Optional[str]:
    """Content fingerprint of a noise model, or ``None`` if it has none.

    Models exposing a ``fingerprint()`` (like
    :class:`~repro.noise.noise_model.NoiseModel`) get cacheable noise
    plans; anything else still lowers, just uncached.
    """
    fingerprint = getattr(noise_model, "fingerprint", None)
    if fingerprint is None:
        return None
    value = fingerprint() if callable(fingerprint) else fingerprint
    return str(value)


def _maybe_verify(plan: NoisePlan, circuit: QuantumCircuit, noise_model) -> None:
    """Run the Tier-1 noise-plan verifier when ``REPRO_VERIFY=1``.

    Mirrors the :class:`~repro.compiler.passes.VerifyPlan` pipeline pass
    for the noisy lowering path (noise plans never pass through a
    :class:`~repro.compiler.passes.Pipeline`). Verification happens at
    build time only — cache hits return already-verified plans.
    """
    from repro.compiler.passes import verification_enabled

    if not verification_enabled():
        return
    from repro.analysis.verify import PlanVerificationError, verify_noise_plan

    report = verify_noise_plan(plan, circuit, noise_model)
    if report.has_errors:
        raise PlanVerificationError(report, context=f"noise plan of {circuit.name}")


def compile_noise_plan(
    circuit: QuantumCircuit,
    noise_model,
    *,
    fusion: Optional[bool] = None,
    cache: bool = True,
) -> NoisePlan:
    """Compile a (circuit, noise model) pair into a cached, fused plan.

    ``fusion`` defaults to the ``REPRO_FUSION`` environment switch, like
    the noiseless :func:`~repro.compiler.api.compile_plan`. Caching
    requires the noise model to expose a content ``fingerprint()``.
    """
    fuse = fusion_enabled() if fusion is None else bool(fusion)
    model_fingerprint = noise_fingerprint(noise_model)

    def build(key: Optional[str] = None) -> NoisePlan:
        plan = lower_noise_plan(circuit, noise_model, key=key)
        plan = fuse_noise_plan(plan) if fuse else plan
        _maybe_verify(plan, circuit, noise_model)
        return plan

    if not cache or model_fingerprint is None:
        return build()
    key = "noise:" + circuit_fingerprint(
        circuit,
        extra=(model_fingerprint, "fused" if fuse else "raw"),
    )
    return PLAN_CACHE.get_or_build(key, lambda: build(key))
