"""The unified compiler pipeline: staged lowering, fusion, plan caching.

Every execution layer in the repo compiles circuits through this package:

* :func:`compile_plan` — circuit -> :class:`GatePlan` through the default
  pipeline (lowering + static-gate fusion), keyed in a shared LRU cache;
* :func:`transpile_then_compile` — the device-aware entry point (layout,
  routing, native-basis translation absorbed from ``repro.transpiler`` as
  pipeline passes, then lowering + fusion);
* :func:`compile_noise_plan` — (circuit, noise model) ->
  :class:`NoisePlan`, the channel-aware IR of the noisy-execution engine
  (fusion between channel sites, unitary absorption, pre-stacked Kraus +
  per-site superoperators), cached under circuit + noise fingerprints;
* :class:`Pipeline` / the pass classes — for building custom pipelines.

The workload shape this serves is the paper's: thousands of re-evaluations
of the *same* ansatz under shifting transient noise. Everything above the
gate loop is compile-once-bind-many — binding a parameter vector is one
NumPy affine map, and repeated ``run_circuit`` / figure / fleet
invocations hit the plan cache instead of recompiling.

Knobs: ``REPRO_FUSION=0`` disables fusion (parity debugging);
``REPRO_PLAN_CACHE=<n>`` sizes the LRU (0 disables caching);
``REPRO_VERIFY=1`` appends the :class:`VerifyPlan` static-verification
pass (see :mod:`repro.analysis`) to every pipeline — always-on in tests.
"""

from repro.compiler.api import (
    DeviceCompilation,
    compile_plan,
    transpile_then_compile,
)
from repro.compiler.cache import (
    PLAN_CACHE,
    PlanCache,
    circuit_fingerprint,
    clear_plan_cache,
    fusion_enabled,
    plan_cache_capacity,
    plan_cache_stats,
)
from repro.compiler.ir import GatePlan, PlanOp, lower_program
from repro.compiler.noise_plan import (
    ChannelOp,
    NoisePlan,
    compile_noise_plan,
    fuse_noise_plan,
    lower_noise_plan,
    noise_fingerprint,
)
from repro.compiler.passes import (
    CompilationUnit,
    FuseStaticGates,
    LowerToPlan,
    Pass,
    Pipeline,
    RouteCircuit,
    SelectLayout,
    TranslateToBasis,
    TrimIdleWires,
    VerifyPlan,
    default_pipeline,
    device_pipeline,
    fuse_plan,
    verification_enabled,
)

__all__ = [
    "DeviceCompilation",
    "compile_plan",
    "transpile_then_compile",
    "PLAN_CACHE",
    "PlanCache",
    "circuit_fingerprint",
    "clear_plan_cache",
    "fusion_enabled",
    "plan_cache_capacity",
    "plan_cache_stats",
    "GatePlan",
    "PlanOp",
    "lower_program",
    "ChannelOp",
    "NoisePlan",
    "compile_noise_plan",
    "fuse_noise_plan",
    "lower_noise_plan",
    "noise_fingerprint",
    "CompilationUnit",
    "FuseStaticGates",
    "LowerToPlan",
    "Pass",
    "Pipeline",
    "RouteCircuit",
    "SelectLayout",
    "TranslateToBasis",
    "TrimIdleWires",
    "VerifyPlan",
    "default_pipeline",
    "device_pipeline",
    "fuse_plan",
    "verification_enabled",
]
