"""The shared plan cache and compile-time knobs.

The paper's workload is thousands of re-evaluations of the *same* ansatz,
so compilation must happen once per circuit structure, not once per run.
Every entry point in :mod:`repro.compiler.api` keys its output by a
content hash of the circuit (gate names, qubit operands, and either the
literal float parameters or the positional affine map of symbolic ones)
plus the pipeline configuration, and stores it in one process-wide LRU —
shared by ``run_circuit``, the figure benchmarks, and the fleet's worker
threads alike.

Knobs (see the README's consolidated ``REPRO_*`` table):

* ``REPRO_FUSION=0`` — kill switch for static-gate fusion (parity
  debugging; fused and unfused execution agree to <= 1e-12);
* ``REPRO_PLAN_CACHE=<n>`` — LRU capacity (default 256; ``0`` disables
  caching entirely).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameter import Parameter, ParameterExpression
from repro.faults.inject import InjectedFault, INJECTOR
from repro.obs import METRICS

DEFAULT_PLAN_CACHE_CAPACITY = 256

#: Sentinel distinguishing "no cache entry" from any cached value.
_MISSING = object()


def fusion_enabled() -> bool:
    """Whether static-gate fusion is on (``REPRO_FUSION`` kill switch).

    ``REPRO_FUSION=0`` (or ``off``/``false``/``no``) disables fusion so
    plans execute their source gates one by one — the escape hatch for
    isolating fused-vs-unfused numeric differences.
    """
    value = os.environ.get("REPRO_FUSION", "").strip().lower()
    return value not in ("0", "off", "false", "no")


def plan_cache_capacity() -> int:
    """LRU capacity from ``REPRO_PLAN_CACHE`` (``<= 0`` disables caching)."""
    value = os.environ.get("REPRO_PLAN_CACHE", "").strip()
    if not value:
        return DEFAULT_PLAN_CACHE_CAPACITY
    try:
        return int(value)
    except ValueError:
        return DEFAULT_PLAN_CACHE_CAPACITY


class PlanCache:
    """A thread-safe content-hash-keyed LRU for compiled artifacts.

    Thread safety matters: the fleet runs one worker thread per device and
    all of them compile through this one cache. The capacity is re-read
    from the environment on every insert so tests (and operators) can
    resize or disable it without rebuilding the singleton.
    """

    def __init__(self, capacity: Optional[int] = None, name: Optional[str] = None):
        self._fixed_capacity = capacity
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        #: Metric family for unprefixed keys.  The shared ``PLAN_CACHE``
        #: leaves this unset and derives the family from the key prefix
        #: instead (``plan:`` / ``device:`` / ``noise:``), so plan-cache
        #: and noise-plan-cache traffic stay separately countable.
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _metric_family(self, key: str) -> str:
        head, sep, _ = key.partition(":")
        if sep and head and not self.name:
            return head
        return self.name or "plan"

    @property
    def capacity(self) -> int:
        if self._fixed_capacity is not None:
            return self._fixed_capacity
        return plan_cache_capacity()

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_build(self, key: str, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on a miss.

        ``build`` runs outside the lock only on the thread that missed;
        a concurrent miss on the same key may build twice, but the second
        insert wins and both results are structurally identical (builds
        are pure functions of the key's content).
        """
        capacity = self.capacity
        family = self._metric_family(key)
        try:
            INJECTOR.fire("cache.plan.get", run_id=key)
        except InjectedFault:
            # Cache unavailable: degrade to a rebuild (a miss), never
            # fail the caller — builds are pure functions of the key.
            with self._lock:
                self.misses += 1
            METRICS.counter(f"cache.{family}.misses").inc()
            METRICS.counter(f"cache.{family}.faults").inc()
            return build()
        if capacity <= 0:
            with self._lock:
                self.misses += 1
            METRICS.counter(f"cache.{family}.misses").inc()
            return build()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                value = self._entries[key]
            else:
                self.misses += 1
                value = _MISSING
        if value is not _MISSING:
            METRICS.counter(f"cache.{family}.hits").inc()
            return value
        METRICS.counter(f"cache.{family}.misses").inc()
        value = build()
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            METRICS.counter(f"cache.{family}.evictions").inc(evicted)
        return value

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


#: The process-wide cache every compile entry point shares.
PLAN_CACHE = PlanCache()


def plan_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the shared plan cache."""
    return PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters."""
    PLAN_CACHE.clear()


def circuit_fingerprint(
    circuit: QuantumCircuit,
    parameters: Optional[Sequence[Parameter]] = None,
    extra: Iterable[object] = (),
) -> str:
    """Content hash of a circuit's structure.

    Symbolic parameters hash by *position* in the given ordering (plus
    their affine coefficients), not by object identity — two structurally
    identical ansatz instances therefore share one cached plan. ``extra``
    folds pipeline configuration (fusion flag, device fingerprint, ...)
    into the key.
    """
    if parameters is None:
        parameters = circuit.parameters
    parameters = tuple(parameters)
    index_of = {param: i for i, param in enumerate(parameters)}
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{circuit.num_qubits}|{len(parameters)}".encode())
    for item in extra:
        digest.update(f"|{item}".encode())
    for inst in circuit:
        digest.update(f"|{inst.name}:{','.join(map(str, inst.qubits))}".encode())
        for param in inst.params:
            if isinstance(param, ParameterExpression):
                index = index_of.get(param.parameter)
                if index is None:
                    raise KeyError(
                        f"parameter {param.parameter.name!r} missing from "
                        "parameter ordering"
                    )
                digest.update(f"|p{index}:{param.coeff!r}:{param.offset!r}".encode())
            else:
                digest.update(f"|f{float(param)!r}".encode())
    return digest.hexdigest()


def coupling_fingerprint(coupling) -> str:
    """Content hash of a coupling map (qubit count plus sorted edge list)."""
    edges: Tuple[Tuple[int, int], ...] = tuple(coupling.edges)
    digest = hashlib.blake2b(digest_size=8)
    digest.update(f"{coupling.num_qubits}|{edges}".encode())
    return digest.hexdigest()
