"""Staged lowering passes and the :class:`Pipeline` that runs them.

A pipeline carries a :class:`CompilationUnit` through explicit stages:

1. **circuit-level** device lowering — layout selection, swap routing and
   native-basis translation, absorbed from :mod:`repro.transpiler` as
   passes (:class:`SelectLayout`, :class:`RouteCircuit`,
   :class:`TranslateToBasis`);
2. **lowering** — :class:`LowerToPlan` turns the circuit into the
   structure-of-arrays :class:`~repro.compiler.ir.GatePlan` IR;
3. **plan-level** optimization — :class:`FuseStaticGates` multiplies
   adjacent static gates on shared (<= ``max_support``-qubit) supports
   into single matrices, which collapses the rz-sx-rz-sx-rz runs that
   native-basis translation produces into one 2x2 matrix each.

Fusion is semantics-preserving by construction: a static gate merges into
the *most recent* op only when that op was the last to touch every one of
the gate's qubits, so any op between the two acts on disjoint qubits of
the gate (it may share qubits with the merge target's other operands, but
the expanded gate acts as identity there and commutes through). Fused and
unfused execution agree to <= 1e-12 — floating-point reassociation only.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameter import Parameter
from repro.circuits.program import compile_circuit
from repro.compiler.ir import GatePlan, PlanOp, lower_program
from repro.obs import METRICS, TRACER
from repro.transpiler.basis import translate_to_basis
from repro.transpiler.layout import (
    Layout,
    apply_layout,
    linear_chain_layout,
    trivial_layout,
)
from repro.transpiler.routing import route_circuit

#: Largest qubit support a fused matrix may span (4x4 matrices).
MAX_FUSION_SUPPORT = 2


@dataclass
class CompilationUnit:
    """Mutable state a pipeline threads through its passes."""

    circuit: QuantumCircuit
    parameters: Optional[Tuple[Parameter, ...]] = None
    coupling: Optional[object] = None
    plan: Optional[GatePlan] = None
    layout: Optional[Layout] = None
    final_permutation: Optional[Dict[int, int]] = None
    num_swaps: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)


def _gate_count(unit: CompilationUnit) -> int:
    """Gate count of the unit's current representation (plan wins)."""
    if unit.plan is not None:
        return len(unit.plan.ops)
    return len(unit.circuit)


class Pass:
    """Base class: one named transformation of a :class:`CompilationUnit`."""

    name = "pass"

    def run(self, unit: CompilationUnit) -> CompilationUnit:
        raise NotImplementedError


class Pipeline:
    """An explicit ordered list of passes."""

    def __init__(self, passes: Sequence[Pass], name: str = "pipeline"):
        self.passes = tuple(passes)
        self.name = name

    def run(self, unit: CompilationUnit) -> CompilationUnit:
        tracer = TRACER
        if not tracer.enabled:
            for pipeline_pass in self.passes:
                unit = pipeline_pass.run(unit)
            return unit
        with tracer.span(
            f"compile.{self.name}", category="compile",
            qubits=unit.circuit.num_qubits,
        ):
            for pipeline_pass in self.passes:
                before = _gate_count(unit)
                with tracer.span(
                    f"compile.{pipeline_pass.name}", category="compile",
                    gates_before=before,
                ) as span:
                    unit = pipeline_pass.run(unit)
                    span.set(gates_after=_gate_count(unit))
        return unit

    def compile(
        self,
        circuit: QuantumCircuit,
        parameters: Optional[Sequence[Parameter]] = None,
        coupling=None,
    ) -> GatePlan:
        """Run the pipeline and return the resulting plan."""
        unit = self.run(
            CompilationUnit(
                circuit=circuit,
                parameters=tuple(parameters) if parameters is not None else None,
                coupling=coupling,
            )
        )
        if unit.plan is None:
            raise RuntimeError(
                f"pipeline {self.name!r} produced no plan; add a LowerToPlan pass"
            )
        return unit.plan

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.passes)
        return f"Pipeline({self.name!r}: [{names}])"


# -- circuit-level device passes (absorbed from repro.transpiler) --------------


class SelectLayout(Pass):
    """Place virtual qubits onto physical ones (chain or trivial)."""

    name = "select-layout"

    def __init__(self, method: str = "chain"):
        if method not in ("chain", "trivial"):
            raise ValueError(f"unknown layout method {method!r}")
        self.method = method

    def run(self, unit: CompilationUnit) -> CompilationUnit:
        if unit.coupling is None:
            raise ValueError("SelectLayout requires a coupling map")
        if self.method == "chain":
            unit.layout = linear_chain_layout(unit.circuit, unit.coupling)
        else:
            unit.layout = trivial_layout(unit.circuit, unit.coupling)
        unit.circuit = apply_layout(unit.circuit, unit.layout)
        return unit


class RouteCircuit(Pass):
    """Insert SWAPs so two-qubit gates act on coupled qubits."""

    name = "route"

    def run(self, unit: CompilationUnit) -> CompilationUnit:
        if unit.coupling is None:
            raise ValueError("RouteCircuit requires a coupling map")
        unit.circuit, unit.final_permutation = route_circuit(
            unit.circuit, unit.coupling
        )
        unit.num_swaps = unit.circuit.count_ops().get("swap", 0)
        return unit


class TranslateToBasis(Pass):
    """Rewrite gates into the IBM native set {rz, sx, x, cx}."""

    name = "basis-translation"

    def run(self, unit: CompilationUnit) -> CompilationUnit:
        unit.circuit = translate_to_basis(unit.circuit)
        return unit


class TrimIdleWires(Pass):
    """Drop device qubits the routed circuit never touches.

    A 3-qubit ansatz laid out on a 27-qubit machine must not execute (or
    simulate!) at width 27 — a density matrix at that width is ``4**27``
    complex entries. This pass relabels the circuit onto its *live*
    qubits (gate supports plus every logical qubit's final position) and
    records ``logical_positions`` — where each logical qubit sits in the
    trimmed circuit at measurement time — in the unit metadata.

    Runs after :class:`RouteCircuit` (it needs the layout and the final
    permutation) and before lowering.
    """

    name = "trim-idle-wires"

    def run(self, unit: CompilationUnit) -> CompilationUnit:
        if unit.layout is None:
            raise ValueError("TrimIdleWires requires a layout (run SelectLayout)")
        circuit = unit.circuit
        permutation = unit.final_permutation or {}
        touched = {
            q
            for inst in circuit
            if inst.name != "barrier"
            for q in inst.qubits
        }
        logical_end = [
            permutation.get(unit.layout.physical(v), unit.layout.physical(v))
            for v in unit.layout.virtual_qubits()
        ]
        keep = sorted(touched | set(logical_end))
        index = {q: i for i, q in enumerate(keep)}
        trimmed = QuantumCircuit(max(1, len(keep)), name=circuit.name)
        for inst in circuit:
            mapped = tuple(index[q] for q in inst.qubits if q in index)
            if inst.name == "barrier":
                if mapped:
                    trimmed.barrier(*mapped)
                continue
            trimmed.append(inst.name, mapped, inst.params)
        unit.circuit = trimmed
        unit.metadata["logical_positions"] = tuple(index[p] for p in logical_end)
        # Trimmed index -> physical device qubit, consumed by result
        # bookkeeping and the coupling-conformance verifier.
        unit.metadata["trimmed_physical_qubits"] = tuple(keep)
        return unit


# -- lowering and plan-level passes --------------------------------------------


class LowerToPlan(Pass):
    """Lower the circuit to the SoA :class:`GatePlan` IR."""

    name = "lower"

    def run(self, unit: CompilationUnit) -> CompilationUnit:
        program = compile_circuit(unit.circuit, unit.parameters)
        unit.plan = lower_program(program)
        return unit


class FuseStaticGates(Pass):
    """Multiply adjacent static gates on shared supports into one matrix."""

    name = "fuse-static"

    def __init__(self, max_support: int = MAX_FUSION_SUPPORT):
        if max_support < 1:
            raise ValueError("max_support must be >= 1")
        self.max_support = max_support

    def run(self, unit: CompilationUnit) -> CompilationUnit:
        if unit.plan is None:
            raise ValueError("FuseStaticGates requires a lowered plan")
        before = len(unit.plan.ops)
        unit.plan = fuse_plan(unit.plan, max_support=self.max_support)
        # Fusion efficacy as a metric, not folklore: total ops folded
        # away by static fusion, process-wide.
        METRICS.counter("compile.fusion.ops_before").inc(before)
        METRICS.counter("compile.fusion.ops_after").inc(len(unit.plan.ops))
        return unit


def _expand_matrix(
    matrix: np.ndarray, qubits: Tuple[int, ...], union: Tuple[int, ...]
) -> np.ndarray:
    """Embed a gate matrix on ``qubits`` into the larger ``union`` support."""
    if qubits == union:
        return matrix
    k = len(union)
    extras = tuple(q for q in union if q not in qubits)
    # kron appends identity axes after the gate's own: axis order is
    # (qubits..., extras...); permute tensor axes into union order.
    full = np.kron(matrix, np.eye(2 ** len(extras), dtype=complex))
    order = qubits + extras
    perm = tuple(order.index(q) for q in union)
    tensor = full.reshape((2,) * (2 * k))
    tensor = np.transpose(tensor, axes=perm + tuple(k + p for p in perm))
    return np.ascontiguousarray(tensor.reshape(2**k, 2**k))


def fuse_static_ops(
    ops: Sequence[PlanOp], num_qubits: int, max_support: int = MAX_FUSION_SUPPORT
) -> Tuple[PlanOp, ...]:
    """Greedy adjacent static-gate fusion over a plan's op list.

    A static op merges into the most recent emitted op when (a) that op
    was the last to touch *every* qubit of the new op (or the qubit is so
    far untouched), (b) it is itself static, and (c) the union support
    stays within ``max_support`` qubits. Parameterized ops act as fusion
    barriers on their qubits.
    """
    fused: List[PlanOp] = []
    last_touch = [-1] * num_qubits

    for op in ops:
        if op.matrix is not None:
            owners = {last_touch[q] for q in op.qubits}
            owners.discard(-1)
            if len(owners) == 1:
                target_index = owners.pop()
                target = fused[target_index]
                union = target.qubits + tuple(
                    q for q in op.qubits if q not in target.qubits
                )
                if target.matrix is not None and len(union) <= max_support:
                    product = _expand_matrix(op.matrix, op.qubits, union) @ (
                        _expand_matrix(target.matrix, target.qubits, union)
                    )
                    fused[target_index] = PlanOp(union, matrix=product)
                    for q in op.qubits:
                        last_touch[q] = target_index
                    continue
        fused.append(op)
        index = len(fused) - 1
        for q in op.qubits:
            last_touch[q] = index

    return tuple(fused)


def fuse_plan(plan: GatePlan, max_support: int = MAX_FUSION_SUPPORT) -> GatePlan:
    """A fused copy of ``plan`` (shares the SoA parameter tables)."""
    if plan.fused:
        return plan
    fused_ops = fuse_static_ops(plan.ops, plan.num_qubits, max_support)
    return GatePlan(
        plan.num_qubits,
        fused_ops,
        plan.parameters,
        plan.param_indices,
        plan.coeffs,
        plan.offsets,
        plan.slot_gate_names,
        source_gate_counts=plan.source_gate_counts,
        fused=True,
        key=plan.key,
    )


class VerifyPlan(Pass):
    """Statically verify the lowered plan (opt-in, ``REPRO_VERIFY=1``).

    Runs the Tier-1 verifiers of :mod:`repro.analysis.verify` over the
    compilation unit — plan structure, affine-map completeness, unitarity
    of every (possibly fused) static matrix, and, on device pipelines,
    post-routing coupling/basis/measurement conformance. Error-severity
    diagnostics raise :class:`~repro.analysis.verify.
    PlanVerificationError` so a corrupted plan never reaches a simulator.
    """

    name = "verify"

    def __init__(self, atol: Optional[float] = None):
        self.atol = atol

    def run(self, unit: CompilationUnit) -> CompilationUnit:
        # Imported lazily: repro.analysis depends on the compiler IR.
        from repro.analysis.verify import (
            DEFAULT_ATOL,
            PlanVerificationError,
            verify_compilation_unit,
        )

        report = verify_compilation_unit(
            unit, atol=self.atol if self.atol is not None else DEFAULT_ATOL
        )
        if report.has_errors:
            raise PlanVerificationError(report, context=unit.circuit.name)
        return unit


def verification_enabled() -> bool:
    """Whether pipelines append :class:`VerifyPlan` (``REPRO_VERIFY=1``).

    Kept in sync with :func:`repro.analysis.verify.verification_enabled`
    without importing the analysis package at pipeline-construction time.
    """
    value = os.environ.get("REPRO_VERIFY", "").strip().lower()
    return value in ("1", "on", "true", "yes")


def default_pipeline(fusion: bool = True) -> Pipeline:
    """The standard simulation pipeline: lower, then (optionally) fuse."""
    passes: List[Pass] = [LowerToPlan()]
    if fusion:
        passes.append(FuseStaticGates())
    if verification_enabled():
        passes.append(VerifyPlan())
    return Pipeline(passes, name="default")


def device_pipeline(layout_method: str = "chain", fusion: bool = True) -> Pipeline:
    """The device-aware pipeline: layout, route, trim, basis, lower, fuse."""
    passes: List[Pass] = [
        SelectLayout(layout_method),
        RouteCircuit(),
        TrimIdleWires(),
        TranslateToBasis(),
        LowerToPlan(),
    ]
    if fusion:
        passes.append(FuseStaticGates())
    if verification_enabled():
        passes.append(VerifyPlan())
    return Pipeline(passes, name=f"device-{layout_method}")
