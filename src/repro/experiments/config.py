"""Experiment scale configuration.

Paper-scale runs (2000 SPSA iterations x 6 apps x 5 schemes) take a while;
by default benchmarks run a reduced, shape-preserving scale. Set
``REPRO_FULL=1`` to reproduce the paper's iteration counts exactly.
"""

from __future__ import annotations

import os


def is_full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")


def default_iterations(paper_scale: int, reduced_scale: int = None) -> int:
    """Pick the iteration count for an experiment.

    ``reduced_scale`` defaults to ``paper_scale // 5`` bounded to at least
    120 iterations so convergence shape is still visible.
    """
    if is_full_scale():
        return paper_scale
    if reduced_scale is not None:
        return reduced_scale
    return max(120, paper_scale // 5)
