"""Per-figure data builders.

One function per paper figure; each returns a plain dict of series and
summary rows so the benchmark harness (and tests) can print/assert the
same quantities the paper reports. All builders are deterministic given a
seed and scale with ``REPRO_FULL``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.circuits.library import layered_cx_circuit
from repro.experiments.config import default_iterations
from repro.experiments.metrics import tail_energy
from repro.experiments.registry import APPLICATIONS, get_app, machine_app
from repro.experiments.runner import geomean_improvements, run_comparison
from repro.experiments.schemes import build_vqe
from repro.noise.noise_model import NoiseModel
from repro.noise.transient.t1_model import T1FluctuationModel, t1_to_error_fraction
from repro.noise.transient.trace_generator import profile_for_machine
from repro.runtime import ExperimentPlan, RunSpec, default_executor
from repro.store.query import RunQuery
from repro.store.store import ExperimentStore, open_store
from repro.utils.rng import derive_seed
from repro.utils.stats import relative_variation
from repro.vqa.objective import EnergyObjective


def _result_store(executor) -> Optional[ExperimentStore]:
    """The experiment store an executor already writes through, if any."""
    for attr in ("results", "store"):
        candidate = getattr(executor, attr, None)
        if isinstance(candidate, ExperimentStore):
            return candidate
    return None


@contextmanager
def _recorded(executor, specs: Sequence[RunSpec]):
    """Execute ``specs`` and expose them through the store query API.

    Yields ``(store, query)`` after recording the results: in the
    executor's own store when it has one (``CachedExecutor``/fleet —
    where they already landed; ``append`` is a dedupe no-op then) or in
    :func:`repro.store.open_store` otherwise. The figure builders read
    result data exclusively through this store + :class:`RunQuery` pair.
    """
    runs = executor.run(list(specs))
    store = _result_store(executor)
    own = store is None
    if own:
        store = open_store()
    store.append_many(runs)
    try:
        yield store, RunQuery(run_ids=[spec.run_id for spec in specs])
    finally:
        if own:
            store.close()


def _cell(comparisons: Dict, app_name: str):
    for (name, _seed, _scale), comp in comparisons.items():
        if name == app_name:
            return comp
    raise KeyError(f"no stored runs for app {app_name!r}")


# ---------------------------------------------------------------------------
# Fig. 3 — device-level T1 transients over 65 hours
# ---------------------------------------------------------------------------

def fig3_t1_transients(hours: float = 65.0, seed: int = 9) -> Dict:
    """T1-vs-time series with TLS dips (the circled outliers)."""
    model = T1FluctuationModel()
    times, t1 = model.sample_hours(hours, seed=seed)
    return {
        "times_hours": times,
        "t1_us": t1,
        "baseline_us": model.baseline_us,
        "mean_t1_us": float(np.mean(t1)),
        "min_t1_us": float(np.min(t1)),
        "outliers_below_half_baseline": model.outlier_count(t1, 0.5),
    }


# ---------------------------------------------------------------------------
# Fig. 4 — circuit-level fidelity variation over 45 hours
# ---------------------------------------------------------------------------

def _circuit_fidelity_series(
    num_qubits: int,
    cx_layers: int,
    hours: int,
    seed: int,
    two_qubit_error: float = 0.007,
    single_qubit_error: float = 0.0004,
    readout_error: float = 0.015,
) -> Dict:
    """Hourly-batch mean fidelity of one circuit under transient T1 dips.

    Fidelity = static survival probability (gates + readout) modulated by
    the excess decay the current T1 level implies; deeper circuits spend
    longer decohering, so the same T1 dip costs them disproportionately
    (paper Section 3.2).
    """
    circuit = layered_cx_circuit(num_qubits, cx_layers, seed=seed)
    noise = NoiseModel(
        single_qubit_error=single_qubit_error, two_qubit_error=two_qubit_error
    )
    static_fidelity = noise.survival_factor(circuit) * (
        1.0 - readout_error
    ) ** num_qubits

    model = T1FluctuationModel(baseline_us=70.0)
    _, t1 = model.sample_hours(hours, seed=seed)
    # Circuit duration grows with CX depth (~300 ns per layer).
    duration_us = 0.3 * cx_layers
    excess = t1_to_error_fraction(t1, duration_us, model.baseline_us)
    hourly = static_fidelity * np.clip(1.0 - excess, 0.0, 1.0)
    # Average each hour's samples into one batch point (the paper's
    # 140-circuit batches).
    per_hour = max(1, len(hourly) // hours)
    batches = np.array(
        [np.mean(hourly[i * per_hour : (i + 1) * per_hour]) for i in range(hours)]
    )
    return {
        "batch_fidelity": batches,
        "mean_fidelity": float(np.mean(batches)),
        "variation": relative_variation(batches),
        "static_fidelity": float(static_fidelity),
    }


def fig4_circuit_fidelity(hours: int = 45, seed: int = 10) -> Dict:
    """Shallow (4q/6CX) vs deep (8q/50CX) circuit fidelity variation."""
    shallow = _circuit_fidelity_series(4, 6, hours, seed)
    deep = _circuit_fidelity_series(8, 50, hours, seed + 1)
    return {"shallow": shallow, "deep": deep}


# ---------------------------------------------------------------------------
# Fig. 5 — severe transient impact on a long VQA run
# ---------------------------------------------------------------------------

def fig5_vqa_transient_impact(
    seed: int = 23, iterations: Optional[int] = None, executor=None
) -> Dict:
    """Baseline VQA on a turbulent (Jakarta-like) trace: spikes and
    stagnation (expectation at iteration ~20 % vs the end)."""
    iterations = iterations or default_iterations(500, 250)
    app = get_app("App6")
    comp = run_comparison(
        app, ["baseline"], iterations=iterations, seed=seed, trace_scale=1.5,
        executor=executor,
    )
    result = comp.results["baseline"]
    energies = result.machine_energies
    early_index = max(1, int(0.2 * len(energies)))
    spike_threshold = np.median(energies) + 3.0 * np.std(
        energies[: early_index]
    )
    spikes = int(np.sum(energies > spike_threshold))
    return {
        "machine_energies": energies,
        "true_energies": result.true_energies,
        "energy_at_20pct": float(energies[early_index]),
        "energy_final": float(energies[-1]),
        "num_upward_spikes": spikes,
    }


# ---------------------------------------------------------------------------
# Fig. 10 — sweeping the transient magnitude (0 - 50 %)
# ---------------------------------------------------------------------------

def fig10_transient_sweep(
    fractions: Sequence[float] = (0.0, 0.025, 0.125, 0.20, 0.25, 0.50),
    seed: int = 5,
    iterations: Optional[int] = None,
    executor=None,
) -> Dict:
    """Baseline VQA at increasing transient magnitude; accuracy degrades
    monotonically (up to run noise).

    Expanded into one spec per magnitude and executed in a single
    fan-out: the sweep parallelizes across cores under a parallel
    executor.
    """
    iterations = iterations or default_iterations(2000, 400)
    app = get_app("App1")
    specs: List[RunSpec] = []
    for fraction in fractions:
        if fraction == 0.0:
            specs.append(
                RunSpec(app=app, scheme="static-only", iterations=iterations, seed=seed)
            )
        else:
            # Normalize so the profile's typical spike equals the requested
            # fraction of the estimation magnitude.
            scale = fraction / profile_for_machine(app.machine).spike_magnitude
            specs.append(
                RunSpec(
                    app=app, scheme="baseline", iterations=iterations,
                    seed=seed, trace_scale=scale,
                )
            )
    runs = (executor or default_executor()).run(specs)
    finals = [tail_energy(run.result) for run in runs]
    return {"fractions": list(fractions), "final_energies": finals}


# ---------------------------------------------------------------------------
# Figs. 11/12/13 — machine runs: QISMET vs baseline
# ---------------------------------------------------------------------------

# Per-machine iteration counts from the paper's Fig. 13 secondary axis.
MACHINE_ITERATIONS = {
    "guadalupe": 270,
    "toronto": 450,
    "sydney": 350,
    "casablanca": 220,
    "jakarta": 320,
    "mumbai": 330,
}


def _machine_iterations(machine: str, iterations: Optional[int]) -> int:
    paper_iterations = MACHINE_ITERATIONS.get(machine.lower(), 300)
    return iterations or default_iterations(paper_iterations, paper_iterations)


def _machine_row(machine: str, iterations: int, comp) -> Dict:
    ratio = comp.improvements()["qismet"]
    return {
        "machine": machine.lower(),
        "iterations": iterations,
        "baseline_energies": comp.results["baseline"].machine_energies,
        "qismet_energies": comp.results["qismet"].machine_energies,
        "improvement": ratio,
        "improvement_pct": (ratio - 1.0) * 100.0,
        "qismet_retries": comp.results["qismet"].total_retries,
    }


def machine_run(
    machine: str, seed: int = 17, iterations: Optional[int] = None, executor=None
) -> Dict:
    """Synchronous baseline-vs-QISMET comparison on one machine (Figs. 11/12)."""
    iterations = _machine_iterations(machine, iterations)
    comp = run_comparison(
        machine_app(machine), ["baseline", "qismet"],
        iterations=iterations, seed=seed, executor=executor,
    )
    return _machine_row(machine, iterations, comp)


def fig13_machines(
    seed: int = 17, iterations: Optional[int] = None, executor=None
) -> Dict:
    """QISMET improvement across six IBMQ machines + geometric mean.

    All machines' runs (6 machines x 2 schemes) are expanded up front and
    handed to one executor call, so a parallel executor fans the whole
    figure out across cores at once; the per-machine comparisons are then
    read back through the experiment store's query API.
    """
    its = {m: _machine_iterations(m, iterations) for m in MACHINE_ITERATIONS}
    specs = [
        RunSpec(app=machine_app(m), scheme=scheme, iterations=its[m], seed=seed)
        for m in MACHINE_ITERATIONS
        for scheme in ("baseline", "qismet")
    ]
    with _recorded(executor or default_executor(), specs) as (store, query):
        comparisons = store.comparisons(query)
    rows = {
        m: _machine_row(m, its[m], _cell(comparisons, f"machine:{m}"))
        for m in MACHINE_ITERATIONS
    }
    ratios = [row["improvement"] for row in rows.values()]
    geomean = float(np.exp(np.mean(np.log(np.maximum(ratios, 1e-6)))))
    return {"machines": rows, "geomean_improvement": geomean}


def fig13_fleet(
    seed: int = 17,
    iterations: Optional[int] = None,
    db_path: Optional[str] = None,
    machines: Optional[Sequence[str]] = None,
    fleet_seed: int = 2023,
) -> Dict:
    """Fig. 13 rewired through the fleet scheduling service.

    The same 6-machine x 2-scheme grid as :func:`fig13_machines`, but
    submitted as jobs to ``repro.fleet``: the transient-aware scheduler
    routes each run across the simulated IBMQ fleet (deferring devices
    inside predicted transient windows, load-balancing otherwise) while
    the per-run numbers stay bit-identical to the serial build. The
    returned dict adds the scheduler's telemetry — per-device
    utilization, deferrals and throughput — next to the paper's
    improvement rows.
    """
    from repro.fleet import FleetExecutor

    its = {m: _machine_iterations(m, iterations) for m in MACHINE_ITERATIONS}
    specs = [
        RunSpec(app=machine_app(m), scheme=scheme, iterations=its[m], seed=seed)
        for m in MACHINE_ITERATIONS
        for scheme in ("baseline", "qismet")
    ]
    with FleetExecutor(
        machines=machines, db_path=db_path, seed=fleet_seed
    ) as executor:
        with _recorded(executor, specs) as (store, query):
            comparisons = store.comparisons(query)
            stored = store.query_runs(query)
        telemetry = executor.telemetry.snapshot()
        job_counts = executor.store.counts()
    rows = {
        m: _machine_row(m, its[m], _cell(comparisons, f"machine:{m}"))
        for m in MACHINE_ITERATIONS
    }
    ratios = [row["improvement"] for row in rows.values()]
    geomean = float(np.exp(np.mean(np.log(np.maximum(ratios, 1e-6)))))
    stored_per_device: Dict[str, int] = {}
    for run in stored:
        device = run.device or "-"
        stored_per_device[device] = stored_per_device.get(device, 0) + 1
    return {
        "machines": rows,
        "geomean_improvement": geomean,
        "fleet": {
            "devices_used": telemetry["devices_used"],
            "total_deferrals": telemetry["total_deferrals"],
            "throughput_jobs_per_tick": telemetry["throughput_jobs_per_tick"],
            "per_device": {
                name: counters
                for name, counters in telemetry["devices"].items()
            },
            "job_counts": job_counts,
            "stored_runs_per_device": stored_per_device,
        },
    }


# ---------------------------------------------------------------------------
# Figs. 14/17 — scheme comparisons on the Table 1 applications
# ---------------------------------------------------------------------------

FIG17_SCHEMES = ("baseline", "qismet", "blocking", "resampling", "2nd-order", "kalman")


def fig14_spsa_schemes(
    seed: int = 13, iterations: Optional[int] = None, executor=None
) -> Dict:
    """App2, SPSA optimization schemes vs QISMET (paper Fig. 14)."""
    iterations = iterations or default_iterations(2000, 500)
    app = get_app("App2")
    comp = run_comparison(
        app,
        ("baseline", "qismet", "blocking", "resampling", "2nd-order"),
        iterations=iterations,
        seed=seed,
        executor=executor,
    )
    return {
        "iterations": iterations,
        "improvements": comp.improvements(),
        "final_energies": comp.final_energies(),
        "series": {name: r.true_energies for name, r in comp.results.items()},
    }


def fig17_main_results(
    seed: int = 13,
    iterations: Optional[int] = None,
    apps: Sequence[str] = tuple(sorted(APPLICATIONS)),
    schemes: Sequence[str] = FIG17_SCHEMES,
    executor=None,
) -> Dict:
    """The headline table: improvements per app per scheme + geomeans.

    Declared as one ``ExperimentPlan`` (apps x schemes) and executed in a
    single fan-out, so ``REPRO_EXECUTOR=parallel`` parallelizes the whole
    grid and ``REPRO_STORE``/``REPRO_CACHE_DIR`` makes repeated builds
    near-instant. Per-app improvements and the geomean row are read back
    through the experiment store's query/aggregate API (bit-identical to
    regrouping the executor results directly).
    """
    iterations = iterations or default_iterations(2000, 400)
    plan = ExperimentPlan(
        apps=tuple(apps), schemes=tuple(schemes),
        iterations=iterations, seeds=(seed,), name="fig17",
    )
    with _recorded(executor or default_executor(), plan.expand()) as (
        store, query,
    ):
        store.record_plan(plan)
        comparisons = store.comparisons(query)
        geomean = store.aggregate(query)
    per_app = {
        app_name: _cell(comparisons, app_name).improvements()
        for app_name in apps
    }
    return {
        "iterations": iterations,
        "per_app": per_app,
        "geomean": geomean,
    }


# ---------------------------------------------------------------------------
# Fig. 15 — the only-transients alternative (job-budgeted)
# ---------------------------------------------------------------------------

def fig15_only_transients(
    seed: int = 19,
    iterations: Optional[int] = None,
    skip_budgets: Sequence[float] = (0.01, 0.10, 0.20, 0.30, 0.50),
) -> Dict:
    """Magnitude-threshold skipping at various allowed skip fractions.

    Run under a fixed *job* budget: skipped work costs machine time, which
    is exactly why indiscriminate skipping delays convergence (Sec. 5.3).
    """
    iterations = iterations or default_iterations(2000, 400)
    app = get_app("App1")
    hamiltonian = app.build_hamiltonian()
    noise_model = NoiseModel.from_device(app.build_device())
    trace = app.build_trace(length=6 * iterations + 64, seed=seed)
    theta0 = app.build_ansatz().initial_point(
        seed=derive_seed(seed, "theta0:fig15")
    )
    job_budget = 3 * iterations

    rows: Dict[str, float] = {}
    base_objective = EnergyObjective(app.build_ansatz(), hamiltonian)
    baseline = build_vqe(
        "baseline", base_objective, trace, noise_model=noise_model,
        seed=derive_seed(seed, "fig15"), iterations_hint=iterations,
    )
    base_result = baseline.run(iterations, theta0=np.array(theta0), max_jobs=job_budget)
    rows["baseline"] = tail_energy(base_result)

    for budget in skip_budgets:
        objective = EnergyObjective(app.build_ansatz(), hamiltonian)
        vqe = build_vqe(
            "only-transients", objective, trace, noise_model=noise_model,
            seed=derive_seed(seed, "fig15"), iterations_hint=iterations,
            only_transients_skip_fraction=budget,
        )
        result = vqe.run(iterations, theta0=np.array(theta0), max_jobs=job_budget)
        label = f"{int(round((1 - budget) * 100))}p"
        rows[label] = tail_energy(result)
    return {"final_energies": rows, "job_budget": job_budget}


# ---------------------------------------------------------------------------
# Fig. 16 — Kalman filtering comparison
# ---------------------------------------------------------------------------

def fig16_kalman(
    seed: int = 31,
    iterations: Optional[int] = None,
    mv_values: Sequence[float] = (0.01, 0.1),
    t_values: Sequence[float] = (0.9, 0.99, 1.0),
    executor=None,
) -> Dict:
    """Kalman hyper-parameter grid vs baseline and QISMET on App6."""
    iterations = iterations or default_iterations(500, 300)
    app = get_app("App6")
    comp = run_comparison(
        app, ["baseline", "qismet"], iterations=iterations, seed=seed,
        executor=executor,
    )
    rows = {
        "baseline": tail_energy(comp.results["baseline"]),
        "qismet": tail_energy(comp.results["qismet"]),
    }
    ratios = {"baseline": 1.0, "qismet": comp.improvements()["qismet"]}

    # The hyper-parameter grid is a pure overrides sweep: one spec per
    # (MV, T) cell, executed in a single fan-out.
    base_tail = min(-1e-3, rows["baseline"])
    grid = [(mv, t) for mv in mv_values for t in t_values]
    grid_specs = [
        RunSpec(
            app=app, scheme="kalman", iterations=iterations, seed=seed,
            overrides={
                "kalman_transition": t, "kalman_measurement_variance": mv,
            },
        )
        for mv, t in grid
    ]
    for (mv, t), run in zip(grid, (executor or default_executor()).run(grid_specs)):
        label = f"kalman(MV={mv},T={t})"
        rows[label] = tail_energy(run.result)
        ratios[label] = min(-1e-3, rows[label]) / base_tail
    best_kalman = max(
        (v for k, v in ratios.items() if k.startswith("kalman")), default=0.0
    )
    return {
        "final_energies": rows,
        "improvements": ratios,
        "best_kalman_improvement": best_kalman,
        "qismet_improvement": ratios["qismet"],
    }


# ---------------------------------------------------------------------------
# Fig. 18 — H2 dissociation curve (multi-VQA, transient-only noise)
# ---------------------------------------------------------------------------

def fig18_h2_curve(
    seed: int = 41,
    iterations: Optional[int] = None,
    bond_lengths: Optional[Sequence[float]] = None,
) -> Dict:
    """Potential energy of H2 vs bond length: noise-free, baseline, QISMET.

    Mirrors the paper's setup: transient noise only (no static component);
    one independent VQE per bond length; QISMET should track the
    noise-free bell shape while the baseline deviates.
    """
    from repro.chemistry.h2 import dissociation_bond_lengths
    from repro.noise.transient.trace_generator import machine_trace
    from repro.vqa.multi_vqe import DissociationCurveRunner

    iterations = iterations or default_iterations(600, 200)
    if bond_lengths is None:
        bond_lengths = dissociation_bond_lengths(0.4, 2.0, 10)
        if iterations < 400:  # reduced scale: fewer geometries too
            bond_lengths = dissociation_bond_lengths(0.4, 2.0, 6)

    no_noise = NoiseModel.ideal()
    curves: Dict[str, List[float]] = {}
    for scheme in ("noise-free", "baseline", "qismet"):
        def factory(problem, objective, run_seed, _scheme=scheme):
            trace = machine_trace(
                "guadalupe", 5 * iterations + 64,
                derive_seed(seed, f"fig18:{run_seed}"),
            )
            return build_vqe(
                _scheme,
                objective,
                trace=None if _scheme == "noise-free" else trace,
                noise_model=no_noise,  # paper: transient noise only
                seed=derive_seed(seed, f"fig18:{_scheme}:{run_seed}"),
                iterations_hint=iterations,
            )

        runner = DissociationCurveRunner(
            vqe_factory=factory,
            ansatz_factory=lambda nq: RealAmplitudes(nq, reps=2),
            iterations=iterations,
        )
        points = runner.run(bond_lengths, seed=seed)
        curves[scheme] = [p.estimated_energy for p in points]
        fci = [p.fci_energy for p in points]

    def rms_vs_reference(values: Sequence[float], ref: Sequence[float]) -> float:
        return float(np.sqrt(np.mean((np.array(values) - np.array(ref)) ** 2)))

    reference = curves["noise-free"]
    return {
        "bond_lengths": list(map(float, bond_lengths)),
        "fci": fci,
        "curves": curves,
        "rms_error": {
            scheme: rms_vs_reference(values, reference)
            for scheme, values in curves.items()
        },
    }


# ---------------------------------------------------------------------------
# Fig. 19 — sweeping the QISMET error threshold (job-budgeted)
# ---------------------------------------------------------------------------

def fig19_threshold_sweep(
    seed: int = 37,
    iterations: Optional[int] = None,
    num_seeds: int = 2,
    executor=None,
) -> Dict:
    """Conservative (99p) / best (90p) / aggressive (75p) QISMET under low
    and high transient noise.

    Declared as one plan sweeping ``trace_scales`` x ``num_seeds`` seeds
    so both noise regimes execute in a single fan-out; per-regime numbers
    are seed-geomeans, which tames the single-run variance of the
    reduced-scale configuration.
    """
    iterations = iterations or default_iterations(1800, 400)
    plan = ExperimentPlan(
        apps=("App2",),
        schemes=("baseline", "qismet", "qismet-conservative", "qismet-aggressive"),
        iterations=iterations,
        seeds=tuple(seed + offset for offset in range(num_seeds)),
        trace_scales=(0.5, 2.0),
        name="fig19",
    )
    outcome = (executor or default_executor()).run_plan(plan)
    comparisons = outcome.comparisons()
    return {
        label: geomean_improvements(
            [comp for (_, _, scale_), comp in comparisons.items() if scale_ == scale]
        )
        for label, scale in (("low", 0.5), ("high", 2.0))
    }
