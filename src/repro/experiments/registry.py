"""The paper's Table 1: TFIM VQA applications for simulation.

| App  | Qubits | Ansatz | Reps | Machine + trial |
|------|--------|--------|------|-----------------|
| App1 | 6      | SU2    | 2    | Toronto (v1)    |
| App2 | 6      | RA     | 4    | Guadalupe (v1)  |
| App3 | 6      | RA     | 4    | Guadalupe (v2)  |
| App4 | 6      | SU2    | 4    | Toronto (v2)    |
| App5 | 6      | RA     | 8    | Cairo (v1)      |
| App6 | 6      | RA     | 8    | Casablanca (v1) |
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ansatz.base import Ansatz
from repro.ansatz.efficient_su2 import EfficientSU2
from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.devices.device import DeviceModel
from repro.devices.ibmq_fake import get_device
from repro.hamiltonians.tfim import tfim_exact_ground_energy, tfim_hamiltonian
from repro.noise.transient.trace import TransientTrace
from repro.operators.pauli_sum import PauliSum
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class AppConfig:
    """One Table 1 row."""

    name: str
    num_qubits: int
    ansatz_kind: str  # "SU2" or "RA"
    reps: int
    machine: str
    trial: str

    def build_ansatz(self) -> Ansatz:
        if self.ansatz_kind == "SU2":
            return EfficientSU2(self.num_qubits, reps=self.reps)
        if self.ansatz_kind == "RA":
            return RealAmplitudes(self.num_qubits, reps=self.reps)
        raise ValueError(f"unknown ansatz kind {self.ansatz_kind!r}")

    def build_hamiltonian(self) -> PauliSum:
        return tfim_hamiltonian(self.num_qubits, coupling=1.0, field=1.0)

    def ground_truth_energy(self) -> float:
        return tfim_exact_ground_energy(self.num_qubits, coupling=1.0, field=1.0)

    def build_device(self) -> DeviceModel:
        return get_device(self.machine)

    def build_trace(self, length: int, seed: int = 2023) -> TransientTrace:
        """The application's transient trace; trial v2 uses an independent
        seed stream from v1 (same machine, different observation window)."""
        device = self.build_device()
        trace_seed = derive_seed(seed, f"trace:{self.machine}:{self.trial}")
        return device.transient_trace(length, trace_seed, trial=self.trial)


APPLICATIONS: Dict[str, AppConfig] = {
    app.name: app
    for app in [
        AppConfig("App1", 6, "SU2", 2, "toronto", "v1"),
        AppConfig("App2", 6, "RA", 4, "guadalupe", "v1"),
        AppConfig("App3", 6, "RA", 4, "guadalupe", "v2"),
        AppConfig("App4", 6, "SU2", 4, "toronto", "v2"),
        AppConfig("App5", 6, "RA", 8, "cairo", "v1"),
        AppConfig("App6", 6, "RA", 8, "casablanca", "v1"),
    ]
}


def get_app(name: str) -> AppConfig:
    if name not in APPLICATIONS:
        raise KeyError(f"unknown app {name!r}; known: {sorted(APPLICATIONS)}")
    return APPLICATIONS[name]


def machine_app(machine: str, num_qubits: int = 6, reps: int = 4) -> AppConfig:
    """The Figs. 11-13 single-machine workload (6q TFIM, RA ansatz) on a
    named machine's trace; addressable from run specs as ``machine:<name>``."""
    return AppConfig(
        f"machine:{machine.lower()}", num_qubits, "RA", reps, machine.lower(), "v1"
    )


def app_names() -> List[str]:
    return [f"App{i}" for i in range(1, 7)]
