"""Scheme factory: the comparison points of the paper's Section 6.3.

Every scheme shares the same transient trace and static noise model for a
given application; only the mitigation strategy differs. Seeds are derived
per scheme so runs are deterministic but independent.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.ideal import IdealBackend
from repro.backends.transient import StaticNoiseBackend, TransientBackend
from repro.core.controller import QismetController
from repro.core.policies import (
    CFARPolicy,
    GradientFaithfulPolicy,
    OnlyTransientsPolicy,
)
from repro.core.thresholds import OnlinePercentileThreshold, RobustNoiseThreshold
from repro.filtering.kalman import KalmanFilteredBackend
from repro.noise.noise_model import NoiseModel
from repro.noise.transient.trace import TransientTrace
from repro.optimizers.spsa import (
    SPSA,
    BlockingSPSA,
    ResamplingSPSA,
    SecondOrderSPSA,
)
from repro.utils.rng import derive_rng, derive_seed
from repro.vqa.objective import EnergyObjective
from repro.vqa.vqe import VQE

SCHEME_NAMES = (
    "baseline",
    "qismet",
    "qismet-conservative",
    "qismet-aggressive",
    "blocking",
    "resampling",
    "2nd-order",
    "kalman",
    "only-transients",
    "cfar",
    "noise-free",
    "static-only",
)

# Skip-budget settings from the paper: best ~ 90p (skip <= 10 %),
# conservative 99p (<= 1 %), aggressive 75p (<= 25 %).
_QISMET_SKIP_BUDGETS = {
    "qismet": 0.10,
    "qismet-conservative": 0.01,
    "qismet-aggressive": 0.25,
}


def _spsa_seed(seed: int):
    # Scheme-independent: all schemes built from the same SPSA base seed
    # share the same SPSA perturbation sequence, giving paired comparisons
    # like the paper's synchronous baseline-vs-QISMET machine runs. The
    # runner passes a shared ``spsa_seed`` alongside per-scheme ``seed``s
    # so backend streams stay independent while perturbations stay paired.
    return derive_rng(seed, "spsa")


def build_vqe(
    scheme: str,
    objective: EnergyObjective,
    trace: Optional[TransientTrace],
    noise_model: Optional[NoiseModel] = None,
    shots: int = 4096,
    seed: int = 0,
    spsa_seed: Optional[int] = None,
    iterations_hint: int = 500,
    retry_budget: int = 5,
    only_transients_skip_fraction: float = 0.10,
    kalman_transition: float = 1.0,
    kalman_measurement_variance: float = 0.1,
    state_sensitivity: float = 0.1,
    spsa_trust_radius: Optional[float] = None,
) -> VQE:
    """Build a ready-to-run VQE for a named scheme.

    ``iterations_hint`` tunes SPSA's stability constant (Spall recommends
    ~10 % of the expected iteration count). ``trace`` may be ``None`` only
    for the noise-free and static-only schemes. ``spsa_seed`` (defaulting
    to ``seed``) seeds the SPSA perturbation stream separately from the
    backend shot-noise streams: callers comparing schemes pass per-scheme
    ``seed``s with one shared ``spsa_seed`` so every scheme sees the same
    perturbation sequence (paired comparisons) over independent noise.
    """
    if scheme not in SCHEME_NAMES:
        raise KeyError(f"unknown scheme {scheme!r}; known: {SCHEME_NAMES}")

    spsa_kwargs = dict(
        stability=max(1.0, iterations_hint / 10.0),
        seed=_spsa_seed(seed if spsa_seed is None else spsa_seed),
    )
    if spsa_trust_radius is not None:
        # Only when explicitly requested: SecondOrderSPSA supplies its own
        # default bound via setdefault, which a None here would clobber.
        spsa_kwargs["trust_radius"] = spsa_trust_radius
    backend_seed = derive_seed(seed, f"backend:{scheme}")

    def transient_backend() -> TransientBackend:
        if trace is None:
            raise ValueError(f"scheme {scheme!r} requires a transient trace")
        return TransientBackend(
            objective,
            trace,
            noise_model=noise_model,
            shots=shots,
            seed=backend_seed,
            state_sensitivity=state_sensitivity,
        )

    if scheme == "noise-free":
        return VQE(objective, IdealBackend(objective), SPSA(**spsa_kwargs))

    if scheme == "static-only":
        backend = StaticNoiseBackend(
            objective, noise_model=noise_model, shots=shots, seed=backend_seed
        )
        return VQE(objective, backend, SPSA(**spsa_kwargs))

    if scheme == "baseline":
        return VQE(objective, transient_backend(), SPSA(**spsa_kwargs))

    if scheme in _QISMET_SKIP_BUDGETS:
        controller = QismetController(
            policy=GradientFaithfulPolicy(),
            threshold=RobustNoiseThreshold(),
            retry_budget=retry_budget,
            max_skip_fraction=_QISMET_SKIP_BUDGETS[scheme],
        )
        return VQE(
            objective, transient_backend(), SPSA(**spsa_kwargs), controller=controller
        )

    if scheme == "blocking":
        return VQE(objective, transient_backend(), BlockingSPSA(**spsa_kwargs))

    if scheme == "resampling":
        return VQE(
            objective, transient_backend(), ResamplingSPSA(resamplings=2, **spsa_kwargs)
        )

    if scheme == "2nd-order":
        return VQE(objective, transient_backend(), SecondOrderSPSA(**spsa_kwargs))

    if scheme == "kalman":
        backend = KalmanFilteredBackend(
            transient_backend(),
            transition=kalman_transition,
            measurement_variance=kalman_measurement_variance,
        )
        return VQE(objective, backend, SPSA(**spsa_kwargs))

    if scheme == "only-transients":
        # Skip the top-|Tm| fraction regardless of gradient direction
        # (Section 5.3's strawman); the percentile threshold is the paper's
        # "99p .. 50p" knob.
        controller = QismetController(
            policy=OnlyTransientsPolicy(),
            threshold=OnlinePercentileThreshold(
                100.0 * (1.0 - only_transients_skip_fraction)
            ),
            retry_budget=retry_budget,
            max_skip_fraction=only_transients_skip_fraction,
        )
        return VQE(
            objective, transient_backend(), SPSA(**spsa_kwargs), controller=controller
        )

    if scheme == "cfar":
        controller = QismetController(
            policy=CFARPolicy(),
            threshold=RobustNoiseThreshold(),
            retry_budget=retry_budget,
        )
        return VQE(
            objective, transient_backend(), SPSA(**spsa_kwargs), controller=controller
        )

    raise AssertionError("unreachable")
