"""Improvement metrics matching the paper's reporting conventions.

The paper plots "VQE Expectation rel. Baseline" (Figs. 13 and 17). With a
known ground truth ``E*`` and common starting energy ``E0``, we measure
each scheme's *progress* — the fraction of the initial optimality gap it
closed — and report the ratio of progresses. This normalization is
offset-free (adding a constant to the Hamiltonian changes nothing) and
preserves orderings and approximate factors.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.vqa.result import VQEResult

_PROGRESS_FLOOR = 0.02  # avoid division blow-ups for schemes that go nowhere


def progress_fraction(
    initial_energy: float, final_energy: float, ground_truth: float
) -> float:
    """Fraction of the initial gap to the ground truth that was closed.

    Clipped below at a small floor (schemes can end *worse* than they
    started; ratios against near-zero progress are not meaningful).
    """
    gap = initial_energy - ground_truth
    if gap <= 0:
        raise ValueError("initial energy must lie above the ground truth")
    return float(max(_PROGRESS_FLOOR, (initial_energy - final_energy) / gap))


def result_progress(
    result: VQEResult, ground_truth: float, tail_fraction: float = 0.1,
    use_true_energy: bool = True,
) -> float:
    """Progress of one run, using tail-averaged energies for robustness."""
    energies = result.true_energies if use_true_energy else result.machine_energies
    initial = float(energies[0])
    tail = max(1, int(len(energies) * tail_fraction))
    final = float(np.mean(energies[-tail:]))
    return progress_fraction(initial, final, ground_truth)


def improvement_rel_baseline(
    results: Mapping[str, VQEResult],
    ground_truth: float,
    baseline: str = "baseline",
    tail_fraction: float = 0.1,
    use_true_energy: bool = True,
) -> Dict[str, float]:
    """Per-scheme progress ratio relative to the baseline scheme.

    A value of 2.0 means the scheme closed twice the optimality gap the
    baseline closed. More variance-prone than :func:`expectation_ratio`
    when the baseline makes little progress; prefer the latter for the
    paper's headline numbers.
    """
    if baseline not in results:
        raise KeyError(f"baseline scheme {baseline!r} missing from results")
    baseline_progress = result_progress(
        results[baseline], ground_truth, tail_fraction, use_true_energy
    )
    return {
        name: result_progress(result, ground_truth, tail_fraction, use_true_energy)
        / baseline_progress
        for name, result in results.items()
    }


def tail_energy(
    result: VQEResult, tail_fraction: float = 0.15, use_true_energy: bool = True
) -> float:
    """Tail-averaged final energy of one run."""
    energies = result.true_energies if use_true_energy else result.machine_energies
    tail = max(1, int(len(energies) * tail_fraction))
    return float(np.mean(energies[-tail:]))


def expectation_ratio(
    results: Mapping[str, VQEResult],
    baseline: str = "baseline",
    tail_fraction: float = 0.15,
    use_true_energy: bool = True,
    floor: float = 1e-3,
) -> Dict[str, float]:
    """The paper's headline metric: ratio of achieved expectation values.

    Fig. 14's text reads a final expectation of -1.5 against a baseline of
    ~-0.9 as a "65 % improvement": the ratio of the (negative) converged
    objectives. Both values are clamped to be at least ``floor`` below
    zero so the ratio stays meaningful for runs that never descend.
    """
    if baseline not in results:
        raise KeyError(f"baseline scheme {baseline!r} missing from results")
    base_value = min(-floor, tail_energy(results[baseline], tail_fraction, use_true_energy))
    out: Dict[str, float] = {}
    for name, result in results.items():
        value = min(-floor, tail_energy(result, tail_fraction, use_true_energy))
        out[name] = value / base_value
    return out
