"""Experiment harness reproducing the paper's evaluation.

``registry`` holds Table 1's applications; ``schemes`` builds the
comparison schemes of Section 6.3; ``runner`` executes comparisons;
``figures`` assembles the per-figure data series; ``metrics`` computes the
relative-improvement numbers the paper reports.
"""

from repro.experiments.registry import APPLICATIONS, AppConfig, get_app, machine_app
from repro.experiments.schemes import SCHEME_NAMES, build_vqe
from repro.experiments.runner import ComparisonResult, run_comparison
from repro.experiments.metrics import (
    improvement_rel_baseline,
    progress_fraction,
)
from repro.experiments.config import default_iterations, is_full_scale

__all__ = [
    "APPLICATIONS",
    "AppConfig",
    "get_app",
    "machine_app",
    "SCHEME_NAMES",
    "build_vqe",
    "ComparisonResult",
    "run_comparison",
    "improvement_rel_baseline",
    "progress_fraction",
    "default_iterations",
    "is_full_scale",
]
