"""Experiment runner: scheme comparisons over Table 1 applications.

This module is the classic, comparison-shaped front door to the
declarative runtime in :mod:`repro.runtime`: :func:`run_comparison`
builds a one-app :class:`~repro.runtime.spec.ExperimentPlan` and hands it
to an executor (serial by default; set ``REPRO_EXECUTOR=parallel`` or
pass ``executor=`` to fan schemes out across processes, and
``REPRO_CACHE_DIR`` to reuse previously computed runs). Sweeps larger
than one app x one seed should build an ``ExperimentPlan`` directly.

Seeds are derived per scheme (backend shot-noise streams are
independent) while the SPSA perturbation sequence is shared across
schemes, mirroring the paper's synchronous paired-comparison
methodology — see :mod:`repro.runtime.execute` for the exact contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.experiments.metrics import expectation_ratio, improvement_rel_baseline
from repro.experiments.registry import AppConfig
from repro.vqa.result import VQEResult


@dataclass
class ComparisonResult:
    """All schemes' outcomes on one application."""

    app_name: str
    ground_truth: float
    results: Dict[str, VQEResult] = field(default_factory=dict)

    def improvements(
        self,
        baseline: str = "baseline",
        tail_fraction: float = 0.15,
        use_true_energy: bool = True,
    ) -> Dict[str, float]:
        """Per-scheme expectation ratios vs the baseline (the paper's
        "VQE Expectation rel. Baseline").

        Uses the transient-free energy of the accepted parameters, which
        preserves the paper's orderings with much less run-to-run variance
        than raw machine estimates (whose tails are contaminated by
        whichever transient hit the final jobs). Pass
        ``use_true_energy=False`` for the machine-measured expectation the
        paper's hardware figures necessarily plot.
        """
        return expectation_ratio(
            self.results, baseline=baseline,
            tail_fraction=tail_fraction, use_true_energy=use_true_energy,
        )

    def progress_improvements(
        self, baseline: str = "baseline", tail_fraction: float = 0.15
    ) -> Dict[str, float]:
        """Gap-closed progress ratios (alternative, variance-prone metric)."""
        return improvement_rel_baseline(
            self.results, self.ground_truth, baseline=baseline,
            tail_fraction=tail_fraction,
        )

    def final_energies(self) -> Dict[str, float]:
        return {
            name: result.tail_true_energy()
            for name, result in self.results.items()
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app_name": self.app_name,
            "ground_truth": float(self.ground_truth),
            "results": {
                name: result.to_dict() for name, result in self.results.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ComparisonResult":
        return cls(
            app_name=data["app_name"],
            ground_truth=float(data["ground_truth"]),
            results={
                name: VQEResult.from_dict(payload)
                for name, payload in data.get("results", {}).items()
            },
        )


def run_comparison(
    app: AppConfig,
    schemes: Sequence[str],
    iterations: int,
    seed: int = 2023,
    shots: int = 8192,
    trace_scale: float = 1.0,
    theta0: Optional[np.ndarray] = None,
    executor=None,
    **scheme_kwargs,
) -> ComparisonResult:
    """Run several schemes on one application under identical conditions.

    All schemes share the application's transient trace (scaled by
    ``trace_scale``), starting parameters and SPSA perturbation sequence,
    while backend shot-noise streams are derived per scheme — mirroring
    the paper's synchronous baseline-vs-QISMET methodology.

    This is a compatibility shim over :mod:`repro.runtime`: it expands a
    one-app plan and executes it on ``executor`` (default: environment
    selected via ``REPRO_EXECUTOR``/``REPRO_CACHE_DIR``).
    """
    from repro.runtime import ExperimentPlan, default_executor, resolve_app

    overrides = dict(scheme_kwargs)
    if theta0 is not None:
        overrides["theta0"] = tuple(
            float(v) for v in np.asarray(theta0, dtype=float)
        )
    plan = ExperimentPlan.single(
        app, schemes, iterations,
        seed=seed, shots=shots, trace_scale=trace_scale, overrides=overrides,
    )
    outcome = (executor or default_executor()).run_plan(plan)
    return outcome.comparison(resolve_app(app).name)


def geomean_improvements(
    comparisons: Sequence[ComparisonResult],
    baseline: str = "baseline",
) -> Dict[str, float]:
    """Geometric-mean improvement per scheme across applications (Fig. 17)."""
    if not comparisons:
        raise ValueError("no comparisons")
    schemes = set.intersection(*(set(c.results) for c in comparisons))
    out: Dict[str, float] = {}
    for scheme in sorted(schemes):
        ratios = [c.improvements(baseline)[scheme] for c in comparisons]
        out[scheme] = float(np.exp(np.mean(np.log(ratios))))
    return out
