"""Experiment runner: scheme comparisons over Table 1 applications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.metrics import expectation_ratio, improvement_rel_baseline
from repro.experiments.registry import AppConfig
from repro.experiments.schemes import build_vqe
from repro.noise.noise_model import NoiseModel
from repro.utils.rng import derive_seed
from repro.vqa.objective import EnergyObjective
from repro.vqa.result import VQEResult


@dataclass
class ComparisonResult:
    """All schemes' outcomes on one application."""

    app_name: str
    ground_truth: float
    results: Dict[str, VQEResult] = field(default_factory=dict)

    def improvements(
        self,
        baseline: str = "baseline",
        tail_fraction: float = 0.15,
        use_true_energy: bool = True,
    ) -> Dict[str, float]:
        """Per-scheme expectation ratios vs the baseline (the paper's
        "VQE Expectation rel. Baseline").

        Uses the transient-free energy of the accepted parameters, which
        preserves the paper's orderings with much less run-to-run variance
        than raw machine estimates (whose tails are contaminated by
        whichever transient hit the final jobs). Pass
        ``use_true_energy=False`` for the machine-measured expectation the
        paper's hardware figures necessarily plot.
        """
        return expectation_ratio(
            self.results, baseline=baseline,
            tail_fraction=tail_fraction, use_true_energy=use_true_energy,
        )

    def progress_improvements(
        self, baseline: str = "baseline", tail_fraction: float = 0.15
    ) -> Dict[str, float]:
        """Gap-closed progress ratios (alternative, variance-prone metric)."""
        return improvement_rel_baseline(
            self.results, self.ground_truth, baseline=baseline,
            tail_fraction=tail_fraction,
        )

    def final_energies(self) -> Dict[str, float]:
        return {
            name: result.tail_true_energy()
            for name, result in self.results.items()
        }


def run_comparison(
    app: AppConfig,
    schemes: Sequence[str],
    iterations: int,
    seed: int = 2023,
    shots: int = 8192,
    trace_scale: float = 1.0,
    theta0: Optional[np.ndarray] = None,
    **scheme_kwargs,
) -> ComparisonResult:
    """Run several schemes on one application under identical conditions.

    All schemes share the application's transient trace (scaled by
    ``trace_scale``), static noise model and starting parameters, mirroring
    the paper's synchronous baseline-vs-QISMET methodology.
    """
    hamiltonian = app.build_hamiltonian()
    device = app.build_device()
    noise_model = NoiseModel.from_device(device)
    # Each iteration consumes ~3 jobs (two SPSA evaluations plus the
    # candidate measurement) and QISMET retries add more; 5x head-room.
    trace = app.build_trace(length=5 * iterations + 64, seed=seed)
    if trace_scale != 1.0:
        trace = trace.scaled(trace_scale)

    comparison = ComparisonResult(
        app_name=app.name, ground_truth=app.ground_truth_energy()
    )
    ansatz = app.build_ansatz()
    if theta0 is None:
        theta0 = ansatz.initial_point(seed=derive_seed(seed, f"theta0:{app.name}"))

    for scheme in schemes:
        objective = EnergyObjective(app.build_ansatz(), hamiltonian)
        vqe = build_vqe(
            scheme,
            objective,
            trace=None if scheme in ("noise-free",) else trace,
            noise_model=noise_model,
            shots=shots,
            seed=derive_seed(seed, f"run:{app.name}"),
            iterations_hint=iterations,
            **scheme_kwargs,
        )
        comparison.results[scheme] = vqe.run(iterations, theta0=np.array(theta0))
    return comparison


def geomean_improvements(
    comparisons: Sequence[ComparisonResult],
    baseline: str = "baseline",
) -> Dict[str, float]:
    """Geometric-mean improvement per scheme across applications (Fig. 17)."""
    if not comparisons:
        raise ValueError("no comparisons")
    schemes = set.intersection(*(set(c.results) for c in comparisons))
    out: Dict[str, float] = {}
    for scheme in sorted(schemes):
        ratios = [c.improvements(baseline)[scheme] for c in comparisons]
        out[scheme] = float(np.exp(np.mean(np.log(ratios))))
    return out
