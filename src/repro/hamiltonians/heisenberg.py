"""Heisenberg XXZ chain (extension workload beyond the paper's TFIM)."""

from __future__ import annotations

from repro.operators.pauli_sum import PauliSum


def heisenberg_hamiltonian(
    num_qubits: int,
    jx: float = 1.0,
    jy: float = 1.0,
    jz: float = 1.0,
    field: float = 0.0,
    periodic: bool = False,
) -> PauliSum:
    """``H = sum_i (jx XX + jy YY + jz ZZ)_{i,i+1} + field * sum_i Z_i``."""
    if num_qubits < 2:
        raise ValueError("need at least two sites")
    terms = []
    bonds = num_qubits if periodic else num_qubits - 1
    for i in range(bonds):
        j = (i + 1) % num_qubits
        for strength, pauli in ((jx, "X"), (jy, "Y"), (jz, "Z")):
            if strength == 0.0:
                continue
            chars = ["I"] * num_qubits
            chars[i] = pauli
            chars[j] = pauli
            terms.append((strength, "".join(chars)))
    if field != 0.0:
        for i in range(num_qubits):
            chars = ["I"] * num_qubits
            chars[i] = "Z"
            terms.append((field, "".join(chars)))
    return PauliSum(terms)
