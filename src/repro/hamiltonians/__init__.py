"""Problem Hamiltonians: TFIM (the paper's primary workload), Heisenberg
XXZ and MaxCut (extensions), and the H2 molecule (re-exported from
``repro.chemistry``)."""

from repro.hamiltonians.tfim import tfim_exact_ground_energy, tfim_hamiltonian
from repro.hamiltonians.heisenberg import heisenberg_hamiltonian
from repro.hamiltonians.maxcut import maxcut_hamiltonian, maxcut_value
from repro.chemistry.h2 import H2Problem, h2_hamiltonian, h2_problem

__all__ = [
    "tfim_hamiltonian",
    "tfim_exact_ground_energy",
    "heisenberg_hamiltonian",
    "maxcut_hamiltonian",
    "maxcut_value",
    "H2Problem",
    "h2_hamiltonian",
    "h2_problem",
]
