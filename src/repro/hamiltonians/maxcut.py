"""MaxCut cost Hamiltonians for QAOA-style workloads.

QISMET claims applicability across all VQAs; this module provides the
optimization-domain workload so the library covers QAOA as well as VQE.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx
import numpy as np

from repro.operators.pauli_sum import PauliSum
from repro.utils.rng import ensure_rng


def maxcut_hamiltonian(graph: nx.Graph) -> PauliSum:
    """Cost Hamiltonian ``H = sum_{(i,j)} w_ij/2 (Z_i Z_j - I)``.

    Minimizing ``H`` maximizes the cut weight; the ground energy equals
    ``-maxcut_weight``.
    """
    nodes = sorted(graph.nodes())
    if not nodes:
        raise ValueError("empty graph")
    index = {node: i for i, node in enumerate(nodes)}
    num_qubits = len(nodes)
    terms = []
    for u, v, data in graph.edges(data=True):
        weight = float(data.get("weight", 1.0))
        chars = ["I"] * num_qubits
        chars[index[u]] = "Z"
        chars[index[v]] = "Z"
        terms.append((weight / 2.0, "".join(chars)))
        terms.append((-weight / 2.0, "I" * num_qubits))
    return PauliSum(terms)


def maxcut_value(graph: nx.Graph, assignment: Iterable[int]) -> float:
    """Cut weight of a +/-1 or 0/1 node assignment (ordered by node sort)."""
    nodes = sorted(graph.nodes())
    values = list(assignment)
    if len(values) != len(nodes):
        raise ValueError("assignment length mismatch")
    side = {
        node: (1 if value in (1, -1) and value == 1 else 0)
        for node, value in zip(nodes, values)
    }
    total = 0.0
    for u, v, data in graph.edges(data=True):
        if side[u] != side[v]:
            total += float(data.get("weight", 1.0))
    return total


def ring_graph(num_nodes: int) -> nx.Graph:
    """Unweighted ring, the classic QAOA teaching example."""
    if num_nodes < 3:
        raise ValueError("ring needs >= 3 nodes")
    return nx.cycle_graph(num_nodes)


def random_weighted_graph(
    num_nodes: int, edge_probability: float, seed: int
) -> nx.Graph:
    """Erdos-Renyi graph with uniform [0.5, 1.5] edge weights."""
    graph = nx.gnp_random_graph(num_nodes, edge_probability, seed=seed)
    rng = ensure_rng(seed)
    for u, v in graph.edges():
        graph[u][v]["weight"] = float(rng.uniform(0.5, 1.5))
    return graph
