"""The one-dimensional Transverse Field Ising Model.

``H = -J sum_i Z_i Z_{i+1} - h sum_i X_i``

The paper's primary VQE workload (Table 1) is the 6-qubit TFIM chain,
chosen because it is exactly solvable classically. We provide dense
diagonalization for small chains and the free-fermion (Jordan-Wigner)
closed form for periodic chains of any size as a cross-check.
"""

from __future__ import annotations

import numpy as np

from repro.operators.pauli_sum import PauliSum


def _label(num_qubits: int, positions_chars) -> str:
    chars = ["I"] * num_qubits
    for position, char in positions_chars:
        chars[position] = char
    return "".join(chars)


def tfim_hamiltonian(
    num_qubits: int,
    coupling: float = 1.0,
    field: float = 1.0,
    periodic: bool = False,
) -> PauliSum:
    """Build the TFIM PauliSum on a chain of ``num_qubits`` sites."""
    if num_qubits < 2:
        raise ValueError("TFIM needs at least two sites")
    terms = []
    bonds = num_qubits if periodic else num_qubits - 1
    for i in range(bonds):
        j = (i + 1) % num_qubits
        terms.append((-coupling, _label(num_qubits, [(i, "Z"), (j, "Z")])))
    for i in range(num_qubits):
        terms.append((-field, _label(num_qubits, [(i, "X")])))
    return PauliSum(terms)


def tfim_exact_ground_energy(
    num_qubits: int,
    coupling: float = 1.0,
    field: float = 1.0,
    periodic: bool = False,
) -> float:
    """Exact ground-state energy.

    Dense diagonalization for chains up to 14 sites; the free-fermion
    formula (valid for the periodic chain in the even-parity sector, an
    excellent approximation at these sizes) for larger periodic chains.
    """
    if num_qubits <= 14:
        return tfim_hamiltonian(
            num_qubits, coupling, field, periodic
        ).ground_state_energy()
    if not periodic:
        raise ValueError(
            "exact energies for open chains above 14 sites are not implemented"
        )
    return tfim_free_fermion_energy(num_qubits, coupling, field)


def tfim_free_fermion_energy(
    num_qubits: int, coupling: float = 1.0, field: float = 1.0
) -> float:
    """Free-fermion ground energy of the periodic TFIM chain.

    After Jordan-Wigner and Bogoliubov transforms the chain maps to free
    fermions with dispersion
    ``eps(k) = 2 sqrt(J^2 + h^2 - 2 J h cos k)`` and ground energy
    ``-1/2 sum_k eps(k)`` over antiperiodic momenta (even sector).
    """
    ks = (np.arange(num_qubits) + 0.5) * 2.0 * np.pi / num_qubits
    eps = 2.0 * np.sqrt(
        coupling**2 + field**2 - 2.0 * coupling * field * np.cos(ks)
    )
    return float(-0.5 * np.sum(eps))
