"""Pluggable executors: how a plan's runs actually get executed.

All executors consume :class:`~repro.runtime.spec.RunSpec` sequences and
return :class:`~repro.runtime.results.RunResult` lists in input order;
because every spec is fully seed-determined (see
:mod:`repro.runtime.execute`), the choice of executor changes wall-clock
time only, never results.

* :class:`SerialExecutor` — one run after another in this process.
* :class:`ParallelExecutor` — fan-out across worker processes with
  :class:`concurrent.futures.ProcessPoolExecutor`; results cross the
  process boundary via the result layer's serialization.
* :class:`CachedExecutor` — wraps another executor with the experiment
  store (:mod:`repro.store`) keyed by each spec's content-hash
  ``run_id``, so repeated figure builds only pay for specs they have
  never seen. Legacy per-run JSON cache directories are read (and
  ingested into the store) transparently.
* ``repro.fleet.FleetExecutor`` (selected via ``REPRO_EXECUTOR=fleet``)
  — schedules runs across the simulated IBMQ device fleet with
  transient-aware routing and a persistent job store
  (``REPRO_FLEET_DB``); results remain bit-identical.

:func:`executor_for` is the one place ``REPRO_EXECUTOR``/
``REPRO_JOBS``/``REPRO_STORE``/``REPRO_CACHE_DIR``/``REPRO_FLEET_DB``
resolution lives; :func:`default_executor` is its environment-only
shorthand, so existing entry points gain parallelism, caching and fleet
scheduling without signature changes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.faults.retry import DEFAULT_RETRYABLE, call_with_retry
from repro.obs import METRICS, TRACER
from repro.runtime.execute import execute_run
from repro.runtime.results import PlanResult, RunResult
from repro.runtime.spec import ExperimentPlan, RunSpec
from repro.store.store import STORE_ENV, ExperimentStore
from repro.utils.serialization import load_json


@runtime_checkable
class Executor(Protocol):
    """Anything that can turn specs into results."""

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        ...


class BaseExecutor:
    """Shared plumbing: plan expansion and the ``run_plan`` entry point."""

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        raise NotImplementedError

    def run_plan(self, plan: ExperimentPlan) -> PlanResult:
        with TRACER.span(
            "job.run_plan", category="job",
            plan=plan.name, runs=len(plan), executor=type(self).__name__,
        ):
            return PlanResult(runs=self.run(plan.expand()), plan=plan.to_dict())

    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec])[0]


class SerialExecutor(BaseExecutor):
    """Execute runs one after another in the calling process."""

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        return [execute_run(spec) for spec in specs]


class ParallelExecutor(BaseExecutor):
    """Fan runs out across a process pool.

    ``max_workers=None`` uses one worker per CPU. Specs are distributed
    with ``ProcessPoolExecutor.map`` (``chunksize`` specs per task), and
    results come back in input order. Single-spec batches skip the pool
    entirely — no point paying process startup for one run.
    """

    def __init__(self, max_workers: Optional[int] = None, chunksize: int = 1):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None)")
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        specs = list(specs)
        if len(specs) <= 1:
            return [execute_run(spec) for spec in specs]
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(specs))
        # Worker processes trace into their own (discarded) tracers; the
        # parent records the fan-out as one span so job wall time still
        # has an owner.  Results are unaffected either way.
        with TRACER.span(
            "executor.parallel.fanout", category="execute",
            runs=len(specs), workers=workers,
        ):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(execute_run, specs, chunksize=self.chunksize)
                )


class CachedExecutor(BaseExecutor):
    """Experiment-store cache wrapper around another executor.

    Results persist in an :class:`~repro.store.ExperimentStore` keyed by
    each spec's content-hash ``run_id``. The first argument is either an
    open store (shared with the caller, not closed by this executor) or
    a path: a ``.sqlite``/``.db`` file, or a directory that holds
    ``store.sqlite``. For directories, per-run ``<run_id>.json`` files
    from the pre-store cache layout are still honored — a legacy hit is
    served and ingested into the store, so old cache dirs migrate
    themselves on use. A stored entry whose embedded spec does not match
    the requested spec (hash collision or a stale schema) is treated as
    a miss and overwritten.
    """

    def __init__(
        self,
        store: Union[str, Path, ExperimentStore],
        inner: Optional[BaseExecutor] = None,
    ):
        if isinstance(store, ExperimentStore):
            self.store = store
            self.cache_dir: Optional[Path] = None
            self._owns_store = False
        else:
            self.cache_dir = (
                None if Path(store).suffix in (".sqlite", ".sqlite3", ".db")
                else Path(store)
            )
            self.store = ExperimentStore(store)
            self._owns_store = True
        self.inner = inner if inner is not None else SerialExecutor()
        self.hits = 0
        self.misses = 0

    def close(self) -> None:
        if self._owns_store:
            self.store.close()

    def _legacy_path(self, spec: RunSpec) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.run_id}.json"

    def _load(self, spec: RunSpec) -> Optional[RunResult]:
        try:
            # Store reads retry transient I/O failures (same policy shape
            # the fleet workers use), then degrade to a miss: the inner
            # executor re-derives bit-identical bytes from the spec.
            cached = call_with_retry(
                lambda: self.store.get(spec.run_id), label=spec.run_id
            )
        except DEFAULT_RETRYABLE:
            METRICS.counter("cache.store.faults").inc()
            cached = None
        if cached is None:
            cached = self._load_legacy(spec)
            if cached is not None:
                # Self-migrating cache dir: serve the legacy file and
                # ingest it so the next read comes from the store.
                self.store.append(cached, source="import")
        if cached is None or cached.spec != spec:
            return None
        cached.from_cache = True
        cached.elapsed_s = 0.0
        return cached

    def _load_legacy(self, spec: RunSpec) -> Optional[RunResult]:
        path = self._legacy_path(spec)
        if path is None or not path.exists():
            return None
        try:
            return RunResult.from_dict(load_json(path))
        except (ValueError, KeyError, TypeError):
            return None

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        specs = list(specs)
        out: List[Optional[RunResult]] = []
        missing: List[int] = []
        with TRACER.span(
            "store.cache_lookup", category="store", runs=len(specs)
        ):
            for index, spec in enumerate(specs):
                cached = self._load(spec)
                out.append(cached)
                if cached is None:
                    missing.append(index)
        hits = len(specs) - len(missing)
        self.hits += hits
        self.misses += len(missing)
        METRICS.counter("cache.store.hits").inc(hits)
        METRICS.counter("cache.store.misses").inc(len(missing))
        if missing:
            fresh = self.inner.run([specs[i] for i in missing])
            for index, run in zip(missing, fresh):
                self.store.append(run)
                out[index] = run
        return [run for run in out if run is not None]


def executor_for(
    kind: Optional[str] = None,
    *,
    store: Optional[Union[str, Path, ExperimentStore]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    max_workers: Optional[int] = None,
) -> BaseExecutor:
    """The one place executor construction and env resolution live.

    ``kind`` is ``'serial'``/``'parallel'``/``'fleet'`` (default: the
    ``REPRO_EXECUTOR`` knob; ``REPRO_JOBS`` caps parallel workers unless
    ``max_workers`` is given; ``REPRO_FLEET_DB``/``REPRO_FLEET_MACHINES``
    shape the fleet). The caching layer resolves in precedence order
    ``store`` argument > ``cache_dir`` argument > ``REPRO_STORE`` >
    ``REPRO_CACHE_DIR``; when any of them names a target, the executor
    is wrapped in a store-backed :class:`CachedExecutor`.
    """
    kind = (
        kind if kind is not None else os.environ.get("REPRO_EXECUTOR", "serial")
    ).strip().lower()
    if kind in ("parallel", "process", "processes"):
        if max_workers is None:
            jobs = os.environ.get("REPRO_JOBS", "").strip()
            max_workers = int(jobs) if jobs else None
        inner: BaseExecutor = ParallelExecutor(max_workers=max_workers)
    elif kind == "fleet":
        # Local import: repro.fleet builds on this module.
        from repro.fleet.executor import fleet_executor_from_env

        inner = fleet_executor_from_env()
    elif kind in ("", "serial"):
        inner = SerialExecutor()
    else:
        raise ValueError(
            f"unknown REPRO_EXECUTOR {kind!r}; "
            "use 'serial', 'parallel' or 'fleet'"
        )
    target: Optional[Union[str, Path, ExperimentStore]] = store
    if target is None:
        target = cache_dir
    if target is None:
        target = os.environ.get(STORE_ENV, "").strip() or None
    if target is None:
        target = os.environ.get("REPRO_CACHE_DIR", "").strip() or None
    if target is not None:
        return CachedExecutor(target, inner=inner)
    return inner


def default_executor(
    cache_dir: Optional[Union[str, Path]] = None,
) -> BaseExecutor:
    """Build an executor purely from the environment (see
    :func:`executor_for`; ``cache_dir`` wins over the env knobs)."""
    return executor_for(cache_dir=cache_dir)


def run_plan(
    plan: ExperimentPlan, executor: Optional[BaseExecutor] = None
) -> PlanResult:
    """Execute a plan on ``executor`` (default: environment-selected)."""
    return (executor or default_executor()).run_plan(plan)
