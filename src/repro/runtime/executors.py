"""Pluggable executors: how a plan's runs actually get executed.

All executors consume :class:`~repro.runtime.spec.RunSpec` sequences and
return :class:`~repro.runtime.results.RunResult` lists in input order;
because every spec is fully seed-determined (see
:mod:`repro.runtime.execute`), the choice of executor changes wall-clock
time only, never results.

* :class:`SerialExecutor` — one run after another in this process.
* :class:`ParallelExecutor` — fan-out across worker processes with
  :class:`concurrent.futures.ProcessPoolExecutor`; results cross the
  process boundary via the result layer's serialization.
* :class:`CachedExecutor` — wraps another executor with a disk cache
  keyed by each spec's content-hash ``run_id``, so repeated figure
  builds only pay for specs they have never seen.
* ``repro.fleet.FleetExecutor`` (selected via ``REPRO_EXECUTOR=fleet``)
  — schedules runs across the simulated IBMQ device fleet with
  transient-aware routing and a persistent job store
  (``REPRO_FLEET_DB``); results remain bit-identical.

:func:`default_executor` picks an executor from the environment
(``REPRO_EXECUTOR``, ``REPRO_JOBS``, ``REPRO_CACHE_DIR``,
``REPRO_FLEET_DB``) so existing entry points gain parallelism, caching
and fleet scheduling without signature changes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.runtime.execute import execute_run
from repro.runtime.results import PlanResult, RunResult
from repro.runtime.spec import ExperimentPlan, RunSpec
from repro.utils.serialization import load_json, save_json


@runtime_checkable
class Executor(Protocol):
    """Anything that can turn specs into results."""

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        ...


class BaseExecutor:
    """Shared plumbing: plan expansion and the ``run_plan`` entry point."""

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        raise NotImplementedError

    def run_plan(self, plan: ExperimentPlan) -> PlanResult:
        return PlanResult(runs=self.run(plan.expand()), plan=plan.to_dict())

    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec])[0]


class SerialExecutor(BaseExecutor):
    """Execute runs one after another in the calling process."""

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        return [execute_run(spec) for spec in specs]


class ParallelExecutor(BaseExecutor):
    """Fan runs out across a process pool.

    ``max_workers=None`` uses one worker per CPU. Specs are distributed
    with ``ProcessPoolExecutor.map`` (``chunksize`` specs per task), and
    results come back in input order. Single-spec batches skip the pool
    entirely — no point paying process startup for one run.
    """

    def __init__(self, max_workers: Optional[int] = None, chunksize: int = 1):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None)")
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        specs = list(specs)
        if len(specs) <= 1:
            return [execute_run(spec) for spec in specs]
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_run, specs, chunksize=self.chunksize))


class CachedExecutor(BaseExecutor):
    """Disk-cache wrapper around another executor.

    Results are stored as one JSON file per run under ``cache_dir``,
    named by the spec's content-hash ``run_id``. A cached file whose
    embedded spec does not match the requested spec (hash collision or a
    stale schema) is treated as a miss and overwritten.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        inner: Optional[BaseExecutor] = None,
    ):
        self.cache_dir = Path(cache_dir)
        self.inner = inner if inner is not None else SerialExecutor()
        self.hits = 0
        self.misses = 0

    def _path(self, spec: RunSpec) -> Path:
        return self.cache_dir / f"{spec.run_id}.json"

    def _load(self, spec: RunSpec) -> Optional[RunResult]:
        path = self._path(spec)
        if not path.exists():
            return None
        try:
            cached = RunResult.from_dict(load_json(path))
        except (ValueError, KeyError, TypeError):
            return None
        if cached.spec != spec:
            return None
        cached.from_cache = True
        cached.elapsed_s = 0.0
        return cached

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        specs = list(specs)
        out: List[Optional[RunResult]] = []
        missing: List[int] = []
        for index, spec in enumerate(specs):
            cached = self._load(spec)
            out.append(cached)
            if cached is None:
                missing.append(index)
        self.hits += len(specs) - len(missing)
        self.misses += len(missing)
        if missing:
            fresh = self.inner.run([specs[i] for i in missing])
            for index, run in zip(missing, fresh):
                save_json(self._path(run.spec), run.to_dict())
                out[index] = run
        return [run for run in out if run is not None]


def default_executor(
    cache_dir: Optional[Union[str, Path]] = None,
) -> BaseExecutor:
    """Build an executor from the environment.

    ``REPRO_EXECUTOR=parallel`` selects the process-pool executor
    (``REPRO_JOBS`` caps its workers); ``REPRO_EXECUTOR=fleet`` selects
    the transient-aware device-fleet executor (``REPRO_FLEET_DB`` names
    its persistent job store); anything else — including unset — is
    serial. ``REPRO_CACHE_DIR`` (or the ``cache_dir`` argument, which
    wins) wraps the executor in a disk cache.
    """
    kind = os.environ.get("REPRO_EXECUTOR", "serial").strip().lower()
    if kind in ("parallel", "process", "processes"):
        jobs = os.environ.get("REPRO_JOBS", "").strip()
        inner: BaseExecutor = ParallelExecutor(
            max_workers=int(jobs) if jobs else None
        )
    elif kind == "fleet":
        # Local import: repro.fleet builds on this module.
        from repro.fleet.executor import fleet_executor_from_env

        inner = fleet_executor_from_env()
    elif kind in ("", "serial"):
        inner = SerialExecutor()
    else:
        raise ValueError(
            f"unknown REPRO_EXECUTOR {kind!r}; "
            "use 'serial', 'parallel' or 'fleet'"
        )
    cache = cache_dir or os.environ.get("REPRO_CACHE_DIR", "").strip()
    if cache:
        return CachedExecutor(cache, inner=inner)
    return inner


def run_plan(
    plan: ExperimentPlan, executor: Optional[BaseExecutor] = None
) -> PlanResult:
    """Execute a plan on ``executor`` (default: environment-selected)."""
    return (executor or default_executor()).run_plan(plan)
