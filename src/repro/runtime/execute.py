"""Spec -> result execution.

:func:`execute_run` is the single function that turns a declarative
:class:`~repro.runtime.spec.RunSpec` into a
:class:`~repro.runtime.results.RunResult`. It lives at module level so the
process-pool executor can pickle a reference to it and fan specs out
across worker processes.

Determinism contract: every stochastic stream is derived from the spec's
``seed`` —

* the starting point ``theta0`` from ``(seed, "theta0:<app>")`` (shared by
  every scheme of a comparison cell, unless overridden);
* the transient trace from ``seed`` via the app's trace builder (likewise
  shared per cell);
* the VQE's backend streams from the **per-scheme** label
  ``(seed, "run:<app>:<scheme>")`` — schemes never share shot noise;
* the SPSA perturbation sequence from the **shared** label
  ``(seed, "run:<app>")`` so schemes remain pair-matched (the paper's
  synchronous methodology; see :mod:`repro.experiments.schemes`).

Executing the same spec in any process therefore yields bit-identical
results.

Hot path: every run built here routes its same-circuit evaluations
through the batched engine — SPSA's theta+/theta- pairs (and the
resampling/2SPSA blocks) reach the backend as one block, and
batch-capable backends evaluate them in a single vectorized simulator
pass (see :mod:`repro.simulator.batched`). RNG streams are consumed in
the serial order, so executor choice *and* batching leave results
unchanged; ``REPRO_BATCH=0`` forces the serial path for debugging.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.experiments.schemes import build_vqe
from repro.faults.inject import INJECTOR
from repro.noise.noise_model import NoiseModel
from repro.obs import TRACER, Stopwatch
from repro.runtime.results import RunResult
from repro.runtime.spec import RunSpec, resolve_app
from repro.utils.rng import derive_seed

#: Each iteration consumes ~3 jobs (two SPSA evaluations plus the
#: candidate measurement) and QISMET retries add more; 5x head-room.
TRACE_JOBS_PER_ITERATION = 5
TRACE_SLACK = 64


def trace_length(iterations: int) -> int:
    return TRACE_JOBS_PER_ITERATION * iterations + TRACE_SLACK


def run_seed(spec: RunSpec) -> int:
    """Per-scheme seed for the run's backend streams."""
    return derive_seed(spec.seed, f"run:{spec.app_name}:{spec.scheme}")


def spsa_seed(spec: RunSpec) -> int:
    """Scheme-shared seed for the SPSA perturbation stream."""
    return derive_seed(spec.seed, f"run:{spec.app_name}")


def warm_plan_cache(spec: RunSpec):
    """Pre-compile a spec's ansatz into the shared plan cache.

    The fleet calls this once per distinct app before spinning up its
    worker threads, so every device worker binds parameters against one
    already-compiled :class:`~repro.compiler.GatePlan` instead of racing
    to compile the same ansatz. Returns the plan.
    """
    app = resolve_app(spec.app)
    return app.build_ansatz().plan


def execute_run(spec: RunSpec) -> RunResult:
    """Execute one spec to completion (synchronously, in this process)."""
    # Chaos boundary: the per-run fault site every worker/executor passes
    # through (a no-op unless a fault plan is installed).
    INJECTOR.fire("execute.run", run_id=spec.run_id)
    with TRACER.span(
        "run.execute", category="execute",
        app=spec.app_name, scheme=spec.scheme, seed=spec.seed,
        iterations=spec.iterations,
    ):
        with TRACER.span("run.build", category="execute", app=spec.app_name):
            app = resolve_app(spec.app)
            overrides = spec.override_dict()
            theta0 = overrides.pop("theta0", None)

            hamiltonian = app.build_hamiltonian()
            noise_model = NoiseModel.from_device(app.build_device())
            trace = None
            if spec.scheme != "noise-free":
                trace = app.build_trace(
                    length=trace_length(spec.iterations), seed=spec.seed
                )
                if spec.trace_scale != 1.0:
                    trace = trace.scaled(spec.trace_scale)

            ansatz = app.build_ansatz()
            if theta0 is None:
                theta0 = ansatz.initial_point(
                    seed=derive_seed(spec.seed, f"theta0:{app.name}")
                )

            from repro.vqa.objective import EnergyObjective

            vqe = build_vqe(
                spec.scheme,
                EnergyObjective(ansatz, hamiltonian),
                trace=trace,
                noise_model=noise_model,
                shots=spec.shots,
                seed=run_seed(spec),
                spsa_seed=spsa_seed(spec),
                iterations_hint=spec.iterations,
                **overrides,
            )
        with Stopwatch() as clock, TRACER.span(
            "run.vqe", category="execute", scheme=spec.scheme
        ):
            result = vqe.run(
                spec.iterations, theta0=np.asarray(theta0, dtype=float)
            )
        return RunResult(
            spec=spec,
            result=result,
            ground_truth=app.ground_truth_energy(),
            elapsed_s=clock.elapsed,
        )


def execute_all(specs: Sequence[RunSpec]) -> List[RunResult]:
    """Execute specs one after another in this process."""
    return [execute_run(spec) for spec in specs]
