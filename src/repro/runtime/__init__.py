"""Declarative experiment-plan runtime.

The paper's evaluation is hundreds of independent VQE runs — apps x
schemes x seeds x trace scales. This package separates *what to run*
(:class:`RunSpec`, :class:`ExperimentPlan`) from *how to run it*
(:class:`SerialExecutor`, :class:`ParallelExecutor`, :class:`CachedExecutor`)
and from *what came out* (:class:`RunResult`, :class:`PlanResult`), with a
serialization layer that lets results cross process boundaries and
persist on disk keyed by content-hashed run ids.

Typical use::

    from repro.runtime import ExperimentPlan, ParallelExecutor

    plan = ExperimentPlan(
        apps=("App1", "App2"), schemes=("baseline", "qismet"),
        iterations=300, seeds=(7, 8),
    )
    outcome = ParallelExecutor().run_plan(plan)
    print(outcome.geomean_improvements())
"""

from repro.runtime.execute import execute_all, execute_run
from repro.runtime.executors import (
    BaseExecutor,
    CachedExecutor,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_executor,
    executor_for,
    run_plan,
)
from repro.runtime.results import PlanResult, RunResult
from repro.runtime.spec import (
    ExperimentPlan,
    RunSpec,
    freeze_overrides,
    resolve_app,
)

__all__ = [
    "BaseExecutor",
    "CachedExecutor",
    "Executor",
    "ExperimentPlan",
    "ParallelExecutor",
    "PlanResult",
    "RunResult",
    "RunSpec",
    "SerialExecutor",
    "default_executor",
    "execute_all",
    "execute_run",
    "executor_for",
    "freeze_overrides",
    "resolve_app",
    "run_plan",
]
