"""Serializable run and plan results.

A :class:`RunResult` pairs a :class:`~repro.runtime.spec.RunSpec` with the
:class:`~repro.vqa.result.VQEResult` it produced; a :class:`PlanResult`
collects the runs of a whole plan and regroups them into the
:class:`~repro.experiments.runner.ComparisonResult` objects the metrics
layer consumes. Both round-trip losslessly through plain dicts (and hence
JSON), which is what lets results cross process boundaries and persist in
the executor cache.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.runtime.spec import RunSpec
from repro.utils.serialization import load_json, save_json
from repro.vqa.result import VQEResult


@dataclass(eq=False)
class RunResult:
    """Outcome of executing one spec.

    ``elapsed_s`` and ``from_cache`` describe *how* the run was obtained,
    not *what* it computed — they are excluded from equality so a cached
    result compares equal to the freshly-executed one.
    """

    spec: RunSpec
    result: VQEResult
    ground_truth: float
    elapsed_s: float = 0.0
    from_cache: bool = False

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, RunResult):
            return NotImplemented
        return (
            self.spec == other.spec
            and self.ground_truth == other.ground_truth
            and self.result.to_dict() == other.result.to_dict()
        )

    @property
    def run_id(self) -> str:
        return self.spec.run_id

    @property
    def app_name(self) -> str:
        return self.spec.app_name

    @property
    def scheme(self) -> str:
        return self.spec.scheme

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "spec": self.spec.to_dict(),
            "result": self.result.to_dict(),
            "ground_truth": float(self.ground_truth),
            "elapsed_s": float(self.elapsed_s),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            result=VQEResult.from_dict(data["result"]),
            ground_truth=float(data["ground_truth"]),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Deprecated shim: append to an experiment store instead.

        Kept one release for callers that persist single runs as JSON;
        the emitted file stays byte-compatible with the legacy cache
        layout (and ``import-legacy`` ingests it).
        """
        warnings.warn(
            "RunResult.save() is deprecated; append to an "
            "ExperimentStore (repro.store) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return save_json(path, self.to_dict())  # repro: allow-direct-result-dump

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunResult":
        return cls.from_dict(load_json(path))


ComparisonKey = Tuple[str, int, float]


@dataclass
class PlanResult:
    """All runs of one executed plan, in plan-expansion order."""

    runs: List[RunResult] = field(default_factory=list)
    plan: Optional[Dict[str, Any]] = None

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.runs)

    @property
    def by_run_id(self) -> Dict[str, RunResult]:
        return {run.run_id: run for run in self.runs}

    @property
    def total_elapsed_s(self) -> float:
        return float(sum(run.elapsed_s for run in self.runs))

    @property
    def cache_hits(self) -> int:
        return sum(1 for run in self.runs if run.from_cache)

    # -- regrouping into the metrics layer ----------------------------------

    def comparisons(self) -> Dict[ComparisonKey, "ComparisonResult"]:
        """Regroup runs into per-cell scheme comparisons.

        Each ``(app, seed, trace_scale)`` cell of the plan shared a
        starting point and transient trace, so its schemes form exactly
        one paper-style comparison.
        """
        from repro.experiments.runner import ComparisonResult

        out: Dict[ComparisonKey, ComparisonResult] = {}
        for run in self.runs:
            key = run.spec.comparison_key
            if key not in out:
                out[key] = ComparisonResult(
                    app_name=run.app_name, ground_truth=run.ground_truth
                )
            if run.scheme in out[key].results:
                # e.g. an overrides sweep repeating one scheme per cell —
                # that regrouping is lossy, so refuse rather than silently
                # keep whichever run came last.
                raise ValueError(
                    f"cell {key} has multiple {run.scheme!r} runs; "
                    "comparisons() cannot regroup an overrides sweep — "
                    "pair specs with runs directly instead"
                )
            out[key].results[run.scheme] = run.result
        return out

    def comparison(
        self,
        app_name: str,
        seed: Optional[int] = None,
        trace_scale: Optional[float] = None,
    ) -> "ComparisonResult":
        """The single comparison matching the given cell coordinates.

        ``seed``/``trace_scale`` may be omitted when the plan only swept
        one value for them.
        """
        matches = [
            comp
            for (name, cell_seed, cell_scale), comp in self.comparisons().items()
            if name == app_name
            and (seed is None or cell_seed == seed)
            and (trace_scale is None or cell_scale == trace_scale)
        ]
        if not matches:
            raise KeyError(f"no runs for app {app_name!r} in this plan result")
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous comparison for app {app_name!r}: "
                f"pass seed= and/or trace_scale="
            )
        return matches[0]

    def improvements(
        self, baseline: str = "baseline", **kwargs
    ) -> Dict[ComparisonKey, Dict[str, float]]:
        return {
            key: comp.improvements(baseline, **kwargs)
            for key, comp in self.comparisons().items()
        }

    def geomean_improvements(self, baseline: str = "baseline") -> Dict[str, float]:
        """Geometric-mean per-scheme improvement across every comparison
        cell (apps x seeds x scales) — the Fig. 17 aggregation."""
        from repro.experiments.runner import geomean_improvements

        return geomean_improvements(list(self.comparisons().values()), baseline)

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanResult":
        return cls(
            runs=[RunResult.from_dict(r) for r in data.get("runs", [])],
            plan=data.get("plan"),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Deprecated shim: export through the experiment store instead
        (:func:`repro.store.export_plan_result`).

        Kept one release; the emitted JSON is unchanged, so existing
        consumers of saved plan results keep working.
        """
        warnings.warn(
            "PlanResult.save() is deprecated; record runs in an "
            "ExperimentStore and use repro.store.export_plan_result()",
            DeprecationWarning,
            stacklevel=2,
        )
        return save_json(path, self.to_dict())  # repro: allow-direct-result-dump

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PlanResult":
        return cls.from_dict(load_json(path))
