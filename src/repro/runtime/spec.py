"""Declarative experiment specifications.

A :class:`RunSpec` names one VQE run — application, scheme, iteration
count, seed, shots, trace scale and scheme overrides — without executing
anything. Specs are frozen, hashable and JSON-serializable, and carry a
stable content-hash :attr:`~RunSpec.run_id` that keys result caches.

An :class:`ExperimentPlan` is a sweep product (apps x schemes x seeds x
trace scales) that expands into the ``RunSpec`` list an
:class:`~repro.runtime.executors.Executor` consumes. Runs that share an
``(app, seed, trace_scale)`` cell share a starting point and transient
trace, which is exactly the paper's synchronous scheme-comparison
methodology.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.experiments.registry import APPLICATIONS, AppConfig, get_app, machine_app
from repro.experiments.schemes import SCHEME_NAMES

AppLike = Union[str, AppConfig]

#: Bump when the spec -> execution mapping changes meaning, so stale disk
#: caches can never be mistaken for current results.
SPEC_SCHEMA_VERSION = 1

_MACHINE_PREFIX = "machine:"


def resolve_app(app: AppLike) -> AppConfig:
    """Resolve a spec's app reference to a concrete :class:`AppConfig`.

    Accepts a Table 1 registry name (``"App1"``), a ``"machine:<name>"``
    reference (the Figs. 11-13 single-machine workload) or an explicit
    ``AppConfig`` for ad-hoc applications.
    """
    if isinstance(app, AppConfig):
        return app
    if app.startswith(_MACHINE_PREFIX):
        return machine_app(app[len(_MACHINE_PREFIX):])
    return get_app(app)


def canonical_app(app: AppLike) -> AppLike:
    """Collapse equivalent app spellings to one canonical reference.

    ``get_app("App1")`` and ``"App1"`` (and likewise ``machine_app("x")``
    and ``"machine:x"``, in any case) describe the same run; canonicalizing
    at spec construction keeps ``run_id`` — and therefore the result
    cache — spelling-independent.
    """
    if isinstance(app, AppConfig):
        if APPLICATIONS.get(app.name) == app:
            return app.name
        if app == machine_app(app.machine):
            return f"{_MACHINE_PREFIX}{app.machine}"
        return app
    if app.startswith(_MACHINE_PREFIX):
        return _MACHINE_PREFIX + app[len(_MACHINE_PREFIX):].lower()
    return app


def _app_key(app: AppLike) -> Any:
    """Canonical JSON-able form of an app reference (for hashing/dicts)."""
    if isinstance(app, AppConfig):
        return {f.name: getattr(app, f.name) for f in fields(AppConfig)}
    return app


def _app_from_key(key: Any) -> AppLike:
    if isinstance(key, dict):
        return AppConfig(**key)
    return key


def freeze_overrides(overrides: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a kwargs mapping into a hashable, sorted tuple of pairs.

    Values must be JSON scalars or (possibly nested) sequences thereof;
    sequences are frozen into tuples so the result stays hashable.
    """
    def freeze_value(value: Any) -> Any:
        if isinstance(value, (list, tuple)):
            return tuple(freeze_value(item) for item in value)
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        raise TypeError(
            f"override values must be JSON scalars or sequences, got {type(value)!r}"
        )

    return tuple(sorted((str(k), freeze_value(v)) for k, v in overrides.items()))


def _thaw(value: Any) -> Any:
    """Rebuild frozen override values from their JSON (list) form."""
    if isinstance(value, (list, tuple)):
        return tuple(_thaw(item) for item in value)
    return value


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined VQE run, independent of how it is executed.

    Everything stochastic about the run is derived from ``seed`` (per-app
    starting point, transient trace, per-scheme backend streams, shared
    SPSA perturbations), so executing the same spec anywhere — serially,
    in a worker process, or last week — yields bit-identical results.
    """

    app: AppLike
    scheme: str
    iterations: int
    seed: int = 2023
    shots: int = 8192
    trace_scale: float = 1.0
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.scheme not in SCHEME_NAMES:
            raise KeyError(
                f"unknown scheme {self.scheme!r}; known: {SCHEME_NAMES}"
            )
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.shots < 1:
            raise ValueError("shots must be >= 1")
        if self.trace_scale < 0:
            raise ValueError("trace_scale must be >= 0")
        object.__setattr__(self, "app", canonical_app(self.app))
        resolve_app(self.app)  # fail fast on unknown references
        object.__setattr__(self, "overrides", freeze_overrides(dict(self.overrides)))

    # -- identity -----------------------------------------------------------

    @property
    def app_name(self) -> str:
        return resolve_app(self.app).name

    @property
    def run_id(self) -> str:
        """Stable 16-hex-digit content hash; the cache key for this run."""
        canonical = json.dumps(
            {"schema": SPEC_SCHEMA_VERSION, **self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @property
    def comparison_key(self) -> Tuple[str, int, float]:
        """Runs sharing this key form one scheme comparison (same app,
        starting point and transient trace)."""
        return (self.app_name, self.seed, self.trace_scale)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": _app_key(self.app),
            "scheme": self.scheme,
            "iterations": self.iterations,
            "seed": self.seed,
            "shots": self.shots,
            "trace_scale": self.trace_scale,
            "overrides": [[k, v] for k, v in self.overrides],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        return cls(
            app=_app_from_key(data["app"]),
            scheme=data["scheme"],
            iterations=int(data["iterations"]),
            seed=int(data["seed"]),
            shots=int(data.get("shots", 8192)),
            trace_scale=float(data.get("trace_scale", 1.0)),
            overrides=tuple(
                (k, _thaw(v)) for k, v in data.get("overrides", [])
            ),
        )

    def override_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)


@dataclass(frozen=True)
class ExperimentPlan:
    """A declarative sweep: the cartesian product of apps, schemes, seeds
    and trace scales at a fixed iteration/shot budget.

    Expansion order is deterministic: apps (outer), then seeds, then trace
    scales, then schemes (inner), so runs belonging to one comparison cell
    are adjacent and plan expansion is reproducible.
    """

    apps: Tuple[AppLike, ...]
    schemes: Tuple[str, ...]
    iterations: int
    seeds: Tuple[int, ...] = (2023,)
    shots: int = 8192
    trace_scales: Tuple[float, ...] = (1.0,)
    overrides: Tuple[Tuple[str, Any], ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "apps", tuple(canonical_app(a) for a in self.apps))
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(
            self, "trace_scales", tuple(float(s) for s in self.trace_scales)
        )
        object.__setattr__(self, "overrides", freeze_overrides(dict(self.overrides)))
        if not self.apps:
            raise ValueError("plan needs at least one app")
        if not self.schemes:
            raise ValueError("plan needs at least one scheme")
        if not self.seeds:
            raise ValueError("plan needs at least one seed")
        if not self.trace_scales:
            raise ValueError("plan needs at least one trace scale")

    def expand(self) -> List[RunSpec]:
        return [
            RunSpec(
                app=app,
                scheme=scheme,
                iterations=self.iterations,
                seed=seed,
                shots=self.shots,
                trace_scale=scale,
                overrides=self.overrides,
            )
            for app in self.apps
            for seed in self.seeds
            for scale in self.trace_scales
            for scheme in self.schemes
        ]

    def __len__(self) -> int:
        return (
            len(self.apps) * len(self.schemes) * len(self.seeds)
            * len(self.trace_scales)
        )

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.expand())

    @property
    def plan_id(self) -> str:
        """Content hash over all expanded run ids."""
        digest = hashlib.sha256()
        for spec in self.expand():
            digest.update(spec.run_id.encode("ascii"))
        return digest.hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "apps": [_app_key(app) for app in self.apps],
            "schemes": list(self.schemes),
            "iterations": self.iterations,
            "seeds": list(self.seeds),
            "shots": self.shots,
            "trace_scales": list(self.trace_scales),
            "overrides": [[k, v] for k, v in self.overrides],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentPlan":
        return cls(
            apps=tuple(_app_from_key(a) for a in data["apps"]),
            schemes=tuple(data["schemes"]),
            iterations=int(data["iterations"]),
            seeds=tuple(data.get("seeds", (2023,))),
            shots=int(data.get("shots", 8192)),
            trace_scales=tuple(data.get("trace_scales", (1.0,))),
            overrides=tuple((k, _thaw(v)) for k, v in data.get("overrides", [])),
            name=data.get("name", ""),
        )

    # -- convenience constructors -------------------------------------------

    @classmethod
    def single(
        cls,
        app: AppLike,
        schemes: Sequence[str],
        iterations: int,
        seed: int = 2023,
        shots: int = 8192,
        trace_scale: float = 1.0,
        overrides: Mapping[str, Any] = (),
        name: str = "",
    ) -> "ExperimentPlan":
        """A one-app, one-seed plan: the classic ``run_comparison`` shape."""
        return cls(
            apps=(app,),
            schemes=tuple(schemes),
            iterations=iterations,
            seeds=(seed,),
            shots=shots,
            trace_scales=(trace_scale,),
            overrides=freeze_overrides(dict(overrides)),
            name=name,
        )
