"""The QISMET controller (the 'C' triangles of the paper's Fig. 7).

Combines a skip policy, a threshold provider, a retry budget and a *skip
budget* into the per-iteration accept/retry decision. The paper's "90p"
setting means "the error threshold is set so as to skip at most 10 % of
the iterations" (Section 6.3) — implemented here directly as a running
skip-fraction budget, with the energy threshold handling the orthogonal
"always accept small swings" region of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.core.estimator import TransientEstimate
from repro.core.policies import GradientFaithfulPolicy, SkipPolicy
from repro.core.thresholds import RobustNoiseThreshold, ThresholdProvider


class ControllerDecision(Enum):
    ACCEPT = "accept"
    RETRY = "retry"
    FORCED_ACCEPT = "forced_accept"  # retry budget exhausted (Section 8.1)
    BUDGET_ACCEPT = "budget_accept"  # skip budget exhausted (Section 6.3)


@dataclass
class ControllerStats:
    decisions: int = 0
    first_attempts: int = 0
    retries: int = 0
    forced_accepts: int = 0
    budget_accepts: int = 0
    skipped_iterations: int = 0  # iterations that entered at least one retry
    tm_history: List[float] = field(default_factory=list)

    @property
    def skip_fraction(self) -> float:
        """Fraction of first-attempt decisions that triggered a skip."""
        if self.first_attempts == 0:
            return 0.0
        return self.skipped_iterations / self.first_attempts


class QismetController:
    """Accept/retry decisions for VQA iterations.

    ``retry_budget`` bounds consecutive retries of one iteration (the
    paper fixes it to 5; Section 8.1 discusses the trade-off: large enough
    to outlast short transients, small enough to adapt quickly to lasting
    device changes such as recalibration). ``max_skip_fraction`` bounds
    the long-run fraction of iterations that may be skipped (0.10 for the
    paper's best "90p" setting).
    """

    def __init__(
        self,
        policy: Optional[SkipPolicy] = None,
        threshold: Optional[ThresholdProvider] = None,
        retry_budget: int = 5,
        max_skip_fraction: float = 0.10,
        warmup_decisions: int = 8,
    ):
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if not 0.0 <= max_skip_fraction <= 1.0:
            raise ValueError("max_skip_fraction must be in [0, 1]")
        self.policy = policy if policy is not None else GradientFaithfulPolicy()
        self.threshold = (
            threshold if threshold is not None else RobustNoiseThreshold()
        )
        self.retry_budget = retry_budget
        self.max_skip_fraction = max_skip_fraction
        self.warmup_decisions = warmup_decisions
        self.stats = ControllerStats()

    def _skip_budget_available(self) -> bool:
        if self.stats.first_attempts < self.warmup_decisions:
            return False
        projected = (self.stats.skipped_iterations + 1) / self.stats.first_attempts
        return projected <= self.max_skip_fraction

    def decide(
        self, estimate: TransientEstimate, retries_so_far: int
    ) -> ControllerDecision:
        """Judge one candidate evaluation.

        Only first attempts feed the threshold calibrator: retries
        re-measure the same transient and would double-count it, biasing
        the noise-floor estimate upward.
        """
        self.stats.decisions += 1
        first_attempt = retries_so_far == 0
        if first_attempt:
            self.stats.first_attempts += 1
            self.stats.tm_history.append(estimate.tm)
            self.threshold.observe(abs(estimate.tm))
        tau = self.threshold.current()

        if self.policy.accepts(estimate, tau):
            return ControllerDecision.ACCEPT
        if first_attempt and not self._skip_budget_available():
            self.stats.budget_accepts += 1
            return ControllerDecision.BUDGET_ACCEPT
        if retries_so_far >= self.retry_budget:
            self.stats.forced_accepts += 1
            return ControllerDecision.FORCED_ACCEPT
        if first_attempt:
            self.stats.skipped_iterations += 1
        self.stats.retries += 1
        return ControllerDecision.RETRY
