"""Transient estimation (paper Section 5.1, Fig. 8).

Given the previous iteration's original energy ``Em(i)``, its rerun inside
the current job ``EmR(i)``, and the current candidate's energy
``Em(i+1)``, QISMET computes:

* ``Tm(i+1) = EmR(i) - Em(i)``       — estimated transient error,
* ``Gm(i+1) = Em(i+1) - Em(i)``      — machine (perceived) gradient,
* ``Ep(i+1) = Em(i+1) - Tm(i+1)``    — predicted transient-free energy,
* ``Gp(i+1) = Ep(i+1) - Em(i)``      — predicted transient-free gradient.

The underlying assumption — the transient affecting the rerun equals the
one affecting the candidate — holds because both circuits execute inside
the same job (the previous iteration is "the closest possible reference
circuit").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransientEstimate:
    """All per-iteration quantities the QISMET controller consumes."""

    em_prev: float
    em_rerun: float
    em_new: float

    @property
    def tm(self) -> float:
        """Estimated transient error on the current job."""
        return self.em_rerun - self.em_prev

    @property
    def gm(self) -> float:
        """Machine-observed gradient (what a traditional tuner sees)."""
        return self.em_new - self.em_prev

    @property
    def ep(self) -> float:
        """Predicted transient-free energy of the candidate."""
        return self.em_new - self.tm

    @property
    def gp(self) -> float:
        """Predicted transient-free gradient."""
        return self.ep - self.em_prev

    @property
    def gradients_agree(self) -> bool:
        """True when Gm and Gp point in the same direction (Fig. 9 a/b/d/e).

        Zero gradients count as agreement: a flat estimate cannot flip a
        configuration between perceived-good and perceived-bad.
        """
        return self.gm * self.gp >= 0.0

    def within_threshold(self, tau: float) -> bool:
        """Both swings inside the always-accept region (Fig. 9, shaded)."""
        return abs(self.gm) <= tau and abs(self.gp) <= tau


def estimate_transient(
    em_prev: float, em_rerun: float, em_new: float
) -> TransientEstimate:
    """Convenience constructor matching the paper's notation order."""
    return TransientEstimate(em_prev=em_prev, em_rerun=em_rerun, em_new=em_new)
