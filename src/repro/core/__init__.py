"""QISMET: Quantum Iteration Skipping to Mitigate Error Transients.

The paper's contribution, in three pieces (paper Section 5):

1. :mod:`~repro.core.estimator` — transient estimation from the rerun of
   the previous iteration's circuit (``Tm``, ``Ep``, ``Gm``, ``Gp``);
2. :mod:`~repro.core.controller` + :mod:`~repro.core.policies` — the
   gradient-faithful controller accepting an iteration only when machine
   and predicted transient-free gradients agree in direction (Fig. 9),
   with a retry budget;
3. :mod:`~repro.core.thresholds` — percentile-based error-threshold
   calibration ("90p" skips at most ~10 % of iterations).
"""

from repro.core.estimator import TransientEstimate, estimate_transient
from repro.core.thresholds import (
    FixedThreshold,
    OnlinePercentileThreshold,
    TraceCalibratedThreshold,
)
from repro.core.policies import (
    AlwaysAcceptPolicy,
    CFARPolicy,
    GradientFaithfulPolicy,
    OnlyTransientsPolicy,
)
from repro.core.controller import ControllerDecision, QismetController

__all__ = [
    "TransientEstimate",
    "estimate_transient",
    "FixedThreshold",
    "OnlinePercentileThreshold",
    "TraceCalibratedThreshold",
    "AlwaysAcceptPolicy",
    "GradientFaithfulPolicy",
    "OnlyTransientsPolicy",
    "CFARPolicy",
    "ControllerDecision",
    "QismetController",
]
