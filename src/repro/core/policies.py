"""Skip policies: how a controller judges one iteration.

:class:`GradientFaithfulPolicy` is QISMET's (Fig. 9). The others are the
paper's comparison points: :class:`OnlyTransientsPolicy` (Section 5.3 /
Fig. 15, shown to be counterproductive) and :class:`AlwaysAcceptPolicy`
(the baseline). :class:`CFARPolicy` implements the constant-false-alarm-
rate detector the paper mentions in Section 8.4.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np

from repro.core.estimator import TransientEstimate


class SkipPolicy:
    """Protocol: ``accepts(estimate, tau) -> bool``."""

    def accepts(self, estimate: TransientEstimate, tau: float) -> bool:
        raise NotImplementedError


class AlwaysAcceptPolicy(SkipPolicy):
    """The traditional VQA baseline: never skip."""

    def accepts(self, estimate: TransientEstimate, tau: float) -> bool:
        return True


class GradientFaithfulPolicy(SkipPolicy):
    """QISMET's controller logic (paper Fig. 9).

    Accept when the machine gradient ``Gm`` and the predicted
    transient-free gradient ``Gp`` agree in direction (cases a/b/d/e), or
    when both swings lie inside the always-accept threshold region.
    Reject exactly the direction-flipping cases (c) and (f) whose swing
    exceeds the threshold.
    """

    def accepts(self, estimate: TransientEstimate, tau: float) -> bool:
        if estimate.gradients_agree:
            return True
        return estimate.within_threshold(tau)


class OnlyTransientsPolicy(SkipPolicy):
    """Skip whenever the estimated transient magnitude exceeds a threshold.

    The "intuitive alternative" of Section 5.3: reject iff
    ``|Tm| > tau`` regardless of gradient directions. The paper (and our
    Fig. 15 bench) shows this is worse than the baseline because it also
    skips transients that are *constructive* to VQA progress.
    """

    def accepts(self, estimate: TransientEstimate, tau: float) -> bool:
        return abs(estimate.tm) <= tau


class CFARPolicy(SkipPolicy):
    """Cell-averaging constant-false-alarm-rate transient detector.

    Maintains a sliding window of recent |Tm| values as the noise-floor
    estimate; flags a transient (and skips) when the current |Tm| exceeds
    ``alarm_factor`` times the floor. Like the Kalman filter, it judges
    only magnitudes, not gradient direction, so it shares the
    only-transients weakness.
    """

    def __init__(self, window: int = 24, alarm_factor: float = 4.0):
        if window < 2:
            raise ValueError("window must be >= 2")
        if alarm_factor <= 1.0:
            raise ValueError("alarm_factor must exceed 1")
        self.window = window
        self.alarm_factor = alarm_factor
        self._history: Deque[float] = deque(maxlen=window)

    def accepts(self, estimate: TransientEstimate, tau: float) -> bool:
        magnitude = abs(estimate.tm)
        floor = float(np.mean(self._history)) if self._history else 0.0
        self._history.append(magnitude)
        if len(self._history) < self.window // 2:
            return True  # warm-up: no reliable noise floor yet
        if floor <= 0.0:
            return True
        return magnitude <= self.alarm_factor * floor
