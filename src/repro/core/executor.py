"""Evaluation executors: how objective evaluations map onto quantum jobs.

Every objective evaluation runs as its own quantum job (on IBMQ, each
energy estimate is a batch of basis-group circuits submitted together).
A classical tuner forms gradients from *differences between consecutive
evaluations*, so a transient hitting one job corrupts the measured
gradient by the full transient amount — the damage mechanism of the
paper's Section 4.1.

:class:`GuardedEvaluator` is QISMET's execution instance (Fig. 7/8): each
job runs the requested circuit *plus a rerun of the previous evaluation's
circuit*. Because rerun and original are the same circuit executed in
adjacent jobs, ``Tm = EmR - Em_prev`` measures the transient shift between
the jobs exactly (up to shot noise), and the controller can keep the
evaluation-to-evaluation gradient sign faithful. This is also why the
paper's Section 8.3 reports "at least 2x" circuit overhead: every
execution instance carries the reference rerun.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends.base import EnergyBackend
from repro.core.controller import ControllerDecision, QismetController
from repro.core.estimator import TransientEstimate


class PlainEvaluator:
    """Baseline executor: one job per evaluation, no guarding."""

    def __init__(self, backend: EnergyBackend):
        self.backend = backend

    def energy(self, theta: np.ndarray) -> float:
        return self.backend.new_job().energy(theta)

    def energies(self, thetas: np.ndarray) -> np.ndarray:
        """Evaluate a ``(B, P)`` block, one job per row, batched.

        The batch contract consumed by :func:`repro.optimizers.base.
        evaluate_many`: SPSA-style optimizers hand their theta+/theta-
        pairs (and resampling/2SPSA blocks) here, and batch-capable
        backends run all rows through the vectorized simulator at once.
        """
        return self.backend.evaluate_jobs(thetas)

    def __call__(self, theta: np.ndarray) -> float:
        return self.energy(theta)

    @property
    def total_retries(self) -> int:
        return 0

    def reset(self) -> None:
        self.backend.reset()


class GuardedEvaluator:
    """QISMET executor: every evaluation guarded by a reference rerun.

    Keeps ``(last_theta, last_energy)`` — the previous evaluation and its
    recorded energy. Each new evaluation's job also reruns ``last_theta``;
    the controller compares the observed gradient ``Gm = E_new - E_last``
    against the transient-free prediction ``Gp`` and retries the job (with
    a fresh transient draw) when the transient flipped the gradient
    direction. On acceptance (including forced and budget-limited
    acceptance) the new evaluation becomes the reference.
    """

    def __init__(self, backend: EnergyBackend, controller: QismetController):
        self.backend = backend
        self.controller = controller
        self._last_theta: Optional[np.ndarray] = None
        self._last_energy: Optional[float] = None
        self.total_retries = 0

    def energy(self, theta: np.ndarray) -> float:
        theta = np.asarray(theta, dtype=float)
        if self._last_theta is None:
            # First evaluation: nothing to guard against yet.
            value = self.backend.new_job().energy(theta)
            self._last_theta, self._last_energy = theta.copy(), value
            return value

        retries = 0
        while True:
            job = self.backend.new_job()
            value = job.energy(theta)
            rerun = job.energy(self._last_theta)
            estimate = TransientEstimate(
                em_prev=self._last_energy, em_rerun=rerun, em_new=value
            )
            decision = self.controller.decide(estimate, retries)
            if decision is ControllerDecision.RETRY:
                retries += 1
                continue
            break
        self.total_retries += retries
        self._last_theta, self._last_energy = theta.copy(), value
        return value

    def __call__(self, theta: np.ndarray) -> float:
        return self.energy(theta)

    def reset(self) -> None:
        self.backend.reset()
        self._last_theta = None
        self._last_energy = None
        self.total_retries = 0
