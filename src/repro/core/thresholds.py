"""QISMET error-threshold calibration.

The paper parameterizes QISMET by the fraction of iterations it may skip:
"90p" sets the threshold at the 90th percentile of transient-swing
magnitudes so at most ~10 % of iterations can trigger a skip (the best
trade-off, Section 7.7); "99p" is conservative (~1 %) and "75p"
aggressive (~25 %).
"""

from __future__ import annotations

import numpy as np

from repro.noise.transient.trace import TransientTrace
from repro.utils.stats import running_percentile


class ThresholdProvider:
    """Protocol: supplies the current threshold and learns from swings."""

    def current(self) -> float:
        raise NotImplementedError

    def observe(self, swing_magnitude: float) -> None:
        """Record an observed |transient swing| (no-op by default)."""


class FixedThreshold(ThresholdProvider):
    """A constant threshold in energy units."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError("threshold must be non-negative")
        self.value = float(value)

    def current(self) -> float:
        return self.value


class OnlinePercentileThreshold(ThresholdProvider):
    """Threshold tracking a percentile of observed swing magnitudes.

    During a short warm-up (too few observations for a stable percentile)
    the threshold is effectively infinite, i.e. QISMET accepts everything —
    matching how a deployment would behave before it has seen any
    transient statistics.

    Note: a raw percentile is only well calibrated when transients are
    rarer than ``100 - percentile`` percent of jobs; on very noisy machines
    the percentile lands *inside* the transient distribution and the
    threshold balloons. :class:`RobustNoiseThreshold` avoids this and is
    what the QISMET controller uses by default.
    """

    def __init__(self, percentile: float = 90.0, window: int = 512, warmup: int = 8):
        self.percentile = percentile
        self.warmup = warmup
        self._estimator = running_percentile(percentile, window=window)

    def observe(self, swing_magnitude: float) -> None:
        self._estimator.update(abs(swing_magnitude))

    def current(self) -> float:
        if self._estimator.count < self.warmup:
            return float("inf")
        return self._estimator.value()


class RobustNoiseThreshold(ThresholdProvider):
    """Threshold as a multiple of the robust quiet-period noise scale.

    The |Tm| stream is a bulk of quiet-period measurement noise plus
    transient outliers. The median-absolute-deviation estimate of the bulk
    scale is insensitive to the outliers (unlike a high percentile), so the
    threshold cleanly separates "shot-noise swing" from "transient swing":
    ``tau = multiplier * 1.4826 * median(|Tm|)``.
    """

    _MAD_TO_SIGMA = 1.4826

    def __init__(self, multiplier: float = 4.0, window: int = 256, warmup: int = 8):
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if window < 4:
            raise ValueError("window must be >= 4")
        self.multiplier = multiplier
        self.warmup = warmup
        self.window = window
        self._values: list = []

    def observe(self, swing_magnitude: float) -> None:
        self._values.append(abs(float(swing_magnitude)))
        if len(self._values) > self.window:
            del self._values[0]

    def current(self) -> float:
        if len(self._values) < self.warmup:
            return float("inf")
        median = float(np.median(self._values))
        return self.multiplier * self._MAD_TO_SIGMA * median


class TraceCalibratedThreshold(ThresholdProvider):
    """Offline calibration against a known transient trace.

    Matches the paper's simulation setup where traces are built ahead of
    time: the threshold is the trace's |value| percentile scaled by the
    reference energy magnitude the backend applies.
    """

    def __init__(
        self,
        trace: TransientTrace,
        percentile: float = 90.0,
        reference_scale: float = 1.0,
    ):
        if reference_scale <= 0:
            raise ValueError("reference_scale must be positive")
        self.percentile = percentile
        self.reference_scale = reference_scale
        self._value = trace.magnitude_percentile(percentile) * reference_scale

    def current(self) -> float:
        return self._value
