"""QISMET reproduction library.

Reproduces "Navigating the Dynamic Noise Landscape of Variational Quantum
Algorithms with QISMET" (Ravi et al., ASPLOS 2023) end to end: a quantum
circuit simulator with static and transient noise models, VQE with SPSA
tuning, and the QISMET transient-skipping controller plus all the paper's
comparison schemes.

Quickstart::

    from repro import (
        EfficientSU2, EnergyObjective, QismetController, SPSA,
        TransientBackend, VQE, tfim_hamiltonian,
    )
    from repro.noise.transient import TransientProfile, generate_trace

    hamiltonian = tfim_hamiltonian(6)
    objective = EnergyObjective(EfficientSU2(6, reps=2), hamiltonian)
    trace = generate_trace(TransientProfile(), length=600, seed=7)
    backend = TransientBackend(objective, trace, seed=11)
    vqe = VQE(objective, backend, SPSA(seed=13), controller=QismetController())
    result = vqe.run(300, seed=17)
    print(result.final_machine_energy)

The batched evaluation engine (``BatchedStatevectorSimulator``,
``EnergyObjective.batch_energies``, ``PopulationVQE``), the unified
compiler pipeline (``compile_plan``, ``compile_noise_plan``,
``transpile_then_compile``, ``GatePlan``, ``NoisePlan``; see
:mod:`repro.compiler`), the noisy-execution engines
(``DensityMatrixSimulator``, ``TrajectorySimulator``; knob
``REPRO_NOISY_ENGINE=dm|traj``) and the fleet scheduling service
(``FleetExecutor``, ``FleetService``, ``DeviceFleet``; see
:mod:`repro.fleet`) are exported here too, so workers and downstream
users never need to reach into submodules.
"""

__version__ = "1.0.0"

from repro.ansatz import EfficientSU2, RealAmplitudes
from repro.backends import (
    CountsBackend,
    IdealBackend,
    StaticNoiseBackend,
    TransientBackend,
)
from repro.circuits import Parameter, ParameterVector, QuantumCircuit
from repro.compiler import (
    GatePlan,
    NoisePlan,
    compile_noise_plan,
    compile_plan,
    plan_cache_stats,
    transpile_then_compile,
)
from repro.simulator import (
    BatchedStatevectorSimulator,
    DensityMatrixSimulator,
    TrajectorySimulator,
    simulate_statevectors,
)
from repro.core import (
    GradientFaithfulPolicy,
    OnlinePercentileThreshold,
    OnlyTransientsPolicy,
    QismetController,
    TransientEstimate,
)
from repro.hamiltonians import (
    h2_hamiltonian,
    h2_problem,
    heisenberg_hamiltonian,
    maxcut_hamiltonian,
    tfim_exact_ground_energy,
    tfim_hamiltonian,
)
from repro.noise import NoiseModel, ReadoutError, ReadoutMitigator
from repro.operators import PauliString, PauliSum
from repro.optimizers import (
    SPSA,
    BlockingSPSA,
    ParameterShiftGradientDescent,
    ResamplingSPSA,
    SecondOrderSPSA,
)
from repro.runtime import (
    CachedExecutor,
    ExperimentPlan,
    ParallelExecutor,
    PlanResult,
    RunResult,
    RunSpec,
    SerialExecutor,
)
from repro.fleet import DeviceFleet, FleetExecutor, FleetService
from repro.vqa import EnergyObjective, PopulationVQE, VQE, VQEResult

__all__ = [
    "__version__",
    "EfficientSU2",
    "RealAmplitudes",
    "CountsBackend",
    "IdealBackend",
    "StaticNoiseBackend",
    "TransientBackend",
    "Parameter",
    "ParameterVector",
    "QuantumCircuit",
    "GatePlan",
    "NoisePlan",
    "compile_noise_plan",
    "compile_plan",
    "plan_cache_stats",
    "transpile_then_compile",
    "GradientFaithfulPolicy",
    "OnlinePercentileThreshold",
    "OnlyTransientsPolicy",
    "QismetController",
    "TransientEstimate",
    "h2_hamiltonian",
    "h2_problem",
    "heisenberg_hamiltonian",
    "maxcut_hamiltonian",
    "tfim_exact_ground_energy",
    "tfim_hamiltonian",
    "NoiseModel",
    "ReadoutError",
    "ReadoutMitigator",
    "PauliString",
    "PauliSum",
    "SPSA",
    "BlockingSPSA",
    "ParameterShiftGradientDescent",
    "ResamplingSPSA",
    "SecondOrderSPSA",
    "CachedExecutor",
    "ExperimentPlan",
    "ParallelExecutor",
    "PlanResult",
    "RunResult",
    "RunSpec",
    "SerialExecutor",
    "BatchedStatevectorSimulator",
    "DensityMatrixSimulator",
    "TrajectorySimulator",
    "simulate_statevectors",
    "DeviceFleet",
    "FleetExecutor",
    "FleetService",
    "EnergyObjective",
    "PopulationVQE",
    "VQE",
    "VQEResult",
]
