"""Deterministic fault plans: *what* fails, *where*, and *when*.

A :class:`FaultPlan` is a declarative schedule of injected failures over
the named fault sites registered across the execution stack (JobStore
transitions, ``execute_run``, store blob I/O, plan-cache access, device
calibration refresh — see the README's fault-site table). Schedules are
pure functions of content-hashed seeds (:func:`repro.utils.rng.derive_seed`
over ``(seed, site, kind, key, index)``), never of wall-clock time or the
global RNG, so a failure run reproduces bit-identically: the same plan
against the same workload injects exactly the same faults, regardless of
thread interleaving (each decision is keyed by the *per-site, per-run-id*
invocation index, not a global counter).

Plans come from code (``FaultPlan(specs=(...,))``) or from the
``REPRO_FAULTS`` environment knob, whose grammar is::

    site:kind[:key=value]*[;site:kind...]

for example::

    REPRO_FAULTS="execute.run:fail:rate=0.25:seed=11;jobstore.mark_done:crash:hits=3"

* ``site`` — a fault-site name, exact or an ``fnmatch`` glob
  (``jobstore.*``);
* ``kind`` — ``fail`` (raise a transient :class:`~repro.faults.inject.
  InjectedFault`), ``crash`` (raise :class:`~repro.faults.inject.
  InjectedCrash`, simulating process death before commit), ``latency``
  (sleep a spike), or ``corrupt`` (mangle a payload passing through the
  site);
* ``rate=<float>`` — per-invocation trigger probability (default 1.0);
* ``hits=<i,j,...>`` — explicit 0-based invocation indices that trigger
  (overrides ``rate``);
* ``max=<n>`` — cap on total triggers for this spec;
* ``latency=<seconds>`` — sleep length for ``latency`` faults;
* ``detail=<text>`` — free-form message carried by the raised fault;
* ``seed=<int>`` — per-spec seed override (else the plan seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import List, Optional, Tuple

from repro.utils.rng import derive_seed

#: The fault kinds a spec may schedule.
KINDS = ("fail", "crash", "latency", "corrupt")

#: Default sleep for ``latency`` faults (seconds) — long enough to shuffle
#: thread interleavings, short enough to keep chaos suites fast.
DEFAULT_LATENCY_S = 0.005


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: a site pattern, a kind, and a trigger rule."""

    site: str
    kind: str
    rate: float = 1.0
    hits: Tuple[int, ...] = ()
    max_triggers: Optional[int] = None
    latency_s: float = DEFAULT_LATENCY_S
    detail: str = ""
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault site must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if any(h < 0 for h in self.hits):
            raise ValueError("hits must be >= 0")
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError("max must be >= 1")
        if self.latency_s <= 0:
            raise ValueError("latency must be positive")

    def matches(self, site: str) -> bool:
        return self.site == site or fnmatchcase(site, self.site)

    def triggers(self, site: str, key: str, index: int, plan_seed: int) -> bool:
        """Whether invocation ``index`` of ``(site, key)`` fires this fault.

        ``hits`` wins when given; otherwise a derived-seed Bernoulli draw
        at ``rate``. Either way the decision is a pure function of
        ``(seed, site, kind, key, index)`` — reproducible across runs,
        processes and thread interleavings.
        """
        if self.hits:
            return index in self.hits
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        seed = self.seed if self.seed is not None else plan_seed
        draw = derive_seed(seed, f"fault:{site}:{self.kind}:{key}:{index}")
        return (draw / float(1 << 63)) < self.rate


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec` plus the schedule seed."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 2023

    def matching(self, site: str) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.matches(site))

    @property
    def sites(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.site for spec in self.specs}))

    @classmethod
    def parse(cls, text: str, seed: int = 2023) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see the module docstring)."""
        specs: List[FaultSpec] = []
        for segment in text.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            fields = segment.split(":")
            if len(fields) < 2:
                raise ValueError(
                    f"fault segment {segment!r} needs at least site:kind"
                )
            site, kind = fields[0].strip(), fields[1].strip()
            kwargs = {}
            for option in fields[2:]:
                name, sep, value = option.partition("=")
                name, value = name.strip(), value.strip()
                if not sep:
                    raise ValueError(
                        f"fault option {option!r} must be key=value"
                    )
                if name == "rate":
                    kwargs["rate"] = float(value)
                elif name == "hits":
                    kwargs["hits"] = tuple(
                        int(h) for h in value.split(",") if h.strip()
                    )
                elif name == "max":
                    kwargs["max_triggers"] = int(value)
                elif name == "latency":
                    kwargs["latency_s"] = float(value)
                elif name == "detail":
                    kwargs["detail"] = value
                elif name == "seed":
                    kwargs["seed"] = int(value)
                else:
                    raise ValueError(f"unknown fault option {name!r}")
            specs.append(FaultSpec(site=site, kind=kind, **kwargs))
        return cls(specs=tuple(specs), seed=seed)

    def render(self) -> str:
        """Round-trip a plan back to ``REPRO_FAULTS`` syntax."""
        segments = []
        for spec in self.specs:
            parts = [spec.site, spec.kind]
            if spec.hits:
                parts.append("hits=" + ",".join(str(h) for h in spec.hits))
            elif spec.rate != 1.0:
                parts.append(f"rate={spec.rate}")
            if spec.max_triggers is not None:
                parts.append(f"max={spec.max_triggers}")
            if spec.latency_s != DEFAULT_LATENCY_S:
                parts.append(f"latency={spec.latency_s}")
            if spec.detail:
                parts.append(f"detail={spec.detail}")
            if spec.seed is not None:
                parts.append(f"seed={spec.seed}")
            segments.append(":".join(parts))
        return ";".join(segments)
