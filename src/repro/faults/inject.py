"""The fault injector: named sites, deterministic schedules, a trace.

Production code registers *fault sites* by calling
:meth:`FaultInjector.fire` (for exception/crash/latency faults) or
:meth:`FaultInjector.corrupt` (for payload corruption) at every boundary
that can fail for real — JobStore transitions, ``execute_run``, store
blob reads/writes, plan-cache access, calibration refresh. With no plan
installed both calls are near-free no-ops, so the sites stay in the hot
path permanently.

A plan arrives either programmatically (:meth:`FaultInjector.install`)
or lazily from the ``REPRO_FAULTS`` environment knob on the first
``fire`` — the env route is what lets process-pool children and CLI
subprocesses inherit the chaos schedule without any plumbing.

Every triggered fault is counted (``fault.injected`` in
:data:`repro.obs.METRICS`) and recorded; :meth:`FaultInjector.trace`
returns the events in a deterministic sorted order, which is what the
chaos tests compare run-over-run to prove schedules reproduce
bit-identically (decisions are keyed per ``(site, run_id)`` invocation
index, so thread interleaving cannot perturb them).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import METRICS

#: Environment knob carrying a ``FaultPlan.parse`` schedule.
FAULTS_ENV = "REPRO_FAULTS"

#: Prefix a ``corrupt`` fault prepends to a payload: breaks both the
#: content address and JSON decoding, so corrupt reads/writes are always
#: detected, never silently served.
CORRUPT_PREFIX = "\x00corrupt::"


class InjectedFault(RuntimeError):
    """A scheduled *transient* failure — retryable by policy."""

    def __init__(self, site: str, kind: str, index: int, detail: str = ""):
        self.site = site
        self.kind = kind
        self.index = index
        self.detail = detail
        message = f"injected {kind} at {site} (invocation {index})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class InjectedCrash(RuntimeError):
    """A scheduled *crash* — simulates process death before a commit.

    Deliberately **not** an :class:`InjectedFault` subclass: retry
    policies must never classify a crash as transient, and handlers that
    degrade gracefully on ``InjectedFault`` must not swallow it.
    """

    def __init__(self, site: str, index: int, detail: str = ""):
        self.site = site
        self.index = index
        self.detail = detail
        message = f"injected crash at {site} (invocation {index})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class FaultInjector:
    """Process-wide fault-site dispatcher with per-key invocation counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plan: Optional[FaultPlan] = None
        self._env_resolved = False
        #: (site, key) -> how many times the site fired for that key.
        self._counts: Dict[Tuple[str, str], int] = {}
        #: (spec position in plan) -> total triggers (for ``max=``).
        self._spec_triggers: Dict[int, int] = {}
        self._events: List[Dict[str, Any]] = []

    # -- plan management -----------------------------------------------------

    def install(self, plan: Optional[FaultPlan]) -> None:
        """Install a plan (or ``None``) and reset all schedule state."""
        with self._lock:
            self._plan = plan
            self._env_resolved = True
            self._counts.clear()
            self._spec_triggers.clear()
            self._events.clear()

    def uninstall(self) -> None:
        """Drop the plan and return to lazy ``REPRO_FAULTS`` resolution."""
        with self._lock:
            self._plan = None
            self._env_resolved = False
            self._counts.clear()
            self._spec_triggers.clear()
            self._events.clear()

    def reset(self) -> None:
        """Clear invocation counts and events, keeping the plan."""
        with self._lock:
            self._counts.clear()
            self._spec_triggers.clear()
            self._events.clear()

    def _resolve(self) -> Optional[FaultPlan]:
        with self._lock:
            if not self._env_resolved:
                text = os.environ.get(FAULTS_ENV, "").strip()
                self._plan = FaultPlan.parse(text) if text else None
                self._env_resolved = True
            return self._plan

    @property
    def active(self) -> bool:
        return self._resolve() is not None

    # -- scheduling ----------------------------------------------------------

    def _decide(
        self, plan: FaultPlan, site: str, key: str, kinds: Tuple[str, ...]
    ) -> Optional[Tuple[FaultSpec, int]]:
        """Bump the ``(site, key)`` counter; return a triggered spec.

        The counter advances on every invocation (triggered or not) so
        ``hits=`` indices line up with call order; the first matching
        spec of an accepted kind that triggers (and is under its
        ``max=`` cap) wins.
        """
        with self._lock:
            index = self._counts.get((site, key), 0)
            self._counts[(site, key)] = index + 1
            for position, spec in enumerate(plan.specs):
                if spec.kind not in kinds or not spec.matches(site):
                    continue
                if not spec.triggers(site, key, index, plan.seed):
                    continue
                fired = self._spec_triggers.get(position, 0)
                if spec.max_triggers is not None and fired >= spec.max_triggers:
                    continue
                self._spec_triggers[position] = fired + 1
                self._events.append(
                    {
                        "site": site,
                        "key": key,
                        "index": index,
                        "kind": spec.kind,
                    }
                )
                return spec, index
        return None

    def fire(self, site: str, run_id: Optional[str] = None) -> None:
        """Evaluate exception/crash/latency faults at ``site``.

        ``run_id`` (or any stable key) scopes the invocation counter so
        schedules are insensitive to thread interleaving; ``None`` falls
        back to a per-site counter (fine for serial call sites).
        """
        plan = self._resolve()
        if plan is None:
            return
        key = run_id if run_id is not None else "-"
        hit = self._decide(plan, site, key, ("fail", "crash", "latency"))
        if hit is None:
            return
        spec, index = hit
        METRICS.counter("fault.injected").inc()
        if spec.kind == "crash":
            raise InjectedCrash(site, index, spec.detail)
        if spec.kind == "latency":
            time.sleep(spec.latency_s)
            return
        raise InjectedFault(site, spec.kind, index, spec.detail)

    def corrupt(self, site: str, payload: str, run_id: Optional[str] = None) -> str:
        """Deterministically mangle ``payload`` when a corrupt fault fires.

        The mangled text fails both JSON decoding and any content-address
        check, so downstream integrity guards must notice it.
        """
        plan = self._resolve()
        if plan is None:
            return payload
        key = run_id if run_id is not None else "-"
        hit = self._decide(plan, site, key, ("corrupt",))
        if hit is None:
            return payload
        METRICS.counter("fault.injected").inc()
        return CORRUPT_PREFIX + payload

    # -- inspection ----------------------------------------------------------

    def trace(self) -> List[Dict[str, Any]]:
        """Triggered-fault events in deterministic (sorted) order."""
        with self._lock:
            events = [dict(event) for event in self._events]
        events.sort(
            key=lambda e: (e["site"], e["key"], e["index"], e["kind"])
        )
        return events


#: The process-wide injector every fault site fires through.
INJECTOR = FaultInjector()
