"""Unified retry/backoff policy for workers and executors.

One :class:`RetryPolicy` shape is applied everywhere a transient failure
can be absorbed: the fleet's per-device workers (which sleep on the
fleet's :class:`~repro.fleet.clock.SimulatedClock` in *ticks*), and the
store-backed executor cache (which degrades an unreadable entry to a
miss). Backoff is exponential with derived-RNG jitter
(:func:`repro.utils.rng.derive_rng` over ``(seed, run_id, attempt)``) —
never wall-clock or global-RNG based, so a retried run's tick schedule
is part of the reproducible record.

``REPRO_RETRY_MAX`` / ``REPRO_RETRY_BACKOFF`` override the defaults for
env-constructed services (:meth:`RetryPolicy.from_env`).
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from repro.faults.inject import InjectedCrash, InjectedFault
from repro.obs import METRICS
from repro.utils.rng import derive_rng

#: Environment knobs (see the README's ``REPRO_*`` table).
RETRY_MAX_ENV = "REPRO_RETRY_MAX"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Exception classes retried by default. Deliberately excludes plain
#: ``RuntimeError``/``ValueError`` — a deterministic workload that raised
#: once will raise identically on every retry, so only classes that model
#: *environmental* transients qualify. ``InjectedCrash`` is never
#: retryable regardless of this tuple.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    InjectedFault,
    TimeoutError,
    ConnectionError,
    OSError,
    sqlite3.OperationalError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, how long to back off, and on what."""

    #: Total execution attempts (1 = never retry).
    max_attempts: int = 3
    #: First backoff, in fleet-clock ticks (scaled by ``backoff_factor``
    #: each further attempt).
    backoff_base: int = 1
    backoff_factor: float = 2.0
    #: Max extra ticks of derived-RNG jitter added per backoff (0 = none).
    jitter: int = 1
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE
    #: Seed for the jitter stream (derived per ``(run_id, attempt)``).
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def is_retryable(self, exc: BaseException) -> bool:
        """Crash faults never retry; everything else goes by class."""
        if isinstance(exc, InjectedCrash):
            return False
        return isinstance(exc, self.retryable)

    def backoff_ticks(self, label: str, attempt: int) -> int:
        """Backoff before retry ``attempt`` (1-based), in clock ticks.

        ``base * factor**(attempt-1)`` plus a jitter draw from a derived
        RNG keyed by ``(seed, label, attempt)`` — bit-stable per job, yet
        de-synchronized across jobs so retried work spreads out.
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        base = int(round(self.backoff_base * self.backoff_factor ** (attempt - 1)))
        extra = 0
        if self.jitter:
            rng = derive_rng(self.seed, f"retry:{label}:{attempt}")
            extra = int(rng.integers(0, self.jitter + 1))
        return max(1, base + extra)

    @classmethod
    def from_env(cls, **overrides) -> "RetryPolicy":
        """Build a policy from ``REPRO_RETRY_MAX``/``REPRO_RETRY_BACKOFF``.

        Explicit ``overrides`` win over the environment; malformed env
        values fall back to the defaults rather than failing startup.
        """
        if "max_attempts" not in overrides:
            raw = os.environ.get(RETRY_MAX_ENV, "").strip()
            if raw:
                try:
                    overrides["max_attempts"] = max(1, int(raw))
                except ValueError:
                    pass  # malformed knob: keep the default
        if "backoff_base" not in overrides:
            raw = os.environ.get(RETRY_BACKOFF_ENV, "").strip()
            if raw:
                try:
                    overrides["backoff_base"] = max(0, int(raw))
                except ValueError:
                    pass  # malformed knob: keep the default
        return cls(**overrides)


def call_with_retry(
    fn: Callable[[], object],
    *,
    policy: Optional[RetryPolicy] = None,
    label: str = "",
    sleep: Optional[Callable[[int], None]] = None,
):
    """Call ``fn`` under ``policy``, retrying retryable failures.

    ``sleep`` receives the backoff in ticks (the fleet passes its
    simulated clock's ``advance``); ``None`` retries immediately —
    right for in-process I/O where the transient is the injected fault
    itself, not a real device. Counts ``retry.attempts`` per retry and
    ``retry.gave_up`` when the budget is exhausted, then re-raises the
    final exception.
    """
    policy = policy if policy is not None else RetryPolicy()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except BaseException as exc:
            if not policy.is_retryable(exc) or attempt >= policy.max_attempts:
                if policy.is_retryable(exc):
                    METRICS.counter("retry.gave_up").inc()
                raise
            METRICS.counter("retry.attempts").inc()
            if sleep is not None:
                sleep(policy.backoff_ticks(label or "call", attempt))
