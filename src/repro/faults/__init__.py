"""repro.faults — deterministic fault injection and unified recovery.

Three pieces, one determinism contract:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` schedules
  (the ``REPRO_FAULTS`` grammar) whose trigger decisions are pure
  functions of content-hashed seeds;
* :mod:`repro.faults.inject` — the process-wide :data:`INJECTOR` that
  production fault sites fire through, raising :class:`InjectedFault`
  (transient), :class:`InjectedCrash` (death before commit), sleeping a
  latency spike, or mangling a payload;
* :mod:`repro.faults.retry` — the :class:`RetryPolicy` applied uniformly
  by fleet workers and store-backed executors, with derived-RNG jitter
  on the fleet's simulated clock.
"""

from repro.faults.inject import (
    CORRUPT_PREFIX,
    FAULTS_ENV,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    INJECTOR,
)
from repro.faults.plan import DEFAULT_LATENCY_S, KINDS, FaultPlan, FaultSpec
from repro.faults.retry import (
    DEFAULT_RETRYABLE,
    RETRY_BACKOFF_ENV,
    RETRY_MAX_ENV,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "CORRUPT_PREFIX",
    "DEFAULT_LATENCY_S",
    "DEFAULT_RETRYABLE",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "INJECTOR",
    "InjectedCrash",
    "InjectedFault",
    "KINDS",
    "RETRY_BACKOFF_ENV",
    "RETRY_MAX_ENV",
    "RetryPolicy",
    "call_with_retry",
]
