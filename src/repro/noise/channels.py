"""Standard single- and two-qubit Kraus channels."""

from __future__ import annotations

from typing import List

import numpy as np

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)


def _check_probability(p: float, upper: float = 1.0) -> float:
    p = float(p)
    if not 0.0 <= p <= upper:
        raise ValueError(f"probability {p} outside [0, {upper}]")
    return p


def depolarizing_kraus(probability: float, num_qubits: int = 1) -> List[np.ndarray]:
    """Depolarizing channel on 1 or 2 qubits.

    With probability ``p`` the state is replaced by the maximally mixed
    state; Kraus form uses the uniform Pauli twirl.
    """
    p = _check_probability(probability)
    if num_qubits == 1:
        paulis = [_I, _X, _Y, _Z]
    elif num_qubits == 2:
        singles = [_I, _X, _Y, _Z]
        paulis = [np.kron(a, b) for a in singles for b in singles]
    else:
        raise ValueError("depolarizing channel supports 1 or 2 qubits")
    dim2 = len(paulis)
    ops = [np.sqrt(1.0 - p * (dim2 - 1) / dim2) * paulis[0]]
    ops.extend(np.sqrt(p / dim2) * pauli for pauli in paulis[1:])
    return ops


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """T1 relaxation: |1> decays to |0> with probability ``gamma``."""
    g = _check_probability(gamma)
    k0 = np.array([[1, 0], [0, np.sqrt(1 - g)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(g)], [0, 0]], dtype=complex)
    return [k0, k1]


def phase_damping_kraus(lam: float) -> List[np.ndarray]:
    """Pure dephasing (T2 without relaxation)."""
    p = _check_probability(lam)
    k0 = np.array([[1, 0], [0, np.sqrt(1 - p)]], dtype=complex)
    k1 = np.array([[0, 0], [0, np.sqrt(p)]], dtype=complex)
    return [k0, k1]


def bit_flip_kraus(probability: float) -> List[np.ndarray]:
    p = _check_probability(probability)
    return [np.sqrt(1 - p) * _I, np.sqrt(p) * _X]


def phase_flip_kraus(probability: float) -> List[np.ndarray]:
    p = _check_probability(probability)
    return [np.sqrt(1 - p) * _I, np.sqrt(p) * _Z]


def thermal_relaxation_kraus(
    t1: float, t2: float, gate_time: float
) -> List[np.ndarray]:
    """Combined T1/T2 relaxation over a gate duration.

    Valid for ``t2 <= 2 * t1``. Composed as amplitude damping with
    ``gamma = 1 - exp(-t/T1)`` followed by extra pure dephasing so the
    total coherence decay matches ``exp(-t/T2)``.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError("thermal relaxation requires T2 <= 2*T1")
    gamma = 1.0 - np.exp(-gate_time / t1)
    # Residual dephasing: total off-diagonal decay exp(-t/T2) must equal
    # sqrt(1-gamma) * sqrt(1-lambda).
    target = np.exp(-gate_time / t2)
    residual = target / np.sqrt(1.0 - gamma) if gamma < 1.0 else 0.0
    lam = max(0.0, min(1.0, 1.0 - residual**2))
    damp = amplitude_damping_kraus(gamma)
    dephase = phase_damping_kraus(lam)
    return [d @ a for d in dephase for a in damp]


def is_cptp(kraus_ops: List[np.ndarray], atol: float = 1e-9) -> bool:
    """Check the trace-preservation condition ``sum K^dag K = I``."""
    if not kraus_ops:
        return False
    dim = kraus_ops[0].shape[1]
    total = sum(op.conj().T @ op for op in kraus_ops)
    return bool(np.allclose(total, np.eye(dim), atol=atol))
