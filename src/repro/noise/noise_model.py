"""Static per-gate noise models for the density-matrix simulator.

A :class:`NoiseModel` maps gate names to error channels applied after the
ideal gate. It also exposes the *global depolarizing survival factor*
``lambda(circuit)`` used by the fast energy-level backend; tests verify the
two agree for small circuits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.noise.channels import depolarizing_kraus


@dataclass(frozen=True)
class GateError:
    """Error attached to one gate kind: a depolarizing strength."""

    probability: float
    num_qubits: int = 1

    def kraus(self) -> List[np.ndarray]:
        return depolarizing_kraus(self.probability, self.num_qubits)


@dataclass
class NoiseModel:
    """Depolarizing-per-gate noise description.

    ``single_qubit_error`` / ``two_qubit_error`` are default strengths;
    ``gate_overrides`` customizes specific gate names. Readout error is
    held separately (``repro.noise.readout``).
    """

    single_qubit_error: float = 0.001
    two_qubit_error: float = 0.01
    gate_overrides: Dict[str, float] = field(default_factory=dict)

    def error_probability(self, gate_name: str, num_qubits: int) -> float:
        if gate_name in self.gate_overrides:
            return self.gate_overrides[gate_name]
        if num_qubits >= 2:
            return self.two_qubit_error
        return self.single_qubit_error

    def channels_for(
        self, gate_name: str, qubits: Tuple[int, ...]
    ) -> Iterator[Tuple[List[np.ndarray], Tuple[int, ...]]]:
        """Kraus channels to apply after a gate (density-matrix protocol)."""
        probability = self.error_probability(gate_name, len(qubits))
        if probability <= 0.0:
            return
        if len(qubits) == 1:
            yield depolarizing_kraus(probability, 1), qubits
        else:
            yield depolarizing_kraus(probability, 2), qubits

    def fingerprint(self) -> str:
        """Content fingerprint for noise-plan caching.

        Two models with equal error strengths and overrides share cached
        :class:`~repro.compiler.noise_plan.NoisePlan` entries. The hash
        folds in the *actual Kraus operators* the model emits (bytes of
        each stacked array, in emission order) over a set of
        representative gate sites, so a subclass that changes
        ``channels_for`` — even one that only reorders operators —
        cannot collide with the base model's cache entries. Subclasses
        whose channels depend on state this sampling cannot see must
        override ``fingerprint`` themselves (the plan-cache soundness
        verifier, RPR011, leans on this).
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(type(self).__qualname__.encode())
        digest.update(
            f"|{self.single_qubit_error!r}|{self.two_qubit_error!r}".encode()
        )
        for gate_name, qubits in self._representative_sites():
            digest.update(f"|{gate_name}:{qubits}".encode())
            for kraus_ops, target in self.channels_for(gate_name, qubits):
                stacked = np.ascontiguousarray(
                    np.asarray(kraus_ops, dtype=complex)
                )
                digest.update(f"|{target}:{stacked.shape}".encode())
                digest.update(stacked.tobytes())
        return f"dep:{digest.hexdigest()}"

    def _representative_sites(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """Gate sites that exercise every distinct channel the model emits.

        One generic 1q and one generic 2q site cover the default error
        strengths; every override gate is probed at both arities (only
        the name is consulted for the override lookup).
        """
        sites: List[Tuple[str, Tuple[int, ...]]] = [
            ("<1q>", (0,)),
            ("<2q>", (0, 1)),
        ]
        for name in sorted(self.gate_overrides):
            sites.append((name, (0,)))
            sites.append((name, (0, 1)))
        return sites

    # -- global depolarizing approximation ------------------------------------

    def survival_factor(self, circuit: QuantumCircuit) -> float:
        """Probability that no gate error occurred anywhere in the circuit.

        Under a global-depolarizing approximation the noisy expectation of
        a traceless observable is ``lambda * E_ideal`` with
        ``lambda = prod_g (1 - p_g)``. This is the paper-standard
        first-order model used by the fast transient backend.
        """
        factor = 1.0
        for inst in circuit:
            if inst.name == "barrier":
                continue
            factor *= 1.0 - self.error_probability(inst.name, len(inst.qubits))
        return factor

    def survival_factor_from_counts(
        self, num_single: int, num_two: int
    ) -> float:
        """Survival factor from gate counts (used by compiled programs)."""
        return (1.0 - self.single_qubit_error) ** num_single * (
            1.0 - self.two_qubit_error
        ) ** num_two

    @classmethod
    def ideal(cls) -> "NoiseModel":
        return cls(single_qubit_error=0.0, two_qubit_error=0.0)

    @classmethod
    def from_device(cls, device) -> "NoiseModel":
        """Average a device's calibration into a uniform noise model."""
        return cls(
            single_qubit_error=float(np.mean(device.calibration.single_qubit_errors)),
            two_qubit_error=float(np.mean(device.calibration.two_qubit_errors)),
        )
