"""Readout error and measurement-error mitigation.

The paper's baseline "employs measurement error mitigation"; we implement
the standard tensored confusion-matrix approach: characterize per-qubit
assignment errors, then correct measured count vectors by (pseudo-)inverse.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


class ReadoutError:
    """Per-qubit assignment-error model.

    ``p01[i]`` is the probability of reading 1 when qubit i is 0;
    ``p10[i]`` of reading 0 when it is 1.
    """

    def __init__(self, p01: Sequence[float], p10: Sequence[float]):
        self.p01 = np.asarray(p01, dtype=float)
        self.p10 = np.asarray(p10, dtype=float)
        if self.p01.shape != self.p10.shape or self.p01.ndim != 1:
            raise ValueError("p01 and p10 must be equal-length vectors")
        if np.any((self.p01 < 0) | (self.p01 > 1) | (self.p10 < 0) | (self.p10 > 1)):
            raise ValueError("probabilities must lie in [0, 1]")

    @property
    def num_qubits(self) -> int:
        return self.p01.size

    @classmethod
    def uniform(cls, num_qubits: int, probability: float) -> "ReadoutError":
        return cls([probability] * num_qubits, [probability] * num_qubits)

    def qubit_confusion(self, qubit: int) -> np.ndarray:
        """2x2 column-stochastic matrix ``A[measured, true]``."""
        return np.array(
            [
                [1.0 - self.p01[qubit], self.p10[qubit]],
                [self.p01[qubit], 1.0 - self.p10[qubit]],
            ]
        )

    def confusion_matrix(self) -> np.ndarray:
        """Full 2**n x 2**n confusion matrix (kron of per-qubit blocks)."""
        matrix = np.array([[1.0]])
        for qubit in range(self.num_qubits):
            matrix = np.kron(matrix, self.qubit_confusion(qubit))
        return matrix

    def apply_to_probabilities(self, probabilities: np.ndarray) -> np.ndarray:
        """Noisy outcome distribution given true probabilities."""
        probs = np.asarray(probabilities, dtype=float).reshape(-1)
        if probs.size != 2**self.num_qubits:
            raise ValueError("probability vector size mismatch")
        return self.confusion_matrix() @ probs

    def sample_flips(self, bits: str, rng: np.random.Generator) -> str:
        """Apply assignment errors to a single measured bitstring."""
        out = []
        for qubit, bit in enumerate(bits):
            if bit == "0":
                flip = rng.random() < self.p01[qubit]
                out.append("1" if flip else "0")
            else:
                flip = rng.random() < self.p10[qubit]
                out.append("0" if flip else "1")
        return "".join(out)

    def corrupt_counts(
        self, counts: Dict[str, int], seed: SeedLike = None
    ) -> Dict[str, int]:
        """Apply readout noise to ideal counts, shot by shot."""
        rng = ensure_rng(seed)
        noisy: Dict[str, int] = {}
        for bits, count in counts.items():
            for _ in range(count):
                flipped = self.sample_flips(bits, rng)
                noisy[flipped] = noisy.get(flipped, 0) + 1
        return noisy


class ReadoutMitigator:
    """Confusion-matrix-inversion measurement-error mitigation."""

    def __init__(self, error: ReadoutError):
        self.error = error
        self._inverse = np.linalg.pinv(error.confusion_matrix())

    @property
    def num_qubits(self) -> int:
        return self.error.num_qubits

    def mitigate_probabilities(self, probabilities: np.ndarray) -> np.ndarray:
        """Invert the confusion matrix; clip and renormalize.

        Clipping handles the usual small negative artifacts of direct
        inversion (the paper's Qiskit baseline does the same).
        """
        probs = np.asarray(probabilities, dtype=float).reshape(-1)
        corrected = self._inverse @ probs
        corrected = np.clip(corrected, 0.0, None)
        total = corrected.sum()
        if total <= 0:
            raise ValueError("mitigation produced an empty distribution")
        return corrected / total

    def mitigate_counts(self, counts: Dict[str, int]) -> Dict[str, float]:
        """Mitigate counts into a corrected quasi-distribution."""
        num_qubits = self.num_qubits
        dim = 2**num_qubits
        vector = np.zeros(dim)
        total = sum(counts.values())
        if total <= 0:
            raise ValueError("counts are empty")
        for bits, count in counts.items():
            vector[int(bits, 2)] = count / total
        corrected = self.mitigate_probabilities(vector)
        return {
            format(i, f"0{num_qubits}b"): float(p)
            for i, p in enumerate(corrected)
            if p > 0
        }
