"""Stochastic processes underlying transient noise traces.

Each process produces a discrete-time sample path. The physically
motivated building blocks are:

* :class:`TelegraphProcess` — random telegraph noise from a single TLS
  fluctuator hopping between two states (Schloer et al., cited by the
  paper as [36]);
* :class:`SpikeProcess` — Poisson-arriving transient events with
  geometric durations and heavy-tailed magnitudes (the rare "outlier"
  fluctuations circled in the paper's Fig. 3);
* :class:`OrnsteinUhlenbeckProcess` — slow mean-reverting drift (thermal
  and calibration drift);
* :class:`GaussianJitterProcess` — iid small fluctuations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class TelegraphProcess:
    """Two-state random telegraph noise.

    The process occupies state 0 (quiet) or 1 (active) with exponential
    dwell times; per discrete step, switching probabilities are
    ``rate_up`` (0 -> 1) and ``rate_down`` (1 -> 0). Output is the state
    times ``amplitude``.
    """

    rate_up: float
    rate_down: float
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        for name, value in (("rate_up", self.rate_up), ("rate_down", self.rate_down)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a per-step probability in [0, 1]")

    def sample(self, length: int, seed: SeedLike = None) -> np.ndarray:
        rng = ensure_rng(seed)
        states = np.zeros(length)
        state = 0
        for i in range(length):
            if state == 0 and rng.random() < self.rate_up:
                state = 1
            elif state == 1 and rng.random() < self.rate_down:
                state = 0
            states[i] = state
        return states * self.amplitude

    def stationary_occupancy(self) -> float:
        """Long-run fraction of time in the active state."""
        total = self.rate_up + self.rate_down
        if total == 0:
            return 0.0
        return self.rate_up / total


@dataclass(frozen=True)
class OrnsteinUhlenbeckProcess:
    """Mean-reverting drift: ``x' = x + theta (mu - x) + sigma * N(0,1)``."""

    theta: float
    mu: float = 0.0
    sigma: float = 0.01
    x0: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, length: int, seed: SeedLike = None) -> np.ndarray:
        rng = ensure_rng(seed)
        path = np.empty(length)
        x = self.x0
        for i in range(length):
            x = x + self.theta * (self.mu - x) + self.sigma * rng.standard_normal()
            path[i] = x
        return path

    def stationary_std(self) -> float:
        """Standard deviation of the stationary distribution."""
        return self.sigma / np.sqrt(1.0 - (1.0 - self.theta) ** 2)


@dataclass(frozen=True)
class SpikeProcess:
    """Poisson-arriving transient events.

    Arrivals occur per step with probability ``rate``. Each event draws a
    magnitude ``m ~ magnitude * (1 + Pareto(tail))`` (heavy tail: most
    events moderate, occasional extreme ones) and a duration
    ``d ~ Geometric(1 / mean_duration)``. Overlapping events superpose.
    Signs are negative-biased when ``negative_bias`` is set, reflecting
    that transient T1 dips *hurt* fidelity.
    """

    rate: float
    magnitude: float
    mean_duration: float = 1.5
    tail: float = 2.5
    negative_bias: float = 0.5
    wobble: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be a per-step probability")
        if self.magnitude < 0:
            raise ValueError("magnitude must be non-negative")
        if self.mean_duration < 1.0:
            raise ValueError("mean_duration must be >= 1 step")
        if self.tail <= 1.0:
            raise ValueError("tail must exceed 1 for finite mean")
        if not 0.0 <= self.negative_bias <= 1.0:
            raise ValueError("negative_bias must be in [0, 1]")
        if not 0.0 <= self.wobble <= 1.0:
            raise ValueError("wobble must be in [0, 1]")

    def sample(self, length: int, seed: SeedLike = None) -> np.ndarray:
        rng = ensure_rng(seed)
        path = np.zeros(length)
        for start in range(length):
            if rng.random() >= self.rate:
                continue
            size = self.magnitude * (1.0 + rng.pareto(self.tail))
            if rng.random() < self.negative_bias:
                size = -size
            duration = int(rng.geometric(1.0 / self.mean_duration))
            end = min(length, start + max(1, duration))
            # An active transient's strength fluctuates step to step (the
            # TLS coupling keeps wandering around resonance), so adjacent
            # jobs inside one event still see different magnitudes.
            steps = end - start
            wobbles = 1.0 + self.wobble * rng.uniform(-1.0, 1.0, size=steps)
            path[start:end] += size * wobbles
        return path


@dataclass(frozen=True)
class GaussianJitterProcess:
    """iid Gaussian fluctuations (fine-grained residual noise)."""

    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, length: int, seed: SeedLike = None) -> np.ndarray:
        rng = ensure_rng(seed)
        return self.sigma * rng.standard_normal(length)
