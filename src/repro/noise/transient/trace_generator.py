"""Synthetic transient-trace generation.

The paper builds traces by observing real-device transients per
application-machine pair (Table 1's "Machine + trial" column). Without
IBMQ access we synthesize traces with the same statistical structure —
rare large spikes over a quiet baseline, occasional extended turbulent
phases, and slow drift — with per-machine parameters chosen so that
noisier machines (older, larger devices) show more frequent and larger
transients.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.noise.transient.processes import (
    GaussianJitterProcess,
    OrnsteinUhlenbeckProcess,
    SpikeProcess,
)
from repro.noise.transient.trace import TransientTrace
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class TransientProfile:
    """Parameters describing one machine's transient behaviour.

    All magnitudes are fractions of the VQA estimation magnitude (the
    paper's normalization). ``spike_rate`` is the per-iteration probability
    of a new transient event; ``burst_rate``/``burst_length`` model the
    extended turbulent phases visible in the paper's Figs. 5 and 12.
    """

    spike_rate: float = 0.02
    spike_magnitude: float = 0.25
    spike_duration: float = 1.5
    burst_rate: float = 0.002
    burst_length: float = 12.0
    burst_magnitude: float = 0.45
    # The quiet-period background must stay well below the spike scale:
    # transients are outliers over a stable baseline (paper Figs. 3/4), and
    # it is exactly that separation that makes iteration skipping viable.
    drift_sigma: float = 0.004
    drift_theta: float = 0.05
    jitter_sigma: float = 0.005

    def scaled(self, factor: float) -> "TransientProfile":
        """Scale all perturbation magnitudes (Fig. 10's sweep)."""
        return replace(
            self,
            spike_magnitude=self.spike_magnitude * factor,
            burst_magnitude=self.burst_magnitude * factor,
            drift_sigma=self.drift_sigma * factor,
            jitter_sigma=self.jitter_sigma * factor,
        )


# Per-machine profiles. Relative severity is informed by the paper's
# observations: Casablanca/Jakarta (7q, older Falcons) are the noisiest;
# Guadalupe shows moderate repeated transients (Fig. 11); Sydney is smooth
# with rare sharp phases (Fig. 12); Cairo/Mumbai sit in between; Toronto is
# comparatively noisy among the 27q devices. Magnitudes follow the paper's
# Fig. 4/5 evidence that transient phases can swing deep-circuit outputs by
# a large fraction of their range.
MACHINE_PROFILES: Dict[str, TransientProfile] = {
    "guadalupe": TransientProfile(
        spike_rate=0.030, spike_magnitude=0.45, burst_rate=0.005, burst_length=12.0
    ),
    "toronto": TransientProfile(
        spike_rate=0.035, spike_magnitude=0.55, burst_rate=0.006, burst_length=16.0
    ),
    "sydney": TransientProfile(
        spike_rate=0.015, spike_magnitude=0.65, burst_rate=0.003, burst_length=20.0
    ),
    "casablanca": TransientProfile(
        spike_rate=0.045, spike_magnitude=0.60, burst_rate=0.007, burst_length=14.0
    ),
    "jakarta": TransientProfile(
        spike_rate=0.040, spike_magnitude=0.70, burst_rate=0.007, burst_length=18.0
    ),
    "mumbai": TransientProfile(
        spike_rate=0.025, spike_magnitude=0.45, burst_rate=0.004, burst_length=12.0
    ),
    "cairo": TransientProfile(
        spike_rate=0.028, spike_magnitude=0.52, burst_rate=0.005, burst_length=14.0
    ),
}


def profile_for_machine(machine: str) -> TransientProfile:
    """Look up (case-insensitively) a machine's transient profile."""
    key = machine.lower()
    if key not in MACHINE_PROFILES:
        raise KeyError(
            f"no transient profile for machine {machine!r}; "
            f"known: {sorted(MACHINE_PROFILES)}"
        )
    return MACHINE_PROFILES[key]


def generate_trace(
    profile: TransientProfile,
    length: int,
    seed: int,
    machine: str = "synthetic",
    trial: str = "v1",
) -> TransientTrace:
    """Generate a transient trace from a profile.

    The trace is the superposition of: short spikes, extended bursts,
    OU drift and Gaussian jitter — each with an independent child RNG so
    the components are individually reproducible.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    # Transients are overwhelmingly *harmful* (extra decoherence pulls the
    # estimate toward the maximally mixed value — upward for minimization
    # problems), so spike signs are heavily positive-biased; the rare
    # negative event models a transient that coincidentally flatters the
    # estimate (the "falsely good" case of the paper's Fig. 6b).
    spikes = SpikeProcess(
        rate=profile.spike_rate,
        magnitude=profile.spike_magnitude,
        mean_duration=profile.spike_duration,
        tail=3.5,
        negative_bias=0.15,
    ).sample(length, derive_rng(seed, f"{machine}:{trial}:spikes"))
    bursts = SpikeProcess(
        rate=profile.burst_rate,
        magnitude=profile.burst_magnitude,
        mean_duration=profile.burst_length,
        tail=3.0,
        negative_bias=0.2,
    ).sample(length, derive_rng(seed, f"{machine}:{trial}:bursts"))
    drift = OrnsteinUhlenbeckProcess(
        theta=profile.drift_theta, sigma=profile.drift_sigma
    ).sample(length, derive_rng(seed, f"{machine}:{trial}:drift"))
    jitter = GaussianJitterProcess(profile.jitter_sigma).sample(
        length, derive_rng(seed, f"{machine}:{trial}:jitter")
    )
    values = spikes + bursts + drift + jitter
    return TransientTrace(
        values,
        machine=machine,
        trial=trial,
        metadata={
            "seed": float(seed),
            "spike_rate": profile.spike_rate,
            "spike_magnitude": profile.spike_magnitude,
        },
    )


def machine_trace(
    machine: str, length: int, seed: int, trial: str = "v1",
    magnitude_scale: float = 1.0,
) -> TransientTrace:
    """Convenience: profile lookup + generation + optional scaling."""
    profile = profile_for_machine(machine)
    if magnitude_scale != 1.0:
        profile = profile.scaled(magnitude_scale)
    return generate_trace(profile, length, seed, machine=machine.lower(), trial=trial)
