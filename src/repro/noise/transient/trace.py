"""The transient trace data structure (paper Section 6.2).

A :class:`TransientTrace` stores per-iteration transient perturbations,
normalized to the magnitude of the VQA estimations (i.e. values are
*fractions*; a value of 0.25 perturbs the energy estimate by 25 % of its
reference magnitude). The transient backend indexes the trace by job
counter, cycling if a run outlives the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.utils.stats import SeriesSummary, summary


@dataclass(frozen=True)
class TransientTrace:
    """An immutable per-iteration transient perturbation series."""

    values: np.ndarray
    machine: str = "synthetic"
    trial: str = "v1"
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("trace values must be a non-empty 1-D array")
        values = values.copy()
        values.flags.writeable = False
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.size)

    def __getitem__(self, index: int) -> float:
        """Cyclic indexing so long runs never fall off the trace end."""
        return float(self.values[index % self.values.size])

    @property
    def name(self) -> str:
        return f"{self.machine}-{self.trial}"

    def scaled(self, factor: float) -> "TransientTrace":
        """A copy with all perturbations scaled (Fig. 10's magnitude sweep)."""
        return TransientTrace(
            self.values * factor,
            machine=self.machine,
            trial=self.trial,
            metadata={**self.metadata, "scale": factor},
        )

    def magnitude_percentile(self, percentile: float) -> float:
        """Percentile of |perturbation| — the QISMET threshold calibration."""
        return float(np.percentile(np.abs(self.values), percentile))

    def active_fraction(self, threshold: float) -> float:
        """Fraction of iterations whose |perturbation| exceeds a threshold."""
        return float(np.mean(np.abs(self.values) > threshold))

    def stats(self) -> SeriesSummary:
        return summary(self.values)

    def segment(self, start: int, length: int) -> "TransientTrace":
        """A cyclic slice, useful for splitting one trace across trials."""
        if length < 1:
            raise ValueError("length must be >= 1")
        indices = (start + np.arange(length)) % self.values.size
        return TransientTrace(
            self.values[indices],
            machine=self.machine,
            trial=f"{self.trial}+{start}",
            metadata=dict(self.metadata),
        )


def concatenate_traces(*traces: TransientTrace) -> TransientTrace:
    """Concatenate traces end to end (machine/trial from the first)."""
    if not traces:
        raise ValueError("need at least one trace")
    values = np.concatenate([t.values for t in traces])
    first = traces[0]
    return TransientTrace(values, machine=first.machine, trial=first.trial)
