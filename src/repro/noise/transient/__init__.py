"""Transient (time-varying) noise modelling.

This subpackage reproduces the paper's Section 6.2 methodology: transient
effects on VQA iterations are captured as per-iteration fractional
perturbations ("traces"), composed into a data structure that the
transient-aware backend indexes per job, on top of static noise.

Physical grounding (Section 3): TLS defects parasitically couple to
transmon qubits and fluctuate over time, producing rare, large, short-lived
dips in T1/T2 — hence the telegraph/spike process structure used by the
trace generator.
"""

from repro.noise.transient.processes import (
    GaussianJitterProcess,
    OrnsteinUhlenbeckProcess,
    SpikeProcess,
    TelegraphProcess,
)
from repro.noise.transient.trace import TransientTrace
from repro.noise.transient.trace_generator import (
    TransientProfile,
    generate_trace,
    profile_for_machine,
)
from repro.noise.transient.t1_model import T1FluctuationModel

__all__ = [
    "TelegraphProcess",
    "OrnsteinUhlenbeckProcess",
    "SpikeProcess",
    "GaussianJitterProcess",
    "TransientTrace",
    "TransientProfile",
    "generate_trace",
    "profile_for_machine",
    "T1FluctuationModel",
]
