"""Device-level T1 fluctuation model (paper Fig. 3).

Reproduces the qualitative structure of T1-vs-time data from Burnett et
al. (the paper's [9], Fig. 3): a baseline around 50-75 us with slow drift,
plus occasional deep dips when a TLS defect wanders into resonance with
the qubit. The dips are the "potential transient errors" the paper
circles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.noise.transient.processes import (
    OrnsteinUhlenbeckProcess,
    SpikeProcess,
)
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class T1FluctuationModel:
    """Synthesizes hours-scale T1 time series for one qubit."""

    baseline_us: float = 65.0
    drift_sigma_us: float = 2.0
    drift_theta: float = 0.03
    dip_rate_per_hour: float = 0.06
    dip_depth_fraction: float = 0.6
    dip_duration_hours: float = 1.5
    samples_per_hour: int = 4
    floor_us: float = 5.0

    def sample_hours(self, hours: float, seed: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times_hours, t1_us)`` over the requested span."""
        if hours <= 0:
            raise ValueError("hours must be positive")
        length = max(2, int(hours * self.samples_per_hour))
        times = np.linspace(0.0, hours, length)

        drift = OrnsteinUhlenbeckProcess(
            theta=self.drift_theta, sigma=self.drift_sigma_us
        ).sample(length, derive_rng(seed, "t1:drift"))
        dips = SpikeProcess(
            rate=min(1.0, self.dip_rate_per_hour / self.samples_per_hour),
            magnitude=self.dip_depth_fraction * self.baseline_us,
            mean_duration=max(1.0, self.dip_duration_hours * self.samples_per_hour),
            tail=3.0,
            negative_bias=1.0,  # TLS coupling only *reduces* T1
        ).sample(length, derive_rng(seed, "t1:dips"))

        t1 = self.baseline_us + drift + dips
        return times, np.clip(t1, self.floor_us, None)

    def outlier_count(self, t1_us: np.ndarray, threshold_fraction: float = 0.5) -> int:
        """Count samples below ``threshold_fraction * baseline`` (the
        circled outliers in Fig. 3)."""
        return int(np.sum(t1_us < threshold_fraction * self.baseline_us))


def t1_to_error_fraction(
    t1_us: np.ndarray, circuit_duration_us: float, baseline_us: float
) -> np.ndarray:
    """Map a T1 series to an *excess* decay-error fraction.

    A circuit of duration ``d`` survives amplitude damping with probability
    ``exp(-d / T1)`` per qubit; the transient error fraction is the extra
    decay relative to the baseline T1. This links the device-level model
    (Fig. 3) to circuit-level fidelity variation (Fig. 4).
    """
    t1_us = np.asarray(t1_us, dtype=float)
    if circuit_duration_us <= 0:
        raise ValueError("circuit duration must be positive")
    survival = np.exp(-circuit_duration_us / t1_us)
    baseline_survival = np.exp(-circuit_duration_us / baseline_us)
    return (baseline_survival - survival) / baseline_survival
