"""Noise modelling: Kraus channels, static device noise, readout error and
mitigation, and the transient (time-varying) noise machinery that is the
subject of the paper."""

from repro.noise.channels import (
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    is_cptp,
    phase_damping_kraus,
    phase_flip_kraus,
)
from repro.noise.noise_model import GateError, NoiseModel
from repro.noise.readout import ReadoutError, ReadoutMitigator

__all__ = [
    "depolarizing_kraus",
    "amplitude_damping_kraus",
    "phase_damping_kraus",
    "bit_flip_kraus",
    "phase_flip_kraus",
    "is_cptp",
    "GateError",
    "NoiseModel",
    "ReadoutError",
    "ReadoutMitigator",
]
