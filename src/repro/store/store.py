"""The experiment lakehouse: one content-addressed store behind every cache.

:class:`ExperimentStore` is an append-only SQLite store of executed runs.
Run metadata (app, scheme, seed, device, timestamps, ...) lives in
indexed columns; the result payload is canonical JSON content-addressed
into a shared ``blobs`` table, so identical results — a fleet re-run, a
legacy-cache import, a duplicate submit — are stored once and dedupe on
``run_id``.

Reads go through the typed query API (:meth:`query_runs`,
:meth:`comparisons`, :meth:`aggregate`); Fig. 17-style geomean
aggregates can additionally be *materialized* incrementally
(:meth:`materialize`): per-cell improvement ratios are cached in the
``matviews`` table with an append-order watermark, and a later
materialize only recomputes cells that received runs newer than the
watermark.

The store can share a connection with an embedding database (the fleet
``JobStore`` keeps job lifecycle and result payloads in one file) by
passing ``conn``/``lock``; it then never closes the connection it was
given.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.faults.inject import INJECTOR
from repro.obs import METRICS, TRACER
from repro.runtime.results import RunResult
from repro.runtime.spec import RunSpec
from repro.store.query import RunQuery, StoredRun
from repro.store.schema import SCHEMA_VERSION, ensure_schema, payload_hash
from repro.utils.serialization import canonical_json

import numpy as np

#: Environment knob naming the store every env-constructed component uses.
STORE_ENV = "REPRO_STORE"

#: Default materialized-view name (the Fig. 17 aggregation).
DEFAULT_VIEW = "fig17"

_RUN_COLUMNS = (
    "seq, run_id, app, scheme, seed, shots, trace_scale, iterations,"
    " device, source, ground_truth, elapsed_s, created_at, spec"
)


def resolve_store_path(path: Union[str, Path]) -> str:
    """Normalize a store reference to a concrete SQLite path.

    ``:memory:`` passes through; a path with a ``.sqlite``/``.sqlite3``/
    ``.db`` suffix is the database file itself; anything else is treated
    as a directory holding ``store.sqlite`` (so ``REPRO_STORE`` and
    ``REPRO_CACHE_DIR`` can both point at a results directory).
    """
    if str(path) == ":memory:":
        return ":memory:"
    path = Path(path)
    if path.suffix in (".sqlite", ".sqlite3", ".db"):
        return str(path)
    return str(path / "store.sqlite")


class ExperimentStore:
    """Append-only, content-addressed run store with a typed query API."""

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        *,
        conn: Optional[sqlite3.Connection] = None,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        if conn is not None:
            self.path = path if isinstance(path, str) else str(path)
            self._conn = conn
            self._owns_conn = False
        else:
            self.path = resolve_store_path(path)
            if self.path != ":memory:":
                Path(self.path).parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
            self._owns_conn = True
        self._conn.row_factory = sqlite3.Row
        self._lock = lock if lock is not None else threading.RLock()
        with self._lock:
            self.migrated_from = ensure_schema(self._conn)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._owns_conn:
            self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- writes --------------------------------------------------------------

    def append(
        self,
        run: RunResult,
        *,
        device: Optional[str] = None,
        source: str = "executor",
    ) -> bool:
        """Record one executed run; returns True if a row was written.

        Appends dedupe on ``run_id`` (the spec content hash): a run that
        is already stored intact is a no-op returning False. A stored row
        whose payload no longer decodes or no longer matches its content
        address is *healed* — replaced by the fresh payload — rather than
        shadowing the good result behind a corrupt one.
        """
        INJECTOR.fire("store.blob.write", run_id=run.run_id)
        spec_text = canonical_json(run.spec.to_dict())
        payload = canonical_json(run.result.to_dict())
        digest = payload_hash(payload)
        # Corruption is injected *after* the content address is computed,
        # so the stored bytes mismatch their hash and every read-side
        # integrity check must catch it.
        payload = INJECTOR.corrupt("store.blob.write", payload, run_id=run.run_id)
        METRICS.counter("store.appends").inc()
        with TRACER.span(
            "store.append", category="store", run_id=run.run_id
        ), self._lock:
            row = self._conn.execute(
                "SELECT seq, payload_hash FROM runs WHERE run_id = ?",
                (run.run_id,),
            ).fetchone()
            if row is not None:
                if self._payload_ok(row["payload_hash"]):
                    return False
                self._put_blob(digest, payload)
                self._conn.execute(
                    "UPDATE runs SET payload_hash = ? WHERE run_id = ?",
                    (digest, run.run_id),
                )
                self._conn.commit()
                return True
            self._put_blob(digest, payload)
            self._conn.execute(
                "INSERT INTO runs (run_id, app, scheme, seed, shots,"
                " trace_scale, iterations, device, source, ground_truth,"
                " elapsed_s, created_at, spec, payload_hash)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run.run_id,
                    run.spec.app_name,
                    run.spec.scheme,
                    run.spec.seed,
                    run.spec.shots,
                    run.spec.trace_scale,
                    run.spec.iterations,
                    device,
                    source,
                    float(run.ground_truth),
                    float(run.elapsed_s),
                    datetime.now(timezone.utc).isoformat(),
                    spec_text,
                    digest,
                ),
            )
            self._conn.commit()
            return True

    def append_many(
        self,
        runs: Iterable[RunResult],
        *,
        device: Optional[str] = None,
        source: str = "executor",
    ) -> int:
        """Append a batch; returns how many rows were actually written."""
        return sum(
            1 for run in runs if self.append(run, device=device, source=source)
        )

    def record_plan(self, plan: Any) -> None:
        """Remember an executed plan's sweep definition (by ``plan_id``)."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO store_meta (key, value) VALUES (?, ?)"
                " ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (f"plan:{plan.plan_id}", canonical_json(plan.to_dict())),
            )
            self._conn.commit()

    def append_trace(self, summary: Dict[str, Any], label: str = "") -> int:
        """Persist one ``repro.obs`` trace/metric summary; returns its id.

        Summaries are content-addressed through the shared ``blobs``
        table like run payloads, so re-recording an identical profile
        costs one small row.  They live *next to* results, never inside
        them — the determinism contract keeps payload bytes free of
        timing data.
        """
        payload = canonical_json(summary)
        digest = payload_hash(payload)
        with TRACER.span("store.append_trace", category="store"), self._lock:
            self._put_blob(digest, payload)
            cursor = self._conn.execute(
                "INSERT INTO traces (label, created_at, payload_hash)"
                " VALUES (?, ?, ?)",
                (
                    label,
                    datetime.now(timezone.utc).isoformat(),
                    digest,
                ),
            )
            self._conn.commit()
        METRICS.counter("store.trace_appends").inc()
        return int(cursor.lastrowid)

    def traces(self, limit: int = 10) -> List[Dict[str, Any]]:
        """Most-recent-first stored trace summaries (decoded payloads).

        Each summary dict gains ``trace_id`` / ``created_at`` keys from
        its row. Rows whose payload fails the content-address check are
        dropped, mirroring :meth:`query_runs`.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT traces.trace_id, traces.label, traces.created_at,"
                " traces.payload_hash, blobs.data AS payload"
                " FROM traces LEFT JOIN blobs"
                " ON blobs.hash = traces.payload_hash"
                " ORDER BY traces.trace_id DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
        out: List[Dict[str, Any]] = []
        for row in rows:
            payload = row["payload"]
            if payload is None or payload_hash(payload) != row["payload_hash"]:
                continue
            try:
                summary = json.loads(payload)
            except (TypeError, ValueError):
                continue
            summary["trace_id"] = row["trace_id"]
            summary["created_at"] = row["created_at"]
            if row["label"]:
                summary["label"] = row["label"]
            out.append(summary)
        return out

    def journal_append(
        self,
        event: str,
        run_id: str,
        *,
        device: Optional[str] = None,
        attempt: int = 0,
        detail: str = "",
        tick: int = 0,
    ) -> int:
        """Append one WAL-style execution-journal event; returns its seq.

        The journal is append-only and ordered by ``seq``, so replaying
        it reconstructs the exact lifecycle of a sweep — including one
        that died mid-drain. The fleet's ``JobStore`` writes an event in
        the same transaction as every job transition.
        """
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO journal (tick, event, run_id, device, attempt,"
                " detail) VALUES (?, ?, ?, ?, ?, ?)",
                (int(tick), event, run_id, device, int(attempt), detail),
            )
            self._conn.commit()
        METRICS.counter("store.journal_appends").inc()
        return int(cursor.lastrowid)

    def journal_entries(
        self, run_id: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Journal events in append order (optionally for one run)."""
        sql = (
            "SELECT seq, tick, event, run_id, device, attempt, detail"
            " FROM journal"
        )
        params: List[Any] = []
        if run_id is not None:
            sql += " WHERE run_id = ?"
            params.append(run_id)
        sql += " ORDER BY seq"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [dict(row) for row in rows]

    def _put_blob(self, digest: str, payload: str) -> None:
        self._conn.execute(
            "INSERT INTO blobs (hash, data, size) VALUES (?, ?, ?)"
            " ON CONFLICT(hash) DO UPDATE SET data=excluded.data,"
            " size=excluded.size",
            (digest, payload, len(payload)),
        )

    def _payload_ok(self, digest: str) -> bool:
        blob = self._conn.execute(
            "SELECT data FROM blobs WHERE hash = ?", (digest,)
        ).fetchone()
        if blob is None:
            return False
        data = blob["data"]
        if payload_hash(data) != digest:
            return False
        try:
            json.loads(data)
        except (TypeError, ValueError):
            return False
        return True

    # -- reads ---------------------------------------------------------------

    def get_stored(self, run_id: str) -> Optional[StoredRun]:
        """The stored row for one run id, or None if absent/corrupt."""
        rows = self.query_runs(RunQuery(run_ids=run_id))
        return rows[0] if rows else None

    def get(self, run_id: str) -> Optional[RunResult]:
        """Rehydrate one run as an executor-layer :class:`RunResult`."""
        stored = self.get_stored(run_id)
        if stored is None:
            return None
        try:
            return stored.to_run_result()
        except (KeyError, TypeError, ValueError):
            return None

    def query_runs(self, query: Optional[RunQuery] = None) -> List[StoredRun]:
        """Typed rows matching ``query``, in append order.

        Rows whose payload fails its content-address check are dropped
        (they read as cache misses upstream, never as wrong results).
        """
        query = query or RunQuery()
        INJECTOR.fire("store.blob.read")
        where, params = query.where()
        METRICS.counter("store.queries").inc()
        with TRACER.span("store.query_runs", category="store"), self._lock:
            rows = self._conn.execute(
                f"SELECT {_RUN_COLUMNS}, blobs.data AS payload,"
                " runs.payload_hash AS payload_hash"
                f" FROM runs LEFT JOIN blobs ON blobs.hash = runs.payload_hash"
                f"{where}",
                params,
            ).fetchall()
        out: List[StoredRun] = []
        for row in rows:
            payload = row["payload"]
            if payload is not None:
                # A corrupt read mangles the bytes *before* the integrity
                # check, so it degrades to a miss, never a wrong result.
                payload = INJECTOR.corrupt(
                    "store.blob.read", payload, run_id=row["run_id"]
                )
            if payload is None or payload_hash(payload) != row["payload_hash"]:
                continue
            out.append(
                StoredRun(
                    seq=row["seq"],
                    run_id=row["run_id"],
                    app=row["app"],
                    scheme=row["scheme"],
                    seed=row["seed"],
                    shots=row["shots"],
                    trace_scale=row["trace_scale"],
                    iterations=row["iterations"],
                    device=row["device"],
                    source=row["source"],
                    ground_truth=row["ground_truth"],
                    elapsed_s=row["elapsed_s"],
                    created_at=row["created_at"],
                    spec_json=row["spec"],
                    payload=payload,
                )
            )
        return out

    def run_ids(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT run_id FROM runs ORDER BY seq"
            ).fetchall()
        return [row["run_id"] for row in rows]

    def __len__(self) -> int:
        with self._lock:
            return int(
                self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            )

    def __contains__(self, run_id: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return row is not None

    # -- aggregation ---------------------------------------------------------

    def comparisons(self, query: Optional[RunQuery] = None) -> Dict[
        Tuple[str, int, float], Any
    ]:
        """Regroup matching runs into per-cell scheme comparisons.

        Cells come back in first-append order — except when the query
        names explicit ``run_ids``, in which case *that* order wins, so
        regrouping a plan's runs matches ``PlanResult.comparisons()``
        exactly (down to the float-summation order of the geomean) even
        on a store that ingested the runs in another order. Like it,
        refuses to regroup a sweep whose cells repeat a scheme (an
        overrides sweep) — narrow the query instead.
        """
        from repro.experiments.runner import ComparisonResult

        rows = self.query_runs(query)
        if query is not None and query.run_ids:
            position = {rid: i for i, rid in enumerate(query.run_ids)}
            rows.sort(key=lambda s: position[s.run_id])
        out: Dict[Tuple[str, int, float], ComparisonResult] = {}
        for stored in rows:
            key = (stored.app, stored.seed, stored.trace_scale)
            if key not in out:
                out[key] = ComparisonResult(
                    app_name=stored.app, ground_truth=stored.ground_truth
                )
            if stored.scheme in out[key].results:
                raise ValueError(
                    f"cell {key} has multiple {stored.scheme!r} runs; "
                    "narrow the query (iterations/shots/overrides differ)"
                )
            out[key].results[stored.scheme] = stored.to_run_result().result
        return out

    def aggregate(
        self,
        query: Optional[RunQuery] = None,
        baseline: str = "baseline",
    ) -> Dict[str, float]:
        """Fig. 17-style per-scheme geomean improvement over matching runs.

        Delegates to :func:`repro.experiments.runner.geomean_improvements`
        on the regrouped comparisons, so the numbers are bit-identical to
        what the figure builders compute from direct executor results.
        """
        from repro.experiments.runner import geomean_improvements

        return geomean_improvements(
            list(self.comparisons(query).values()), baseline
        )

    # -- materialized aggregates ---------------------------------------------

    def _cell_key(self, stored: StoredRun) -> str:
        """Materialization cell identity: the full spec minus the scheme.

        A superset of ``comparison_key`` — including iterations, shots
        and overrides keeps heterogeneous sweeps sharing one store from
        colliding into the same comparison cell.
        """
        spec = json.loads(stored.spec_json)
        return canonical_json(
            [
                stored.app,
                stored.seed,
                stored.trace_scale,
                stored.iterations,
                stored.shots,
                spec.get("overrides", []),
            ]
        )

    def materialize(
        self,
        view: str = DEFAULT_VIEW,
        baseline: str = "baseline",
        full: bool = False,
    ) -> Dict[str, Any]:
        """Incrementally (re)compute the per-cell improvement ratios.

        Only cells containing runs appended after the view's watermark
        are recomputed; ``full=True`` (or a baseline change) rebuilds
        every cell. Cells missing the baseline scheme are skipped — the
        baseline's later arrival bumps the watermark past the whole cell
        and re-triggers it.
        """
        from repro.experiments.runner import ComparisonResult

        METRICS.counter("store.materializations").inc()
        with TRACER.span(
            "store.materialize", category="store", view=view
        ), self._lock:
            mark = self._conn.execute(
                "SELECT watermark, baseline FROM matview_watermarks"
                " WHERE view = ?",
                (view,),
            ).fetchone()
            watermark = -1
            if mark is not None and not full and mark["baseline"] == baseline:
                watermark = mark["watermark"]
            else:
                self._conn.execute(
                    "DELETE FROM matviews WHERE view = ?", (view,)
                )
            all_runs = self.query_runs()
            max_seq = max((s.seq for s in all_runs), default=watermark)
            cells: Dict[str, List[StoredRun]] = {}
            for stored in all_runs:
                cells.setdefault(self._cell_key(stored), []).append(stored)
            affected = [
                cell
                for cell, members in cells.items()
                if any(s.seq > watermark for s in members)
            ]
            updated = 0
            for cell in affected:
                members = cells[cell]
                self._conn.execute(
                    "DELETE FROM matviews WHERE view = ? AND cell = ?",
                    (view, cell),
                )
                schemes = {s.scheme for s in members}
                if baseline not in schemes:
                    continue
                comp = ComparisonResult(
                    app_name=members[0].app,
                    ground_truth=members[0].ground_truth,
                )
                for stored in members:
                    comp.results[stored.scheme] = (
                        stored.to_run_result().result
                    )
                ratios = comp.improvements(baseline)
                order = min(s.seq for s in members)
                for scheme, ratio in ratios.items():
                    self._conn.execute(
                        "INSERT INTO matviews"
                        " (view, cell, scheme, ratio, cell_order)"
                        " VALUES (?, ?, ?, ?, ?)",
                        (view, cell, scheme, float(ratio), order),
                    )
                updated += 1
            self._conn.execute(
                "INSERT INTO matview_watermarks (view, watermark, baseline)"
                " VALUES (?, ?, ?)"
                " ON CONFLICT(view) DO UPDATE SET"
                " watermark=excluded.watermark, baseline=excluded.baseline",
                (view, max_seq, baseline),
            )
            self._conn.commit()
        return {
            "view": view,
            "baseline": baseline,
            "watermark": max_seq,
            "updated_cells": updated,
            "total_cells": len(cells),
        }

    def aggregate_materialized(self, view: str = DEFAULT_VIEW) -> Dict[str, float]:
        """Per-scheme geomean from the materialized per-cell ratios.

        Reconstructs the ratio lists in cell append order and evaluates
        the exact expression :func:`geomean_improvements` uses, so a
        materialized aggregate is bit-identical to the direct one.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT cell, scheme, ratio, cell_order FROM matviews"
                " WHERE view = ? ORDER BY cell_order",
                (view,),
            ).fetchall()
        if not rows:
            raise ValueError(f"no materialized cells for view {view!r}")
        by_cell: Dict[str, Dict[str, float]] = {}
        for row in rows:
            by_cell.setdefault(row["cell"], {})[row["scheme"]] = row["ratio"]
        schemes = set.intersection(*(set(r) for r in by_cell.values()))
        out: Dict[str, float] = {}
        for scheme in sorted(schemes):
            ratios = [cell[scheme] for cell in by_cell.values()]
            out[scheme] = float(np.exp(np.mean(np.log(ratios))))
        return out

    # -- maintenance ---------------------------------------------------------

    def prune(self, query: RunQuery) -> int:
        """Delete runs matching ``query``; returns how many were removed.

        Materialized views are invalidated wholesale (deletions cannot be
        expressed as watermark increments) — the next ``materialize``
        rebuilds them from the surviving runs.
        """
        matching = [s.run_id for s in self.query_runs(query)]
        if not matching:
            return 0
        with self._lock:
            placeholders = ",".join("?" for _ in matching)
            self._conn.execute(
                f"DELETE FROM runs WHERE run_id IN ({placeholders})", matching
            )
            self._conn.execute("DELETE FROM matviews")
            self._conn.execute("DELETE FROM matview_watermarks")
            self._conn.commit()
        return len(matching)

    def compact(self) -> Dict[str, int]:
        """Drop blobs no run references any more and reclaim file space."""
        with self._lock:
            before = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM blobs"
            ).fetchone()
            self._conn.execute(
                "DELETE FROM blobs WHERE hash NOT IN"
                " (SELECT DISTINCT payload_hash FROM runs)"
                " AND hash NOT IN"
                " (SELECT DISTINCT payload_hash FROM traces)"
            )
            after = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM blobs"
            ).fetchone()
            self._conn.commit()
            if self._owns_conn and self.path != ":memory:":
                self._conn.execute("VACUUM")
        return {
            "blobs_removed": int(before[0] - after[0]),
            "bytes_reclaimed": int(before[1] - after[1]),
        }

    # -- legacy ingestion ----------------------------------------------------

    def import_legacy(self, source: Union[str, Path]) -> Dict[str, int]:
        """Ingest results from the pre-store formats, deduping on run_id.

        Accepts a ``CachedExecutor`` cache directory of per-run JSON
        files, a saved ``PlanResult``/``RunResult`` JSON file, or a fleet
        ``JobStore`` database whose legacy ``jobs.result`` column still
        carries inline payloads.
        """
        source = Path(source)
        ingested = skipped = errors = 0

        def take(data: Any, **kwargs: Any) -> None:
            nonlocal ingested, skipped, errors
            try:
                run = RunResult.from_dict(data)
            except (KeyError, TypeError, ValueError):
                errors += 1
                return
            if self.append(run, **kwargs):
                ingested += 1
            else:
                skipped += 1

        if source.is_dir():
            for path in sorted(source.glob("*.json")):
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    errors += 1
                    continue
                take(data, source="import")
        elif source.suffix in (".db", ".sqlite", ".sqlite3"):
            legacy = sqlite3.connect(str(source))
            legacy.row_factory = sqlite3.Row
            try:
                rows = legacy.execute(
                    "SELECT run_id, device, result FROM jobs"
                    " WHERE status = 'done' AND result IS NOT NULL"
                ).fetchall()
            finally:
                legacy.close()
            for row in rows:
                try:
                    data = json.loads(row["result"])
                except (TypeError, ValueError):
                    errors += 1
                    continue
                take(data, device=row["device"], source="import")
        else:
            data = json.loads(source.read_text(encoding="utf-8"))
            if isinstance(data, dict) and "runs" in data:
                for entry in data["runs"]:
                    take(entry, source="import")
            else:
                take(data, source="import")
        return {"ingested": ingested, "skipped": skipped, "errors": errors}

    # -- introspection -------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        with self._lock:
            runs = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            traces = self._conn.execute(
                "SELECT COUNT(*) FROM traces"
            ).fetchone()[0]
            journal = self._conn.execute(
                "SELECT COUNT(*) FROM journal"
            ).fetchone()[0]
            blobs = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM blobs"
            ).fetchone()
            apps = [
                r[0]
                for r in self._conn.execute(
                    "SELECT DISTINCT app FROM runs ORDER BY app"
                )
            ]
            schemes = [
                r[0]
                for r in self._conn.execute(
                    "SELECT DISTINCT scheme FROM runs ORDER BY scheme"
                )
            ]
            devices = [
                r[0]
                for r in self._conn.execute(
                    "SELECT DISTINCT device FROM runs"
                    " WHERE device IS NOT NULL ORDER BY device"
                )
            ]
            views = [
                {
                    "view": r["view"],
                    "watermark": r["watermark"],
                    "baseline": r["baseline"],
                    "cells": self._conn.execute(
                        "SELECT COUNT(DISTINCT cell) FROM matviews"
                        " WHERE view = ?",
                        (r["view"],),
                    ).fetchone()[0],
                }
                for r in self._conn.execute(
                    "SELECT view, watermark, baseline FROM matview_watermarks"
                    " ORDER BY view"
                )
            ]
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "runs": int(runs),
            "traces": int(traces),
            "journal": int(journal),
            "blobs": int(blobs[0]),
            "payload_bytes": int(blobs[1]),
            "apps": apps,
            "schemes": schemes,
            "devices": devices,
            "views": views,
        }


def open_store(path: Optional[Union[str, Path]] = None) -> ExperimentStore:
    """Open the experiment store.

    Resolution order: explicit ``path`` argument, then the
    ``REPRO_STORE`` environment knob, then an in-memory store (scratch —
    nothing persists).
    """
    if path is None:
        path = os.environ.get(STORE_ENV) or ":memory:"
    return ExperimentStore(path)
