"""Typed query surface of the experiment store.

A :class:`RunQuery` is a declarative filter over the store's ``runs``
table — every consumer (figure builders, fleet telemetry, the CLI)
queries through it instead of writing SQL. :class:`StoredRun` is the
typed row it returns: the indexed columns eagerly, the spec and result
payload decoded lazily on first access.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.results import RunResult
from repro.runtime.spec import RunSpec
from repro.vqa.result import VQEResult


def _freeze(values: Any) -> Optional[Tuple[Any, ...]]:
    """Normalize a filter argument: None passes, scalars become 1-tuples."""
    if values is None:
        return None
    if isinstance(values, (str, int, float)):
        return (values,)
    return tuple(values)


@dataclass(frozen=True)
class RunQuery:
    """Declarative filter over stored runs.

    Every field is optional; ``None`` means "no constraint". Sequence
    fields accept a single scalar for convenience. Rows always come back
    in append (``seq``) order.
    """

    apps: Optional[Sequence[str]] = None
    schemes: Optional[Sequence[str]] = None
    seeds: Optional[Sequence[int]] = None
    trace_scales: Optional[Sequence[float]] = None
    devices: Optional[Sequence[str]] = None
    sources: Optional[Sequence[str]] = None
    run_ids: Optional[Sequence[str]] = None
    min_seq: Optional[int] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        for spec_field in fields(self):
            if spec_field.name in ("min_seq", "limit"):
                continue
            object.__setattr__(
                self, spec_field.name, _freeze(getattr(self, spec_field.name))
            )

    _COLUMNS = {
        "apps": "app",
        "schemes": "scheme",
        "seeds": "seed",
        "trace_scales": "trace_scale",
        "devices": "device",
        "sources": "source",
        "run_ids": "run_id",
    }

    def where(self) -> Tuple[str, List[Any]]:
        """SQL ``WHERE ... ORDER BY seq [LIMIT]`` clause + bind params."""
        clauses: List[str] = []
        params: List[Any] = []
        for name, column in self._COLUMNS.items():
            values = getattr(self, name)
            if values is None:
                continue
            placeholders = ",".join("?" for _ in values)
            clauses.append(f"{column} IN ({placeholders})")
            params.extend(values)
        if self.min_seq is not None:
            clauses.append("seq > ?")
            params.append(self.min_seq)
        sql = ""
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY seq"
        if self.limit is not None:
            sql += " LIMIT ?"
            params.append(self.limit)
        return sql, params


@dataclass
class StoredRun:
    """One run row: indexed columns + lazily-decoded spec and payload."""

    seq: int
    run_id: str
    app: str
    scheme: str
    seed: int
    shots: int
    trace_scale: float
    iterations: int
    device: Optional[str]
    source: str
    ground_truth: float
    elapsed_s: float
    created_at: str
    spec_json: str
    payload: str
    _spec: Optional[RunSpec] = field(default=None, repr=False, compare=False)

    @property
    def spec(self) -> RunSpec:
        if self._spec is None:
            import json

            self._spec = RunSpec.from_dict(json.loads(self.spec_json))
        return self._spec

    def result_dict(self) -> Dict[str, Any]:
        import json

        return json.loads(self.payload)

    def to_run_result(self, from_cache: bool = True) -> RunResult:
        """Rehydrate the executor-layer :class:`RunResult`.

        ``from_cache`` defaults to True because a stored run is, by
        definition, not freshly executed; ``elapsed_s`` carries the
        original execution time for bookkeeping.
        """
        run = RunResult(
            spec=self.spec,
            result=VQEResult.from_dict(self.result_dict()),
            ground_truth=self.ground_truth,
            elapsed_s=self.elapsed_s,
            from_cache=from_cache,
        )
        return run
