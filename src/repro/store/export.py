"""Store-backed export to the legacy result-file formats.

The one sanctioned place where store contents are written back out as
JSON files — callers that used to dump ``PlanResult``/``RunResult``
objects directly (fleet CLI ``--out``, notebooks) now export through
the store so the file is guaranteed to reflect stored, deduped runs.
The emitted JSON is byte-compatible with ``PlanResult.save()`` /
``RunResult`` dicts, so existing consumers keep working.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.store.query import RunQuery
from repro.store.store import ExperimentStore
from repro.utils.serialization import save_json


def export_plan_result(
    store: ExperimentStore,
    run_ids: Sequence[str],
    path: Union[str, Path],
    plan: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the named runs as a ``PlanResult``-format JSON file.

    Runs come back in the order given (the plan's expansion order), not
    append order, so the file is interchangeable with what
    ``executor.run_plan(plan).save(path)`` used to produce.
    """
    stored = {
        s.run_id: s for s in store.query_runs(RunQuery(run_ids=tuple(run_ids)))
    }
    missing = [rid for rid in run_ids if rid not in stored]
    if missing:
        raise KeyError(f"store is missing {len(missing)} run(s): {missing[:3]}")
    runs = [stored[rid].to_run_result(from_cache=False) for rid in run_ids]
    payload = {"plan": plan, "runs": [run.to_dict() for run in runs]}
    return save_json(path, payload)


def export_runs(
    store: ExperimentStore,
    query: Optional[RunQuery],
    directory: Union[str, Path],
) -> int:
    """Write matching runs as per-run ``<run_id>.json`` files (the legacy
    ``CachedExecutor`` cache layout); returns how many were written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    count = 0
    for stored in store.query_runs(query):
        run = stored.to_run_result(from_cache=False)
        save_json(directory / f"{stored.run_id}.json", run.to_dict())
        count += 1
    return count
