"""Experiment lakehouse: the content-addressed result store behind every
cache.

Every persistence path in the repo — the executor result cache, the
fleet job store's payloads, figure-builder inputs, CLI exports — reads
and writes through :class:`ExperimentStore`. Open one with
:func:`open_store` (honors the ``REPRO_STORE`` environment knob) and
query it with :class:`RunQuery`; maintain it with
``python -m repro.store``.
"""

from repro.store.export import export_plan_result, export_runs
from repro.store.query import RunQuery, StoredRun
from repro.store.schema import SCHEMA_VERSION, SchemaError, payload_hash
from repro.store.store import (
    DEFAULT_VIEW,
    STORE_ENV,
    ExperimentStore,
    open_store,
    resolve_store_path,
)

__all__ = [
    "DEFAULT_VIEW",
    "ExperimentStore",
    "RunQuery",
    "SCHEMA_VERSION",
    "STORE_ENV",
    "SchemaError",
    "StoredRun",
    "export_plan_result",
    "export_runs",
    "open_store",
    "payload_hash",
    "resolve_store_path",
]
