"""``python -m repro.store`` — inspect and maintain the experiment store.

Subcommands::

    info            store summary (runs, blobs, apps, views)
    query           list runs matching column filters
    aggregate       per-scheme geomean improvements over matching runs
    materialize     incrementally refresh a materialized aggregate view
    compact         drop unreferenced blobs and reclaim file space
    import-legacy   ingest a legacy cache dir / result file / fleet db

The store path comes from ``--store`` or the ``REPRO_STORE`` environment
knob; every subcommand supports ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.store.query import RunQuery
from repro.store.store import DEFAULT_VIEW, STORE_ENV, ExperimentStore, open_store


def _emit(payload: Any, as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    if isinstance(payload, dict):
        for key, value in payload.items():
            print(f"{key:>16}: {value}")
    else:
        print(payload)


def _open(args: argparse.Namespace) -> ExperimentStore:
    store = open_store(args.store)
    if store.path == ":memory:":
        raise SystemExit(
            f"no store given: pass --store PATH or set {STORE_ENV}"
        )
    return store


def _query_from(args: argparse.Namespace) -> RunQuery:
    return RunQuery(
        apps=args.app or None,
        schemes=args.scheme or None,
        seeds=args.seed or None,
        devices=args.device or None,
        sources=args.source or None,
        limit=args.limit,
    )


def _add_filters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", action="append", help="filter by app name")
    parser.add_argument("--scheme", action="append", help="filter by scheme")
    parser.add_argument("--seed", action="append", type=int, help="filter by seed")
    parser.add_argument("--device", action="append", help="filter by device")
    parser.add_argument(
        "--source", action="append", help="filter by source (executor/fleet/import)"
    )
    parser.add_argument("--limit", type=int, default=None, help="max rows")


def cmd_info(args: argparse.Namespace) -> int:
    with _open(args) as store:
        _emit(store.info(), args.json)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    with _open(args) as store:
        rows = store.query_runs(_query_from(args))
    if args.json:
        _emit(
            [
                {
                    "seq": s.seq,
                    "run_id": s.run_id,
                    "app": s.app,
                    "scheme": s.scheme,
                    "seed": s.seed,
                    "trace_scale": s.trace_scale,
                    "iterations": s.iterations,
                    "device": s.device,
                    "source": s.source,
                    "ground_truth": s.ground_truth,
                    "elapsed_s": s.elapsed_s,
                    "created_at": s.created_at,
                }
                for s in rows
            ],
            True,
        )
        return 0
    header = (
        f"{'seq':>5}  {'run_id':16}  {'app':12}  {'scheme':14}"
        f"  {'seed':>6}  {'device':12}  {'source':8}"
    )
    print(header)
    print("-" * len(header))
    for s in rows:
        print(
            f"{s.seq:>5}  {s.run_id:16}  {s.app:12}  {s.scheme:14}"
            f"  {s.seed:>6}  {s.device or '-':12}  {s.source:8}"
        )
    print(f"{len(rows)} run(s)")
    return 0


def cmd_aggregate(args: argparse.Namespace) -> int:
    with _open(args) as store:
        if args.materialized:
            values = store.aggregate_materialized(args.view)
        else:
            values = store.aggregate(_query_from(args), baseline=args.baseline)
    _emit({k: float(v) for k, v in values.items()}, args.json)
    return 0


def cmd_materialize(args: argparse.Namespace) -> int:
    with _open(args) as store:
        summary = store.materialize(
            view=args.view, baseline=args.baseline, full=args.full
        )
    _emit(summary, args.json)
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    with _open(args) as store:
        summary = store.compact()
    _emit(summary, args.json)
    return 0


def cmd_import_legacy(args: argparse.Namespace) -> int:
    with _open(args) as store:
        summary = store.import_legacy(args.source)
    _emit(summary, args.json)
    return 1 if summary["errors"] and args.strict else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Inspect and maintain the experiment store.",
    )
    parser.add_argument(
        "--store",
        default=None,
        help=f"store path (default: ${STORE_ENV})",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="store summary").set_defaults(func=cmd_info)

    query = sub.add_parser("query", help="list runs matching filters")
    _add_filters(query)
    query.set_defaults(func=cmd_query)

    aggregate = sub.add_parser(
        "aggregate", help="per-scheme geomean improvements"
    )
    _add_filters(aggregate)
    aggregate.add_argument("--baseline", default="baseline")
    aggregate.add_argument(
        "--materialized",
        action="store_true",
        help="read the materialized view instead of recomputing",
    )
    aggregate.add_argument("--view", default=DEFAULT_VIEW)
    aggregate.set_defaults(func=cmd_aggregate)

    materialize = sub.add_parser(
        "materialize", help="refresh a materialized aggregate view"
    )
    materialize.add_argument("--view", default=DEFAULT_VIEW)
    materialize.add_argument("--baseline", default="baseline")
    materialize.add_argument(
        "--full", action="store_true", help="rebuild every cell"
    )
    materialize.set_defaults(func=cmd_materialize)

    sub.add_parser(
        "compact", help="drop unreferenced blobs, reclaim space"
    ).set_defaults(func=cmd_compact)

    imp = sub.add_parser(
        "import-legacy", help="ingest a legacy cache dir / result file / fleet db"
    )
    imp.add_argument("source", help="cache directory, JSON file, or fleet .db")
    imp.add_argument(
        "--strict", action="store_true", help="exit nonzero on decode errors"
    )
    imp.set_defaults(func=cmd_import_legacy)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
