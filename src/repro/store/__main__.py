import sys

from repro.store.cli import main

sys.exit(main())
