"""Store schema: versioned tables + forward migrations.

The experiment store's on-disk layout is versioned through a
``store_meta`` row (``schema_version``). Opening a store at an older
version applies every forward migration in order inside one transaction
per step; opening a *newer* store fails loudly rather than corrupting it.

Version history:

* **v1** — one wide ``runs`` table with the result payload inlined as a
  JSON column (the initial lakehouse layout).
* **v2** — content-addressed payloads: run rows carry a
  ``payload_hash`` into a shared ``blobs`` table (identical payloads are
  stored once, integrity is checkable by re-hashing), an autoincrement
  ``seq`` records append order (the watermark basis for incremental
  materialized aggregates), and the ``matviews`` / ``matview_watermarks``
  tables hold per-cell improvement ratios plus the high-water mark of the
  last materialization.
* **v3** — adds the ``traces`` table: ``repro.obs``
  trace/metric summaries persisted next to the results they profile,
  payloads content-addressed through the same ``blobs`` table.
* **v4** (current) — adds the ``journal`` table: a WAL-style,
  append-only record of job-lifecycle events (enqueue/running/retry/
  done/failed/…) written by the fleet's ``JobStore`` inside the same
  transactions as the transitions they describe. The journal is what
  lets ``python -m repro.fleet drain --resume`` reconstruct and finish
  a killed sweep.

Migrations move payload text **verbatim** — a v1 store migrated to v2
serves bit-identical payloads (asserted in
``tests/test_store_migration.py``).
"""

from __future__ import annotations

import hashlib
import sqlite3
from typing import Callable, Dict

#: Current on-disk schema version.
SCHEMA_VERSION = 4

#: The v1 layout, kept for migration tests and ``create_v1_store``.
V1_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    app          TEXT NOT NULL,
    scheme       TEXT NOT NULL,
    seed         INTEGER NOT NULL,
    shots        INTEGER NOT NULL,
    trace_scale  REAL NOT NULL,
    iterations   INTEGER NOT NULL,
    device       TEXT,
    source       TEXT NOT NULL DEFAULT 'executor',
    ground_truth REAL NOT NULL,
    elapsed_s    REAL NOT NULL DEFAULT 0.0,
    created_at   TEXT NOT NULL DEFAULT '',
    spec         TEXT NOT NULL,
    payload      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: The v2 layout (kept verbatim: the v1->v2 migration recreates it and
#: the v2->v3 step builds on top).
V2_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    seq          INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id       TEXT NOT NULL UNIQUE,
    app          TEXT NOT NULL,
    scheme       TEXT NOT NULL,
    seed         INTEGER NOT NULL,
    shots        INTEGER NOT NULL,
    trace_scale  REAL NOT NULL,
    iterations   INTEGER NOT NULL,
    device       TEXT,
    source       TEXT NOT NULL DEFAULT 'executor',
    ground_truth REAL NOT NULL,
    elapsed_s    REAL NOT NULL DEFAULT 0.0,
    created_at   TEXT NOT NULL DEFAULT '',
    spec         TEXT NOT NULL,
    payload_hash TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_app_scheme ON runs (app, scheme);
CREATE INDEX IF NOT EXISTS runs_cell ON runs (app, seed, trace_scale);
CREATE TABLE IF NOT EXISTS blobs (
    hash TEXT PRIMARY KEY,
    data TEXT NOT NULL,
    size INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS matviews (
    view       TEXT NOT NULL,
    cell       TEXT NOT NULL,
    scheme     TEXT NOT NULL,
    ratio      REAL NOT NULL,
    cell_order INTEGER NOT NULL,
    PRIMARY KEY (view, cell, scheme)
);
CREATE TABLE IF NOT EXISTS matview_watermarks (
    view      TEXT PRIMARY KEY,
    watermark INTEGER NOT NULL,
    baseline  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: v3 additions: obs trace/metric summaries, content-addressed like runs.
TRACES_SCHEMA = """
CREATE TABLE IF NOT EXISTS traces (
    trace_id     INTEGER PRIMARY KEY AUTOINCREMENT,
    label        TEXT NOT NULL DEFAULT '',
    created_at   TEXT NOT NULL DEFAULT '',
    payload_hash TEXT NOT NULL
);
"""

#: The v3 layout (kept: the v3->v4 step builds on top).
V3_SCHEMA = V2_SCHEMA + TRACES_SCHEMA

#: v4 additions: the WAL-style execution journal (append-only; ``seq``
#: preserves event order across service lifetimes).
JOURNAL_SCHEMA = """
CREATE TABLE IF NOT EXISTS journal (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    tick    INTEGER NOT NULL DEFAULT 0,
    event   TEXT NOT NULL,
    run_id  TEXT NOT NULL,
    device  TEXT,
    attempt INTEGER NOT NULL DEFAULT 0,
    detail  TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS journal_run ON journal (run_id, seq);
"""

#: The current (v4) layout.
V4_SCHEMA = V3_SCHEMA + JOURNAL_SCHEMA


class SchemaError(RuntimeError):
    """The store's on-disk schema cannot be used by this code version."""


def payload_hash(payload: str) -> str:
    """Content address of one canonical payload text."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _get_version(conn: sqlite3.Connection) -> int:
    """Schema version of an open database (0 = no store tables yet)."""
    row = conn.execute(
        "SELECT name FROM sqlite_master WHERE type='table' AND name='store_meta'"
    ).fetchone()
    if row is None:
        # A bare `runs` table without store_meta is not ours to touch.
        return 0
    value = conn.execute(
        "SELECT value FROM store_meta WHERE key='schema_version'"
    ).fetchone()
    return int(value[0]) if value is not None else 0


def _set_version(conn: sqlite3.Connection, version: int) -> None:
    conn.execute(
        "INSERT INTO store_meta (key, value) VALUES ('schema_version', ?)"
        " ON CONFLICT(key) DO UPDATE SET value=excluded.value",
        (str(version),),
    )


def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """Inline payloads -> content-addressed blobs + append-order ``seq``.

    Payload text moves verbatim; append order is preserved by walking the
    v1 table in rowid order so ``seq`` reproduces the original insertion
    sequence (the matview watermark basis).
    """
    conn.execute("ALTER TABLE runs RENAME TO runs_v1")
    conn.executescript(V2_SCHEMA)
    rows = conn.execute("SELECT * FROM runs_v1 ORDER BY rowid").fetchall()
    for row in rows:
        digest = payload_hash(row["payload"])
        conn.execute(
            "INSERT OR IGNORE INTO blobs (hash, data, size) VALUES (?, ?, ?)",
            (digest, row["payload"], len(row["payload"])),
        )
        conn.execute(
            "INSERT INTO runs (run_id, app, scheme, seed, shots, trace_scale,"
            " iterations, device, source, ground_truth, elapsed_s, created_at,"
            " spec, payload_hash)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                row["run_id"], row["app"], row["scheme"], row["seed"],
                row["shots"], row["trace_scale"], row["iterations"],
                row["device"], row["source"], row["ground_truth"],
                row["elapsed_s"], row["created_at"], row["spec"], digest,
            ),
        )
    conn.execute("DROP TABLE runs_v1")


def _migrate_v2_to_v3(conn: sqlite3.Connection) -> None:
    """Additive: the ``traces`` table only — run rows do not move."""
    conn.executescript(TRACES_SCHEMA)


def _migrate_v3_to_v4(conn: sqlite3.Connection) -> None:
    """Additive: the ``journal`` table only — run rows do not move."""
    conn.executescript(JOURNAL_SCHEMA)


#: Forward migrations: from-version -> migration function.
MIGRATIONS: Dict[int, Callable[[sqlite3.Connection], None]] = {
    1: _migrate_v1_to_v2,
    2: _migrate_v2_to_v3,
    3: _migrate_v3_to_v4,
}


def ensure_schema(conn: sqlite3.Connection) -> int:
    """Create (or migrate) the store tables; returns the migrated-from
    version (``SCHEMA_VERSION`` when nothing had to move)."""
    version = _get_version(conn)
    if version == 0:
        conn.executescript(V4_SCHEMA)
        _set_version(conn, SCHEMA_VERSION)
        conn.commit()
        return SCHEMA_VERSION
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"store schema v{version} is newer than this code "
            f"(supports up to v{SCHEMA_VERSION})"
        )
    original = version
    while version < SCHEMA_VERSION:
        migrate = MIGRATIONS.get(version)
        if migrate is None:
            raise SchemaError(f"no migration from store schema v{version}")
        migrate(conn)
        version += 1
        _set_version(conn, version)
        conn.commit()
    return original


def create_v1_store(conn: sqlite3.Connection) -> None:
    """Lay down the historical v1 schema (migration tests / fixtures)."""
    conn.executescript(V1_SCHEMA)
    conn.execute(
        "INSERT INTO store_meta (key, value) VALUES ('schema_version', '1')"
        " ON CONFLICT(key) DO UPDATE SET value='1'"
    )
    conn.commit()


def create_v2_store(conn: sqlite3.Connection) -> None:
    """Lay down the historical v2 schema (migration tests / fixtures)."""
    conn.executescript(V2_SCHEMA)
    conn.execute(
        "INSERT INTO store_meta (key, value) VALUES ('schema_version', '2')"
        " ON CONFLICT(key) DO UPDATE SET value='2'"
    )
    conn.commit()
