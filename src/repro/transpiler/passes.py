"""The transpile pipeline: layout -> routing -> basis translation.

The individual stages now live as compiler passes in
:mod:`repro.compiler.passes` (``SelectLayout``, ``RouteCircuit``,
``TranslateToBasis``); :func:`transpile` is a thin wrapper that runs them
and repackages the bookkeeping. Callers that want an executable plan in
one step should use :func:`repro.compiler.transpile_then_compile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.circuits.circuit import QuantumCircuit
from repro.devices.coupling import CouplingMap
from repro.transpiler.layout import Layout


@dataclass(frozen=True)
class TranspileResult:
    """Transpilation output plus bookkeeping for result interpretation."""

    circuit: QuantumCircuit
    layout: Layout
    final_permutation: Dict[int, int]
    num_swaps: int

    @property
    def num_two_qubit_gates(self) -> int:
        return self.circuit.num_two_qubit_gates


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout_method: str = "chain",
    to_native_basis: bool = True,
) -> TranspileResult:
    """Map a (bound) circuit onto a device.

    ``layout_method`` is ``"chain"`` (find a simple path; best for
    linear-entanglement ansatz circuits) or ``"trivial"``.
    """
    from repro.compiler.passes import (
        CompilationUnit,
        Pipeline,
        RouteCircuit,
        SelectLayout,
        TranslateToBasis,
    )

    passes = [SelectLayout(layout_method), RouteCircuit()]
    if to_native_basis:
        passes.append(TranslateToBasis())
    unit = Pipeline(passes, name="transpile").run(
        CompilationUnit(circuit=circuit, coupling=coupling)
    )
    return TranspileResult(
        circuit=unit.circuit,
        layout=unit.layout,
        final_permutation=unit.final_permutation,
        num_swaps=unit.num_swaps,
    )
