"""The transpile pipeline: layout -> routing -> basis translation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.circuits.circuit import QuantumCircuit
from repro.devices.coupling import CouplingMap
from repro.transpiler.basis import translate_to_basis
from repro.transpiler.layout import (
    Layout,
    apply_layout,
    linear_chain_layout,
    trivial_layout,
)
from repro.transpiler.routing import route_circuit


@dataclass(frozen=True)
class TranspileResult:
    """Transpilation output plus bookkeeping for result interpretation."""

    circuit: QuantumCircuit
    layout: Layout
    final_permutation: Dict[int, int]
    num_swaps: int

    @property
    def num_two_qubit_gates(self) -> int:
        return self.circuit.num_two_qubit_gates


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout_method: str = "chain",
    to_native_basis: bool = True,
) -> TranspileResult:
    """Map a (bound) circuit onto a device.

    ``layout_method`` is ``"chain"`` (find a simple path; best for
    linear-entanglement ansatz circuits) or ``"trivial"``.
    """
    if layout_method == "chain":
        layout = linear_chain_layout(circuit, coupling)
    elif layout_method == "trivial":
        layout = trivial_layout(circuit, coupling)
    else:
        raise ValueError(f"unknown layout method {layout_method!r}")

    placed = apply_layout(circuit, layout)
    routed, permutation = route_circuit(placed, coupling)
    num_swaps = routed.count_ops().get("swap", 0)
    final = translate_to_basis(routed) if to_native_basis else routed
    return TranspileResult(
        circuit=final,
        layout=layout,
        final_permutation=permutation,
        num_swaps=num_swaps,
    )
