"""Basis translation into the IBM native gate set {rz, sx, x, cx}.

Standard identities:

* ``h  = rz(pi/2) sx rz(pi/2)``   (up to global phase)
* ``ry(t) = rz(-pi/2)? `` — we use ``ry(t) = sx rz(t+pi) sx rz(pi)``-free
  form: ``ry(t) = rz(-pi) sx rz(pi - t) sx`` is error prone, so instead we
  use the robust generic route: any single-qubit unitary decomposes as
  ``rz(a) sx rz(b) sx rz(c)`` (ZSXZSXZ), computed numerically from the
  gate matrix. Global phase is irrelevant for expectation values.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATES

NATIVE_GATES = ("rz", "sx", "x", "cx")


def zsxzsxz_angles(matrix: np.ndarray) -> tuple:
    """Decompose a 2x2 unitary as ``rz(a) sx rz(b) sx rz(c)``.

    Write ``U = e^{i phase} Rz(alpha) Ry(theta) Rz(beta)`` (ZYZ Euler
    form); then, up to global phase,
    ``U = Rz(alpha + pi) SX Rz(theta + pi) SX Rz(beta)`` — the identity
    Qiskit's standard equivalence library uses for the u -> rz/sx
    translation. Tests verify the reconstruction for random unitaries.
    """
    u = np.asarray(matrix, dtype=complex)
    det = np.linalg.det(u)
    u = u / np.sqrt(det)  # project to SU(2); global phase is irrelevant
    theta = 2.0 * np.arctan2(abs(u[1, 0]), abs(u[0, 0]))
    alpha_plus_beta = -2.0 * np.angle(u[0, 0]) if abs(u[0, 0]) > 1e-12 else 0.0
    alpha_minus_beta = 2.0 * np.angle(u[1, 0]) if abs(u[1, 0]) > 1e-12 else 0.0
    alpha = (alpha_plus_beta + alpha_minus_beta) / 2.0
    beta = (alpha_plus_beta - alpha_minus_beta) / 2.0
    return _wrap(alpha + np.pi), _wrap(theta + np.pi), _wrap(beta)


def _wrap(angle: float) -> float:
    return float((angle + np.pi) % (2.0 * np.pi) - np.pi)


def reconstruct_zsxzsxz(a: float, b: float, c: float) -> np.ndarray:
    rz = GATES["rz"]
    sx = GATES["sx"].matrix()
    return rz.matrix((a,)) @ sx @ rz.matrix((b,)) @ sx @ rz.matrix((c,))


def translate_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite all gates into {rz, sx, x, cx}.

    Two-qubit non-CX gates (cz, swap, rzz, ...) are first expanded into CX
    plus single-qubit gates; single-qubit gates then go through the
    numerical ZSXZSXZ decomposition (skipping ones already native).
    """
    if circuit.num_parameters:
        raise ValueError("bind parameters before basis translation")
    out = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_native")
    for inst in circuit:
        if inst.name == "barrier":
            out.barrier(*inst.qubits)
            continue
        params = tuple(float(p) for p in inst.params)
        if inst.name in ("rz", "x", "sx", "cx"):
            out.append(inst.name, inst.qubits, params)
        elif inst.name == "id":
            continue
        elif len(inst.qubits) == 1:
            matrix = GATES[inst.name].matrix(params)
            a, b, c = zsxzsxz_angles(matrix)
            qubit = inst.qubits[0]
            out.rz(c, qubit)
            out.sx(qubit)
            out.rz(b, qubit)
            out.sx(qubit)
            out.rz(a, qubit)
        elif inst.name == "cz":
            control, target = inst.qubits
            _append_h(out, target)
            out.cx(control, target)
            _append_h(out, target)
        elif inst.name == "swap":
            a_q, b_q = inst.qubits
            out.cx(a_q, b_q)
            out.cx(b_q, a_q)
            out.cx(a_q, b_q)
        elif inst.name == "rzz":
            a_q, b_q = inst.qubits
            out.cx(a_q, b_q)
            out.rz(params[0], b_q)
            out.cx(a_q, b_q)
        elif inst.name == "rxx":
            a_q, b_q = inst.qubits
            _append_h(out, a_q)
            _append_h(out, b_q)
            out.cx(a_q, b_q)
            out.rz(params[0], b_q)
            out.cx(a_q, b_q)
            _append_h(out, a_q)
            _append_h(out, b_q)
        elif inst.name == "crz":
            _append_crz(out, params[0], *inst.qubits)
        elif inst.name == "crx":
            # crx = (I ⊗ H) crz (I ⊗ H); reuses the crz expansion.
            control, target = inst.qubits
            _append_h(out, target)
            _append_crz(out, params[0], control, target)
            _append_h(out, target)
        else:
            raise KeyError(f"no basis translation rule for {inst.name!r}")
    return out


def _append_crz(
    circuit: QuantumCircuit, theta: float, control: int, target: int
) -> None:
    """crz in native gates: rz(t/2) cx rz(-t/2) cx on the target."""
    circuit.rz(theta / 2.0, target)
    circuit.cx(control, target)
    circuit.rz(-theta / 2.0, target)
    circuit.cx(control, target)


def _append_h(circuit: QuantumCircuit, qubit: int) -> None:
    """H in native gates: rz(pi/2) sx rz(pi/2) up to global phase."""
    circuit.rz(np.pi / 2.0, qubit)
    circuit.sx(qubit)
    circuit.rz(np.pi / 2.0, qubit)


#: Public alias: the one place the native-H identity lives.
append_native_h = _append_h
