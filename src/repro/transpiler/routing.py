"""Swap insertion for two-qubit gates on restricted connectivity.

A simple, predictable router: when a two-qubit gate's operands are not
adjacent, move one operand along the shortest path with SWAPs (updating
the running permutation), then emit the gate. Not SABRE-optimal, but
deterministic and easy to verify — and the paper's linear-entanglement
ansatz circuits route swap-free under the chain layout anyway.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.devices.coupling import CouplingMap


def route_circuit(
    circuit: QuantumCircuit, coupling: CouplingMap
) -> Tuple[QuantumCircuit, Dict[int, int]]:
    """Insert SWAPs so every two-qubit gate acts on coupled qubits.

    Returns ``(routed_circuit, final_permutation)`` where
    ``final_permutation[logical] = physical`` holds *after* execution
    (measurement results must be read through it).
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError("circuit does not fit on device")
    routed = QuantumCircuit(coupling.num_qubits, name=f"{circuit.name}_routed")
    # logical -> current physical position
    position = {logical: logical for logical in range(circuit.num_qubits)}

    for inst in circuit:
        if inst.name == "barrier":
            routed.barrier(*(position.get(q, q) for q in inst.qubits))
            continue
        if len(inst.qubits) == 1:
            routed.append(inst.name, (position[inst.qubits[0]],), inst.params)
            continue
        a, b = inst.qubits
        pa, pb = position[a], position[b]
        if not coupling.are_connected(pa, pb):
            path = coupling.shortest_path(pa, pb)
            # Walk qubit `a` down the path until adjacent to b's position.
            occupant = {p: l for l, p in position.items()}
            for next_physical in path[1:-1]:
                routed.swap(position[a], next_physical)
                other = occupant.get(next_physical)
                current = position[a]
                occupant[current] = other
                if other is not None:
                    position[other] = current
                else:
                    occupant.pop(next_physical, None)
                position[a] = next_physical
                occupant[next_physical] = a
            pa, pb = position[a], position[b]
            if not coupling.are_connected(pa, pb):
                raise RuntimeError("routing failed to make qubits adjacent")
        routed.append(inst.name, (position[a], position[b]), inst.params)

    return routed, dict(position)
