"""Initial layout selection: virtual -> physical qubit maps."""

from __future__ import annotations

from typing import Dict, List

from repro.circuits.circuit import QuantumCircuit
from repro.devices.coupling import CouplingMap


class Layout:
    """A bijective map from virtual circuit qubits to physical qubits."""

    def __init__(self, virtual_to_physical: Dict[int, int], num_physical: int):
        values = list(virtual_to_physical.values())
        if len(set(values)) != len(values):
            raise ValueError("layout must be injective")
        for physical in values:
            if not 0 <= physical < num_physical:
                raise ValueError(f"physical qubit {physical} out of range")
        self.v2p = dict(virtual_to_physical)
        self.num_physical = num_physical

    def physical(self, virtual: int) -> int:
        return self.v2p[virtual]

    def virtual_qubits(self) -> List[int]:
        return sorted(self.v2p)

    def inverse(self) -> Dict[int, int]:
        return {p: v for v, p in self.v2p.items()}

    def __repr__(self) -> str:
        return f"Layout({self.v2p})"


def trivial_layout(circuit: QuantumCircuit, coupling: CouplingMap) -> Layout:
    """Identity layout (virtual i -> physical i)."""
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError("circuit does not fit on device")
    return Layout(
        {v: v for v in range(circuit.num_qubits)}, coupling.num_qubits
    )


def linear_chain_layout(circuit: QuantumCircuit, coupling: CouplingMap) -> Layout:
    """Place the circuit along a simple path in the coupling graph.

    Ideal for linear-entanglement ansatz circuits: every neighbour CX in
    the virtual circuit lands on a physical coupler, eliminating swaps.
    Falls back to the trivial layout when no chain exists.
    """
    try:
        chain = coupling.best_linear_chain(circuit.num_qubits)
    except ValueError:
        return trivial_layout(circuit, coupling)
    return Layout(
        {v: p for v, p in enumerate(chain)}, coupling.num_qubits
    )


def apply_layout(circuit: QuantumCircuit, layout: Layout) -> QuantumCircuit:
    """Rewrite a circuit onto physical qubit indices."""
    physical_circuit = QuantumCircuit(layout.num_physical, name=circuit.name)
    for inst in circuit:
        mapped = tuple(layout.physical(q) for q in inst.qubits)
        if inst.name == "barrier":
            physical_circuit.barrier(*mapped)
        else:
            physical_circuit.append(inst.name, mapped, inst.params)
    return physical_circuit
