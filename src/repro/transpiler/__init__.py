"""A small transpiler: layout selection, swap routing and basis translation
to the IBM-style ``{rz, sx, x, cx}`` gate set."""

from repro.transpiler.layout import Layout, linear_chain_layout, trivial_layout
from repro.transpiler.routing import route_circuit
from repro.transpiler.basis import translate_to_basis
from repro.transpiler.passes import TranspileResult, transpile

__all__ = [
    "Layout",
    "trivial_layout",
    "linear_chain_layout",
    "route_circuit",
    "translate_to_basis",
    "TranspileResult",
    "transpile",
]
