"""The RealAmplitudes ansatz (paper's "RA")."""

from __future__ import annotations

from repro.ansatz.base import TwoLocalAnsatz


class RealAmplitudes(TwoLocalAnsatz):
    """RY rotation layers with CX entanglement; real-valued amplitudes.

    Matches Qiskit's ``RealAmplitudes``; the paper's Table 1 uses it with
    4 and 8 repetitions on 6 qubits.
    """

    def __init__(self, num_qubits: int, reps: int = 4, entanglement: str = "linear"):
        super().__init__(
            num_qubits,
            rotation_gates=("ry",),
            reps=reps,
            entanglement=entanglement,
            name=f"ra_{num_qubits}q_{reps}r",
        )
