"""The EfficientSU2 ansatz (paper's "SU2")."""

from __future__ import annotations

from repro.ansatz.base import TwoLocalAnsatz


class EfficientSU2(TwoLocalAnsatz):
    """RY+RZ rotation layers with CX entanglement.

    Matches Qiskit's ``EfficientSU2`` default gate choice; the paper's
    Table 1 uses it with 2 and 4 repetitions on 6 qubits.
    """

    def __init__(self, num_qubits: int, reps: int = 2, entanglement: str = "linear"):
        super().__init__(
            num_qubits,
            rotation_gates=("ry", "rz"),
            reps=reps,
            entanglement=entanglement,
            name=f"su2_{num_qubits}q_{reps}r",
        )
