"""Entanglement-layer patterns for two-local ansatz circuits."""

from __future__ import annotations

from typing import List, Tuple


def entanglement_pairs(num_qubits: int, pattern: str) -> List[Tuple[int, int]]:
    """CX (control, target) pairs for a named entanglement pattern.

    Patterns follow the Qiskit two-local conventions: ``linear`` chains
    neighbours, ``circular`` adds the wrap-around link, ``full`` connects
    every pair, ``pairwise`` alternates even and odd bonds (depth-2).
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    if num_qubits == 1:
        return []
    if pattern == "linear":
        return [(i, i + 1) for i in range(num_qubits - 1)]
    if pattern == "circular":
        pairs = [(num_qubits - 1, 0)] if num_qubits > 2 else []
        return pairs + [(i, i + 1) for i in range(num_qubits - 1)]
    if pattern == "full":
        return [
            (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
        ]
    if pattern == "pairwise":
        evens = [(i, i + 1) for i in range(0, num_qubits - 1, 2)]
        odds = [(i, i + 1) for i in range(1, num_qubits - 1, 2)]
        return evens + odds
    raise ValueError(f"unknown entanglement pattern {pattern!r}")
