"""Ansatz base classes.

An :class:`Ansatz` owns a parameterized circuit, a canonical parameter
ordering, and a compiled program for fast simulation. Subclasses define the
rotation layers; :class:`TwoLocalAnsatz` implements the rotation/entangle
block structure shared by SU2 and RA.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ansatz.entanglement import entanglement_pairs
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameter import Parameter, ParameterVector
from repro.circuits.program import CompiledProgram, compile_circuit
from repro.compiler import GatePlan, compile_plan
from repro.utils.rng import SeedLike, ensure_rng


class Ansatz:
    """Base class: a parameterized circuit plus helpers for VQE."""

    def __init__(self, circuit: QuantumCircuit, parameters: Sequence[Parameter]):
        self._circuit = circuit
        self._parameters = tuple(parameters)
        # Compiled through the shared plan cache: structurally identical
        # ansatz instances (same shape, reps, entanglement) share one plan.
        self._plan = compile_plan(circuit, self._parameters)
        self._program: CompiledProgram | None = None

    @property
    def num_qubits(self) -> int:
        return self._circuit.num_qubits

    @property
    def num_parameters(self) -> int:
        return len(self._parameters)

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        return self._parameters

    @property
    def circuit(self) -> QuantumCircuit:
        """The symbolic circuit (copy; callers may mutate freely)."""
        return self._circuit.copy()

    @property
    def plan(self) -> GatePlan:
        """The compiled (fused, cached) gate plan — the execution form."""
        return self._plan

    @property
    def program(self) -> CompiledProgram:
        """Legacy compiled program (compatibility shim; built lazily)."""
        if self._program is None:
            self._program = compile_circuit(self._circuit, self._parameters)
        return self._program

    def bind(self, theta: Sequence[float]) -> QuantumCircuit:
        """A numeric circuit at parameter values ``theta``."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {theta.shape}"
            )
        return self._circuit.bind(dict(zip(self._parameters, theta)))

    def initial_point(self, seed: SeedLike = None, scale: float = 0.1) -> np.ndarray:
        """A small random starting parameter vector.

        Small angles keep the initial state near ``|0...0>``, matching how
        the paper's VQE runs begin high on the objective and descend.
        """
        rng = ensure_rng(seed)
        return rng.uniform(-scale * np.pi, scale * np.pi, self.num_parameters)

    @property
    def num_two_qubit_gates(self) -> int:
        return self._circuit.num_two_qubit_gates

    def depth(self) -> int:
        return self._circuit.depth()


class TwoLocalAnsatz(Ansatz):
    """Alternating rotation and CX entanglement blocks.

    ``rotation_gates`` names the single-qubit rotations in each rotation
    layer (e.g. ``("ry",)`` for RealAmplitudes, ``("ry", "rz")`` for
    EfficientSU2). ``reps`` counts entanglement blocks; there are
    ``reps + 1`` rotation layers (final rotation layer included).
    """

    def __init__(
        self,
        num_qubits: int,
        rotation_gates: Sequence[str],
        reps: int = 2,
        entanglement: str = "linear",
        name: str = "two_local",
    ):
        if reps < 0:
            raise ValueError("reps must be >= 0")
        if not rotation_gates:
            raise ValueError("need at least one rotation gate")
        self.reps = reps
        self.entanglement = entanglement
        self.rotation_gates = tuple(rotation_gates)

        params_per_layer = num_qubits * len(rotation_gates)
        vector = ParameterVector(
            f"{name}_theta", params_per_layer * (reps + 1)
        )
        circuit = QuantumCircuit(num_qubits, name=name)
        ordered: List[Parameter] = list(vector)
        cursor = 0
        for block in range(reps + 1):
            for gate in self.rotation_gates:
                for qubit in range(num_qubits):
                    circuit.append(gate, (qubit,), (vector[cursor],))
                    cursor += 1
            if block < reps:
                for control, target in entanglement_pairs(num_qubits, entanglement):
                    circuit.cx(control, target)
        super().__init__(circuit, ordered)
