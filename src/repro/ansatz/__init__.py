"""Hardware-efficient variational ansatz circuits.

The paper's Table 1 uses the SU2 (``EfficientSU2``) and RA
(``RealAmplitudes``) ansatz with 2/4/8 block repetitions; both are
implemented here on a shared :class:`TwoLocalAnsatz` base.
"""

from repro.ansatz.base import Ansatz, TwoLocalAnsatz
from repro.ansatz.efficient_su2 import EfficientSU2
from repro.ansatz.real_amplitudes import RealAmplitudes
from repro.ansatz.entanglement import entanglement_pairs

__all__ = [
    "Ansatz",
    "TwoLocalAnsatz",
    "EfficientSU2",
    "RealAmplitudes",
    "entanglement_pairs",
]
