"""Statevector simulation.

States are stored as rank-``n`` tensors of shape ``(2,) * n`` with qubit 0
as the *first* tensor axis. Bitstring conventions elsewhere in the library
print qubit 0 as the leftmost character.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.program import CompiledProgram, compile_circuit


def apply_gate(
    state: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply a k-qubit gate matrix to the state tensor in place-ish.

    Returns the (possibly new) state tensor; callers must use the return
    value because ``moveaxis`` produces views/copies.
    """
    k = len(qubits)
    tensor = matrix.reshape((2,) * (2 * k))
    # Contract the gate's input indices with the state's qubit axes, then
    # move the resulting output axes back to the qubit positions.
    state = np.tensordot(tensor, state, axes=(tuple(range(k, 2 * k)), qubits))
    return np.moveaxis(state, tuple(range(k)), qubits)


class StatevectorSimulator:
    """Executes compiled programs / circuits on pure states."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits

    def zero_state(self) -> np.ndarray:
        state = np.zeros((2,) * self.num_qubits, dtype=complex)
        state[(0,) * self.num_qubits] = 1.0
        return state

    def run_program(
        self,
        program: CompiledProgram,
        theta: Sequence[float],
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a compiled program and return the final state tensor."""
        if program.num_qubits != self.num_qubits:
            raise ValueError("program qubit count mismatch")
        state = self.zero_state() if initial_state is None else np.array(
            initial_state, dtype=complex
        ).reshape((2,) * self.num_qubits)
        for qubits, matrix in program.op_matrices(theta):
            state = apply_gate(state, matrix, qubits)
        return state

    def run_circuit(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a fully bound circuit."""
        if circuit.num_parameters:
            raise ValueError("circuit has unbound parameters; bind it first")
        program = compile_circuit(circuit)
        return self.run_program(program, np.empty(0), initial_state)


def simulate_statevector(
    circuit_or_program: Union[QuantumCircuit, CompiledProgram],
    theta: Sequence[float] = (),
) -> np.ndarray:
    """Convenience wrapper returning the flat statevector of length 2**n.

    The flattening uses qubit 0 as the most-significant bit, consistent with
    the tensor layout.
    """
    if isinstance(circuit_or_program, CompiledProgram):
        program = circuit_or_program
        sim = StatevectorSimulator(program.num_qubits)
        state = sim.run_program(program, theta)
    else:
        circuit = circuit_or_program
        sim = StatevectorSimulator(circuit.num_qubits)
        if circuit.num_parameters:
            program = compile_circuit(circuit)
            state = sim.run_program(program, theta)
        else:
            state = sim.run_circuit(circuit)
    return state.reshape(-1)
