"""Statevector simulation.

States are stored as rank-``n`` tensors of shape ``(2,) * n`` with qubit 0
as the *first* tensor axis. Bitstring conventions elsewhere in the library
print qubit 0 as the leftmost character.

Execution consumes the compiler's :class:`~repro.compiler.GatePlan` IR;
the legacy :class:`~repro.circuits.program.CompiledProgram` is still
accepted for backward compatibility. ``run_circuit`` compiles through the
shared plan cache, so repeated bound-circuit runs are compile-free.

Gate application dispatches through :mod:`repro.simulator.kernels` on the
ops' pre-lowered kernel classes: the default ``pair`` engine updates the
state with bit-indexed in-place/ping-pong kernels, while
``REPRO_KERNEL=tensordot`` preserves the historic reshape + ``tensordot``
path bit-identically.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.program import CompiledProgram
from repro.compiler import GatePlan, compile_plan
from repro.obs import TRACER
from repro.simulator import kernels
from repro.simulator.kernels import ENGINE_TENSORDOT, PendingOneQubitGates


def apply_gate(
    state: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply a k-qubit gate matrix via the shared tensordot reference.

    Returns the (possibly new) state tensor; callers must use the return
    value because ``moveaxis`` produces views/copies.
    """
    return kernels.apply_gate_tensordot(state, matrix, qubits)


class StatevectorSimulator:
    """Executes gate plans / compiled programs / circuits on pure states."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits

    def zero_state(self) -> np.ndarray:
        state = np.zeros((2,) * self.num_qubits, dtype=complex)
        state[(0,) * self.num_qubits] = 1.0
        return state

    def _initial(self, initial_state: Optional[np.ndarray]) -> np.ndarray:
        if initial_state is None:
            return self.zero_state()
        return np.array(initial_state, dtype=complex).reshape(
            (2,) * self.num_qubits
        )

    def run_plan(
        self,
        plan: GatePlan,
        theta: Sequence[float] = (),
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a compiled gate plan and return the final state tensor."""
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan qubit count mismatch")
        state = self._initial(initial_state)
        if kernels.kernel_engine() == ENGINE_TENSORDOT:
            tracer = TRACER
            if not tracer.enabled:
                for qubits, matrix in plan.op_matrices(theta):
                    state = apply_gate(state, matrix, qubits)
                return state
            with tracer.span(
                "sim.statevector.run_plan", category="kernel",
                ops=len(plan.ops), state_size=2**plan.num_qubits,
            ):
                for qubits, matrix in plan.op_matrices(theta):
                    with tracer.kernel_span(
                        "kernel.sv.gate", sites=len(qubits), state_size=state.size
                    ):
                        state = apply_gate(state, matrix, qubits)
            return state
        return self._run_plan_pair(plan, theta, state)

    def _run_plan_pair(
        self, plan: GatePlan, theta: Sequence[float], state: np.ndarray
    ) -> np.ndarray:
        """Pair-engine plan execution: ping-pong scratch + lazy 1q merge.

        Consecutive single-qubit ops accumulate per target qubit
        (:class:`~repro.simulator.kernels.PendingOneQubitGates`) and
        flush as one kernel call when a multi-qubit op touches their
        qubit or at plan end.
        """
        matrices = plan.slot_matrices(plan.bind_angles(theta))
        scratch = np.empty_like(state)
        pending = PendingOneQubitGates(plan.num_qubits)
        tracer = TRACER
        traced = tracer.enabled
        span = (
            tracer.span(
                "sim.statevector.run_plan", category="kernel",
                ops=len(plan.ops), state_size=2**plan.num_qubits,
            )
            if traced
            else None
        )

        def dispatch(matrix, qubits, kernel_class):
            nonlocal state, scratch
            out = kernels.apply_gate(
                state, matrix, qubits, kernel_class=kernel_class,
                engine="pair", scratch=scratch, in_place=True,
            )
            if out is not state:
                state, scratch = out, state

        def apply(matrix, qubits, kernel_class):
            if traced:
                with tracer.kernel_span(
                    "kernel.sv.gate", sites=len(qubits),
                    state_size=state.size,
                ):
                    dispatch(matrix, qubits, kernel_class)
            else:
                dispatch(matrix, qubits, kernel_class)

        window = kernels.fusion_window(apply, state.size)

        def run() -> None:
            for op in plan.ops:
                matrix = op.matrix if op.matrix is not None else matrices[op.slot]
                if len(op.qubits) == 1:
                    pending.push(op.qubits[0], matrix, op.kernel_class)
                    continue
                kernel_class = op.kernel_class
                if len(op.qubits) == 2:
                    matrix, kernel_class = kernels.absorb_pending_2q(
                        pending, matrix, op.qubits, kernel_class
                    )
                else:
                    window.flush()
                    for qubit in op.qubits:
                        held = pending.pop(qubit)
                        if held is not None:
                            apply(held[0], (qubit,), held[1])
                window.push(matrix, op.qubits, kernel_class)
            window.flush()
            kernels.flush_pending_paired(pending, apply)

        if span is None:
            run()
        else:
            with span:
                run()
        return state

    def run_program(
        self,
        program: Union[CompiledProgram, GatePlan],
        theta: Sequence[float],
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a compiled program (or plan) and return the final state."""
        if isinstance(program, GatePlan):
            return self.run_plan(program, theta, initial_state)
        if program.num_qubits != self.num_qubits:
            raise ValueError("program qubit count mismatch")
        state = self._initial(initial_state)
        for qubits, matrix in program.op_matrices(theta):
            state = apply_gate(state, matrix, qubits)
        return state

    def run_circuit(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a fully bound circuit (compiled through the plan cache)."""
        if circuit.num_parameters:
            raise ValueError("circuit has unbound parameters; bind it first")
        plan = compile_plan(circuit)
        return self.run_plan(plan, np.empty(0), initial_state)


def simulate_statevector(
    circuit_or_program: Union[QuantumCircuit, CompiledProgram, GatePlan],
    theta: Sequence[float] = (),
) -> np.ndarray:
    """Convenience wrapper returning the flat statevector of length 2**n.

    The flattening uses qubit 0 as the most-significant bit, consistent with
    the tensor layout. Accepts a circuit (compiled through the plan cache),
    a :class:`GatePlan`, or a legacy :class:`CompiledProgram`.
    """
    if isinstance(circuit_or_program, (CompiledProgram, GatePlan)):
        program = circuit_or_program
        sim = StatevectorSimulator(program.num_qubits)
        state = sim.run_program(program, theta)
    else:
        circuit = circuit_or_program
        sim = StatevectorSimulator(circuit.num_qubits)
        if circuit.num_parameters:
            state = sim.run_plan(compile_plan(circuit), theta)
        else:
            state = sim.run_circuit(circuit)
    return state.reshape(-1)
