"""Statevector simulation.

States are stored as rank-``n`` tensors of shape ``(2,) * n`` with qubit 0
as the *first* tensor axis. Bitstring conventions elsewhere in the library
print qubit 0 as the leftmost character.

Execution consumes the compiler's :class:`~repro.compiler.GatePlan` IR;
the legacy :class:`~repro.circuits.program.CompiledProgram` is still
accepted for backward compatibility. ``run_circuit`` compiles through the
shared plan cache, so repeated bound-circuit runs are compile-free.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.program import CompiledProgram
from repro.compiler import GatePlan, compile_plan
from repro.obs import TRACER


def apply_gate(
    state: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply a k-qubit gate matrix to the state tensor in place-ish.

    Returns the (possibly new) state tensor; callers must use the return
    value because ``moveaxis`` produces views/copies.
    """
    k = len(qubits)
    tensor = matrix.reshape((2,) * (2 * k))
    # Contract the gate's input indices with the state's qubit axes, then
    # move the resulting output axes back to the qubit positions.
    state = np.tensordot(tensor, state, axes=(tuple(range(k, 2 * k)), qubits))
    return np.moveaxis(state, tuple(range(k)), qubits)


class StatevectorSimulator:
    """Executes gate plans / compiled programs / circuits on pure states."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits

    def zero_state(self) -> np.ndarray:
        state = np.zeros((2,) * self.num_qubits, dtype=complex)
        state[(0,) * self.num_qubits] = 1.0
        return state

    def _initial(self, initial_state: Optional[np.ndarray]) -> np.ndarray:
        if initial_state is None:
            return self.zero_state()
        return np.array(initial_state, dtype=complex).reshape(
            (2,) * self.num_qubits
        )

    def run_plan(
        self,
        plan: GatePlan,
        theta: Sequence[float] = (),
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a compiled gate plan and return the final state tensor."""
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan qubit count mismatch")
        state = self._initial(initial_state)
        tracer = TRACER
        if not tracer.enabled:
            for qubits, matrix in plan.op_matrices(theta):
                state = apply_gate(state, matrix, qubits)
            return state
        with tracer.span(
            "sim.statevector.run_plan", category="kernel",
            ops=len(plan.ops), state_size=2**plan.num_qubits,
        ):
            for qubits, matrix in plan.op_matrices(theta):
                with tracer.kernel_span(
                    "kernel.sv.gate", sites=len(qubits), state_size=state.size
                ):
                    state = apply_gate(state, matrix, qubits)
        return state

    def run_program(
        self,
        program: Union[CompiledProgram, GatePlan],
        theta: Sequence[float],
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a compiled program (or plan) and return the final state."""
        if isinstance(program, GatePlan):
            return self.run_plan(program, theta, initial_state)
        if program.num_qubits != self.num_qubits:
            raise ValueError("program qubit count mismatch")
        state = self._initial(initial_state)
        for qubits, matrix in program.op_matrices(theta):
            state = apply_gate(state, matrix, qubits)
        return state

    def run_circuit(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a fully bound circuit (compiled through the plan cache)."""
        if circuit.num_parameters:
            raise ValueError("circuit has unbound parameters; bind it first")
        plan = compile_plan(circuit)
        return self.run_plan(plan, np.empty(0), initial_state)


def simulate_statevector(
    circuit_or_program: Union[QuantumCircuit, CompiledProgram, GatePlan],
    theta: Sequence[float] = (),
) -> np.ndarray:
    """Convenience wrapper returning the flat statevector of length 2**n.

    The flattening uses qubit 0 as the most-significant bit, consistent with
    the tensor layout. Accepts a circuit (compiled through the plan cache),
    a :class:`GatePlan`, or a legacy :class:`CompiledProgram`.
    """
    if isinstance(circuit_or_program, (CompiledProgram, GatePlan)):
        program = circuit_or_program
        sim = StatevectorSimulator(program.num_qubits)
        state = sim.run_program(program, theta)
    else:
        circuit = circuit_or_program
        sim = StatevectorSimulator(circuit.num_qubits)
        if circuit.num_parameters:
            state = sim.run_plan(compile_plan(circuit), theta)
        else:
            state = sim.run_circuit(circuit)
    return state.reshape(-1)
