"""Batched quantum-trajectory simulation of noisy circuits.

The density-matrix engine is exact but quadratic in state size: ``4**n``
amplitudes evolve per step. A quantum-trajectory unraveling propagates an
ensemble of *pure* states instead — at each channel site a trajectory
samples one Kraus branch ``m`` with the Born probability
``p_m = <psi| K_m^dagger K_m |psi>`` and collapses to
``K_m |psi> / sqrt(p_m)`` — and expectation values converge to the
density-matrix answer as the ensemble grows.

This engine vectorizes the whole ensemble: a ``(B,) + (2,) * n`` batch of
trajectory statevectors moves through the same leading-batch-axis kernels
as :class:`~repro.simulator.batched.BatchedStatevectorSimulator`
(:func:`~repro.simulator.batched.apply_gate_batched`), and Kraus
selection is vectorized across the batch — branch probabilities for all
``B`` trajectories come from one reduced-Gram contraction per channel
site, one uniform draw per site serves every trajectory, and the chosen
operators apply in at most ``K`` grouped batched contractions.

Consumes the same channel-aware
:class:`~repro.compiler.noise_plan.NoisePlan` IR as the density-matrix
engine, so fusion between channel sites and unitary absorption benefit
both execution routes. Select it on the shot-level pipeline with
``REPRO_NOISY_ENGINE=traj`` (see :class:`~repro.backends.counts.
CountsBackend`).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.compiler import NoisePlan, compile_noise_plan
from repro.obs import TRACER
from repro.simulator import kernels
from repro.simulator.batched import apply_gate_batched
from repro.simulator.kernels import ENGINE_TENSORDOT
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["TrajectorySimulator", "unravel_channel_batched"]


def unravel_channel_batched(
    states: np.ndarray,
    kraus: np.ndarray,
    qubits: Tuple[int, ...],
    rng: np.random.Generator,
    probes: Optional[np.ndarray] = None,
    kraus_classes: Optional[Tuple[str, ...]] = None,
    engine: Optional[str] = None,
) -> np.ndarray:
    """Sample and apply one Kraus branch per trajectory, vectorized.

    ``states`` is a normalized ``(B,) + (2,) * n`` batch, ``kraus`` a
    stacked ``(K, 2**k, 2**k)`` array. Branch probabilities are computed
    without materializing any candidate state: the channel qubits'
    reduced Gram matrix ``G_b = Tr_rest |psi_b><psi_b|`` is one
    contraction over the batch, and ``p_m = tr(K_m^dagger K_m G_b)``
    follows from the (tiny) probe matrices — pass the plan-compiled
    stack (:attr:`~repro.compiler.noise_plan.ChannelOp.probes`) via
    ``probes`` to skip rebuilding them per call. One uniform
    draw per trajectory selects the branch; the chosen operators then
    apply in at most ``K`` grouped batched contractions with Born
    renormalization.

    Under the default ``pair`` kernel engine the selected branch
    operators apply through the bit-indexed kernels
    (``kraus_classes`` — :attr:`~repro.compiler.noise_plan.ChannelOp.
    kraus_classes` — spares per-call matrix inspection) and the Born
    renormalization mutates the collapsed sub-batch in place;
    ``engine='tensordot'`` preserves the historic expressions exactly.
    """
    kraus = np.asarray(kraus, dtype=complex)
    num_ops, dim = kraus.shape[0], kraus.shape[1]
    k = len(qubits)
    batch = states.shape[0]
    axes = tuple(q + 1 for q in qubits)
    # Reduced Gram matrix of the channel qubits, for every trajectory.
    moved = np.moveaxis(
        states, axes, tuple(range(states.ndim - k, states.ndim))
    )
    flat = moved.reshape(batch, -1, dim)
    gram = np.einsum("bri,brj->bij", flat.conj(), flat)
    if probes is None:
        probes = np.matmul(kraus.conj().transpose(0, 2, 1), kraus)
    probs = np.einsum("mij,bji->bm", probes, gram).real
    np.clip(probs, 0.0, None, out=probs)
    totals = probs.sum(axis=1)
    if not np.all(totals > 0):
        raise ValueError("trajectory lost all norm at a channel site")
    # Vectorized branch selection: one uniform per trajectory against the
    # per-trajectory CDF (scaled by the total, so near-unit norms are
    # handled exactly).
    cdf = np.cumsum(probs, axis=1)
    draws = rng.random(batch) * totals
    choices = np.minimum(
        (draws[:, None] >= cdf).sum(axis=1), num_ops - 1
    )
    if engine is None:
        engine = kernels.kernel_engine()
    out = np.empty_like(states)
    scale_shape = (-1,) + (1,) * (states.ndim - 1)
    for branch in np.unique(choices):
        index = np.nonzero(choices == branch)[0]
        norms = np.sqrt(probs[index, branch] / totals[index])
        if engine == ENGINE_TENSORDOT:
            collapsed = apply_gate_batched(states[index], kraus[branch], qubits)
            out[index] = collapsed / norms.reshape(scale_shape)
            continue
        # Fancy indexing already copied the sub-batch, so the kernels may
        # collapse and renormalize it in place before scattering back.
        sub = states[index]
        collapsed = kernels.apply_gate(
            sub, kraus[branch], qubits, batch_axes=1,
            kernel_class=(
                kraus_classes[branch] if kraus_classes is not None else None
            ),
            engine=engine, in_place=True,
        )
        collapsed /= norms.reshape(scale_shape)
        out[index] = collapsed
    return out


class TrajectorySimulator:
    """Noisy execution by batched stochastic unraveling of channels.

    Runs ``B`` trajectories in lock-step through a
    :class:`~repro.compiler.NoisePlan`: unitary segments use the shared
    batched gate kernels, channel sites sample Kraus branches across the
    whole batch at once. Estimators (``probabilities``, ``expectation``)
    average over the ensemble and carry ``O(1/sqrt(B))`` sampling error —
    the trade against the exact (but ``4**n``-sized) density-matrix
    engine.
    """

    def __init__(self, num_qubits: int, seed: SeedLike = None):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits
        self.rng = ensure_rng(seed)

    def zero_states(self, batch: int) -> np.ndarray:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        states = np.zeros((batch,) + (2,) * self.num_qubits, dtype=complex)
        states[(slice(None),) + (0,) * self.num_qubits] = 1.0
        return states

    def _plan_of(
        self, plan_or_circuit: Union[NoisePlan, QuantumCircuit], noise_model
    ) -> NoisePlan:
        if isinstance(plan_or_circuit, NoisePlan):
            return plan_or_circuit
        if noise_model is None:
            raise ValueError("running a circuit requires a noise model")
        return compile_noise_plan(plan_or_circuit, noise_model)

    def run_noise_plan(
        self,
        plan: NoisePlan,
        batch: int,
        rng: Optional[np.random.Generator] = None,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Propagate ``batch`` trajectories; returns ``(B,) + (2,) * n``.

        Every trajectory consumes exactly one uniform draw per channel
        site (drawn batch-wide), so the stream position of ``rng`` after
        a run depends only on the plan — not on which branches happened
        to be selected.
        """
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan qubit count mismatch")
        rng = self.rng if rng is None else rng
        if initial_states is None:
            states = self.zero_states(batch)
        else:
            states = np.array(initial_states, dtype=complex).reshape(
                (batch,) + (2,) * self.num_qubits
            )
        engine = kernels.kernel_engine()
        if engine != ENGINE_TENSORDOT:
            return self._run_noise_plan_pair(plan, states, rng, engine)
        tracer = TRACER
        if not tracer.enabled:
            for op in plan.ops:
                if op.matrix is not None:
                    states = apply_gate_batched(states, op.matrix, op.qubits)
                else:
                    states = unravel_channel_batched(
                        states, op.kraus, op.qubits, rng, probes=op.probes,
                        engine=engine,
                    )
            return states
        with tracer.span(
            "sim.trajectory.run_noise_plan", category="kernel",
            ops=len(plan.ops), batch=batch,
            state_size=2**plan.num_qubits,
        ):
            for op in plan.ops:
                if op.matrix is not None:
                    with tracer.kernel_span(
                        "kernel.traj.gate", sites=len(op.qubits),
                        state_size=states.size,
                    ):
                        states = apply_gate_batched(states, op.matrix, op.qubits)
                else:
                    with tracer.kernel_span(
                        "kernel.traj.channel", sites=len(op.qubits),
                        state_size=states.size,
                    ):
                        states = unravel_channel_batched(
                            states, op.kraus, op.qubits, rng, probes=op.probes,
                            engine=engine,
                        )
        return states

    def _run_noise_plan_pair(
        self,
        plan: NoisePlan,
        states: np.ndarray,
        rng: np.random.Generator,
        engine: str,
    ) -> np.ndarray:
        """Pair-engine unraveling: unitaries ping-pong through the
        bit-indexed kernels; channel sites keep the shared vectorized
        branch selection (and the same one-draw-per-site RNG contract),
        applying the chosen Kraus operators through the same kernels.
        """
        scratch = np.empty_like(states)
        tracer = TRACER
        traced = tracer.enabled
        span = (
            tracer.span(
                "sim.trajectory.run_noise_plan", category="kernel",
                ops=len(plan.ops), batch=int(states.shape[0]),
                state_size=2**plan.num_qubits,
            )
            if traced
            else None
        )

        def step(op) -> None:
            nonlocal states, scratch
            if op.matrix is not None:
                out = kernels.apply_gate(
                    states, op.matrix, op.qubits, batch_axes=1,
                    kernel_class=op.kernel_class, engine=engine,
                    scratch=scratch, in_place=True,
                )
                if out is not states:
                    states, scratch = out, states
            else:
                states = unravel_channel_batched(
                    states, op.kraus, op.qubits, rng, probes=op.probes,
                    kraus_classes=op.kraus_classes, engine=engine,
                )

        def run() -> None:
            for op in plan.ops:
                if not traced:
                    step(op)
                elif op.matrix is not None:
                    with tracer.kernel_span(
                        "kernel.traj.gate", sites=len(op.qubits),
                        state_size=states.size,
                    ):
                        step(op)
                else:
                    with tracer.kernel_span(
                        "kernel.traj.channel", sites=len(op.qubits),
                        state_size=states.size,
                    ):
                        step(op)

        if span is None:
            run()
        else:
            with span:
                run()
        return states

    def run_circuit(
        self,
        circuit: QuantumCircuit,
        noise_model,
        batch: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Unravel a bound circuit under a noise model (plan-cached)."""
        return self.run_noise_plan(self._plan_of(circuit, noise_model), batch, rng)

    # -- ensemble estimators ---------------------------------------------------

    def trajectory_probabilities(
        self,
        plan_or_circuit: Union[NoisePlan, QuantumCircuit],
        batch: int,
        noise_model=None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Per-trajectory outcome distributions, shape ``(B, 2**n)``.

        The shot-level backend samples counts from these rows directly
        (each shot draws from one trajectory's distribution), which is
        the statistically faithful unraveling of the channel ensemble.
        """
        plan = self._plan_of(plan_or_circuit, noise_model)
        states = self.run_noise_plan(plan, batch, rng)
        flat = states.reshape(batch, -1)
        return np.abs(flat) ** 2

    def probabilities(
        self,
        plan_or_circuit: Union[NoisePlan, QuantumCircuit],
        batch: int,
        noise_model=None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Ensemble-averaged outcome distribution, shape ``(2**n,)``."""
        return self.trajectory_probabilities(
            plan_or_circuit, batch, noise_model, rng
        ).mean(axis=0)

    def expectation(
        self,
        plan_or_circuit: Union[NoisePlan, QuantumCircuit],
        observable,
        batch: int,
        noise_model=None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Ensemble-averaged expectation of a PauliSum observable.

        Converges to the density-matrix ``tr(rho O)`` as ``B`` grows;
        the per-trajectory expectations evaluate through the matrix-free
        batched Pauli engine.
        """
        plan = self._plan_of(plan_or_circuit, noise_model)
        states = self.run_noise_plan(plan, batch, rng)
        flat = states.reshape(batch, -1)
        return float(observable.batch_expectations(flat).mean())
