"""Quantum state simulation engines.

Four engines are provided: a statevector simulator (pure states, fast
path for VQE objective evaluation), its batched sibling (leading batch
axis over parameter sets), a density-matrix simulator (mixed states,
Kraus noise channels compiled to per-site superoperators; validates the
energy-level noise approximations of the transient backend), and a
batched quantum-trajectory simulator (stochastic channel unraveling over
an ensemble of pure states, sharing the batched gate kernels).

All four route gate application through :mod:`repro.simulator.kernels`:
``REPRO_KERNEL=pair`` (the default) selects the bit-indexed in-place
kernels, ``REPRO_KERNEL=tensordot`` the historic reshape + ``tensordot``
reference path.
"""

from repro.simulator import kernels
from repro.simulator.kernels import (
    ENGINE_PAIR,
    ENGINE_TENSORDOT,
    apply_gate_tensordot,
    kernel_engine,
)
from repro.simulator.statevector import StatevectorSimulator, simulate_statevector
from repro.simulator.batched import (
    BatchedStatevectorSimulator,
    apply_gate_batched,
    simulate_statevectors,
)
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.trajectory import TrajectorySimulator, unravel_channel_batched
from repro.simulator.sampling import (
    counts_from_probabilities,
    counts_from_trajectory_rows,
    sample_counts,
    sample_plan,
)
from repro.simulator.expectation import (
    expectation_from_counts,
    expectation_of_matrix,
    expectation_of_pauli_sum,
)

__all__ = [
    "ENGINE_PAIR",
    "ENGINE_TENSORDOT",
    "apply_gate_tensordot",
    "kernel_engine",
    "kernels",
    "StatevectorSimulator",
    "simulate_statevector",
    "BatchedStatevectorSimulator",
    "apply_gate_batched",
    "simulate_statevectors",
    "DensityMatrixSimulator",
    "TrajectorySimulator",
    "unravel_channel_batched",
    "counts_from_probabilities",
    "counts_from_trajectory_rows",
    "sample_counts",
    "sample_plan",
    "expectation_from_counts",
    "expectation_of_matrix",
    "expectation_of_pauli_sum",
]
