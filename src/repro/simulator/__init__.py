"""Quantum state simulation engines.

Two engines are provided: a statevector simulator (pure states, fast path
for VQE objective evaluation) and a density-matrix simulator (mixed states,
supports Kraus noise channels; used to validate the energy-level noise
approximations of the transient backend).
"""

from repro.simulator.statevector import StatevectorSimulator, simulate_statevector
from repro.simulator.batched import (
    BatchedStatevectorSimulator,
    apply_gate_batched,
    simulate_statevectors,
)
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.sampling import (
    counts_from_probabilities,
    sample_counts,
    sample_plan,
)
from repro.simulator.expectation import (
    expectation_from_counts,
    expectation_of_matrix,
    expectation_of_pauli_sum,
)

__all__ = [
    "StatevectorSimulator",
    "simulate_statevector",
    "BatchedStatevectorSimulator",
    "apply_gate_batched",
    "simulate_statevectors",
    "DensityMatrixSimulator",
    "counts_from_probabilities",
    "sample_counts",
    "sample_plan",
    "expectation_from_counts",
    "expectation_of_matrix",
    "expectation_of_pauli_sum",
]
