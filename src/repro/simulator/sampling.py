"""Shot sampling: probabilities -> measurement counts."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


def _bitstring(index: int, num_qubits: int) -> str:
    """Index -> bitstring with qubit 0 as the leftmost character."""
    return format(index, f"0{num_qubits}b")


def counts_from_probabilities(
    probabilities: np.ndarray, shots: int, seed: SeedLike = None
) -> Dict[str, int]:
    """Multinomially sample ``shots`` outcomes from a distribution."""
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1:
        raise ValueError("probabilities must be one-dimensional")
    if shots < 1:
        raise ValueError("shots must be >= 1")
    num_qubits = int(np.log2(probs.size))
    if 2**num_qubits != probs.size:
        raise ValueError("probability vector length must be a power of two")
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probabilities sum to zero")
    probs = probs / total
    rng = ensure_rng(seed)
    draws = rng.multinomial(shots, probs)
    return {
        _bitstring(i, num_qubits): int(count)
        for i, count in enumerate(draws)
        if count > 0
    }


def counts_from_trajectory_rows(
    rows: np.ndarray, shots: int, seed: SeedLike = None
) -> Dict[str, int]:
    """Shots-batched sampling across per-trajectory distributions.

    ``rows`` is a ``(B, 2**n)`` stack of outcome distributions (one per
    quantum trajectory). Shots spread as evenly as possible over the
    rows and every row's multinomial is drawn in ONE vectorized call —
    each shot is a sample from one trajectory, which is the faithful
    unraveling of a channel ensemble.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2:
        raise ValueError("trajectory rows must be a (B, 2**n) array")
    if shots < 1:
        raise ValueError("shots must be >= 1")
    num_qubits = int(np.log2(rows.shape[1]))
    if 2**num_qubits != rows.shape[1]:
        raise ValueError("distribution length must be a power of two")
    rows = np.clip(rows, 0.0, None)
    totals = rows.sum(axis=1, keepdims=True)
    if np.any(totals <= 0):
        raise ValueError("a trajectory row sums to zero")
    rows = rows / totals
    batch = rows.shape[0]
    base, extra = divmod(shots, batch)
    per_row = np.full(batch, base, dtype=np.int64)
    per_row[:extra] += 1
    live = per_row > 0
    rng = ensure_rng(seed)
    draws = rng.multinomial(per_row[live], rows[live])
    counts = draws.sum(axis=0)
    return {
        _bitstring(i, num_qubits): int(count)
        for i, count in enumerate(counts)
        if count > 0
    }


def sample_counts(
    state_or_probs: np.ndarray, shots: int, seed: SeedLike = None
) -> Dict[str, int]:
    """Sample counts from either a statevector or a probability vector.

    Complex input is interpreted as a statevector (probabilities are its
    squared magnitudes); real input as a probability vector.
    """
    arr = np.asarray(state_or_probs)
    if np.iscomplexobj(arr):
        probs = np.abs(arr.reshape(-1)) ** 2
    else:
        probs = arr.reshape(-1).astype(float)
    return counts_from_probabilities(probs, shots, seed)


def probabilities_from_counts(counts: Dict[str, int]) -> Dict[str, float]:
    """Normalize counts into empirical probabilities."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("counts are empty")
    return {bits: value / total for bits, value in counts.items()}


def sample_plan(
    plan_or_circuit,
    theta=(),
    shots: int = 1024,
    seed: SeedLike = None,
) -> Dict[str, int]:
    """Sample measurement counts from a compiled plan (or circuit).

    The sampling layer's :class:`~repro.compiler.GatePlan` consumer:
    circuits compile through the shared plan cache, so repeated sampling
    of the same circuit never recompiles.
    """
    from repro.simulator.statevector import simulate_statevector

    state = simulate_statevector(plan_or_circuit, theta)
    return sample_counts(state, shots, seed)
