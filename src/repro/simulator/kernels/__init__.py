"""Gate-application kernel dispatch for every simulation engine.

The four simulators (serial / batched statevector, trajectory, and the
density-matrix left/right multiplications) route gate application
through :func:`apply_gate` / :func:`apply_gates_elementwise` here.
Dispatch is a table lookup on the op's pre-lowered *kernel class*
(:mod:`repro.compiler.ir`): diagonal and permutation matrices update the
state **in place**, dense 1q/2q gates GEMM into a ping-pong ``scratch``
buffer, and dense ``k >= 3`` operators fall back to the shared tensordot
reference.  ``REPRO_KERNEL=tensordot`` routes everything through the
reference implementation bit-identically to the historic per-simulator
helpers.

Call convention for the run loops::

    out = apply_gate(state, matrix, qubits, kernel_class=op.kernel_class,
                     engine=engine, scratch=scratch, in_place=True)
    if out is not state:
        state, scratch = out, state

With ``in_place=False`` (the default, and the public API contract) the
input array is never mutated: in-place classes copy first, dense classes
write a fresh buffer.

Every application bumps ``kernel.<class>.calls`` and an estimated
``kernel.<class>.bytes`` counter in :data:`repro.obs.METRICS` —
``python -m repro.obs report`` folds them into a per-class scoreboard.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.compiler.ir import (
    KERNEL_1Q_PAIR,
    KERNEL_2Q_QUAD,
    KERNEL_CLASSES,
    KERNEL_DENSE,
    KERNEL_DIAGONAL,
    kernel_class_of_matrix,
)
from repro.obs.metrics import METRICS
from repro.simulator.kernels.engine import (
    CHUNK_ENV,
    ENGINE_ENV,
    ENGINE_PAIR,
    ENGINE_TENSORDOT,
    THREADS_ENV,
    kernel_chunk,
    kernel_engine,
    kernel_threads,
)
from repro.simulator.kernels.pair import (
    ELEMENTWISE_MIN_SIZE,
    apply_dense_elementwise,
    apply_dense_shared,
    apply_diagonal_elementwise,
    apply_diagonal_shared,
    apply_permutation_shared,
    is_permutation,
    sort_diagonal,
    sort_operator,
)
from repro.simulator.kernels.reference import (
    apply_gate_tensordot,
    apply_gates_elementwise_reference,
)

__all__ = [
    "CHUNK_ENV",
    "ENGINE_ENV",
    "ENGINE_PAIR",
    "ENGINE_TENSORDOT",
    "FusionWindow",
    "KERNEL_CLASSES",
    "MAX_FUSED_SPAN",
    "PassthroughWindow",
    "PendingOneQubitGates",
    "fusion_window",
    "THREADS_ENV",
    "absorb_pending_2q",
    "apply_gate",
    "apply_gate_tensordot",
    "apply_gates_elementwise",
    "apply_gates_elementwise_reference",
    "flush_pending_paired",
    "kernel_chunk",
    "kernel_engine",
    "kernel_threads",
    "kron_1q",
]

#: States smaller than this many elements route to the tensordot
#: reference even under the pair engine: below ~12 serial qubits the
#: whole state lives in L1/L2 and per-op dispatch overhead (operator
#: sorting, permutation detection, block bookkeeping) dominates the
#: arithmetic, so the reference's single fused einsum wins. Measured
#: crossover on the 8q fused-plan benchmark: pair 1.9 ms vs. reference
#: 0.8 ms; at 16q the pair kernels win by >4x.
PAIR_MIN_STATE_SIZE = 1 << 12


def _bump(kernel_class: str, nbytes: float) -> None:
    METRICS.counter(f"kernel.{kernel_class}.calls").inc()
    METRICS.counter(f"kernel.{kernel_class}.bytes").inc(int(nbytes))


def _dense_fallback(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Tuple[int, ...],
    batch_axes: int,
    scratch: Optional[np.ndarray],
) -> np.ndarray:
    """Tensordot fallback that keeps the pair loops' ping-pong contiguous."""
    result = apply_gate_tensordot(state, matrix, qubits, batch_axes)
    if scratch is not None:
        np.copyto(scratch, result)
        return scratch
    return result


def apply_gate(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Tuple[int, ...],
    *,
    batch_axes: int = 0,
    kernel_class: Optional[str] = None,
    engine: Optional[str] = None,
    scratch: Optional[np.ndarray] = None,
    in_place: bool = False,
) -> np.ndarray:
    """Apply one shared ``(2**k, 2**k)`` matrix to a state tensor.

    ``state`` has ``batch_axes`` leading batch axes followed by one
    tensor axis per qubit (the density-matrix simulator passes its
    rank-``2n`` tensor with bra qubits numbered ``n..2n-1``).  Returns
    the updated array — ``state`` itself for in-place classes, the
    ``scratch`` (or a fresh) buffer for dense classes.
    """
    if engine is None:
        engine = kernel_engine()
    if kernel_class is None:
        kernel_class = kernel_class_of_matrix(matrix)
    nbytes = state.nbytes
    if engine == ENGINE_TENSORDOT:
        _bump(kernel_class, 4 * nbytes)
        return apply_gate_tensordot(state, matrix, qubits, batch_axes)
    n = state.ndim - batch_axes
    k = len(qubits)
    if (
        state.size < PAIR_MIN_STATE_SIZE
        or not state.flags.c_contiguous
        or matrix.shape[0] != 1 << k
    ):
        _bump(kernel_class, 4 * nbytes)
        return _dense_fallback(state, matrix, qubits, batch_axes, scratch)
    if kernel_class == KERNEL_DIAGONAL:
        if not in_place:
            state = state.copy()
        diag, sorted_qubits = sort_diagonal(np.diagonal(matrix), qubits)
        touched = apply_diagonal_shared(
            state.reshape(-1), diag, sorted_qubits, n
        )
        _bump(kernel_class, 2 * nbytes * touched / (1 << k))
        return state
    contiguous_dense = (
        kernel_class == KERNEL_DENSE and max(qubits) - min(qubits) == k - 1
    )
    if kernel_class in (KERNEL_1Q_PAIR, KERNEL_2Q_QUAD) or contiguous_dense:
        sorted_matrix, sorted_qubits = sort_operator(matrix, qubits)
        if is_permutation(sorted_matrix):
            if not in_place:
                state = state.copy()
            spare = (
                scratch.reshape(-1)
                if scratch is not None and scratch.flags.c_contiguous
                else None
            )
            moved = apply_permutation_shared(
                state.reshape(-1), sorted_matrix, sorted_qubits, n, spare
            )
            _bump(kernel_class, 2 * nbytes * moved / (1 << k))
            return state
        out = scratch if scratch is not None else np.empty_like(state)
        apply_dense_shared(
            state.reshape(-1),
            out.reshape(-1),
            sorted_matrix,
            sorted_qubits,
            n,
            kernel_chunk(),
            kernel_threads(),
        )
        _bump(kernel_class, 2 * nbytes)
        return out
    _bump(KERNEL_DENSE, 4 * nbytes)
    return _dense_fallback(state, matrix, qubits, batch_axes, scratch)


def _elementwise_class(matrices: np.ndarray) -> str:
    """Kernel class of a per-element matrix stack (all-diagonal or dense)."""
    dim = matrices.shape[1]
    off_diagonal = matrices[:, ~np.eye(dim, dtype=bool)]
    if not np.any(off_diagonal):
        return KERNEL_DIAGONAL
    return {2: KERNEL_1Q_PAIR, 4: KERNEL_2Q_QUAD}.get(dim, KERNEL_DENSE)


def apply_gates_elementwise(
    states: np.ndarray,
    matrices: np.ndarray,
    qubits: Tuple[int, ...],
    *,
    kernel_class: Optional[str] = None,
    engine: Optional[str] = None,
    scratch: Optional[np.ndarray] = None,
    in_place: bool = False,
) -> np.ndarray:
    """Apply per-batch-element matrices ``(B, 2**k, 2**k)``.

    Diagonal stacks update in place as one broadcast multiply; dense
    stacks either loop the shared GEMM kernels over the (contiguous)
    batch elements — when each element is large enough to amortize the
    per-call cost — or take the batched-matmul reference path.
    """
    if engine is None:
        engine = kernel_engine()
    if kernel_class is None:
        kernel_class = _elementwise_class(matrices)
    nbytes = states.nbytes
    if engine == ENGINE_TENSORDOT:
        _bump(kernel_class, 4 * nbytes)
        return apply_gates_elementwise_reference(states, matrices, qubits)
    n = states.ndim - 1
    k = len(qubits)
    if not states.flags.c_contiguous or matrices.shape[1] != 1 << k:
        _bump(kernel_class, 4 * nbytes)
        result = apply_gates_elementwise_reference(states, matrices, qubits)
        if scratch is not None:
            np.copyto(scratch, result)
            return scratch
        return result
    if kernel_class == KERNEL_DIAGONAL:
        if not in_place:
            states = states.copy()
        diags = np.diagonal(matrices, axis1=1, axis2=2)
        if list(qubits) != sorted(qubits):
            order = sorted(range(k), key=lambda i: qubits[i])
            diags = (
                diags.reshape((diags.shape[0],) + (2,) * k)
                .transpose((0,) + tuple(i + 1 for i in order))
                .reshape(diags.shape[0], -1)
            )
            qubits = tuple(qubits[i] for i in order)
        touched = apply_diagonal_elementwise(states, diags, qubits, n)
        _bump(kernel_class, 2 * nbytes * touched / (1 << k))
        return states
    element_size = 1 << n
    contiguous_dense = (
        kernel_class == KERNEL_DENSE and max(qubits) - min(qubits) == k - 1
    )
    if (
        kernel_class in (KERNEL_1Q_PAIR, KERNEL_2Q_QUAD) or contiguous_dense
    ) and element_size >= ELEMENTWISE_MIN_SIZE:
        if list(qubits) != sorted(qubits):
            order = sorted(range(k), key=lambda i: qubits[i])
            perm = tuple(i + 1 for i in order) + tuple(i + 1 + k for i in order)
            matrices = np.ascontiguousarray(
                matrices.reshape((matrices.shape[0],) + (2,) * (2 * k))
                .transpose((0,) + perm)
                .reshape(matrices.shape)
            )
            qubits = tuple(qubits[i] for i in order)
        out = scratch if scratch is not None else np.empty_like(states)
        apply_dense_elementwise(
            states,
            out,
            matrices,
            qubits,
            n,
            kernel_chunk(),
            kernel_threads(),
        )
        _bump(kernel_class, 2 * nbytes)
        return out
    _bump(kernel_class, 4 * nbytes)
    result = apply_gates_elementwise_reference(states, matrices, qubits)
    if scratch is not None:
        np.copyto(scratch, result)
        return scratch
    return result


class PendingOneQubitGates:
    """Lazily accumulated single-qubit gates, merged per target qubit.

    Consecutive 1q ops on the same qubit compose as a single 2x2 (or
    per-element ``(B, 2, 2)``) product before touching the state, and 1q
    ops on *different* qubits commute — so a whole ansatz layer of
    ``ry`` + ``rz`` rotations flushes as one dense update per qubit.
    Multi-qubit ops flush their target qubits first; plan end flushes
    the rest (ascending qubit order, so results are deterministic).
    """

    __slots__ = ("matrices", "classes", "active")

    def __init__(self, num_qubits: int):
        self.matrices = [None] * num_qubits
        self.classes = [None] * num_qubits
        self.active: list = []

    def push(self, qubit: int, matrix: np.ndarray, kernel_class: str) -> None:
        held = self.matrices[qubit]
        if held is None:
            self.matrices[qubit] = matrix
            self.classes[qubit] = kernel_class
            self.active.append(qubit)
            return
        # matmul broadcasts shared (2, 2) against per-element (B, 2, 2).
        self.matrices[qubit] = np.matmul(matrix, held)
        if not (
            kernel_class == KERNEL_DIAGONAL
            and self.classes[qubit] == KERNEL_DIAGONAL
        ):
            self.classes[qubit] = KERNEL_1Q_PAIR

    def pop(self, qubit: int):
        """``(matrix, kernel_class)`` for ``qubit``, or ``None``."""
        matrix = self.matrices[qubit]
        if matrix is None:
            return None
        self.matrices[qubit] = None
        self.active.remove(qubit)
        return matrix, self.classes[qubit]

    def pop_all(self):
        """Yield ``(qubit, matrix, kernel_class)``, ascending by qubit."""
        for qubit in sorted(self.active):
            matrix = self.matrices[qubit]
            self.matrices[qubit] = None
            yield qubit, matrix, self.classes[qubit]
        self.active.clear()


_IDENTITY_1Q = np.eye(2, dtype=complex)


def kron_1q(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Kronecker product of two 1q matrices, shared or per-element.

    Either factor may be a shared ``(2, 2)`` matrix or a per-element
    ``(B, 2, 2)`` stack; mixed shapes broadcast to ``(B, 4, 4)``.
    """
    if a.ndim == 2 and b.ndim == 2:
        return np.kron(a, b)
    stack_a = a if a.ndim == 3 else a[None]
    stack_b = b if b.ndim == 3 else b[None]
    product = stack_a[:, :, None, :, None] * stack_b[:, None, :, None, :]
    return product.reshape(product.shape[0], 4, 4)


def absorb_pending_2q(
    pending: "PendingOneQubitGates",
    matrix: np.ndarray,
    qubits: Tuple[int, ...],
    kernel_class: Optional[str],
):
    """Fold pending 1q gates on a 2q op's qubits into the op's matrix.

    A whole rotation layer followed by an entangler then costs one fused
    quad update instead of two 1q flush passes plus the entangler's own
    pass.  Returns ``(matrix, kernel_class)`` — unchanged (preserving the
    permutation fast path for bare ``cx``) when nothing is pending.
    """
    held_a = pending.pop(qubits[0])
    held_b = pending.pop(qubits[1])
    if held_a is None and held_b is None:
        return matrix, kernel_class
    matrix_a, class_a = held_a if held_a is not None else (
        _IDENTITY_1Q, KERNEL_DIAGONAL,
    )
    matrix_b, class_b = held_b if held_b is not None else (
        _IDENTITY_1Q, KERNEL_DIAGONAL,
    )
    merged = np.matmul(matrix, kron_1q(matrix_a, matrix_b))
    if kernel_class == class_a == class_b == KERNEL_DIAGONAL:
        return merged, KERNEL_DIAGONAL
    return merged, KERNEL_2Q_QUAD


#: Fused multi-qubit blocks never grow past this many qubits: composing
#: two overlapping quads into a span-3 block costs the same FLOPs but
#: halves the state passes, while span 4+ doubles the FLOPs per pass.
MAX_FUSED_SPAN = 3

_RUN_CLASSES = {1: KERNEL_1Q_PAIR, 2: KERNEL_2Q_QUAD}


def _embed_run(
    matrix: np.ndarray, qubits: Tuple[int, ...], target: Tuple[int, ...]
) -> np.ndarray:
    """Embed a contiguous-run operator into a wider contiguous run."""
    left = 1 << (qubits[0] - target[0])
    right = 1 << (target[-1] - qubits[-1])
    if left == 1 and right == 1:
        return matrix
    if matrix.ndim == 2:
        return np.kron(np.kron(np.eye(left), matrix), np.eye(right))
    eye_l = np.eye(left)
    eye_r = np.eye(right)
    product = (
        eye_l[None, :, None, None, :, None, None]
        * matrix[:, None, :, None, None, :, None]
        * eye_r[None, None, None, :, None, None, :]
    )
    dim = left * matrix.shape[-1] * right
    return product.reshape(matrix.shape[0], dim, dim)


class FusionWindow:
    """Merges overlapping contiguous multi-qubit ops into one block.

    Consecutive entangler steps of a linear chain overlap on one qubit;
    composing two quads into a span-3 block costs the same FLOPs but
    halves the state passes (span is capped at :data:`MAX_FUSED_SPAN`).
    Ops on non-ascending or non-contiguous qubits bypass the window.
    ``apply`` is the run loop's ``(matrix, qubits, kernel_class)``
    callback.
    """

    __slots__ = ("apply", "matrix", "qubits", "kernel_class")

    def __init__(self, apply):
        self.apply = apply
        self.matrix = None
        self.qubits = None
        self.kernel_class = None

    def flush(self) -> None:
        if self.matrix is not None:
            self.apply(self.matrix, self.qubits, self.kernel_class)
            self.matrix = None

    def _hold(self, matrix, qubits, kernel_class) -> None:
        self.matrix = matrix
        self.qubits = qubits
        self.kernel_class = kernel_class

    def push(
        self,
        matrix: np.ndarray,
        qubits: Tuple[int, ...],
        kernel_class: Optional[str],
    ) -> None:
        k = len(qubits)
        ascending_run = all(
            qubits[i + 1] == qubits[i] + 1 for i in range(k - 1)
        )
        if not ascending_run:
            self.flush()
            self.apply(matrix, qubits, kernel_class)
            return
        if self.matrix is None:
            self._hold(matrix, qubits, kernel_class)
            return
        lo = min(self.qubits[0], qubits[0])
        hi = max(self.qubits[-1], qubits[-1])
        overlap = qubits[0] <= self.qubits[-1] and self.qubits[0] <= qubits[-1]
        if not overlap or hi - lo + 1 > MAX_FUSED_SPAN:
            self.flush()
            self._hold(matrix, qubits, kernel_class)
            return
        target = tuple(range(lo, hi + 1))
        held = _embed_run(self.matrix, self.qubits, target)
        merged = np.matmul(_embed_run(matrix, qubits, target), held)
        if self.kernel_class == kernel_class == KERNEL_DIAGONAL:
            merged_class = KERNEL_DIAGONAL
        else:
            merged_class = _RUN_CLASSES.get(len(target), KERNEL_DENSE)
        self._hold(merged, target, merged_class)


class PassthroughWindow:
    """Window stand-in that applies every op directly (no fusion).

    Below :data:`PAIR_MIN_STATE_SIZE` a state pass costs next to nothing
    while the window's ``np.kron`` embeddings dominate the run, so small
    states skip block fusion entirely.
    """

    __slots__ = ("apply",)

    def __init__(self, apply):
        self.apply = apply

    def flush(self) -> None:
        pass

    def push(self, matrix, qubits, kernel_class) -> None:
        self.apply(matrix, qubits, kernel_class)


def fusion_window(apply, state_size: int):
    """The block-fusion window for large states, passthrough for small."""
    if state_size >= PAIR_MIN_STATE_SIZE:
        return FusionWindow(apply)
    return PassthroughWindow(apply)


def flush_pending_paired(pending: "PendingOneQubitGates", apply) -> None:
    """Flush all pending 1q gates, pairing adjacent qubits into quads.

    Two pending gates on qubits ``q`` and ``q + 1`` merge into one
    ``kron`` quad update — one state pass instead of two.  ``apply`` is
    the run loop's ``(matrix, qubits, kernel_class)`` callback.
    """
    items = list(pending.pop_all())
    index = 0
    while index < len(items):
        qubit, matrix, kernel_class = items[index]
        if index + 1 < len(items) and items[index + 1][0] == qubit + 1:
            other, matrix_b, class_b = items[index + 1]
            merged_class = (
                KERNEL_DIAGONAL
                if kernel_class == class_b == KERNEL_DIAGONAL
                else KERNEL_2Q_QUAD
            )
            apply(kron_1q(matrix, matrix_b), (qubit, other), merged_class)
            index += 2
        else:
            apply(matrix, (qubit,), kernel_class)
            index += 1
