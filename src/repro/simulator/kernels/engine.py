"""Kernel engine selection and execution knobs.

Three environment variables configure the gate-application layer:

``REPRO_KERNEL``
    ``pair`` (default) routes gate application through the bit-indexed
    in-place kernels in :mod:`repro.simulator.kernels.pair`;
    ``tensordot`` preserves the historic reshape + ``tensordot`` + axis
    restore path (:mod:`repro.simulator.kernels.reference`) as the
    parity reference and working fallback.

``REPRO_KERNEL_THREADS``
    Worker threads for chunked dense updates (default 1 = serial).
    Chunks are disjoint elementwise tiles, so threaded results are
    bit-identical to serial ones.

``REPRO_KERNEL_CHUNK``
    Chunk size in state *elements* (default 65536 = one megabyte of
    complex128 per tile) for 20+-qubit statevectors, keeping each
    tile's working set cache-resident.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

ENGINE_ENV = "REPRO_KERNEL"
THREADS_ENV = "REPRO_KERNEL_THREADS"
CHUNK_ENV = "REPRO_KERNEL_CHUNK"

ENGINE_PAIR = "pair"
ENGINE_TENSORDOT = "tensordot"

#: Default chunk size in state elements (complex128 => 1 MiB tiles).
DEFAULT_CHUNK = 65536

_executor_lock = threading.Lock()
_executor: Optional[ThreadPoolExecutor] = None
_executor_size = 0


def kernel_engine() -> str:
    """Active engine name: ``tensordot`` opts out, everything else is pair."""
    if os.environ.get(ENGINE_ENV, ENGINE_PAIR) == ENGINE_TENSORDOT:
        return ENGINE_TENSORDOT
    return ENGINE_PAIR


def kernel_threads() -> int:
    """Worker-thread count for chunked dense updates (>= 1)."""
    try:
        return max(1, int(os.environ.get(THREADS_ENV, "1")))
    except ValueError:
        return 1


def kernel_chunk() -> int:
    """Chunk size in state elements (>= 1024 so tiles stay GEMM-sized)."""
    try:
        return max(1024, int(os.environ.get(CHUNK_ENV, str(DEFAULT_CHUNK))))
    except ValueError:
        return DEFAULT_CHUNK


def get_executor(threads: int) -> ThreadPoolExecutor:
    """Lazily build (and resize) the shared chunk-worker pool."""
    global _executor, _executor_size
    with _executor_lock:
        if _executor is None or _executor_size != threads:
            if _executor is not None:
                _executor.shutdown(wait=False)
            _executor = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-kernel"
            )
            _executor_size = threads
        return _executor
