"""Bit-indexed, cache-aware gate kernels (the ``pair`` engine).

Gate application here never transposes or reshape-copies the full
state.  A qubit ``q`` of an ``n``-qubit state tensor owns the flat-index
stride ``2**(n - 1 - q)``, so reshaping the *flat, contiguous* buffer
exposes the amplitude pairs (1q) / quads (2q) a gate couples as plain
strided views — with a leading batch axis folded into the leading view
dimension, since every qubit stride divides the per-element state size.

Four kernel families, chosen per op by its pre-lowered kernel class
(:mod:`repro.compiler.ir`):

* **diagonal** — in-place strided multiply, skipping unit entries
  (``rz``/``cphase``/``rzz`` touch at most half the state per non-unit
  diagonal entry);
* **permutation** (a dense-class matrix with one non-zero per row and
  column, e.g. ``x``/``cx``/``swap``) — in-place cycle decomposition
  over the bit-indexed blocks with a single temporary block copy;
* **dense 1q/2q** — GEMM on the strided pair/quad views into a caller
  ping-pong scratch buffer.  The GEMM form is stride-dependent: large
  strides contract as ``matmul(matrix, view)`` directly, while small
  strides (where per-GEMM dispatch overhead dominates) merge the gate
  with the stride identity (``kron(matrix, I_s)``) into one wide GEMM
  over rows of ``2k * s`` amplitudes;
* **dense non-adjacent 2q** — blockwise accumulation through the
  four-block views (no transpose; zero matrix entries skipped).

Chunking (``REPRO_KERNEL_CHUNK``) tiles the dense GEMMs over disjoint
row (or column) ranges so 20+-qubit updates stay cache-resident, and
``REPRO_KERNEL_THREADS`` fans those tiles over a worker pool; tiles are
elementwise-disjoint, so chunked and threaded results are bit-identical
to the unchunked serial ones.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.simulator.kernels.engine import get_executor

#: Below this qubit stride, per-GEMM dispatch overhead on the ``(R, 2, s)``
#: views dominates and the kron-merged wide GEMM wins (measured
#: crossover).  Multi-qubit runs halve the crossover per extra qubit.
MATMUL_MIN_STRIDE_1Q = 32
#: Per-element states smaller than this fall back to the batched-matmul
#: reference — a Python loop of tiny GEMMs per batch element costs more
#: than the moveaxis round trip it avoids.
ELEMENTWISE_MIN_SIZE = 1 << 14
#: Adjacent-run per-element updates at or above this qubit stride use one
#: broadcast ``matmul`` over the whole batch instead of the per-element
#: loop (measured crossover against the per-element stride strategies).
BROADCAST_MIN_STRIDE = 32


def sort_operator(
    matrix: np.ndarray, qubits: Tuple[int, ...]
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Permute a ``(2**k, 2**k)`` operator to ascending qubit order."""
    k = len(qubits)
    order = sorted(range(k), key=lambda i: qubits[i])
    if order == list(range(k)):
        return matrix, tuple(qubits)
    tensor = matrix.reshape((2,) * (2 * k))
    perm = tuple(order) + tuple(i + k for i in order)
    return (
        tensor.transpose(perm).reshape(matrix.shape),
        tuple(qubits[i] for i in order),
    )


def sort_diagonal(
    diag: np.ndarray, qubits: Tuple[int, ...]
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Permute a length-``2**k`` diagonal to ascending qubit order."""
    k = len(qubits)
    order = sorted(range(k), key=lambda i: qubits[i])
    if order == list(range(k)):
        return diag, tuple(qubits)
    reordered = diag.reshape((2,) * k).transpose(order).reshape(-1)
    return reordered, tuple(qubits[i] for i in order)


def is_permutation(matrix: np.ndarray) -> bool:
    """True for matrices with exactly one non-zero per row and column."""
    nonzero = matrix != 0
    return bool(
        nonzero.sum() == matrix.shape[0]
        and (nonzero.sum(axis=0) == 1).all()
        and (nonzero.sum(axis=1) == 1).all()
    )


# -- bit-indexed block views ---------------------------------------------------


def _qubit_block_view(flat: np.ndarray, qubits: Tuple[int, ...], n: int) -> np.ndarray:
    """View of the flat buffer with each target qubit on its own axis.

    ``qubits`` must be ascending.  Shape is ``(lead, 2, M1, 2, ..., Mk-1,
    2, trail)`` — qubit ``i`` sits on axis ``2i + 1``; any batch prefix
    folds into the leading dimension (every stride divides ``2**n``).
    """
    shape: List[int] = [-1, 2]
    for prev, q in zip(qubits, qubits[1:]):
        shape += [1 << (q - prev - 1), 2]
    shape.append(1 << (n - 1 - qubits[-1]))
    return flat.reshape(shape)


def _block(view: np.ndarray, index: int, k: int) -> np.ndarray:
    """The block of amplitudes whose target-qubit bits spell ``index``."""
    idx: List[object] = [slice(None)] * (2 * k + 1)
    for i in range(k):
        idx[2 * i + 1] = (index >> (k - 1 - i)) & 1
    return view[tuple(idx)]


# -- chunked GEMM helpers ------------------------------------------------------


def _for_each_tile(
    total: int, per_tile: int, threads: int, body: Callable[[int, int], None]
) -> None:
    """Run ``body(start, stop)`` over disjoint tiles, optionally threaded."""
    if per_tile >= total:
        body(0, total)
        return
    starts = range(0, total, per_tile)
    if threads <= 1:
        for start in starts:
            body(start, min(start + per_tile, total))
        return
    executor = get_executor(threads)
    futures = [
        executor.submit(body, start, min(start + per_tile, total))
        for start in starts
    ]
    for future in futures:
        future.result()


def _dense_gemm(
    flat: np.ndarray,
    out: np.ndarray,
    matrix: np.ndarray,
    dim: int,
    stride: int,
    min_stride: int,
    chunk: int,
    threads: int,
) -> None:
    """Shared dense update on the ``(R, dim, stride)`` strided views."""
    if stride >= min_stride:
        view = flat.reshape(-1, dim, stride)
        dest = out.reshape(-1, dim, stride)
        rows = view.shape[0]
        if rows == 1:
            # Highest-order target on a serial state: tile columns instead.
            per_tile = max(1, chunk // dim)

            def body_cols(start: int, stop: int) -> None:
                np.matmul(
                    matrix, view[0, :, start:stop], out=dest[0, :, start:stop]
                )

            _for_each_tile(stride, per_tile, threads, body_cols)
            return
        per_tile = max(1, chunk // (dim * stride))

        def body_rows(start: int, stop: int) -> None:
            np.matmul(matrix, view[start:stop], out=dest[start:stop])

        _for_each_tile(rows, per_tile, threads, body_rows)
        return
    # Small strides: merge the stride identity into the gate and contract
    # whole rows of dim * stride amplitudes in one wide GEMM.
    wide = np.kron(matrix, np.eye(stride)).T
    view2 = flat.reshape(-1, dim * stride)
    dest2 = out.reshape(-1, dim * stride)
    per_tile = max(1, chunk // (dim * stride))

    def body_wide(start: int, stop: int) -> None:
        np.matmul(view2[start:stop], wide, out=dest2[start:stop])

    _for_each_tile(view2.shape[0], per_tile, threads, body_wide)


def _dense_blockwise(
    flat: np.ndarray,
    out: np.ndarray,
    matrix: np.ndarray,
    qubits: Tuple[int, ...],
    n: int,
) -> None:
    """Non-adjacent dense update: accumulate through bit-indexed blocks."""
    k = len(qubits)
    dim = 1 << k
    src_view = _qubit_block_view(flat, qubits, n)
    dst_view = _qubit_block_view(out, qubits, n)
    for row in range(dim):
        dst = _block(dst_view, row, k)
        started = False
        for col in range(dim):
            coeff = matrix[row, col]
            if coeff == 0:
                continue
            src = _block(src_view, col, k)
            if started:
                dst += src * coeff
            else:
                np.multiply(src, coeff, out=dst)
                started = True
        if not started:
            dst[...] = 0


def apply_dense_shared(
    flat: np.ndarray,
    out: np.ndarray,
    matrix: np.ndarray,
    qubits: Tuple[int, ...],
    n: int,
    chunk: int,
    threads: int,
) -> None:
    """Dense update into ``out``; ``qubits`` must be ascending.

    Contiguous qubit runs (any ``k``) GEMM directly on the
    ``(R, 2**k, stride)`` views; non-adjacent multi-qubit operators
    accumulate through bit-indexed blocks.
    """
    k = len(qubits)
    if k == 1:
        stride = 1 << (n - 1 - qubits[0])
        _dense_gemm(
            flat, out, matrix, 2, stride, MATMUL_MIN_STRIDE_1Q, chunk, threads
        )
        return
    if qubits[-1] - qubits[0] == k - 1:
        stride = 1 << (n - 1 - qubits[-1])
        # The direct-vs-kron crossover halves with each extra qubit: the
        # kron-merged GEMM's FLOPs grow with dim * stride while the
        # direct path's per-GEMM dispatch overhead shrinks with dim.
        min_stride = max(1, MATMUL_MIN_STRIDE_1Q >> (k - 1))
        _dense_gemm(
            flat, out, matrix, 1 << k, stride, min_stride, chunk, threads
        )
    else:
        _dense_blockwise(flat, out, matrix, qubits, n)


# -- in-place kernels ----------------------------------------------------------


def apply_diagonal_shared(
    flat: np.ndarray, diag: np.ndarray, qubits: Tuple[int, ...], n: int
) -> int:
    """In-place diagonal multiply; returns the number of touched blocks."""
    k = len(qubits)
    view = _qubit_block_view(flat, qubits, n)
    touched = 0
    for index in range(1 << k):
        entry = diag[index]
        if entry != 1:
            block = _block(view, index, k)
            block *= entry
            touched += 1
    return touched


def apply_permutation_shared(
    flat: np.ndarray,
    matrix: np.ndarray,
    qubits: Tuple[int, ...],
    n: int,
    spare_flat: np.ndarray = None,
) -> int:
    """In-place permutation (with phases) via block cycle decomposition.

    ``out[i] = phase[i] * in[src[i]]`` — each cycle moves its blocks with
    one temporary block copy (staged in ``spare_flat``'s matching block
    when the caller lends its scratch buffer, avoiding a fresh
    allocation); identity rows are skipped entirely.  Returns the number
    of moved/scaled blocks.
    """
    k = len(qubits)
    dim = 1 << k
    view = _qubit_block_view(flat, qubits, n)
    spare_view = (
        _qubit_block_view(spare_flat, qubits, n)
        if spare_flat is not None
        else None
    )
    src = np.argmax(matrix != 0, axis=1)
    phases = matrix[np.arange(dim), src]
    moved = 0
    visited = [False] * dim
    for start in range(dim):
        if visited[start]:
            continue
        cycle = [start]
        visited[start] = True
        node = int(src[start])
        while node != start:
            cycle.append(node)
            visited[node] = True
            node = int(src[node])
        if len(cycle) == 1:
            phase = phases[start]
            if phase != 1:
                block = _block(view, start, k)
                block *= phase
                moved += 1
            continue
        if spare_view is None:
            spare = _block(view, cycle[0], k).copy()
        else:
            spare = _block(spare_view, cycle[0], k)
            np.copyto(spare, _block(view, cycle[0], k))
        for position in range(len(cycle) - 1):
            dst = _block(view, cycle[position], k)
            source = _block(view, cycle[position + 1], k)
            phase = phases[cycle[position]]
            if phase == 1:
                dst[...] = source
            else:
                np.multiply(source, phase, out=dst)
        last = cycle[-1]
        dst = _block(view, last, k)
        phase = phases[last]
        if phase == 1:
            dst[...] = spare
        else:
            np.multiply(spare, phase, out=dst)
        moved += len(cycle)
    return moved


# -- per-batch-element kernels -------------------------------------------------


def apply_diagonal_elementwise(
    states: np.ndarray, diags: np.ndarray, qubits: Tuple[int, ...], n: int
) -> int:
    """In-place per-element diagonal multiply on ``(B,) + (2,) * n`` states.

    ``diags`` is ``(B, 2**k)`` in ascending-qubit bit order; the update
    broadcasts each batch column over its strided block in one vectorized
    in-place multiply.  Returns the number of touched blocks.
    """
    k = len(qubits)
    batch = states.shape[0]
    shape: List[int] = [batch, 1 << qubits[0], 2]
    for prev, q in zip(qubits, qubits[1:]):
        shape += [1 << (q - prev - 1), 2]
    shape.append(1 << (n - 1 - qubits[-1]))
    view = states.reshape(shape)
    touched = 0
    for index in range(1 << k):
        column = diags[:, index]
        if np.all(column == 1):
            continue
        idx: List[object] = [slice(None)] * (2 * k + 2)
        for i in range(k):
            idx[2 * i + 2] = (index >> (k - 1 - i)) & 1
        block = view[tuple(idx)]
        block *= column.reshape((batch,) + (1,) * (block.ndim - 1))
        touched += 1
    return touched


def apply_dense_elementwise(
    states: np.ndarray,
    out: np.ndarray,
    matrices: np.ndarray,
    qubits: Tuple[int, ...],
    n: int,
    chunk: int,
    threads: int,
) -> None:
    """Per-element dense update: one shared-kernel call per batch element.

    Each ``states[b]`` is a contiguous slice, so the stride-strategy GEMMs
    apply directly; profitable only for large per-element states (the
    dispatcher gates on :data:`ELEMENTWISE_MIN_SIZE`).  Adjacent qubit
    runs at large stride skip the per-element loop entirely: one
    broadcast ``matmul`` contracts the whole ``(B, R, dim, stride)``
    view against the ``(B, 1, dim, dim)`` matrix stack.
    """
    k = len(qubits)
    dim = 1 << k
    adjacent = all(qubits[i + 1] == qubits[i] + 1 for i in range(k - 1))
    if adjacent:
        batch = states.shape[0]
        stride = 1 << (n - 1 - qubits[-1])
        if stride >= max(8, BROADCAST_MIN_STRIDE >> (k - 1)):
            view = states.reshape(batch, -1, dim, stride)
            np.matmul(
                matrices[:, None], view, out=out.reshape(batch, -1, dim, stride)
            )
            return
        # Small strides: merge the stride identity into each element's
        # matrix and contract whole rows in one batched wide GEMM.
        wide = np.stack([np.kron(m, np.eye(stride)).T for m in matrices])
        view = states.reshape(batch, -1, dim * stride)
        np.matmul(view, wide, out=out.reshape(batch, -1, dim * stride))
        return
    for b in range(states.shape[0]):
        apply_dense_shared(
            states[b].reshape(-1),
            out[b].reshape(-1),
            matrices[b],
            qubits,
            n,
            chunk,
            threads,
        )
