"""The tensordot reference kernels.

One shared implementation of the historic reshape + ``tensordot`` +
axis-restore gate application that ``statevector.py``, ``batched.py``
and ``trajectory.py`` each used to carry a near-identical copy of.  The
``batch_axes`` parameter generalizes over their layouts:

* ``batch_axes=0`` — a rank-``n`` state tensor ``(2,) * n`` (the serial
  statevector layout; also the density matrix viewed as a ``2n``-qubit
  state for left/right multiplications);
* ``batch_axes=1`` — a leading batch axis, ``(B,) + (2,) * n`` (the
  batched and trajectory layouts, where qubit ``q`` lives on tensor
  axis ``q + 1``).

The pair engine (:mod:`repro.simulator.kernels.pair`) is parity-tested
against these functions to <= 1e-12, and ``REPRO_KERNEL=tensordot``
routes every simulator back through them bit-identically.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def apply_gate_tensordot(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Tuple[int, ...],
    batch_axes: int = 0,
) -> np.ndarray:
    """Apply one shared ``(2**k, 2**k)`` matrix via tensordot.

    Contracts the gate's input indices with the state's qubit axes and
    moves the resulting output axes back to the qubit positions.
    Returns a new array; callers must use the return value.
    """
    k = len(qubits)
    tensor = matrix.reshape((2,) * (2 * k))
    axes = tuple(q + batch_axes for q in qubits)
    state = np.tensordot(tensor, state, axes=(tuple(range(k, 2 * k)), axes))
    return np.moveaxis(state, tuple(range(k)), axes)


def apply_gates_elementwise_reference(
    states: np.ndarray, matrices: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply per-batch-element matrices ``(B, 2**k, 2**k)``.

    The target qubit axes are moved up front, the state is flattened to
    ``(B, 2**k, rest)``, and batched ``matmul`` contracts each element
    with its own matrix.
    """
    k = len(qubits)
    axes = tuple(q + 1 for q in qubits)
    moved = np.moveaxis(states, axes, tuple(range(1, k + 1)))
    shape = moved.shape
    flat = moved.reshape(shape[0], 2**k, -1)
    out = np.matmul(matrices, flat).reshape(shape)
    return np.moveaxis(out, tuple(range(1, k + 1)), axes)
