"""Density-matrix simulation with Kraus noise channels.

The state is a rank-``2n`` tensor: axes ``0..n-1`` are ket indices and axes
``n..2n-1`` the corresponding bra indices. Gate application conjugates by
the unitary; channels apply a sum over Kraus operators. Intended for small
systems (n <= ~10), which covers every workload in the paper.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATES
from repro.compiler import GatePlan, compile_plan


class DensityMatrixSimulator:
    """Executes circuits on mixed states, optionally with a noise model."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits

    # -- state helpers ---------------------------------------------------------

    def zero_state(self) -> np.ndarray:
        dim = 2**self.num_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        return rho.reshape((2,) * (2 * self.num_qubits))

    def to_matrix(self, rho: np.ndarray) -> np.ndarray:
        dim = 2**self.num_qubits
        return rho.reshape(dim, dim)

    # -- evolution ---------------------------------------------------------------

    def _apply_operator_left(
        self, rho: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
    ) -> np.ndarray:
        k = len(qubits)
        tensor = matrix.reshape((2,) * (2 * k))
        rho = np.tensordot(tensor, rho, axes=(tuple(range(k, 2 * k)), qubits))
        return np.moveaxis(rho, tuple(range(k)), qubits)

    def _apply_operator_right(
        self, rho: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
    ) -> np.ndarray:
        # rho @ M^dagger acting on bra axes.
        k = len(qubits)
        bra_axes = tuple(self.num_qubits + q for q in qubits)
        tensor = matrix.conj().reshape((2,) * (2 * k))
        rho = np.tensordot(tensor, rho, axes=(tuple(range(k, 2 * k)), bra_axes))
        return np.moveaxis(rho, tuple(range(k)), bra_axes)

    def apply_unitary(
        self, rho: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
    ) -> np.ndarray:
        rho = self._apply_operator_left(rho, matrix, qubits)
        return self._apply_operator_right(rho, matrix, qubits)

    def apply_kraus(
        self,
        rho: np.ndarray,
        kraus_ops: Iterable[np.ndarray],
        qubits: Tuple[int, ...],
    ) -> np.ndarray:
        """Apply a channel given by Kraus operators on ``qubits``."""
        result = None
        for op in kraus_ops:
            term = self._apply_operator_left(rho, op, qubits)
            term = self._apply_operator_right(term, op, qubits)
            result = term if result is None else result + term
        if result is None:
            raise ValueError("empty Kraus operator list")
        return result

    def run_plan(
        self,
        plan: GatePlan,
        theta: Sequence[float] = (),
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Unitary evolution of a compiled gate plan (no noise channels).

        Noise models attach Kraus channels per *physical* gate, which a
        fused plan no longer exposes — noisy execution stays on the
        per-instruction :meth:`run_circuit` path.
        """
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan qubit count mismatch")
        rho = self.zero_state() if initial_state is None else np.array(
            initial_state, dtype=complex
        ).reshape((2,) * (2 * self.num_qubits))
        for qubits, matrix in plan.op_matrices(theta):
            rho = self.apply_unitary(rho, matrix, qubits)
        return rho

    def run_circuit(
        self,
        circuit: QuantumCircuit,
        noise_model=None,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a bound circuit, applying per-gate noise if a model is given.

        ``noise_model`` follows the ``repro.noise.NoiseModel`` protocol:
        ``channels_for(gate_name, qubits)`` yields ``(kraus_ops, qubits)``
        pairs applied after the ideal gate. Noise-free runs compile
        through the shared plan cache (with fusion) instead of rebuilding
        gate matrices per instruction.
        """
        if circuit.num_parameters:
            raise ValueError("circuit has unbound parameters; bind it first")
        if noise_model is None:
            return self.run_plan(
                compile_plan(circuit), np.empty(0), initial_state
            )
        rho = self.zero_state() if initial_state is None else np.array(
            initial_state, dtype=complex
        ).reshape((2,) * (2 * self.num_qubits))
        for inst in circuit:
            if inst.name == "barrier":
                continue
            matrix = GATES[inst.name].matrix(tuple(float(p) for p in inst.params))
            rho = self.apply_unitary(rho, matrix, inst.qubits)
            for kraus_ops, qubits in noise_model.channels_for(
                inst.name, inst.qubits
            ):
                rho = self.apply_kraus(rho, kraus_ops, qubits)
        return rho

    # -- measurement ----------------------------------------------------------------

    def probabilities(self, rho: np.ndarray) -> np.ndarray:
        """Computational-basis outcome probabilities (length 2**n)."""
        mat = self.to_matrix(rho)
        probs = np.real(np.diag(mat)).copy()
        probs[probs < 0] = 0.0
        total = probs.sum()
        if total > 0:
            probs /= total
        return probs

    def expectation(self, rho: np.ndarray, observable: np.ndarray) -> float:
        """``tr(rho O)`` for a dense observable matrix."""
        mat = self.to_matrix(rho)
        return float(np.real(np.trace(mat @ observable)))

    def purity(self, rho: np.ndarray) -> float:
        mat = self.to_matrix(rho)
        return float(np.real(np.trace(mat @ mat)))
