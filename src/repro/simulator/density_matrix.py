"""Density-matrix simulation with Kraus noise channels.

The state is a rank-``2n`` tensor: axes ``0..n-1`` are ket indices and axes
``n..2n-1`` the corresponding bra indices. Gate application conjugates by
the unitary; channels apply a sum over Kraus operators. Intended for small
systems (n <= ~10), which covers every workload in the paper.

Noisy execution consumes the compiler's channel-aware
:class:`~repro.compiler.noise_plan.NoisePlan` IR: gate runs between
channel sites arrive pre-fused, adjacent unitaries arrive absorbed into
the channel Kraus stacks, and each channel site carries a pre-compiled
superoperator so applying it is ONE tensordot regardless of how many
Kraus operators the channel has (a two-qubit depolarizing channel has 16;
the historic loop paid 32 full-state contractions per site — it survives
as :meth:`~DensityMatrixSimulator.apply_kraus_loop`, the parity
reference).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATES
from repro.compiler import GatePlan, NoisePlan, compile_noise_plan, compile_plan
from repro.compiler.ir import KERNEL_DIAGONAL
from repro.compiler.noise_plan import kraus_superoperator
from repro.obs import TRACER
from repro.simulator import kernels
from repro.simulator.kernels import ENGINE_TENSORDOT


class DensityMatrixSimulator:
    """Executes circuits on mixed states, optionally with a noise model."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits

    # -- state helpers ---------------------------------------------------------

    def zero_state(self) -> np.ndarray:
        dim = 2**self.num_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        return rho.reshape((2,) * (2 * self.num_qubits))

    def to_matrix(self, rho: np.ndarray) -> np.ndarray:
        dim = 2**self.num_qubits
        return rho.reshape(dim, dim)

    def _as_tensor(self, initial_state: Optional[np.ndarray]) -> np.ndarray:
        if initial_state is None:
            return self.zero_state()
        return np.array(initial_state, dtype=complex).reshape(
            (2,) * (2 * self.num_qubits)
        )

    # -- evolution ---------------------------------------------------------------

    def _apply_operator_left(
        self, rho: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
    ) -> np.ndarray:
        k = len(qubits)
        tensor = matrix.reshape((2,) * (2 * k))
        rho = np.tensordot(tensor, rho, axes=(tuple(range(k, 2 * k)), qubits))
        return np.moveaxis(rho, tuple(range(k)), qubits)

    def _apply_operator_right(
        self, rho: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
    ) -> np.ndarray:
        # rho @ M^dagger acting on bra axes.
        k = len(qubits)
        bra_axes = tuple(self.num_qubits + q for q in qubits)
        tensor = matrix.conj().reshape((2,) * (2 * k))
        rho = np.tensordot(tensor, rho, axes=(tuple(range(k, 2 * k)), bra_axes))
        return np.moveaxis(rho, tuple(range(k)), bra_axes)

    def apply_unitary(
        self, rho: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
    ) -> np.ndarray:
        rho = self._apply_operator_left(rho, matrix, qubits)
        return self._apply_operator_right(rho, matrix, qubits)

    def _apply_unitary_pair(
        self,
        rho: np.ndarray,
        matrix: np.ndarray,
        qubits: Tuple[int, ...],
        kernel_class: Optional[str],
        scratch: np.ndarray,
        engine: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Left/right multiplication through the bit-indexed kernels.

        The rank-``2n`` density tensor is a ``2n``-qubit state to the
        kernels: the left multiply targets the ket axes ``qubits``, the
        right multiply applies the conjugate matrix on the bra axes
        ``n + q`` (conjugation preserves the kernel class).  Returns the
        updated ``(rho, scratch)`` ping-pong pair.
        """
        out = kernels.apply_gate(
            rho, matrix, qubits, kernel_class=kernel_class,
            engine=engine, scratch=scratch, in_place=True,
        )
        if out is not rho:
            rho, scratch = out, rho
        bra_qubits = tuple(self.num_qubits + q for q in qubits)
        out = kernels.apply_gate(
            rho, matrix.conj(), bra_qubits, kernel_class=kernel_class,
            engine=engine, scratch=scratch, in_place=True,
        )
        if out is not rho:
            rho, scratch = out, rho
        return rho, scratch

    def apply_superop(
        self, rho: np.ndarray, superop: np.ndarray, qubits: Tuple[int, ...]
    ) -> np.ndarray:
        """Apply a pre-compiled ``(4**k, 4**k)`` channel superoperator.

        The superoperator acts on the site's combined ket/bra axes, so a
        whole channel — however many Kraus operators it folded in — is
        ONE tensordot over ``2k`` tensor axes, the same cost shape as a
        ``2k``-qubit gate on a statevector.
        """
        k = len(qubits)
        axes = tuple(qubits) + tuple(self.num_qubits + q for q in qubits)
        tensor = superop.reshape((2,) * (4 * k))
        rho = np.tensordot(
            tensor, rho, axes=(tuple(range(2 * k, 4 * k)), axes)
        )
        return np.moveaxis(rho, tuple(range(2 * k)), axes)

    def apply_kraus(
        self,
        rho: np.ndarray,
        kraus_ops: Union[np.ndarray, Iterable[np.ndarray]],
        qubits: Tuple[int, ...],
    ) -> np.ndarray:
        """Apply a channel given by Kraus operators on ``qubits``.

        ``kraus_ops`` may be a pre-stacked ``(K, 2**k, 2**k)`` array (the
        :class:`~repro.compiler.noise_plan.ChannelOp` form) or any
        iterable of matrices. The stack is folded into its superoperator
        with one stacked tensordot + operator-axis sum
        (:func:`~repro.compiler.noise_plan.kraus_superoperator`) and
        applied as a single contraction — replacing the historic Python
        loop of ``2K`` full-state contractions per channel.
        """
        if isinstance(kraus_ops, np.ndarray):
            kraus = np.asarray(kraus_ops, dtype=complex)
        else:
            kraus = np.asarray(list(kraus_ops), dtype=complex)
        if kraus.ndim != 3 or kraus.shape[0] == 0:
            raise ValueError("Kraus operators must stack to a (K, d, d) array")
        return self.apply_superop(rho, kraus_superoperator(kraus), qubits)

    def apply_kraus_loop(
        self,
        rho: np.ndarray,
        kraus_ops: Iterable[np.ndarray],
        qubits: Tuple[int, ...],
    ) -> np.ndarray:
        """Explicit per-operator channel application.

        The pre-vectorization reference implementation, kept for the
        stacked-vs-loop parity contract (``<= 1e-12``; see
        ``tests/test_noise_plan.py``) and the perf baseline.
        """
        result = None
        for op in kraus_ops:
            term = self._apply_operator_left(rho, op, qubits)
            term = self._apply_operator_right(term, op, qubits)
            result = term if result is None else result + term
        if result is None:
            raise ValueError("empty Kraus operator list")
        return result

    def run_plan(
        self,
        plan: GatePlan,
        theta: Sequence[float] = (),
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Unitary evolution of a compiled gate plan (no noise channels).

        Noisy execution goes through :meth:`run_noise_plan`, whose
        channel-aware IR keeps the per-physical-gate channel sites that a
        plain fused plan no longer exposes.
        """
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan qubit count mismatch")
        rho = self._as_tensor(initial_state)
        engine = kernels.kernel_engine()
        if engine != ENGINE_TENSORDOT:
            matrices = plan.slot_matrices(plan.bind_angles(theta))
            scratch = np.empty_like(rho)
            tracer = TRACER
            if not tracer.enabled:
                for op in plan.ops:
                    matrix = (
                        op.matrix if op.matrix is not None else matrices[op.slot]
                    )
                    rho, scratch = self._apply_unitary_pair(
                        rho, matrix, op.qubits, op.kernel_class, scratch, engine
                    )
                return rho
            with tracer.span(
                "sim.density_matrix.run_plan", category="kernel",
                ops=len(plan.ops), state_size=4**plan.num_qubits,
            ):
                for op in plan.ops:
                    matrix = (
                        op.matrix if op.matrix is not None else matrices[op.slot]
                    )
                    with tracer.kernel_span(
                        "kernel.dm.unitary", sites=len(op.qubits),
                        state_size=rho.size,
                    ):
                        rho, scratch = self._apply_unitary_pair(
                            rho, matrix, op.qubits, op.kernel_class,
                            scratch, engine,
                        )
            return rho
        tracer = TRACER
        if not tracer.enabled:
            for qubits, matrix in plan.op_matrices(theta):
                rho = self.apply_unitary(rho, matrix, qubits)
            return rho
        with tracer.span(
            "sim.density_matrix.run_plan", category="kernel",
            ops=len(plan.ops), state_size=4**plan.num_qubits,
        ):
            for qubits, matrix in plan.op_matrices(theta):
                with tracer.kernel_span(
                    "kernel.dm.unitary", sites=len(qubits), state_size=rho.size
                ):
                    rho = self.apply_unitary(rho, matrix, qubits)
        return rho

    def run_noise_plan(
        self,
        plan: NoisePlan,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute a channel-aware noise plan.

        Unitary ops (pre-fused between channel sites) conjugate the
        state; channel ops apply their pre-stacked Kraus array through
        the vectorized :meth:`apply_kraus`.
        """
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan qubit count mismatch")
        rho = self._as_tensor(initial_state)
        engine = kernels.kernel_engine()
        if engine != ENGINE_TENSORDOT:
            return self._run_noise_plan_pair(plan, rho, engine)
        tracer = TRACER
        if not tracer.enabled:
            for op in plan.ops:
                if op.matrix is not None:
                    rho = self.apply_unitary(rho, op.matrix, op.qubits)
                else:
                    rho = self.apply_superop(rho, op.superop, op.qubits)
            return rho
        with tracer.span(
            "sim.density_matrix.run_noise_plan", category="kernel",
            ops=len(plan.ops), state_size=4**plan.num_qubits,
        ):
            for op in plan.ops:
                if op.matrix is not None:
                    with tracer.kernel_span(
                        "kernel.dm.unitary", sites=len(op.qubits),
                        state_size=rho.size,
                    ):
                        rho = self.apply_unitary(rho, op.matrix, op.qubits)
                else:
                    with tracer.kernel_span(
                        "kernel.dm.superop", sites=len(op.qubits),
                        state_size=rho.size,
                    ):
                        rho = self.apply_superop(rho, op.superop, op.qubits)
        return rho

    def _run_noise_plan_pair(
        self, plan: NoisePlan, rho: np.ndarray, engine: str
    ) -> np.ndarray:
        """Pair-engine noisy execution.

        Unitary sites ride the bit-indexed left/right multiplications;
        channel sites keep the single-tensordot superoperator contraction
        — except *diagonal* superoperators (pure-dephasing channels),
        which apply as one in-place elementwise multiply on the combined
        ket/bra axes.
        """
        scratch = np.empty_like(rho)
        tracer = TRACER
        traced = tracer.enabled
        span = (
            tracer.span(
                "sim.density_matrix.run_noise_plan", category="kernel",
                ops=len(plan.ops), state_size=4**plan.num_qubits,
            )
            if traced
            else None
        )

        def superop_site(op) -> None:
            nonlocal rho, scratch
            if op.superop_class == KERNEL_DIAGONAL:
                axes = tuple(op.qubits) + tuple(
                    self.num_qubits + q for q in op.qubits
                )
                out = kernels.apply_gate(
                    rho, op.superop, axes, kernel_class=KERNEL_DIAGONAL,
                    engine=engine, scratch=scratch, in_place=True,
                )
                if out is not rho:
                    rho, scratch = out, rho
            else:
                rho = self.apply_superop(rho, op.superop, op.qubits)
                if not rho.flags.c_contiguous:
                    np.copyto(scratch, rho)
                    rho, scratch = scratch, rho

        def run() -> None:
            nonlocal rho, scratch
            for op in plan.ops:
                if op.matrix is not None:
                    if traced:
                        with tracer.kernel_span(
                            "kernel.dm.unitary", sites=len(op.qubits),
                            state_size=rho.size,
                        ):
                            rho, scratch = self._apply_unitary_pair(
                                rho, op.matrix, op.qubits, op.kernel_class,
                                scratch, engine,
                            )
                    else:
                        rho, scratch = self._apply_unitary_pair(
                            rho, op.matrix, op.qubits, op.kernel_class,
                            scratch, engine,
                        )
                elif traced:
                    with tracer.kernel_span(
                        "kernel.dm.superop", sites=len(op.qubits),
                        state_size=rho.size,
                    ):
                        superop_site(op)
                else:
                    superop_site(op)

        if span is None:
            run()
        else:
            with span:
                run()
        return rho

    def run_circuit(
        self,
        circuit: QuantumCircuit,
        noise_model=None,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a bound circuit, applying per-gate noise if a model is given.

        ``noise_model`` follows the ``repro.noise.NoiseModel`` protocol:
        ``channels_for(gate_name, qubits)`` yields ``(kraus_ops, qubits)``
        pairs applied after the ideal gate. Both the noise-free and the
        noisy path compile through the shared plan cache — noisy circuits
        lower to a channel-aware :class:`~repro.compiler.NoisePlan` with
        static-gate fusion *between* channel sites.
        """
        if circuit.num_parameters:
            raise ValueError("circuit has unbound parameters; bind it first")
        if noise_model is None:
            return self.run_plan(
                compile_plan(circuit), np.empty(0), initial_state
            )
        return self.run_noise_plan(
            compile_noise_plan(circuit, noise_model), initial_state
        )

    def run_circuit_walk(
        self,
        circuit: QuantumCircuit,
        noise_model=None,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The pre-plan per-instruction noisy walk (parity/perf reference).

        Rebuilds each gate matrix and channel Kraus list per instruction
        and applies channels through the explicit operator loop — exactly
        the historic noisy ``run_circuit`` path. Kept as the reference
        implementation the vectorized engine is benchmarked and
        parity-tested against.
        """
        if circuit.num_parameters:
            raise ValueError("circuit has unbound parameters; bind it first")
        rho = self._as_tensor(initial_state)
        for inst in circuit:
            if inst.name == "barrier":
                continue
            matrix = GATES[inst.name].matrix(tuple(float(p) for p in inst.params))
            rho = self.apply_unitary(rho, matrix, inst.qubits)
            if noise_model is None:
                continue
            for kraus_ops, qubits in noise_model.channels_for(
                inst.name, inst.qubits
            ):
                rho = self.apply_kraus_loop(rho, kraus_ops, qubits)
        return rho

    # -- measurement ----------------------------------------------------------------

    def probabilities(self, rho: np.ndarray) -> np.ndarray:
        """Computational-basis outcome probabilities (length 2**n)."""
        mat = self.to_matrix(rho)
        probs = np.real(np.diag(mat)).copy()
        probs[probs < 0] = 0.0
        total = probs.sum()
        if total > 0:
            probs /= total
        return probs

    def expectation(self, rho: np.ndarray, observable: np.ndarray) -> float:
        """``tr(rho O)`` for a dense observable matrix."""
        mat = self.to_matrix(rho)
        return float(np.real(np.trace(mat @ observable)))

    def purity(self, rho: np.ndarray) -> float:
        mat = self.to_matrix(rho)
        return float(np.real(np.trace(mat @ mat)))
