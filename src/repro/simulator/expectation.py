"""Expectation-value evaluation: exact and from measurement counts."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.operators.measurement_basis import diagonal_value
from repro.operators.pauli_sum import PauliSum, PauliTerm


def expectation_of_matrix(state: np.ndarray, observable: np.ndarray) -> float:
    """``<psi|O|psi>`` for a flat statevector and dense observable."""
    psi = np.asarray(state).reshape(-1)
    return float(np.real(np.vdot(psi, observable @ psi)))


def expectation_of_pauli_sum(state: np.ndarray, observable: PauliSum) -> float:
    """Exact PauliSum expectation against a statevector."""
    return observable.expectation(state)


def expectation_from_counts(
    counts: Mapping[str, int], terms: Sequence[PauliTerm]
) -> float:
    """Estimate a QWC term group's expectation from measured counts.

    ``counts`` must come from shots taken after the group's basis-rotation
    circuit; each term contributes its support-parity value per shot.
    """
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("counts are empty")
    value = 0.0
    for term in terms:
        if term.pauli.is_identity:
            value += term.coefficient
            continue
        accum = 0
        for bits, count in counts.items():
            accum += diagonal_value(term.pauli, bits) * count
        value += term.coefficient * accum / total
    return value


def shot_noise_sigma(observable: PauliSum, shots: int) -> float:
    """Upper-bound estimate of the shot-noise standard deviation.

    Each non-identity Pauli term's estimator has per-shot variance at most
    1, so the energy estimator's sigma is bounded by
    ``sqrt(sum c_k^2) / sqrt(shots)``. The transient backend uses this as
    the static jitter scale.
    """
    if shots < 1:
        raise ValueError("shots must be >= 1")
    coefficients = np.array(
        [t.coefficient for t in observable.terms if not t.pauli.is_identity]
    )
    if coefficients.size == 0:
        return 0.0
    return float(np.sqrt(np.sum(coefficients**2) / shots))


def counts_expectation_full(
    counts_by_basis: Mapping[str, Dict[str, int]],
    groups: Sequence[Sequence[PauliTerm]],
    basis_labels: Sequence[str],
) -> float:
    """Combine per-basis counts into a full observable estimate."""
    if len(groups) != len(basis_labels):
        raise ValueError("groups/basis_labels length mismatch")
    value = 0.0
    for group, basis in zip(groups, basis_labels):
        counts = counts_by_basis.get(basis)
        if counts is None:
            raise KeyError(f"no counts for basis {basis!r}")
        value += expectation_from_counts(counts, group)
    return value
