"""Batched statevector simulation.

The serial simulator (:mod:`repro.simulator.statevector`) executes one
parameter vector at a time, so a VQE iteration's SPSA pair, a population
of seeds, or a sweep of candidate points each pays the full Python
per-gate dispatch cost. This engine carries a *leading batch axis*
through every gate application: states are rank-``n+1`` tensors of shape
``(B, 2, ..., 2)`` and each gate is applied to all ``B`` states in one
NumPy contraction, amortizing the per-gate overhead across the batch.

Two contraction kinds cover a compiled plan:

* static gates share one matrix across the batch — a single ``tensordot``
  over the (shifted-by-one) qubit axes;
* parameterized gates have a *different* matrix per batch element — the
  whole ``(B, num_param_ops)`` angle table is built in one affine map
  (:meth:`repro.compiler.GatePlan.bind_angles_batch`), each op's matrices
  are stacked into ``(B, 2**k, 2**k)``, and contracted with batched
  ``matmul``.

Numerics: the same complex128 arithmetic as the serial path; results
agree with per-element serial simulation to floating-point
reassociation (documented contract: ``<= 1e-12`` absolute on amplitudes
and energies — see ``tests/test_batched_equivalence.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import (
    STACKED_GATE_BUILDERS as BATCHED_GATE_BUILDERS,
    stacked_gate_matrices as batched_gate_matrices,
)
from repro.circuits.program import CompiledProgram
from repro.compiler import GatePlan, compile_plan
from repro.obs import TRACER
from repro.simulator import kernels
from repro.simulator.kernels import ENGINE_TENSORDOT, PendingOneQubitGates

__all__ = [
    "BATCHED_GATE_BUILDERS",
    "BatchedStatevectorSimulator",
    "apply_gate_batched",
    "apply_gates_elementwise",
    "batched_gate_matrices",
    "simulate_statevectors",
]


def apply_gate_batched(
    states: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply one shared gate matrix to a ``(B, 2, ..., 2)`` state batch.

    The shared tensordot reference with every qubit axis shifted one
    right to make room for the batch axis.
    """
    return kernels.apply_gate_tensordot(states, matrix, qubits, batch_axes=1)


def apply_gates_elementwise(
    states: np.ndarray, matrices: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply per-batch-element gate matrices ``(B, 2**k, 2**k)``.

    Used for parameterized gates, where each batch element carries its
    own angle; delegates to the shared batched-matmul reference.
    """
    return kernels.apply_gates_elementwise_reference(states, matrices, qubits)


class BatchedStatevectorSimulator:
    """Executes compiled plans on a whole batch of parameter sets.

    States are ``(B,) + (2,) * n`` tensors; qubit ``q`` lives on tensor
    axis ``q + 1``. One :meth:`run_plan` call pushes all ``B`` parameter
    vectors through the ansatz in a single NumPy pass per gate.
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits

    def zero_states(self, batch: int) -> np.ndarray:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        states = np.zeros((batch,) + (2,) * self.num_qubits, dtype=complex)
        states[(slice(None),) + (0,) * self.num_qubits] = 1.0
        return states

    def _initial(
        self, batch: int, initial_states: Optional[np.ndarray]
    ) -> np.ndarray:
        if initial_states is None:
            return self.zero_states(batch)
        return np.array(initial_states, dtype=complex).reshape(
            (batch,) + (2,) * self.num_qubits
        )

    def _validate_thetas(self, thetas: np.ndarray, num_parameters: int) -> np.ndarray:
        thetas = np.asarray(thetas, dtype=float)
        if thetas.ndim != 2 or thetas.shape[1] != num_parameters:
            raise ValueError(
                f"expected thetas of shape (B, {num_parameters}), "
                f"got {thetas.shape}"
            )
        return thetas

    def run_plan(
        self,
        plan: GatePlan,
        thetas: np.ndarray,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a gate plan for a ``(B, P)`` parameter batch.

        The whole ``(B, num_param_ops)`` angle table is one affine NumPy
        map; per-op matrix stacks are built by the vectorized constructors
        in :mod:`repro.circuits.gates`.
        """
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan qubit count mismatch")
        thetas = self._validate_thetas(thetas, plan.num_parameters)
        states = self._initial(thetas.shape[0], initial_states)
        angles = plan.bind_angles_batch(thetas)
        if kernels.kernel_engine() != ENGINE_TENSORDOT:
            return self._run_plan_pair(plan, angles, states)
        tracer = TRACER
        if not tracer.enabled:
            for op in plan.ops:
                if op.matrix is not None:
                    states = apply_gate_batched(states, op.matrix, op.qubits)
                else:
                    matrices = batched_gate_matrices(op.gate_name, angles[:, op.slot])
                    states = apply_gates_elementwise(states, matrices, op.qubits)
            return states
        with tracer.span(
            "sim.batched.run_plan", category="kernel",
            ops=len(plan.ops), batch=int(thetas.shape[0]),
            state_size=2**plan.num_qubits,
        ):
            for op in plan.ops:
                with tracer.kernel_span(
                    "kernel.batched.gate", sites=len(op.qubits),
                    state_size=states.size,
                ):
                    if op.matrix is not None:
                        states = apply_gate_batched(states, op.matrix, op.qubits)
                    else:
                        matrices = batched_gate_matrices(
                            op.gate_name, angles[:, op.slot]
                        )
                        states = apply_gates_elementwise(
                            states, matrices, op.qubits
                        )
        return states

    def _run_plan_pair(
        self, plan: GatePlan, angles: np.ndarray, states: np.ndarray
    ) -> np.ndarray:
        """Pair-engine plan execution over the batch.

        Static ops apply their shared matrix through the bit-indexed
        kernels; parameterized ops carry per-element ``(B, 2**k, 2**k)``
        stacks.  Single-qubit ops of either kind accumulate per target
        qubit (``matmul`` broadcasting merges shared into per-element
        products) and flush as one kernel call each.
        """
        scratch = np.empty_like(states)
        pending = PendingOneQubitGates(plan.num_qubits)
        tracer = TRACER
        traced = tracer.enabled
        span = (
            tracer.span(
                "sim.batched.run_plan", category="kernel",
                ops=len(plan.ops), batch=int(states.shape[0]),
                state_size=2**plan.num_qubits,
            )
            if traced
            else None
        )

        def dispatch(matrix, qubits, kernel_class):
            nonlocal states, scratch
            if matrix.ndim == 3:
                out = kernels.apply_gates_elementwise(
                    states, matrix, qubits, kernel_class=kernel_class,
                    engine="pair", scratch=scratch, in_place=True,
                )
            else:
                out = kernels.apply_gate(
                    states, matrix, qubits, batch_axes=1,
                    kernel_class=kernel_class, engine="pair",
                    scratch=scratch, in_place=True,
                )
            if out is not states:
                states, scratch = out, states

        def apply(matrix, qubits, kernel_class):
            if traced:
                with tracer.kernel_span(
                    "kernel.batched.gate", sites=len(qubits),
                    state_size=states.size,
                ):
                    dispatch(matrix, qubits, kernel_class)
            else:
                dispatch(matrix, qubits, kernel_class)

        window = kernels.fusion_window(apply, states.size)

        def run() -> None:
            for op in plan.ops:
                if op.matrix is not None:
                    matrix = op.matrix
                else:
                    matrix = batched_gate_matrices(op.gate_name, angles[:, op.slot])
                if len(op.qubits) == 1:
                    pending.push(op.qubits[0], matrix, op.kernel_class)
                    continue
                kernel_class = op.kernel_class
                if len(op.qubits) == 2:
                    matrix, kernel_class = kernels.absorb_pending_2q(
                        pending, matrix, op.qubits, kernel_class
                    )
                else:
                    window.flush()
                    for qubit in op.qubits:
                        held = pending.pop(qubit)
                        if held is not None:
                            apply(held[0], (qubit,), held[1])
                window.push(matrix, op.qubits, kernel_class)
            window.flush()
            kernels.flush_pending_paired(pending, apply)

        if span is None:
            run()
        else:
            with span:
                run()
        return states

    def run_program(
        self,
        program: Union[CompiledProgram, GatePlan],
        thetas: np.ndarray,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a compiled program (or plan) for a ``(B, P)`` batch.

        Returns the final ``(B,) + (2,) * n`` state tensor batch.
        """
        if isinstance(program, GatePlan):
            return self.run_plan(program, thetas, initial_states)
        if program.num_qubits != self.num_qubits:
            raise ValueError("program qubit count mismatch")
        thetas = self._validate_thetas(thetas, program.num_parameters)
        states = self._initial(thetas.shape[0], initial_states)
        for op in program.ops:
            if op.matrix is not None:
                states = apply_gate_batched(states, op.matrix, op.qubits)
            else:
                angles = op.coeff * thetas[:, op.param_index] + op.offset
                matrices = batched_gate_matrices(op.gate_name, angles)
                states = apply_gates_elementwise(states, matrices, op.qubits)
        return states

    def run_flat(
        self,
        program: Union[CompiledProgram, GatePlan],
        thetas: np.ndarray,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Like :meth:`run_program` but returns ``(B, 2**n)`` flat vectors."""
        states = self.run_program(program, thetas, initial_states)
        return states.reshape(states.shape[0], -1)


def simulate_statevectors(
    circuit_or_program: Union[QuantumCircuit, CompiledProgram, GatePlan],
    thetas: np.ndarray,
) -> np.ndarray:
    """Convenience wrapper: ``(B, P)`` parameters to ``(B, 2**n)`` vectors.

    The batched sibling of
    :func:`repro.simulator.statevector.simulate_statevector`. Circuits
    compile through the shared plan cache.
    """
    if isinstance(circuit_or_program, (CompiledProgram, GatePlan)):
        program = circuit_or_program
    else:
        program = compile_plan(circuit_or_program)
    simulator = BatchedStatevectorSimulator(program.num_qubits)
    return simulator.run_flat(program, np.asarray(thetas, dtype=float))
