"""Batched statevector simulation.

The serial simulator (:mod:`repro.simulator.statevector`) executes one
parameter vector at a time, so a VQE iteration's SPSA pair, a population
of seeds, or a sweep of candidate points each pays the full Python
per-gate dispatch cost. This engine carries a *leading batch axis*
through every gate application: states are rank-``n+1`` tensors of shape
``(B, 2, ..., 2)`` and each gate is applied to all ``B`` states in one
NumPy contraction, amortizing the per-gate overhead across the batch.

Two contraction kinds cover a compiled plan:

* static gates share one matrix across the batch — a single ``tensordot``
  over the (shifted-by-one) qubit axes;
* parameterized gates have a *different* matrix per batch element — the
  whole ``(B, num_param_ops)`` angle table is built in one affine map
  (:meth:`repro.compiler.GatePlan.bind_angles_batch`), each op's matrices
  are stacked into ``(B, 2**k, 2**k)``, and contracted with batched
  ``matmul``.

Numerics: the same complex128 arithmetic as the serial path; results
agree with per-element serial simulation to floating-point
reassociation (documented contract: ``<= 1e-12`` absolute on amplitudes
and energies — see ``tests/test_batched_equivalence.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import (
    STACKED_GATE_BUILDERS as BATCHED_GATE_BUILDERS,
    stacked_gate_matrices as batched_gate_matrices,
)
from repro.circuits.program import CompiledProgram
from repro.compiler import GatePlan, compile_plan
from repro.obs import TRACER

__all__ = [
    "BATCHED_GATE_BUILDERS",
    "BatchedStatevectorSimulator",
    "apply_gate_batched",
    "apply_gates_elementwise",
    "batched_gate_matrices",
    "simulate_statevectors",
]


def apply_gate_batched(
    states: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply one shared gate matrix to a ``(B, 2, ..., 2)`` state batch.

    Mirrors :func:`repro.simulator.statevector.apply_gate` with every
    qubit axis shifted one right to make room for the batch axis.
    """
    k = len(qubits)
    tensor = matrix.reshape((2,) * (2 * k))
    axes = tuple(q + 1 for q in qubits)
    states = np.tensordot(tensor, states, axes=(tuple(range(k, 2 * k)), axes))
    # tensordot leaves the k gate-output axes first and the batch axis at
    # position k; moveaxis restores (batch, qubit axes...) order.
    return np.moveaxis(states, tuple(range(k)), axes)


def apply_gates_elementwise(
    states: np.ndarray, matrices: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply per-batch-element gate matrices ``(B, 2**k, 2**k)``.

    Used for parameterized gates, where each batch element carries its
    own angle: the target qubit axes are moved up front, the state is
    flattened to ``(B, 2**k, rest)``, and batched ``matmul`` contracts
    each element with its own matrix.
    """
    k = len(qubits)
    axes = tuple(q + 1 for q in qubits)
    moved = np.moveaxis(states, axes, tuple(range(1, k + 1)))
    shape = moved.shape
    flat = moved.reshape(shape[0], 2**k, -1)
    out = np.matmul(matrices, flat).reshape(shape)
    return np.moveaxis(out, tuple(range(1, k + 1)), axes)


class BatchedStatevectorSimulator:
    """Executes compiled plans on a whole batch of parameter sets.

    States are ``(B,) + (2,) * n`` tensors; qubit ``q`` lives on tensor
    axis ``q + 1``. One :meth:`run_plan` call pushes all ``B`` parameter
    vectors through the ansatz in a single NumPy pass per gate.
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits

    def zero_states(self, batch: int) -> np.ndarray:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        states = np.zeros((batch,) + (2,) * self.num_qubits, dtype=complex)
        states[(slice(None),) + (0,) * self.num_qubits] = 1.0
        return states

    def _initial(
        self, batch: int, initial_states: Optional[np.ndarray]
    ) -> np.ndarray:
        if initial_states is None:
            return self.zero_states(batch)
        return np.array(initial_states, dtype=complex).reshape(
            (batch,) + (2,) * self.num_qubits
        )

    def _validate_thetas(self, thetas: np.ndarray, num_parameters: int) -> np.ndarray:
        thetas = np.asarray(thetas, dtype=float)
        if thetas.ndim != 2 or thetas.shape[1] != num_parameters:
            raise ValueError(
                f"expected thetas of shape (B, {num_parameters}), "
                f"got {thetas.shape}"
            )
        return thetas

    def run_plan(
        self,
        plan: GatePlan,
        thetas: np.ndarray,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a gate plan for a ``(B, P)`` parameter batch.

        The whole ``(B, num_param_ops)`` angle table is one affine NumPy
        map; per-op matrix stacks are built by the vectorized constructors
        in :mod:`repro.circuits.gates`.
        """
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan qubit count mismatch")
        thetas = self._validate_thetas(thetas, plan.num_parameters)
        states = self._initial(thetas.shape[0], initial_states)
        angles = plan.bind_angles_batch(thetas)
        tracer = TRACER
        if not tracer.enabled:
            for op in plan.ops:
                if op.matrix is not None:
                    states = apply_gate_batched(states, op.matrix, op.qubits)
                else:
                    matrices = batched_gate_matrices(op.gate_name, angles[:, op.slot])
                    states = apply_gates_elementwise(states, matrices, op.qubits)
            return states
        with tracer.span(
            "sim.batched.run_plan", category="kernel",
            ops=len(plan.ops), batch=int(thetas.shape[0]),
            state_size=2**plan.num_qubits,
        ):
            for op in plan.ops:
                with tracer.kernel_span(
                    "kernel.batched.gate", sites=len(op.qubits),
                    state_size=states.size,
                ):
                    if op.matrix is not None:
                        states = apply_gate_batched(states, op.matrix, op.qubits)
                    else:
                        matrices = batched_gate_matrices(
                            op.gate_name, angles[:, op.slot]
                        )
                        states = apply_gates_elementwise(
                            states, matrices, op.qubits
                        )
        return states

    def run_program(
        self,
        program: Union[CompiledProgram, GatePlan],
        thetas: np.ndarray,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a compiled program (or plan) for a ``(B, P)`` batch.

        Returns the final ``(B,) + (2,) * n`` state tensor batch.
        """
        if isinstance(program, GatePlan):
            return self.run_plan(program, thetas, initial_states)
        if program.num_qubits != self.num_qubits:
            raise ValueError("program qubit count mismatch")
        thetas = self._validate_thetas(thetas, program.num_parameters)
        states = self._initial(thetas.shape[0], initial_states)
        for op in program.ops:
            if op.matrix is not None:
                states = apply_gate_batched(states, op.matrix, op.qubits)
            else:
                angles = op.coeff * thetas[:, op.param_index] + op.offset
                matrices = batched_gate_matrices(op.gate_name, angles)
                states = apply_gates_elementwise(states, matrices, op.qubits)
        return states

    def run_flat(
        self,
        program: Union[CompiledProgram, GatePlan],
        thetas: np.ndarray,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Like :meth:`run_program` but returns ``(B, 2**n)`` flat vectors."""
        states = self.run_program(program, thetas, initial_states)
        return states.reshape(states.shape[0], -1)


def simulate_statevectors(
    circuit_or_program: Union[QuantumCircuit, CompiledProgram, GatePlan],
    thetas: np.ndarray,
) -> np.ndarray:
    """Convenience wrapper: ``(B, P)`` parameters to ``(B, 2**n)`` vectors.

    The batched sibling of
    :func:`repro.simulator.statevector.simulate_statevector`. Circuits
    compile through the shared plan cache.
    """
    if isinstance(circuit_or_program, (CompiledProgram, GatePlan)):
        program = circuit_or_program
    else:
        program = compile_plan(circuit_or_program)
    simulator = BatchedStatevectorSimulator(program.num_qubits)
    return simulator.run_flat(program, np.asarray(thetas, dtype=float))
