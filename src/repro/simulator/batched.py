"""Batched statevector simulation.

The serial simulator (:mod:`repro.simulator.statevector`) executes one
parameter vector at a time, so a VQE iteration's SPSA pair, a population
of seeds, or a sweep of candidate points each pays the full Python
per-gate dispatch cost. This engine carries a *leading batch axis*
through every gate application: states are rank-``n+1`` tensors of shape
``(B, 2, ..., 2)`` and each gate is applied to all ``B`` states in one
NumPy contraction, amortizing the per-gate overhead across the batch.

Two contraction kinds cover a compiled program:

* fixed gates share one matrix across the batch — a single ``tensordot``
  over the (shifted-by-one) qubit axes;
* parameterized gates have a *different* matrix per batch element — the
  per-element angles are built vectorized, stacked into a ``(B, 2**k,
  2**k)`` tensor, and contracted with batched ``matmul``.

Numerics: the same complex128 arithmetic as the serial path; results
agree with per-element serial simulation to floating-point
reassociation (documented contract: ``<= 1e-12`` absolute on amplitudes
and energies — see ``tests/test_batched_equivalence.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATES
from repro.circuits.program import CompiledProgram, compile_circuit


def apply_gate_batched(
    states: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply one shared gate matrix to a ``(B, 2, ..., 2)`` state batch.

    Mirrors :func:`repro.simulator.statevector.apply_gate` with every
    qubit axis shifted one right to make room for the batch axis.
    """
    k = len(qubits)
    tensor = matrix.reshape((2,) * (2 * k))
    axes = tuple(q + 1 for q in qubits)
    states = np.tensordot(tensor, states, axes=(tuple(range(k, 2 * k)), axes))
    # tensordot leaves the k gate-output axes first and the batch axis at
    # position k; moveaxis restores (batch, qubit axes...) order.
    return np.moveaxis(states, tuple(range(k)), axes)


def apply_gates_elementwise(
    states: np.ndarray, matrices: np.ndarray, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Apply per-batch-element gate matrices ``(B, 2**k, 2**k)``.

    Used for parameterized gates, where each batch element carries its
    own angle: the target qubit axes are moved up front, the state is
    flattened to ``(B, 2**k, rest)``, and batched ``matmul`` contracts
    each element with its own matrix.
    """
    k = len(qubits)
    axes = tuple(q + 1 for q in qubits)
    moved = np.moveaxis(states, axes, tuple(range(1, k + 1)))
    shape = moved.shape
    flat = moved.reshape(shape[0], 2**k, -1)
    out = np.matmul(matrices, flat).reshape(shape)
    return np.moveaxis(out, tuple(range(1, k + 1)), axes)


# -- vectorized parameterized-gate constructors -------------------------------
#
# Each builder maps a ``(B,)`` angle array to a ``(B, 2**k, 2**k)`` matrix
# stack using the same formulas as the scalar constructors in
# ``repro.circuits.gates`` (so per-element values are bit-identical).

BatchedGateBuilder = Callable[[np.ndarray], np.ndarray]


def _stack_rx(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    cos, sin = np.cos(half), np.sin(half)
    out = np.empty((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = cos
    out[:, 0, 1] = -1j * sin
    out[:, 1, 0] = -1j * sin
    out[:, 1, 1] = cos
    return out


def _stack_ry(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    cos, sin = np.cos(half), np.sin(half)
    out = np.empty((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = cos
    out[:, 0, 1] = -sin
    out[:, 1, 0] = sin
    out[:, 1, 1] = cos
    return out


def _stack_rz(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    out = np.zeros((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = np.exp(-1j * half)
    out[:, 1, 1] = np.exp(1j * half)
    return out


def _stack_p(angles: np.ndarray) -> np.ndarray:
    out = np.zeros((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = 1.0
    out[:, 1, 1] = np.exp(1j * angles)
    return out


def _stack_rzz(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    minus, plus = np.exp(-1j * half), np.exp(1j * half)
    out = np.zeros((angles.size, 4, 4), dtype=complex)
    out[:, 0, 0] = minus
    out[:, 1, 1] = plus
    out[:, 2, 2] = plus
    out[:, 3, 3] = minus
    return out


def _stack_rxx(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    cos, anti = np.cos(half), -1j * np.sin(half)
    out = np.zeros((angles.size, 4, 4), dtype=complex)
    for i in range(4):
        out[:, i, i] = cos
        out[:, i, 3 - i] = anti
    return out


def _stack_crx(angles: np.ndarray) -> np.ndarray:
    out = np.zeros((angles.size, 4, 4), dtype=complex)
    out[:, 0, 0] = 1.0
    out[:, 1, 1] = 1.0
    out[:, 2:, 2:] = _stack_rx(angles)
    return out


def _stack_crz(angles: np.ndarray) -> np.ndarray:
    out = np.zeros((angles.size, 4, 4), dtype=complex)
    out[:, 0, 0] = 1.0
    out[:, 1, 1] = 1.0
    out[:, 2:, 2:] = _stack_rz(angles)
    return out


BATCHED_GATE_BUILDERS: Dict[str, BatchedGateBuilder] = {
    "rx": _stack_rx,
    "ry": _stack_ry,
    "rz": _stack_rz,
    "p": _stack_p,
    "rzz": _stack_rzz,
    "rxx": _stack_rxx,
    "crx": _stack_crx,
    "crz": _stack_crz,
}


def batched_gate_matrices(gate_name: str, angles: np.ndarray) -> np.ndarray:
    """``(B, 2**k, 2**k)`` matrices for a single-parameter gate.

    Falls back to stacking the scalar constructor for gate kinds without
    a vectorized builder.
    """
    angles = np.asarray(angles, dtype=float).reshape(-1)
    builder = BATCHED_GATE_BUILDERS.get(gate_name)
    if builder is not None:
        return builder(angles)
    spec = GATES[gate_name]
    return np.stack([spec.matrix((float(a),)) for a in angles])


class BatchedStatevectorSimulator:
    """Executes compiled programs on a whole batch of parameter sets.

    States are ``(B,) + (2,) * n`` tensors; qubit ``q`` lives on tensor
    axis ``q + 1``. One :meth:`run_program` call pushes all ``B``
    parameter vectors through the ansatz in a single NumPy pass per gate.
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits

    def zero_states(self, batch: int) -> np.ndarray:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        states = np.zeros((batch,) + (2,) * self.num_qubits, dtype=complex)
        states[(slice(None),) + (0,) * self.num_qubits] = 1.0
        return states

    def run_program(
        self,
        program: CompiledProgram,
        thetas: np.ndarray,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run a compiled program for a ``(B, P)`` parameter batch.

        Returns the final ``(B,) + (2,) * n`` state tensor batch.
        """
        if program.num_qubits != self.num_qubits:
            raise ValueError("program qubit count mismatch")
        thetas = np.asarray(thetas, dtype=float)
        if thetas.ndim != 2 or thetas.shape[1] != program.num_parameters:
            raise ValueError(
                f"expected thetas of shape (B, {program.num_parameters}), "
                f"got {thetas.shape}"
            )
        batch = thetas.shape[0]
        if initial_states is None:
            states = self.zero_states(batch)
        else:
            states = np.array(initial_states, dtype=complex).reshape(
                (batch,) + (2,) * self.num_qubits
            )
        for op in program.ops:
            if op.matrix is not None:
                states = apply_gate_batched(states, op.matrix, op.qubits)
            else:
                angles = op.coeff * thetas[:, op.param_index] + op.offset
                matrices = batched_gate_matrices(op.gate_name, angles)
                states = apply_gates_elementwise(states, matrices, op.qubits)
        return states

    def run_flat(
        self,
        program: CompiledProgram,
        thetas: np.ndarray,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Like :meth:`run_program` but returns ``(B, 2**n)`` flat vectors."""
        states = self.run_program(program, thetas, initial_states)
        return states.reshape(states.shape[0], -1)


def simulate_statevectors(
    circuit_or_program: Union[QuantumCircuit, CompiledProgram],
    thetas: np.ndarray,
) -> np.ndarray:
    """Convenience wrapper: ``(B, P)`` parameters to ``(B, 2**n)`` vectors.

    The batched sibling of
    :func:`repro.simulator.statevector.simulate_statevector`.
    """
    if isinstance(circuit_or_program, CompiledProgram):
        program = circuit_or_program
    else:
        program = compile_circuit(circuit_or_program)
    simulator = BatchedStatevectorSimulator(program.num_qubits)
    return simulator.run_flat(program, np.asarray(thetas, dtype=float))
