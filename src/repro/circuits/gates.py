"""Gate definitions and matrix constructors.

Matrices follow the little-endian qubit convention used throughout the
library: for a two-qubit gate acting on ``(control, target)``, the matrix
is expressed in the basis ``|control target>``.

Two constructor families live here: the scalar :class:`GateSpec`
constructors (one matrix per call) and the *stacked* builders, which map a
``(B,)`` angle array to a ``(B, 2**k, 2**k)`` matrix stack in one
vectorized NumPy pass. Per-element values of the stacked builders are
bit-identical to the scalar constructors — the contract that lets the
serial, batched and compiled-plan execution paths interchange freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

SQRT2_INV = 1.0 / np.sqrt(2.0)

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = SQRT2_INV * np.array([[1, 1], [1, -1]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
_T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)
_TDG = np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
_SXDG = _SX.conj().T

_CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_CZ = np.diag([1, 1, 1, -1]).astype(complex)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def _rx(theta: float) -> np.ndarray:
    half = theta / 2.0
    return np.array(
        [[np.cos(half), -1j * np.sin(half)], [-1j * np.sin(half), np.cos(half)]],
        dtype=complex,
    )


def _ry(theta: float) -> np.ndarray:
    half = theta / 2.0
    return np.array(
        [[np.cos(half), -np.sin(half)], [np.sin(half), np.cos(half)]], dtype=complex
    )


def _rz(theta: float) -> np.ndarray:
    half = theta / 2.0
    return np.array(
        [[np.exp(-1j * half), 0], [0, np.exp(1j * half)]], dtype=complex
    )


def _p(theta: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)


def _u(theta: float, phi: float, lam: float) -> np.ndarray:
    half = theta / 2.0
    return np.array(
        [
            [np.cos(half), -np.exp(1j * lam) * np.sin(half)],
            [
                np.exp(1j * phi) * np.sin(half),
                np.exp(1j * (phi + lam)) * np.cos(half),
            ],
        ],
        dtype=complex,
    )


def _rzz(theta: float) -> np.ndarray:
    half = theta / 2.0
    return np.diag(
        [np.exp(-1j * half), np.exp(1j * half), np.exp(1j * half), np.exp(-1j * half)]
    ).astype(complex)


def _rxx(theta: float) -> np.ndarray:
    half = theta / 2.0
    cos, sin = np.cos(half), np.sin(half)
    mat = np.eye(4, dtype=complex) * cos
    anti = -1j * sin
    mat[0, 3] = anti
    mat[1, 2] = anti
    mat[2, 1] = anti
    mat[3, 0] = anti
    return mat


def _crx(theta: float) -> np.ndarray:
    mat = np.eye(4, dtype=complex)
    mat[2:, 2:] = _rx(theta)
    return mat


def _crz(theta: float) -> np.ndarray:
    mat = np.eye(4, dtype=complex)
    mat[2:, 2:] = _rz(theta)
    return mat


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate kind."""

    name: str
    num_qubits: int
    num_params: int
    constructor: Callable[..., np.ndarray]

    def matrix(self, params: Sequence[float] = ()) -> np.ndarray:
        if len(params) != self.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {self.num_params} parameters, "
                f"got {len(params)}"
            )
        return self.constructor(*params)


def _fixed(matrix: np.ndarray) -> Callable[[], np.ndarray]:
    def build() -> np.ndarray:
        return matrix

    return build


GATES: Dict[str, GateSpec] = {
    spec.name: spec
    for spec in [
        GateSpec("id", 1, 0, _fixed(_I)),
        GateSpec("x", 1, 0, _fixed(_X)),
        GateSpec("y", 1, 0, _fixed(_Y)),
        GateSpec("z", 1, 0, _fixed(_Z)),
        GateSpec("h", 1, 0, _fixed(_H)),
        GateSpec("s", 1, 0, _fixed(_S)),
        GateSpec("sdg", 1, 0, _fixed(_SDG)),
        GateSpec("t", 1, 0, _fixed(_T)),
        GateSpec("tdg", 1, 0, _fixed(_TDG)),
        GateSpec("sx", 1, 0, _fixed(_SX)),
        GateSpec("sxdg", 1, 0, _fixed(_SXDG)),
        GateSpec("rx", 1, 1, _rx),
        GateSpec("ry", 1, 1, _ry),
        GateSpec("rz", 1, 1, _rz),
        GateSpec("p", 1, 1, _p),
        GateSpec("u", 1, 3, _u),
        GateSpec("cx", 2, 0, _fixed(_CX)),
        GateSpec("cz", 2, 0, _fixed(_CZ)),
        GateSpec("swap", 2, 0, _fixed(_SWAP)),
        GateSpec("rzz", 2, 1, _rzz),
        GateSpec("rxx", 2, 1, _rxx),
        GateSpec("crx", 2, 1, _crx),
        GateSpec("crz", 2, 1, _crz),
    ]
}


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix for a named gate."""
    try:
        spec = GATES[name]
    except KeyError:
        raise KeyError(f"unknown gate {name!r}") from None
    return spec.matrix(params)


# -- stacked (vectorized) parameterized-gate constructors ---------------------
#
# Each builder maps a ``(B,)`` angle array to a ``(B, 2**k, 2**k)`` matrix
# stack using the same formulas as the scalar constructors above, so
# per-element values are bit-identical.

StackedGateBuilder = Callable[[np.ndarray], np.ndarray]


def _stack_rx(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    cos, sin = np.cos(half), np.sin(half)
    out = np.empty((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = cos
    out[:, 0, 1] = -1j * sin
    out[:, 1, 0] = -1j * sin
    out[:, 1, 1] = cos
    return out


def _stack_ry(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    cos, sin = np.cos(half), np.sin(half)
    out = np.empty((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = cos
    out[:, 0, 1] = -sin
    out[:, 1, 0] = sin
    out[:, 1, 1] = cos
    return out


def _stack_rz(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    out = np.zeros((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = np.exp(-1j * half)
    out[:, 1, 1] = np.exp(1j * half)
    return out


def _stack_p(angles: np.ndarray) -> np.ndarray:
    out = np.zeros((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = 1.0
    out[:, 1, 1] = np.exp(1j * angles)
    return out


def _stack_rzz(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    minus, plus = np.exp(-1j * half), np.exp(1j * half)
    out = np.zeros((angles.size, 4, 4), dtype=complex)
    out[:, 0, 0] = minus
    out[:, 1, 1] = plus
    out[:, 2, 2] = plus
    out[:, 3, 3] = minus
    return out


def _stack_rxx(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    cos, anti = np.cos(half), -1j * np.sin(half)
    out = np.zeros((angles.size, 4, 4), dtype=complex)
    for i in range(4):
        out[:, i, i] = cos
        out[:, i, 3 - i] = anti
    return out


def _stack_crx(angles: np.ndarray) -> np.ndarray:
    out = np.zeros((angles.size, 4, 4), dtype=complex)
    out[:, 0, 0] = 1.0
    out[:, 1, 1] = 1.0
    out[:, 2:, 2:] = _stack_rx(angles)
    return out


def _stack_crz(angles: np.ndarray) -> np.ndarray:
    out = np.zeros((angles.size, 4, 4), dtype=complex)
    out[:, 0, 0] = 1.0
    out[:, 1, 1] = 1.0
    out[:, 2:, 2:] = _stack_rz(angles)
    return out


STACKED_GATE_BUILDERS: Dict[str, StackedGateBuilder] = {
    "rx": _stack_rx,
    "ry": _stack_ry,
    "rz": _stack_rz,
    "p": _stack_p,
    "rzz": _stack_rzz,
    "rxx": _stack_rxx,
    "crx": _stack_crx,
    "crz": _stack_crz,
}


def stacked_gate_matrices(gate_name: str, angles: np.ndarray) -> np.ndarray:
    """``(B, 2**k, 2**k)`` matrices for a single-parameter gate.

    Falls back to stacking the scalar constructor for gate kinds without
    a vectorized builder.
    """
    angles = np.asarray(angles, dtype=float).reshape(-1)
    builder = STACKED_GATE_BUILDERS.get(gate_name)
    if builder is not None:
        return builder(angles)
    spec = GATES[gate_name]
    return np.stack([spec.matrix((float(a),)) for a in angles])
