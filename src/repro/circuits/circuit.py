"""The :class:`QuantumCircuit` intermediate representation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.circuits.gates import GATES
from repro.circuits.parameter import Parameter, ParameterExpression

ParamValue = Union[float, int, ParameterExpression]


@dataclass(frozen=True)
class Instruction:
    """A single gate application (or measurement/barrier marker)."""

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[ParamValue, ...] = ()

    @property
    def is_parameterized(self) -> bool:
        return any(isinstance(p, ParameterExpression) for p in self.params)


class QuantumCircuit:
    """An ordered gate list over ``num_qubits`` qubits.

    Gates append through named methods (``circuit.ry(theta, 0)``) or the
    generic :meth:`append`. Measurement is implicit: simulators measure all
    qubits in the computational basis unless basis-rotation gates are added
    first (see ``repro.operators.measurement_basis``).
    """

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.name = name
        self._instructions: List[Instruction] = []

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(self._instructions)

    # -- construction --------------------------------------------------------

    def _check_qubits(self, qubits: Sequence[int]) -> Tuple[int, ...]:
        qubits = tuple(int(q) for q in qubits)
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
                )
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubits in {qubits}")
        return qubits

    def append(self, name: str, qubits: Sequence[int], params: Sequence[ParamValue] = ()) -> "QuantumCircuit":
        """Append a named gate; returns self for chaining."""
        if name not in GATES and name != "barrier":
            raise KeyError(f"unknown gate {name!r}")
        qubits = self._check_qubits(qubits)
        if name != "barrier":
            spec = GATES[name]
            if len(qubits) != spec.num_qubits:
                raise ValueError(
                    f"gate {name!r} acts on {spec.num_qubits} qubits, got {len(qubits)}"
                )
            if len(params) != spec.num_params:
                raise ValueError(
                    f"gate {name!r} expects {spec.num_params} params, got {len(params)}"
                )
        self._instructions.append(Instruction(name, qubits, tuple(params)))
        return self

    # one- and two-qubit convenience methods
    def id(self, qubit: int) -> "QuantumCircuit":
        return self.append("id", (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append("x", (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append("y", (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append("z", (qubit,))

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append("h", (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append("s", (qubit,))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append("sdg", (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append("t", (qubit,))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append("tdg", (qubit,))

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append("sx", (qubit,))

    def rx(self, theta: ParamValue, qubit: int) -> "QuantumCircuit":
        return self.append("rx", (qubit,), (theta,))

    def ry(self, theta: ParamValue, qubit: int) -> "QuantumCircuit":
        return self.append("ry", (qubit,), (theta,))

    def rz(self, theta: ParamValue, qubit: int) -> "QuantumCircuit":
        return self.append("rz", (qubit,), (theta,))

    def p(self, theta: ParamValue, qubit: int) -> "QuantumCircuit":
        return self.append("p", (qubit,), (theta,))

    def u(self, theta: ParamValue, phi: ParamValue, lam: ParamValue, qubit: int) -> "QuantumCircuit":
        return self.append("u", (qubit,), (theta, phi, lam))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cx", (control, target))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cz", (control, target))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append("swap", (a, b))

    def rzz(self, theta: ParamValue, a: int, b: int) -> "QuantumCircuit":
        return self.append("rzz", (a, b), (theta,))

    def rxx(self, theta: ParamValue, a: int, b: int) -> "QuantumCircuit":
        return self.append("rxx", (a, b), (theta,))

    def crx(self, theta: ParamValue, control: int, target: int) -> "QuantumCircuit":
        return self.append("crx", (control, target), (theta,))

    def crz(self, theta: ParamValue, control: int, target: int) -> "QuantumCircuit":
        return self.append("crz", (control, target), (theta,))

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        targets = qubits if qubits else tuple(range(self.num_qubits))
        self._instructions.append(Instruction("barrier", tuple(targets)))
        return self

    def compose(self, other: "QuantumCircuit", qubits: Sequence[int] = None) -> "QuantumCircuit":
        """Append another circuit, optionally remapped onto ``qubits``."""
        if qubits is None:
            mapping = list(range(other.num_qubits))
        else:
            mapping = list(qubits)
        if len(mapping) != other.num_qubits:
            raise ValueError("qubit mapping length must match other.num_qubits")
        for inst in other:
            mapped = tuple(mapping[q] for q in inst.qubits)
            if inst.name == "barrier":
                self._instructions.append(Instruction("barrier", mapped))
            else:
                self.append(inst.name, mapped, inst.params)
        return self

    def copy(self) -> "QuantumCircuit":
        clone = QuantumCircuit(self.num_qubits, self.name)
        clone._instructions = list(self._instructions)
        return clone

    # -- parameters -----------------------------------------------------------

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """Distinct parameters in first-appearance order."""
        seen: Dict[Parameter, None] = {}
        for inst in self._instructions:
            for param in inst.params:
                if isinstance(param, ParameterExpression):
                    seen.setdefault(param.parameter, None)
        return tuple(seen.keys())

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    def bind(self, values: Union[Mapping[Parameter, float], Iterable[float]]) -> "QuantumCircuit":
        """Return a fully numeric copy with parameters substituted.

        ``values`` may be a mapping from :class:`Parameter` or a plain
        sequence ordered like :attr:`parameters`.
        """
        if not isinstance(values, Mapping):
            params = self.parameters
            values = dict(zip(params, map(float, values)))
            if len(values) != len(params):
                raise ValueError(
                    f"expected {len(params)} values, got {len(values)}"
                )
        bound = QuantumCircuit(self.num_qubits, self.name)
        for inst in self._instructions:
            new_params = tuple(
                p.bind(values) if isinstance(p, ParameterExpression) else float(p)
                for p in inst.params
            )
            bound._instructions.append(Instruction(inst.name, inst.qubits, new_params))
        return bound

    # -- metrics ----------------------------------------------------------------

    def count_ops(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for inst in self._instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    @property
    def num_two_qubit_gates(self) -> int:
        return sum(
            1
            for inst in self._instructions
            if inst.name != "barrier" and len(inst.qubits) == 2
        )

    def depth(self) -> int:
        """Circuit depth counting all gates (barriers excluded)."""
        frontier = [0] * self.num_qubits
        for inst in self._instructions:
            if inst.name == "barrier":
                continue
            level = max(frontier[q] for q in inst.qubits) + 1
            for qubit in inst.qubits:
                frontier[qubit] = level
        return max(frontier) if frontier else 0

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self._instructions)}, params={self.num_parameters})"
        )
