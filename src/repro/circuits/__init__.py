"""Quantum circuit intermediate representation.

The IR is deliberately small: a :class:`QuantumCircuit` is an ordered list
of gate instructions over named qubits, with optional symbolic
:class:`Parameter` angles. For hot loops (VQE objective evaluations), a
circuit compiles down to a :class:`CompiledProgram` that the statevector
simulator executes without re-touching Python-level instruction objects.
"""

from repro.circuits.parameter import Parameter, ParameterExpression, ParameterVector
from repro.circuits.gates import GATES, GateSpec, gate_matrix
from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.program import CompiledProgram, compile_circuit
from repro.circuits.library import (
    bell_pair,
    ghz_circuit,
    layered_cx_circuit,
    random_circuit,
)

__all__ = [
    "Parameter",
    "ParameterExpression",
    "ParameterVector",
    "GATES",
    "GateSpec",
    "gate_matrix",
    "Instruction",
    "QuantumCircuit",
    "CompiledProgram",
    "compile_circuit",
    "bell_pair",
    "ghz_circuit",
    "layered_cx_circuit",
    "random_circuit",
]
