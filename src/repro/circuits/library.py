"""Small circuit constructors used by tests, examples and fidelity studies."""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.utils.rng import SeedLike, ensure_rng


def bell_pair() -> QuantumCircuit:
    """The canonical two-qubit Bell-state circuit."""
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """A GHZ-state preparation over ``num_qubits`` qubits."""
    if num_qubits < 2:
        raise ValueError("GHZ needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: SeedLike = None,
    two_qubit_fraction: float = 0.35,
) -> QuantumCircuit:
    """A random circuit of single-qubit rotations and CX gates.

    Used by the Fig. 4 fidelity study (shallow 4q/6CX vs deep 8q/~50CX
    circuits) and by simulator cross-validation tests.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if not 0.0 <= two_qubit_fraction <= 1.0:
        raise ValueError("two_qubit_fraction must be in [0, 1]")
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random{num_qubits}x{depth}")
    single_gates = ("rx", "ry", "rz", "h", "sx")
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < two_qubit_fraction:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
        else:
            gate = str(rng.choice(single_gates))
            qubit = int(rng.integers(num_qubits))
            if gate in ("rx", "ry", "rz"):
                circuit.append(gate, (qubit,), (float(rng.uniform(0, 2 * np.pi)),))
            else:
                circuit.append(gate, (qubit,))
    return circuit


def layered_cx_circuit(
    num_qubits: int, cx_layers: int, seed: SeedLike = None
) -> QuantumCircuit:
    """Brick-work circuit with a controllable CX count.

    Reproduces the Fig. 4 workload shape: each layer applies random
    single-qubit rotations followed by a chain of CX gates.
    """
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"layered{num_qubits}x{cx_layers}")
    for layer in range(cx_layers):
        for qubit in range(num_qubits):
            circuit.ry(float(rng.uniform(0, 2 * np.pi)), qubit)
        start = layer % 2
        for qubit in range(start, num_qubits - 1, 2):
            circuit.cx(qubit, qubit + 1)
    return circuit
