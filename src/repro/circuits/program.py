"""Compiled circuit programs for fast repeated evaluation.

.. note::
   This module is the *legacy* compilation surface, kept as a thin
   compatibility shim. New code should compile through
   :func:`repro.compiler.compile_plan`, which lowers to the
   structure-of-arrays :class:`~repro.compiler.GatePlan` IR with static-gate
   fusion and a shared plan cache. The compiler's lowering pass is built on
   :func:`compile_circuit`, so the two stay in lock-step.

A VQE run evaluates the same ansatz thousands of times with different
parameter values. Re-binding :class:`QuantumCircuit` objects per call would
dominate runtime, so a circuit compiles once into a flat list of
:class:`ProgramOp` records. Fixed-angle gates pre-compute their matrices;
parameterized rotations record ``(coeff, offset, parameter index)``.
Angle computation is vectorized: one affine NumPy map
``angles = coeffs * theta[param_indices] + offsets`` covers every
parameterized op, and matrices are built per gate kind through the stacked
constructors in :mod:`repro.circuits.gates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATES
from repro.circuits.parameter import Parameter, ParameterExpression


@dataclass(frozen=True)
class ProgramOp:
    """One executable operation.

    ``matrix`` is set for fixed gates. Parameterized single-parameter gates
    set ``gate_name`` plus the affine map ``angle = coeff * theta[param_index]
    + offset`` and rebuild the matrix per evaluation.
    """

    qubits: Tuple[int, ...]
    matrix: Optional[np.ndarray]
    gate_name: Optional[str] = None
    param_index: int = -1
    coeff: float = 1.0
    offset: float = 0.0


class CompiledProgram:
    """A parameter-array-callable form of a circuit.

    Execution delegates to a lazily-lowered (unfused)
    :class:`~repro.compiler.ir.GatePlan`, so the one affine-binding /
    kind-grouped-materialization implementation lives in the compiler.
    """

    def __init__(self, num_qubits: int, ops: List[ProgramOp], parameters: Tuple[Parameter, ...]):
        self.num_qubits = num_qubits
        self.ops = ops
        self.parameters = parameters
        self._lowered = None

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    def _plan(self):
        """The unfused GatePlan view of this program, lowered once."""
        if self._lowered is None:
            # Function-level import: the compiler package builds on this
            # module, so the dependency must stay one-way at import time.
            from repro.compiler.ir import lower_program

            self._lowered = lower_program(self)
        return self._lowered

    def bind_angles(self, theta: Sequence[float]) -> np.ndarray:
        """Angles for every parameterized op via one affine NumPy map."""
        return self._plan().bind_angles(theta)

    def op_matrices(self, theta: Sequence[float]) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
        """Materialize the gate list for a parameter vector."""
        return list(self._plan().op_matrices(theta))


def compile_circuit(
    circuit: QuantumCircuit, parameters: Optional[Sequence[Parameter]] = None
) -> CompiledProgram:
    """Compile a circuit against an explicit parameter ordering.

    ``parameters`` defaults to the circuit's first-appearance order; ansatz
    classes pass their canonical ordering explicitly.
    """
    if parameters is None:
        parameters = circuit.parameters
    parameters = tuple(parameters)
    index_of = {param: i for i, param in enumerate(parameters)}

    ops: List[ProgramOp] = []
    for inst in circuit:
        if inst.name == "barrier":
            continue
        spec = GATES[inst.name]
        if not inst.is_parameterized:
            matrix = spec.matrix(tuple(float(p) for p in inst.params))
            ops.append(ProgramOp(inst.qubits, matrix))
            continue
        if spec.num_params != 1:
            raise ValueError(
                f"parameterized gate {inst.name!r} with {spec.num_params} params "
                "is not supported in compiled programs; bind it first"
            )
        expr = inst.params[0]
        if not isinstance(expr, ParameterExpression):
            raise TypeError("expected a ParameterExpression")
        if expr.parameter not in index_of:
            raise KeyError(
                f"parameter {expr.parameter.name!r} missing from parameter ordering"
            )
        ops.append(
            ProgramOp(
                inst.qubits,
                None,
                gate_name=inst.name,
                param_index=index_of[expr.parameter],
                coeff=expr.coeff,
                offset=expr.offset,
            )
        )
    return CompiledProgram(circuit.num_qubits, ops, parameters)
