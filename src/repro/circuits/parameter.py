"""Symbolic circuit parameters.

A :class:`Parameter` is a named placeholder for a rotation angle. A
:class:`ParameterExpression` supports the small amount of affine arithmetic
ansatz builders need (scaling and shifting a parameter), without pulling in
a full symbolic-algebra dependency.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Union

Number = Union[int, float]

_COUNTER = itertools.count()


class ParameterExpression:
    """An affine expression ``coeff * parameter + offset``."""

    def __init__(self, parameter: "Parameter", coeff: float = 1.0, offset: float = 0.0):
        self.parameter = parameter
        self.coeff = float(coeff)
        self.offset = float(offset)

    def bind(self, values: Mapping["Parameter", float]) -> float:
        """Evaluate the expression given concrete parameter values."""
        if self.parameter not in values:
            raise KeyError(f"no value bound for parameter {self.parameter.name!r}")
        return self.coeff * float(values[self.parameter]) + self.offset

    def __mul__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self.parameter, self.coeff * other, self.offset * other)

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return self * -1.0

    def __add__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self.parameter, self.coeff, self.offset + other)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "ParameterExpression":
        return self + (-other)

    def __repr__(self) -> str:
        return f"{self.coeff}*{self.parameter.name} + {self.offset}"


class Parameter(ParameterExpression):
    """A named symbolic parameter.

    Identity (not name) determines equality, so two ansatz instances can
    reuse the same parameter names without colliding.
    """

    def __init__(self, name: str):
        self.name = name
        self._uid = next(_COUNTER)
        super().__init__(self, 1.0, 0.0)

    def bind(self, values: Mapping["Parameter", float]) -> float:
        if self not in values:
            raise KeyError(f"no value bound for parameter {self.name!r}")
        return float(values[self])

    def __hash__(self) -> int:
        return hash(self._uid)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"Parameter({self.name!r})"


class ParameterVector:
    """An ordered collection of parameters sharing a base name."""

    def __init__(self, name: str, length: int):
        if length < 0:
            raise ValueError("length must be non-negative")
        self.name = name
        self._params: List[Parameter] = [
            Parameter(f"{name}[{index}]") for index in range(length)
        ]

    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __getitem__(self, index: int) -> Parameter:
        return self._params[index]

    def bind_array(self, values) -> Dict[Parameter, float]:
        """Zip the vector against an array of concrete values."""
        values = list(values)
        if len(values) != len(self._params):
            raise ValueError(
                f"expected {len(self._params)} values, got {len(values)}"
            )
        return dict(zip(self._params, map(float, values)))

    def __repr__(self) -> str:
        return f"ParameterVector({self.name!r}, {len(self)})"
