"""Small statistics helpers used across experiments and noise models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values.

    Raises ``ValueError`` on empty input or non-positive entries, mirroring
    how the paper reports geomean improvement ratios (Figs. 13 and 17).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Simple trailing moving average with a growing warm-up window."""
    if window < 1:
        raise ValueError("window must be >= 1")
    arr = np.asarray(values, dtype=float)
    out = np.empty_like(arr)
    csum = np.cumsum(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        total = csum[i] - (csum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def relative_variation(values: Sequence[float]) -> float:
    """Peak-to-peak variation normalized by the mean magnitude.

    This is the quantity the paper quotes in Fig. 4 ("~5 % variation" for
    the shallow circuit, "~35 %" for the deep one).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("relative_variation of empty sequence")
    mean = float(np.mean(np.abs(arr)))
    if mean == 0.0:
        return 0.0
    return float((np.max(arr) - np.min(arr)) / mean)


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics for a measurement series."""

    mean: float
    std: float
    minimum: float
    maximum: float
    variation: float
    count: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "variation": self.variation,
            "count": float(self.count),
        }


def summary(values: Sequence[float]) -> SeriesSummary:
    """Summary statistics (mean/std/min/max/relative variation)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("summary of empty sequence")
    return SeriesSummary(
        mean=float(np.mean(arr)),
        std=float(np.std(arr)),
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
        variation=relative_variation(arr),
        count=int(arr.size),
    )


class running_percentile:  # noqa: N801 - exposed as a callable helper class
    """Streaming percentile estimator over a bounded history window.

    QISMET's online threshold calibration tracks the distribution of
    observed transient swing magnitudes; a bounded window keeps the
    estimate responsive to slow drift in the noise landscape.
    """

    def __init__(self, percentile: float, window: int = 512):
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.percentile = percentile
        self.window = window
        self._values: list = []

    def update(self, value: float) -> None:
        self._values.append(float(value))
        if len(self._values) > self.window:
            del self._values[0]

    @property
    def count(self) -> int:
        return len(self._values)

    def value(self, default: float = 0.0) -> float:
        if not self._values:
            return default
        return float(np.percentile(self._values, self.percentile))
