"""Shared utilities: seeded RNG management, statistics, serialization."""

from repro.utils.rng import derive_rng, derive_seed, ensure_rng
from repro.utils.stats import (
    geometric_mean,
    moving_average,
    relative_variation,
    running_percentile,
    summary,
)
from repro.utils.serialization import (
    canonical_json,
    load_json,
    save_json,
    to_jsonable,
)

__all__ = [
    "canonical_json",
    "derive_rng",
    "derive_seed",
    "ensure_rng",
    "geometric_mean",
    "moving_average",
    "relative_variation",
    "running_percentile",
    "summary",
    "load_json",
    "save_json",
    "to_jsonable",
]
