"""JSON persistence for experiment results.

Experiment runners produce plain-``dict`` records; these helpers handle the
numpy scalar/array conversions so results round-trip through JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np


def _to_jsonable(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {str(key): _to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(item) for item in obj]
    if isinstance(obj, np.ndarray):
        return [_to_jsonable(item) for item in obj.tolist()]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    return obj


def to_jsonable(obj: Any) -> Any:
    """Public alias of the numpy-aware JSON conversion."""
    return _to_jsonable(obj)


def canonical_json(data: Any) -> str:
    """Byte-stable JSON encoding: sorted keys, no whitespace, numpy-aware.

    The experiment store content-addresses result payloads by hashing
    this exact text, so two logically-equal payloads always share one
    blob regardless of who serialized them.
    """
    return json.dumps(_to_jsonable(data), sort_keys=True, separators=(",", ":"))


def save_json(path: Union[str, Path], data: Any) -> Path:
    """Write ``data`` as pretty-printed JSON, converting numpy types."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(_to_jsonable(data), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
