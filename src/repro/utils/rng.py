"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator``. Components that own several stochastic
sub-processes derive independent child generators from a parent seed and a
string label, so that adding a new consumer never perturbs the random
streams of existing ones (important for reproducible paper experiments).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted seed form.

    ``None`` produces an unseeded generator; an ``int`` produces a seeded
    one; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from a base seed and a label.

    Uses SHA-256 so the mapping is platform independent and insensitive to
    Python's hash randomization.
    """
    digest = hashlib.sha256(f"{base_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_rng(base_seed: Optional[int], label: str) -> np.random.Generator:
    """Return an independent child generator for ``label``.

    With ``base_seed=None`` the child is unseeded (still independent) —
    an explicit opt-out of reproducibility for exploratory runs. This is
    the repo's one sanctioned unseeded-RNG construction site; everywhere
    else the determinism linter (``RPR101``) forbids it.
    """
    if base_seed is None:
        return np.random.default_rng()  # repro: allow-unseeded-rng
    return np.random.default_rng(derive_seed(base_seed, label))
