"""1-D Kalman filtering of VQA objective estimates (paper Section 7.4).

The filter models the objective trajectory as a scalar linear system

``x_{k+1} = T x_k + w``,  ``z_k = x_k + v``

with the paper's two tuned hyper-parameters: the Transition Coefficient
``T`` (a linear estimate of the noise-free curve's slope; values below 1
impose a forced downward descent) and the Measurement Variance ``MV``.

Applied "on top of the noisy VQA tuning performed with SPSA": every
objective evaluation the optimizer sees is passed through a shared filter.
This is what produces the paper's observed failure modes — low MV lets
transients through; high MV cannot distinguish machine noise from genuine
algorithmic variance and saturates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends.base import EnergyBackend


class KalmanFilter1D:
    """Scalar Kalman filter with transition coefficient and fixed variances."""

    def __init__(
        self,
        transition: float = 1.0,
        measurement_variance: float = 0.1,
        process_variance: float = 1e-3,
        initial_estimate: Optional[float] = None,
        initial_variance: float = 1.0,
    ):
        if measurement_variance <= 0:
            raise ValueError("measurement_variance must be positive")
        if process_variance < 0:
            raise ValueError("process_variance must be non-negative")
        self.transition = transition
        self.measurement_variance = measurement_variance
        self.process_variance = process_variance
        self.estimate = initial_estimate
        self.variance = initial_variance

    def update(self, measurement: float) -> float:
        """Fold in one measurement; returns the filtered estimate."""
        if self.estimate is None:
            self.estimate = float(measurement)
            self.variance = self.measurement_variance
            return self.estimate
        # Predict.
        predicted = self.transition * self.estimate
        predicted_variance = (
            self.transition**2 * self.variance + self.process_variance
        )
        # Correct.
        gain = predicted_variance / (predicted_variance + self.measurement_variance)
        self.estimate = predicted + gain * (measurement - predicted)
        self.variance = (1.0 - gain) * predicted_variance
        return float(self.estimate)

    def filter_series(self, values) -> np.ndarray:
        """Filter an entire series (resets nothing; call on fresh filters)."""
        return np.array([self.update(v) for v in values])


class KalmanFilteredBackend(EnergyBackend):
    """Wraps a backend so every energy estimate is Kalman-filtered.

    The shared filter state couples evaluations at different parameters —
    exactly the paper's point about why magnitude-only filtering struggles
    in the VQA tuning landscape.
    """

    def __init__(
        self,
        inner: EnergyBackend,
        transition: float = 1.0,
        measurement_variance: float = 0.1,
        process_variance: float = 1e-3,
    ):
        super().__init__()
        self.inner = inner
        self.filter = KalmanFilter1D(
            transition=transition,
            measurement_variance=measurement_variance,
            process_variance=process_variance,
        )
        self._params = (transition, measurement_variance, process_variance)

    def new_job(self):
        # Delegate the job clock to the inner backend so traces advance,
        # while routing evaluations through the filter.
        outer = super().new_job()
        self._inner_job = self.inner.new_job()
        return outer

    def _evaluate(self, theta: np.ndarray, job_index: int) -> float:
        raw = self._inner_job.energy(theta)
        self.total_circuits = self.inner.total_circuits
        return self.filter.update(raw)

    def reset(self) -> None:
        super().reset()
        self.inner.reset()
        transition, mv, pv = self._params
        self.filter = KalmanFilter1D(
            transition=transition,
            measurement_variance=mv,
            process_variance=pv,
        )
