"""Classical filtering baselines (paper Sections 5.3, 7.4, 8.4)."""

from repro.filtering.kalman import KalmanFilter1D, KalmanFilteredBackend
from repro.filtering.cfar import cfar_detect

__all__ = ["KalmanFilter1D", "KalmanFilteredBackend", "cfar_detect"]
