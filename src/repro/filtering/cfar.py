"""Cell-averaging CFAR detection over a series (paper Section 8.4).

Classic radar-style detector: for each cell, estimate the noise floor from
surrounding training cells (excluding adjacent guard cells) and flag the
cell if it exceeds ``alarm_factor`` times the floor. Used in tests and
ablations to contrast magnitude-threshold detection with QISMET's
gradient-faithful criterion.
"""

from __future__ import annotations

import numpy as np


def cfar_detect(
    series,
    train_cells: int = 8,
    guard_cells: int = 2,
    alarm_factor: float = 4.0,
) -> np.ndarray:
    """Return a boolean detection mask over ``series``.

    ``train_cells``/``guard_cells`` count cells on *each side* of the cell
    under test.
    """
    values = np.abs(np.asarray(series, dtype=float))
    if train_cells < 1:
        raise ValueError("train_cells must be >= 1")
    if guard_cells < 0:
        raise ValueError("guard_cells must be >= 0")
    if alarm_factor <= 0:
        raise ValueError("alarm_factor must be positive")
    n = values.size
    detections = np.zeros(n, dtype=bool)
    for i in range(n):
        lo_start = max(0, i - guard_cells - train_cells)
        lo_end = max(0, i - guard_cells)
        hi_start = min(n, i + guard_cells + 1)
        hi_end = min(n, i + guard_cells + 1 + train_cells)
        training = np.concatenate([values[lo_start:lo_end], values[hi_start:hi_end]])
        if training.size == 0:
            continue
        floor = float(np.mean(training))
        if floor > 0 and values[i] > alarm_factor * floor:
            detections[i] = True
    return detections
