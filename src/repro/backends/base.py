"""Backend protocol: quantum jobs yielding energy estimates.

The job abstraction mirrors the paper's Fig. 7: a VQA run is a sequence of
jobs; each job is a batch of circuits executed close together in time and
therefore exposed to the *same* transient noise instance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class EnergyJob:
    """One quantum job: evaluates energies under a fixed noise instant."""

    def __init__(self, backend: "EnergyBackend", index: int):
        self.backend = backend
        self.index = index
        self.circuits_run = 0

    def energy(self, theta: np.ndarray) -> float:
        """Objective estimate for parameters ``theta`` within this job."""
        self.circuits_run += 1
        self.backend.total_circuits += 1
        return self.backend._evaluate(np.asarray(theta, dtype=float), self.index)


class EnergyBackend:
    """Base backend; subclasses implement ``_evaluate``."""

    def __init__(self) -> None:
        self.job_counter = 0
        self.total_circuits = 0

    def new_job(self) -> EnergyJob:
        """Open the next job; advances the backend's noise clock."""
        job = EnergyJob(self, self.job_counter)
        self.job_counter += 1
        return job

    def _evaluate(self, theta: np.ndarray, job_index: int) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        self.job_counter = 0
        self.total_circuits = 0
